"""Traced-Python runtime tests: structure, ops, buffers, decorators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import Buffer, RuntimeError_, TracedRuntime, traced
from repro.trace import RecordingObserver
from repro.trace.events import (
    Branch,
    FnEnter,
    FnExit,
    MemRead,
    MemWrite,
    Op,
    OpKind,
    SyscallEnter,
)


class TestFunctionStructure:
    def test_run_brackets_entry(self):
        obs = RecordingObserver()
        rt = TracedRuntime(obs)
        with rt.run("main"):
            pass
        assert obs.events == [FnEnter("main"), FnExit("main")]

    def test_nested_frames(self):
        obs = RecordingObserver()
        rt = TracedRuntime(obs)
        with rt.run():
            with rt.frame("a"):
                with rt.frame("b"):
                    assert rt.current_function == "b"
                    assert rt.depth == 3
        names = [type(e).__name__ for e in obs.events]
        assert names == ["FnEnter"] * 3 + ["FnExit"] * 3

    def test_mismatched_exit_raises(self):
        rt = TracedRuntime()
        rt.enter("a")
        with pytest.raises(RuntimeError_):
            rt.exit("b")

    def test_exit_on_empty_stack_raises(self):
        rt = TracedRuntime()
        with pytest.raises(RuntimeError_):
            rt.exit("a")

    def test_nested_run_rejected(self):
        rt = TracedRuntime()
        with rt.run():
            with pytest.raises(RuntimeError_):
                with rt.run():
                    pass


class TestOpsAndBranches:
    def test_op_kinds(self):
        obs = RecordingObserver()
        rt = TracedRuntime(obs)
        rt.iops(3)
        rt.flops(5)
        assert Op(OpKind.INT, 3) in obs.events
        assert Op(OpKind.FLOAT, 5) in obs.events

    def test_zero_ops_suppressed(self):
        obs = RecordingObserver()
        rt = TracedRuntime(obs)
        rt.iops(0)
        assert obs.events == []

    def test_branch_sites_interned(self):
        obs = RecordingObserver()
        rt = TracedRuntime(obs)
        rt.branch("loop", True)
        rt.branch("loop", False)
        rt.branch("other", True)
        branches = [e for e in obs.events if isinstance(e, Branch)]
        assert branches[0].site == branches[1].site
        assert branches[2].site != branches[0].site

    def test_syscall(self):
        obs = RecordingObserver()
        rt = TracedRuntime(obs)
        rt.syscall("read", output_bytes=100)
        assert SyscallEnter("read", 0) in obs.events


class TestBuffers:
    def test_element_access_emits_events(self):
        obs = RecordingObserver()
        rt = TracedRuntime(obs)
        buf = rt.arena.alloc_f64("x", 8)
        buf.write(2, 1.5)
        assert buf.read(2) == 1.5
        assert MemWrite(buf.addr_of(2), 8) in obs.events
        assert MemRead(buf.addr_of(2), 8) in obs.events

    def test_block_access_single_event(self):
        obs = RecordingObserver()
        rt = TracedRuntime(obs)
        buf = rt.arena.alloc_f64("x", 16)
        buf.write_block(np.arange(16.0))
        data = buf.read_block(4, 8)
        assert (data == np.arange(4.0, 12.0)).all()
        reads = [e for e in obs.events if isinstance(e, MemRead)]
        assert reads == [MemRead(buf.addr_of(4), 64)]

    def test_peek_poke_untraced(self):
        obs = RecordingObserver()
        rt = TracedRuntime(obs)
        buf = rt.arena.alloc_i64("x", 4)
        buf.poke(0, 99)
        assert buf.peek(0) == 99
        assert obs.events == []

    def test_bounds_checked(self):
        rt = TracedRuntime()
        buf = rt.arena.alloc_u8("x", 4)
        with pytest.raises(IndexError):
            buf.read(4)
        with pytest.raises(IndexError):
            buf.read_block(2, 3)
        with pytest.raises(ValueError):
            buf.read_block(0, -1)

    def test_buffers_do_not_overlap_or_share_lines(self):
        rt = TracedRuntime()
        a = rt.arena.alloc_u8("a", 100)
        b = rt.arena.alloc_u8("b", 100)
        assert b.base >= a.base + 100
        assert a.base % 64 == 0 and b.base % 64 == 0

    def test_dtype_preserved(self):
        rt = TracedRuntime()
        buf = rt.arena.alloc_i32("x", 4)
        assert buf.itemsize == 4
        buf.write(0, 2**20)
        assert buf.read(0) == 2**20


class TestTracedDecorator:
    def test_bare_decorator_uses_function_name(self):
        @traced
        def my_kernel(rt):
            return 42

        obs = RecordingObserver()
        rt = TracedRuntime(obs)
        assert my_kernel(rt) == 42
        assert obs.events == [FnEnter("my_kernel"), FnExit("my_kernel")]

    def test_named_decorator(self):
        @traced("std::foo::bar")
        def helper(rt):
            pass

        obs = RecordingObserver()
        helper(TracedRuntime(obs))
        assert obs.events[0] == FnEnter("std::foo::bar")
        assert helper.symbol_name == "std::foo::bar"

    def test_exit_on_exception(self):
        @traced("boom")
        def boom(rt):
            raise ValueError("x")

        obs = RecordingObserver()
        rt = TracedRuntime(obs)
        with pytest.raises(ValueError):
            boom(rt)
        assert obs.events == [FnEnter("boom"), FnExit("boom")]
        assert rt.depth == 0

    def test_requires_runtime_first_arg(self):
        @traced
        def f(rt):
            pass

        with pytest.raises(TypeError):
            f("not a runtime")
