"""CLI surface of the campaign engine: run/status/resume/clean, list --json,
and the one-line-error contract for unknown or crashing workloads."""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignSpec, ResultStore
from repro.cli import main
from repro.workloads import ALL_NAMES, get_workload


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture()
def store_root(tmp_path):
    return str(tmp_path / "store")


def _run_small(capsys, store_root, name="small", workloads="blackscholes"):
    return run_cli(
        capsys, "campaign", "run", "--name", name,
        "--workloads", workloads, "--sizes", "simsmall", "--tools", "native",
        "-j", "2", "--store", store_root,
    )


class TestCampaignRun:
    def test_matrix_flags_run_and_cache(self, capsys, store_root):
        code, out, _ = _run_small(capsys, store_root,
                                  workloads="blackscholes,streamcluster")
        assert code == 0
        assert "2 done (0 cached, 2 executed, 0 failed, 0 timeout)" in out
        assert "campaign.manifest.json" in out

        code, out, _ = _run_small(capsys, store_root,
                                  workloads="blackscholes,streamcluster")
        assert code == 0
        assert "2 done (2 cached, 0 executed, 0 failed, 0 timeout)" in out

    def test_spec_file_run(self, capsys, tmp_path, store_root):
        spec = CampaignSpec(name="fromfile", workloads=["blackscholes"],
                            tools=["native"])
        path = spec.save(tmp_path / "spec.json")
        code, out, _ = run_cli(capsys, "campaign", "run",
                               "--spec", str(path), "--store", store_root)
        assert code == 0
        assert "campaign 'fromfile': 1 jobs" in out

    def test_config_variants_multiply_jobs(self, capsys, store_root):
        code, out, _ = run_cli(
            capsys, "campaign", "run", "--name", "cfg",
            "--workloads", "blackscholes", "--tools", "native",
            "--config", "{}", "--config", '{"line_size": 64}',
            "--store", store_root, "--dry-run",
        )
        assert code == 0
        assert "2 jobs" in out

    def test_workloads_all_expands_registry(self, capsys, store_root):
        code, out, _ = run_cli(
            capsys, "campaign", "run", "--name", "everything",
            "--workloads", "all", "--tools", "native",
            "--store", store_root, "--dry-run",
        )
        assert code == 0
        assert f"{len(ALL_NAMES)} jobs" in out

    def test_dry_run_creates_no_store_entries(self, capsys, store_root):
        code, out, _ = run_cli(
            capsys, "campaign", "run", "--name", "dry",
            "--workloads", "blackscholes", "--tools", "native",
            "--store", store_root, "--dry-run",
        )
        assert code == 0
        assert "blackscholes/simsmall/native" in out
        assert "0 executed" in out
        assert ResultStore(store_root).keys() == []

    def test_run_without_spec_or_workloads_is_one_line_error(self, capsys):
        code, _, err = run_cli(capsys, "campaign", "run", "--name", "x")
        assert code == 1
        assert "needs --spec FILE or --workloads LIST" in err
        assert len(err.strip().splitlines()) == 1

    def test_unknown_workload_in_matrix_is_one_line_error(
        self, capsys, store_root
    ):
        code, _, err = run_cli(
            capsys, "campaign", "run", "--name", "bad",
            "--workloads", "doom", "--store", store_root,
        )
        assert code == 1
        assert "unknown workloads: doom" in err
        assert "Traceback" not in err


class TestCampaignStatusResumeClean:
    def test_status_table_and_json(self, capsys, store_root):
        _run_small(capsys, store_root, name="st")
        code, out, _ = run_cli(capsys, "campaign", "status", "st",
                               "--store", store_root)
        assert code == 0
        assert "blackscholes/simsmall/native" in out
        assert "done" in out

        code, out, _ = run_cli(capsys, "campaign", "status", "st", "--json",
                               "--store", store_root)
        assert code == 0
        manifest = json.loads(out)
        assert manifest["schema"] == "repro-campaign/1"
        assert manifest["name"] == "st"
        assert manifest["totals"]["done"] == 1

    def test_status_of_unknown_campaign(self, capsys, store_root):
        code, _, err = run_cli(capsys, "campaign", "status", "ghost",
                               "--store", store_root)
        assert code != 0
        assert "ghost" in err
        assert "Traceback" not in err

    def test_resume_runs_only_new_jobs(self, capsys, tmp_path, store_root):
        _run_small(capsys, store_root, name="res")
        # The spec grows by one workload after the first run finished;
        # resume must execute only the new cell.
        state_spec = (ResultStore(store_root).campaign_dir("res")
                      / "spec.json")
        grown = CampaignSpec(name="res",
                             workloads=["blackscholes", "streamcluster"],
                             tools=["native"])
        grown.save(state_spec)
        code, out, _ = run_cli(capsys, "campaign", "resume", "res",
                               "-j", "2", "--store", store_root)
        assert code == 0
        assert "2 done (1 cached, 1 executed, 0 failed, 0 timeout)" in out

    def test_resume_unknown_campaign(self, capsys, store_root):
        code, _, err = run_cli(capsys, "campaign", "resume", "ghost",
                               "--store", store_root)
        assert code == 1
        assert "no campaign named" in err

    def test_clean_one_campaign_and_all(self, capsys, store_root):
        _run_small(capsys, store_root, name="c1")
        store = ResultStore(store_root)
        assert len(store.keys()) == 1

        code, out, _ = run_cli(capsys, "campaign", "clean", "c1",
                               "--objects", "--store", store_root)
        assert code == 0
        assert store.keys() == []
        assert not store.campaign_dir("c1").exists()

        _run_small(capsys, store_root, name="c2")
        code, _, _ = run_cli(capsys, "campaign", "clean", "--all",
                             "--store", store_root)
        assert code == 0
        assert not store.root.exists()

    def test_clean_unknown_campaign(self, capsys, store_root):
        code, _, err = run_cli(capsys, "campaign", "clean", "ghost",
                               "--store", store_root)
        assert code == 2
        assert "ghost" in err


class TestListJson:
    def test_machine_readable_registry(self, capsys):
        code, out, _ = run_cli(capsys, "list", "--json")
        assert code == 0
        payload = json.loads(out)
        names = [w["name"] for w in payload["workloads"]]
        assert names == list(ALL_NAMES)
        assert {"name", "suite", "description", "sizes"} <= \
            set(payload["workloads"][0])
        assert "simsmall" in payload["sizes"]
        assert "sigil+callgrind" in payload["tools"]


class TestOneLineErrors:
    def test_crashing_workload_profile(self, capsys, monkeypatch):
        workload = get_workload("blackscholes", "simsmall")

        def explode(self, rt):
            raise RuntimeError("synthetic workload crash")

        monkeypatch.setattr(type(workload), "main", explode)
        code, _, err = run_cli(capsys, "profile", "blackscholes")
        assert code == 1
        assert "synthetic workload crash" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_run_missing_profile_file(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "report",
                               str(tmp_path / "missing.profile"))
        assert code == 1
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1


class TestCampaignVerify:
    def test_clean_store_exits_zero(self, capsys, store_root):
        _run_small(capsys, store_root, name="v")
        code, out, _ = run_cli(capsys, "campaign", "verify",
                               "--store", store_root)
        assert code == 0
        assert "1 entries checked, all ok" in out

    def test_corruption_is_nonzero_and_named(self, capsys, store_root):
        _run_small(capsys, store_root, name="v")
        store = ResultStore(store_root)
        (key,) = store.keys()
        (store.object_dir(key) / "meta.json").write_text("{broken")
        code, out, err = run_cli(capsys, "campaign", "verify",
                                 "--store", store_root)
        assert code == 1
        assert "1 CORRUPT" in out
        assert key[:12] in err
        assert "Traceback" not in err

    def test_empty_store_is_clean(self, capsys, store_root):
        code, out, _ = run_cli(capsys, "campaign", "verify",
                               "--store", store_root)
        assert code == 0
        assert "0 entries checked, all ok" in out


class TestCampaignDistCLI:
    """`--local-workers` routes the same flags through run_distributed."""

    @pytest.fixture(autouse=True)
    def _sleep_runner(self, monkeypatch):
        import os
        from pathlib import Path
        repo_root = Path(__file__).resolve().parents[2]
        monkeypatch.setenv("REPRO_DIST_SLEEP_S", "0.01")
        monkeypatch.syspath_prepend(str(repo_root))
        extra = os.environ.get("PYTHONPATH", "")
        if str(repo_root) not in extra.split(os.pathsep):
            monkeypatch.setenv("PYTHONPATH", os.pathsep.join(
                p for p in (str(repo_root), extra) if p))

    def _run_dist(self, capsys, store_root, name="dcli"):
        return run_cli(
            capsys, "campaign", "run", "--name", name,
            "--workloads", "vips,dedup", "--sizes", "simsmall",
            "--tools", "dist-sleep", "--runner", "benchmarks.dist_runner",
            "--local-workers", "1", "--store", store_root,
        )

    def test_cold_dist_run_then_status_and_verify(self, capsys, store_root):
        code, out, _ = self._run_dist(capsys, store_root)
        assert code == 0
        assert "2 done (0 cached, 2 executed, 0 failed, 0 timeout)" in out
        assert "1 workers" in out

        # status revalidates the spec via the persisted runner module and
        # renders the per-worker table
        code, out, _ = run_cli(capsys, "campaign", "status", "dcli",
                               "--store", store_root)
        assert code == 0
        assert "workers (1)" in out and "w0" in out

        code, out, _ = run_cli(capsys, "campaign", "verify",
                               "--store", store_root)
        assert code == 0 and "all ok" in out

    def test_warm_dist_run_is_cached(self, capsys, store_root):
        self._run_dist(capsys, store_root)
        code, out, _ = self._run_dist(capsys, store_root)
        assert code == 0
        assert "2 done (2 cached, 0 executed, 0 failed, 0 timeout)" in out
