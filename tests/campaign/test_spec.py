"""Campaign spec expansion and content-addressed job keys."""

from __future__ import annotations

import pytest

import repro
from repro.campaign import CampaignSpec, Job, canonical_config


class TestJobKeys:
    def test_key_is_stable(self):
        a = Job(workload="vips", size="simsmall", tool="sigil")
        b = Job(workload="vips", size="simsmall", tool="sigil")
        assert a.key == b.key
        assert len(a.key) == 64 and int(a.key, 16) >= 0

    def test_key_varies_with_every_axis(self):
        base = Job(workload="vips", size="simsmall", tool="sigil")
        variants = [
            Job(workload="dedup", size="simsmall", tool="sigil"),
            Job(workload="vips", size="simmedium", tool="sigil"),
            Job(workload="vips", size="simsmall", tool="native"),
            Job(workload="vips", size="simsmall", tool="sigil",
                config={"reuse_mode": True}),
        ]
        keys = {base.key} | {v.key for v in variants}
        assert len(keys) == 5

    def test_default_config_spellings_hash_identically(self):
        explicit = Job(workload="vips", config={"reuse_mode": False,
                                                "line_size": 1})
        implicit = Job(workload="vips")
        assert explicit.key == implicit.key

    def test_key_includes_package_version(self, monkeypatch):
        before = Job(workload="vips").key
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert Job(workload="vips").key != before

    def test_label(self):
        job = Job(workload="vips", size="simmedium", tool="native")
        assert job.label == "vips/simmedium/native"

    def test_dict_round_trip(self):
        job = Job(workload="dedup", size="simmedium", tool="sigil",
                  config={"event_mode": True})
        clone = Job.from_dict(job.to_dict())
        assert clone == job and clone.key == job.key

    def test_bad_config_field_rejected(self):
        with pytest.raises(TypeError):
            canonical_config({"not_a_field": 1})


class TestCampaignSpec:
    def test_expansion_is_full_cross_product(self):
        spec = CampaignSpec(
            name="sweep",
            workloads=["vips", "dedup"],
            sizes=["simsmall", "simmedium"],
            tools=["sigil", "native"],
            configs=[{}, {"reuse_mode": True}],
        )
        jobs = spec.jobs()
        assert len(jobs) == len(spec) == 16
        assert len({j.key for j in jobs}) == 16

    def test_expansion_order_is_deterministic(self):
        spec = CampaignSpec(name="s", workloads=["vips", "dedup"])
        assert [j.key for j in spec.jobs()] == [j.key for j in spec.jobs()]

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workloads: doom"):
            CampaignSpec(name="s", workloads=["doom"])

    def test_unknown_tool_rejected(self):
        with pytest.raises(ValueError, match="unknown tool stacks"):
            CampaignSpec(name="s", workloads=["vips"], tools=["gdb"])

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(name="s", workloads=["vips"], sizes=["huge"])

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="invalid campaign name"):
            CampaignSpec(name="a/b", workloads=["vips"])

    def test_json_round_trip(self, tmp_path):
        spec = CampaignSpec(
            name="rt", workloads=["vips"], sizes=["simmedium"],
            tools=["native"], configs=[{"line_size": 64}],
        )
        path = spec.save(tmp_path / "spec.json")
        loaded = CampaignSpec.load(path)
        assert loaded.to_dict() == spec.to_dict()
        assert [j.key for j in loaded.jobs()] == [j.key for j in spec.jobs()]

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign spec keys"):
            CampaignSpec.from_dict({"name": "x", "workloads": ["vips"],
                                    "colour": "red"})
