"""Journal replay semantics and the lock-guarded JSONL append path."""

from __future__ import annotations

import multiprocessing
import threading

from repro.campaign import CampaignSpec, CampaignState, Job, fold_events
from repro.campaign.identity import (
    WORKER_ID_ENV,
    hostname,
    identity_suffix,
    worker_id,
)
from repro.telemetry import append_jsonl, read_jsonl


class TestJournalReplay:
    def test_lifecycle_last_event_wins(self, tmp_path):
        state = CampaignState(tmp_path / "c")
        job = Job(workload="vips")
        state.append("planned", job)
        state.append("started", job, attempt=1)
        state.append("failed", job, attempt=1, error="boom")
        state.append("started", job, attempt=2)
        state.append("done", job, attempt=2, seconds=1.5)

        records = state.replay()
        rec = records[job.key]
        assert rec.state == "done"
        assert rec.attempts == 2
        assert rec.seconds == 1.5
        assert rec.is_done
        assert state.completed_keys() == {job.key}

    def test_interrupted_campaign_reports_incomplete_jobs(self, tmp_path):
        state = CampaignState(tmp_path / "c")
        done_job = Job(workload="vips")
        dead_job = Job(workload="dedup")
        state.append("planned", done_job)
        state.append("planned", dead_job)
        state.append("done", done_job, cached=False, seconds=1.0)
        state.append("started", dead_job, attempt=1)
        state.append("interrupted", pending=1)  # no key: campaign marker

        records = state.replay()
        assert records[done_job.key].is_done
        assert records[dead_job.key].state == "running"
        assert state.completed_keys() == {done_job.key}

    def test_replan_does_not_unfinish_done_jobs(self, tmp_path):
        state = CampaignState(tmp_path / "c")
        job = Job(workload="vips")
        state.append("planned", job)
        state.append("done", job, cached=True)
        state.append("planned", job)  # a resume re-plans everything
        assert state.replay()[job.key].is_done

    def test_spec_round_trip(self, tmp_path):
        state = CampaignState(tmp_path / "c")
        spec = CampaignSpec(name="c", workloads=["vips"])
        state.save_spec(spec)
        assert state.load_spec().to_dict() == spec.to_dict()
        assert state.exists()
        assert state.remove()
        assert not state.exists()

    def test_empty_journal(self, tmp_path):
        state = CampaignState(tmp_path / "nothing")
        assert state.replay() == {}
        assert state.completed_keys() == frozenset()


class TestIdentityStamping:
    def test_append_stamps_writer_identity(self, tmp_path, monkeypatch):
        monkeypatch.setenv(WORKER_ID_ENV, "w7")
        state = CampaignState(tmp_path / "c")
        state.append("planned", Job(workload="vips"))
        (record,) = state.events()
        assert record["host"] == hostname()
        assert record["worker"] == "w7"
        assert identity_suffix() == f"[{hostname()}/w7]"

    def test_explicit_identity_detail_wins(self, tmp_path, monkeypatch):
        """The coordinator records *which worker* finished, not itself."""
        monkeypatch.delenv(WORKER_ID_ENV, raising=False)
        assert worker_id() == "local"
        state = CampaignState(tmp_path / "c")
        state.append("done", Job(workload="vips"), worker="w3", host="far")
        (record,) = state.events()
        assert record["worker"] == "w3" and record["host"] == "far"

    def test_pre_identity_journals_keep_parsing(self, tmp_path):
        """Records written before host/worker existed fold unchanged."""
        state = CampaignState(tmp_path / "c")
        job = Job(workload="vips")
        append_jsonl(state.journal_path,
                     {"event": "planned", "t": 1.0,
                      "key": job.key, "label": job.label})
        append_jsonl(state.journal_path,
                     {"event": "done", "t": 2.0, "seconds": 0.5,
                      "key": job.key, "label": job.label})
        rec = state.replay()[job.key]
        assert rec.is_done and rec.seconds == 0.5
        assert rec.host == "" and rec.worker == ""


class TestMultiJournalReplay:
    """Distributed campaigns fold N journals; none may un-finish work."""

    def _worker_record(self, state, worker, event, job, t, **detail):
        record = {"event": event, "t": t, "key": job.key,
                  "label": job.label, "host": "hostB", "worker": worker}
        record.update(detail)
        state.workers_dir.mkdir(parents=True, exist_ok=True)
        append_jsonl(state.worker_journal_path(worker), record)

    def test_worker_journal_completions_count(self, tmp_path):
        """A job only a worker's journal finished is complete on resume."""
        state = CampaignState(tmp_path / "c")
        job = Job(workload="vips")
        state.append("planned", job)
        self._worker_record(state, "w0", "done", job, t=2.0, seconds=1.0)
        assert state.replay()[job.key].state == "planned"  # coord view
        merged = state.replay_all()[job.key]               # fleet view
        assert merged.is_done and merged.worker == "w0"
        assert state.completed_keys() == {job.key}

    def test_clock_skew_cannot_unfinish_done(self, tmp_path):
        """A worker `started` stamped after the `done` must not downgrade."""
        state = CampaignState(tmp_path / "c")
        job = Job(workload="vips")
        state.append("planned", job)
        state.append("done", job, seconds=1.0, worker="w0", host="hostB")
        self._worker_record(state, "w0", "started", job, t=9e9, attempt=1)
        assert state.replay_all()[job.key].is_done

    def test_stolen_refolds_to_planned_unless_done(self, tmp_path):
        job, done_job = Job(workload="vips"), Job(workload="dedup")
        events = [
            {"event": "started", "t": 1.0, "key": job.key, "attempt": 1},
            {"event": "stolen", "t": 2.0, "key": job.key, "worker": "w0"},
            {"event": "started", "t": 1.0, "key": done_job.key, "attempt": 1},
            {"event": "done", "t": 2.0, "key": done_job.key},
            {"event": "stolen", "t": 3.0, "key": done_job.key},
        ]
        records = fold_events(events)
        assert records[job.key].state == "planned"   # back in flight
        assert records[done_job.key].is_done         # theft after done: no-op

    def test_worker_stats_last_record_wins(self, tmp_path):
        state = CampaignState(tmp_path / "c")
        state.append("worker-stats", None, worker="w0", host="a", jobs=1)
        state.append("worker-stats", None, worker="w0", host="a", jobs=5)
        state.append("worker-stats", None, worker="w1", host="b", jobs=2)
        stats = state.worker_stats()
        assert stats["w0"]["jobs"] == 5
        assert stats["w1"]["host"] == "b"
        assert set(stats) == {"w0", "w1"}


def _hammer(path, writer_id, n):
    for i in range(n):
        append_jsonl(path, {"writer": writer_id, "i": i,
                            "pad": "x" * 200})


class TestLockedAppend:
    def test_concurrent_process_appends_never_tear_lines(self, tmp_path):
        """Parallel campaign workers share manifests.jsonl; whole lines only."""
        path = tmp_path / "log.jsonl"
        procs = [
            multiprocessing.Process(target=_hammer, args=(path, w, 50))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        records = read_jsonl(path)
        assert len(records) == 200
        per_writer = {w: sorted(r["i"] for r in records if r["writer"] == w)
                      for w in range(4)}
        assert all(seq == list(range(50)) for seq in per_writer.values())

    def test_concurrent_thread_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        threads = [
            threading.Thread(target=_hammer, args=(path, w, 50))
            for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(read_jsonl(path)) == 400

    def test_read_missing_file(self, tmp_path):
        assert read_jsonl(tmp_path / "absent.jsonl") == []

    def test_corrupt_line_is_loud(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_jsonl(path, {"ok": 1})
        with path.open("a") as fh:
            fh.write('{"torn": ')
        try:
            read_jsonl(path)
        except ValueError as exc:
            assert "corrupt JSONL line" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("corrupt line went unnoticed")
