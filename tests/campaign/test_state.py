"""Journal replay semantics and the lock-guarded JSONL append path."""

from __future__ import annotations

import multiprocessing
import threading

from repro.campaign import CampaignSpec, CampaignState, Job
from repro.telemetry import append_jsonl, read_jsonl


class TestJournalReplay:
    def test_lifecycle_last_event_wins(self, tmp_path):
        state = CampaignState(tmp_path / "c")
        job = Job(workload="vips")
        state.append("planned", job)
        state.append("started", job, attempt=1)
        state.append("failed", job, attempt=1, error="boom")
        state.append("started", job, attempt=2)
        state.append("done", job, attempt=2, seconds=1.5)

        records = state.replay()
        rec = records[job.key]
        assert rec.state == "done"
        assert rec.attempts == 2
        assert rec.seconds == 1.5
        assert rec.is_done
        assert state.completed_keys() == {job.key}

    def test_interrupted_campaign_reports_incomplete_jobs(self, tmp_path):
        state = CampaignState(tmp_path / "c")
        done_job = Job(workload="vips")
        dead_job = Job(workload="dedup")
        state.append("planned", done_job)
        state.append("planned", dead_job)
        state.append("done", done_job, cached=False, seconds=1.0)
        state.append("started", dead_job, attempt=1)
        state.append("interrupted", pending=1)  # no key: campaign marker

        records = state.replay()
        assert records[done_job.key].is_done
        assert records[dead_job.key].state == "running"
        assert state.completed_keys() == {done_job.key}

    def test_replan_does_not_unfinish_done_jobs(self, tmp_path):
        state = CampaignState(tmp_path / "c")
        job = Job(workload="vips")
        state.append("planned", job)
        state.append("done", job, cached=True)
        state.append("planned", job)  # a resume re-plans everything
        assert state.replay()[job.key].is_done

    def test_spec_round_trip(self, tmp_path):
        state = CampaignState(tmp_path / "c")
        spec = CampaignSpec(name="c", workloads=["vips"])
        state.save_spec(spec)
        assert state.load_spec().to_dict() == spec.to_dict()
        assert state.exists()
        assert state.remove()
        assert not state.exists()

    def test_empty_journal(self, tmp_path):
        state = CampaignState(tmp_path / "nothing")
        assert state.replay() == {}
        assert state.completed_keys() == frozenset()


def _hammer(path, writer_id, n):
    for i in range(n):
        append_jsonl(path, {"writer": writer_id, "i": i,
                            "pad": "x" * 200})


class TestLockedAppend:
    def test_concurrent_process_appends_never_tear_lines(self, tmp_path):
        """Parallel campaign workers share manifests.jsonl; whole lines only."""
        path = tmp_path / "log.jsonl"
        procs = [
            multiprocessing.Process(target=_hammer, args=(path, w, 50))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        records = read_jsonl(path)
        assert len(records) == 200
        per_writer = {w: sorted(r["i"] for r in records if r["writer"] == w)
                      for w in range(4)}
        assert all(seq == list(range(50)) for seq in per_writer.values())

    def test_concurrent_thread_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        threads = [
            threading.Thread(target=_hammer, args=(path, w, 50))
            for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(read_jsonl(path)) == 400

    def test_read_missing_file(self, tmp_path):
        assert read_jsonl(tmp_path / "absent.jsonl") == []

    def test_corrupt_line_is_loud(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_jsonl(path, {"ok": 1})
        with path.open("a") as fh:
            fh.write('{"torn": ')
        try:
            read_jsonl(path)
        except ValueError as exc:
            assert "corrupt JSONL line" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("corrupt line went unnoticed")
