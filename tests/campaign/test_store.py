"""Result store: atomic publication, round-trips, byte-identical hits."""

from __future__ import annotations

import multiprocessing

from repro.campaign import Job, ResultStore
from repro.core import SigilConfig
from repro.harness import profile_workload
from repro.io.profilefile import dumps_profile
from repro.telemetry import Telemetry


def _full(name="blackscholes", size="simsmall"):
    job = Job(workload=name, size=size, tool="sigil+callgrind",
              config={"reuse_mode": True, "event_mode": True})
    run = profile_workload(
        name, size, config=SigilConfig(reuse_mode=True, event_mode=True),
        telemetry=Telemetry(),
    )
    return job, run


class TestResultStore:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        job, run = _full()
        assert not store.has(job.key)
        assert store.get(job.key) is None
        store.put_run(job, run)
        assert store.has(job.key)
        assert store.keys() == [job.key]
        assert store.size_bytes() > 0

    def test_round_trip_preserves_analyses(self, tmp_path):
        store = ResultStore(tmp_path)
        job, run = _full()
        store.put_run(job, run)
        back = store.get(job.key).profiled_run()

        assert back.name == run.name
        assert back.size == run.size
        assert back.sigil.total_time == run.sigil.total_time
        assert len(back.sigil.contexts()) == len(run.sigil.contexts())
        # Communication totals survive the round trip.
        orig = {(w, r): (e.unique_bytes, e.nonunique_bytes)
                for (w, r), e in run.sigil.comm.items()}
        loaded = {(w, r): (e.unique_bytes, e.nonunique_bytes)
                  for (w, r), e in back.sigil.comm.items()}
        assert orig == loaded
        # The event log rides along for critical-path studies.
        assert back.sigil.events is not None
        assert back.sigil.events.n_segments == run.sigil.events.n_segments
        # The callgrind half is present for partitioning joins.
        assert back.callgrind is not None
        # Phase seconds come back from the meta record.
        assert back.execute_seconds == run.execute_seconds

    def test_cache_hits_are_byte_identical(self, tmp_path):
        """Two independent computations of the same key serialise equal."""
        store_a = ResultStore(tmp_path / "a")
        store_b = ResultStore(tmp_path / "b")
        job1, run1 = _full()
        job2, run2 = _full()
        assert job1.key == job2.key
        a = store_a.put_run(job1, run1)
        b = store_b.put_run(job2, run2)
        assert a.profile_path().read_bytes() == b.profile_path().read_bytes()
        assert a.meta["profile_sha256"] == b.meta["profile_sha256"]
        # And reserialising the loaded profile reproduces the same bytes.
        assert dumps_profile(a.load_profile()).encode() == \
            a.profile_path().read_bytes()

    def test_verify_detects_tampering(self, tmp_path):
        store = ResultStore(tmp_path)
        job, run = _full()
        stored = store.put_run(job, run)
        assert stored.verify()
        stored.profile_path().write_text("# sigil-profile 1\ntime 0\n")
        assert not store.get(job.key).verify()

    def test_put_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        job, run = _full()
        first = store.put_run(job, run)
        again = store.put_run(job, run)
        assert first.meta["created_unix"] == again.meta["created_unix"]
        assert len(store.keys()) == 1

    def test_no_partial_entries_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        job, run = _full()
        store.put_run(job, run)
        tmp_dir = store.root / "tmp"
        assert not tmp_dir.exists() or not any(tmp_dir.iterdir())

    def test_native_run_stores_meta_only(self, tmp_path):
        store = ResultStore(tmp_path)
        job = Job(workload="blackscholes", tool="native")
        run = profile_workload("blackscholes", "simsmall",
                               with_sigil=False, with_callgrind=False)
        stored = store.put_run(job, run)
        assert stored.profile_path() is None
        back = stored.profiled_run()
        assert back.sigil is None and back.callgrind is None
        assert back.execute_seconds == run.execute_seconds
        # No event log, no cached curves.
        assert stored.curves_path() is None
        assert stored.load_curves() is None

    def test_event_mode_run_caches_windowed_curves(self, tmp_path):
        """put_run stages the time-resolved curves next to events.sigil so
        watchers (and `repro serve`) never re-stream the log per request."""
        from repro.analysis.windowed import WINDOWED_SCHEMA, windowed_curves

        store = ResultStore(tmp_path)
        job, run = _full()
        stored = store.put_run(job, run)
        path = stored.curves_path()
        assert path is not None and path.name == "windowed.json"
        cached = stored.load_curves()
        fresh = windowed_curves(run.sigil.events)
        assert cached.to_dict() == fresh.to_dict()
        assert cached.to_dict()["schema"] == WINDOWED_SCHEMA
        assert cached.total_segments == run.sigil.events.n_segments

    def test_drop_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        job, run = _full()
        store.put_run(job, run)
        assert store.drop(job.key)
        assert not store.drop(job.key)
        store.put_run(job, run)
        assert store.clear() == 1
        assert store.keys() == []


def _native(workload="blackscholes"):
    """A meta-only run: the cheapest publishable entry."""
    job = Job(workload=workload, tool="native")
    run = profile_workload(workload, "simsmall",
                           with_sigil=False, with_callgrind=False)
    return job, run


class TestIngest:
    """The coordinator's merge-back path: staged, verified, atomic."""

    def test_merges_missing_entries(self, tmp_path):
        src = ResultStore(tmp_path / "worker")
        dst = ResultStore(tmp_path / "shared")
        job1, run1 = _full()
        job2, run2 = _native()
        src.put_run(job1, run1)
        src.put_run(job2, run2)

        report = dst.ingest(src)
        assert report.examined == 2
        assert report.merged == 2 and report.skipped == 0
        assert report.bytes_merged > 0
        assert not report.corrupt
        assert sorted(dst.keys()) == sorted(src.keys())
        verify = dst.verify_all()
        assert verify.checked == 2 and not verify.corrupt
        # merged entries round-trip like local ones
        back = dst.get(job1.key).profiled_run()
        assert back.sigil.total_time == run1.sigil.total_time

    def test_present_entries_are_skipped(self, tmp_path):
        src = ResultStore(tmp_path / "worker")
        dst = ResultStore(tmp_path / "shared")
        job, run = _native()
        src.put_run(job, run)
        assert dst.ingest(src).merged == 1
        again = dst.ingest(src)
        assert again.merged == 0 and again.skipped == 1
        assert len(dst.keys()) == 1

    def test_key_filter_limits_the_merge(self, tmp_path):
        src = ResultStore(tmp_path / "worker")
        dst = ResultStore(tmp_path / "shared")
        job1, run1 = _native()
        job2, run2 = _native("streamcluster")
        src.put_run(job1, run1)
        src.put_run(job2, run2)
        report = dst.ingest(src, [job1.key])
        assert report.merged == 1
        assert dst.keys() == [job1.key]

    def test_corrupt_source_entry_is_refused(self, tmp_path):
        """A tampered worker artifact must never reach the shared store."""
        src = ResultStore(tmp_path / "worker")
        dst = ResultStore(tmp_path / "shared")
        bad_job, bad_run = _full()
        good_job, good_run = _native()
        src.put_run(bad_job, bad_run)
        src.put_run(good_job, good_run)
        src.get(bad_job.key).profile_path().write_text(
            "# sigil-profile 1\ntime 0\n")

        report = dst.ingest(src)
        assert report.corrupt == [bad_job.key]
        assert report.merged == 1
        assert not dst.has(bad_job.key) and dst.has(good_job.key)
        # nothing half-copied survives the refusal
        tmp_dir = dst.root / "tmp"
        assert not tmp_dir.exists() or not any(tmp_dir.iterdir())

    def test_unpublished_source_entry_is_ignored(self, tmp_path):
        src = ResultStore(tmp_path / "worker")
        dst = ResultStore(tmp_path / "shared")
        job, _ = _native()
        # a directory without meta.json: the worker is mid-publish
        src.object_dir(job.key).mkdir(parents=True)
        report = dst.ingest(src, [job.key])
        assert report.merged == 0 and not report.corrupt
        assert not dst.has(job.key)


def _race_publish(root, barrier):
    job, run = _full()
    store = ResultStore(root)
    barrier.wait()  # maximise rename-collision odds
    store.put_run(job, run)


class TestConcurrentWriters:
    def test_racing_publishers_leave_one_clean_winner(self, tmp_path):
        """Two processes publish the same key; exactly one coherent entry."""
        root = tmp_path / "store"
        barrier = multiprocessing.Barrier(2)
        procs = [
            multiprocessing.Process(target=_race_publish,
                                    args=(root, barrier))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)

        store = ResultStore(root)
        job, run = _full()
        assert store.keys() == [job.key]
        winner = store.get(job.key)
        assert winner.verify()
        # the winner is byte-identical to an independent computation
        assert winner.profile_path().read_bytes() == \
            dumps_profile(run.sigil).encode()
        tmp_dir = store.root / "tmp"
        assert not tmp_dir.exists() or not any(tmp_dir.iterdir())
