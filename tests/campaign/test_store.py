"""Result store: atomic publication, round-trips, byte-identical hits."""

from __future__ import annotations

from repro.campaign import Job, ResultStore
from repro.core import SigilConfig
from repro.harness import profile_workload
from repro.io.profilefile import dumps_profile
from repro.telemetry import Telemetry


def _full(name="blackscholes", size="simsmall"):
    job = Job(workload=name, size=size, tool="sigil+callgrind",
              config={"reuse_mode": True, "event_mode": True})
    run = profile_workload(
        name, size, config=SigilConfig(reuse_mode=True, event_mode=True),
        telemetry=Telemetry(),
    )
    return job, run


class TestResultStore:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        job, run = _full()
        assert not store.has(job.key)
        assert store.get(job.key) is None
        store.put_run(job, run)
        assert store.has(job.key)
        assert store.keys() == [job.key]
        assert store.size_bytes() > 0

    def test_round_trip_preserves_analyses(self, tmp_path):
        store = ResultStore(tmp_path)
        job, run = _full()
        store.put_run(job, run)
        back = store.get(job.key).profiled_run()

        assert back.name == run.name
        assert back.size == run.size
        assert back.sigil.total_time == run.sigil.total_time
        assert len(back.sigil.contexts()) == len(run.sigil.contexts())
        # Communication totals survive the round trip.
        orig = {(w, r): (e.unique_bytes, e.nonunique_bytes)
                for (w, r), e in run.sigil.comm.items()}
        loaded = {(w, r): (e.unique_bytes, e.nonunique_bytes)
                  for (w, r), e in back.sigil.comm.items()}
        assert orig == loaded
        # The event log rides along for critical-path studies.
        assert back.sigil.events is not None
        assert back.sigil.events.n_segments == run.sigil.events.n_segments
        # The callgrind half is present for partitioning joins.
        assert back.callgrind is not None
        # Phase seconds come back from the meta record.
        assert back.execute_seconds == run.execute_seconds

    def test_cache_hits_are_byte_identical(self, tmp_path):
        """Two independent computations of the same key serialise equal."""
        store_a = ResultStore(tmp_path / "a")
        store_b = ResultStore(tmp_path / "b")
        job1, run1 = _full()
        job2, run2 = _full()
        assert job1.key == job2.key
        a = store_a.put_run(job1, run1)
        b = store_b.put_run(job2, run2)
        assert a.profile_path().read_bytes() == b.profile_path().read_bytes()
        assert a.meta["profile_sha256"] == b.meta["profile_sha256"]
        # And reserialising the loaded profile reproduces the same bytes.
        assert dumps_profile(a.load_profile()).encode() == \
            a.profile_path().read_bytes()

    def test_verify_detects_tampering(self, tmp_path):
        store = ResultStore(tmp_path)
        job, run = _full()
        stored = store.put_run(job, run)
        assert stored.verify()
        stored.profile_path().write_text("# sigil-profile 1\ntime 0\n")
        assert not store.get(job.key).verify()

    def test_put_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        job, run = _full()
        first = store.put_run(job, run)
        again = store.put_run(job, run)
        assert first.meta["created_unix"] == again.meta["created_unix"]
        assert len(store.keys()) == 1

    def test_no_partial_entries_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        job, run = _full()
        store.put_run(job, run)
        tmp_dir = store.root / "tmp"
        assert not tmp_dir.exists() or not any(tmp_dir.iterdir())

    def test_native_run_stores_meta_only(self, tmp_path):
        store = ResultStore(tmp_path)
        job = Job(workload="blackscholes", tool="native")
        run = profile_workload("blackscholes", "simsmall",
                               with_sigil=False, with_callgrind=False)
        stored = store.put_run(job, run)
        assert stored.profile_path() is None
        back = stored.profiled_run()
        assert back.sigil is None and back.callgrind is None
        assert back.execute_seconds == run.execute_seconds
        # No event log, no cached curves.
        assert stored.curves_path() is None
        assert stored.load_curves() is None

    def test_event_mode_run_caches_windowed_curves(self, tmp_path):
        """put_run stages the time-resolved curves next to events.sigil so
        watchers (and `repro serve`) never re-stream the log per request."""
        from repro.analysis.windowed import WINDOWED_SCHEMA, windowed_curves

        store = ResultStore(tmp_path)
        job, run = _full()
        stored = store.put_run(job, run)
        path = stored.curves_path()
        assert path is not None and path.name == "windowed.json"
        cached = stored.load_curves()
        fresh = windowed_curves(run.sigil.events)
        assert cached.to_dict() == fresh.to_dict()
        assert cached.to_dict()["schema"] == WINDOWED_SCHEMA
        assert cached.total_segments == run.sigil.events.n_segments

    def test_drop_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        job, run = _full()
        store.put_run(job, run)
        assert store.drop(job.key)
        assert not store.drop(job.key)
        store.put_run(job, run)
        assert store.clear() == 1
        assert store.keys() == []
