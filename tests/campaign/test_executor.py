"""Executor edge cases: parallelism, caching, timeouts, retries, crashes.

Custom runners are registered in the parent and inherited by workers via
the fork start method, so these tests can simulate slow, flaky and
crashing jobs without any real profiling cost.  Cross-process attempt
counting goes through the lock-guarded JSONL helper.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time

import pytest

from repro.campaign import (
    CampaignState,
    Job,
    ResultStore,
    register_runner,
    retry_delay,
    run_campaign,
)
from repro.campaign.executor import RUNNERS
from repro.campaign.identity import WORKER_ID_ENV, hostname
from repro.harness import ProfiledRun
from repro.telemetry import append_jsonl, read_jsonl
from repro.workloads import get_workload

_FORK = "fork" in multiprocessing.get_all_start_methods()
pytestmark = pytest.mark.skipif(
    not _FORK, reason="runner registration reaches workers via fork"
)


@pytest.fixture()
def runners():
    """Register throwaway runners; deregister them after the test."""
    added = []

    def _register(tool, fn):
        register_runner(tool, fn)
        added.append(tool)

    yield _register
    for tool in added:
        RUNNERS.pop(tool, None)


def _cheap_run(job):
    """A ProfiledRun that cost (almost) nothing: meta-only store entry."""
    return ProfiledRun(
        workload=get_workload(job.workload, job.size),
        sigil=None,
        callgrind=None,
        execute_seconds=0.001,
    )


def _jobs(tool, workloads=("vips", "dedup", "canneal", "ferret")):
    return [Job(workload=w, tool=tool) for w in workloads]


class TestExecution:
    def test_real_jobs_run_in_parallel_and_land_in_store(self, tmp_path):
        store = ResultStore(tmp_path)
        state = CampaignState(store.campaign_dir("t"))
        jobs = [Job(workload=w, tool="native")
                for w in ("blackscholes", "streamcluster")]
        result = run_campaign(jobs, store, state, workers=2)
        assert result.ok and result.executed == 2 and result.cached == 0
        assert all(store.has(j.key) for j in jobs)
        replayed = state.replay()
        assert all(replayed[j.key].is_done for j in jobs)

    def test_warm_rerun_recomputes_nothing(self, tmp_path, runners):
        counts = tmp_path / "attempts.jsonl"

        def counting(job, telemetry):
            append_jsonl(counts, {"label": job.label})
            return _cheap_run(job)

        runners("counted", counting)
        store = ResultStore(tmp_path / "store")
        jobs = _jobs("counted")

        cold = run_campaign(jobs, store, workers=2)
        assert cold.executed == 4 and cold.cached == 0
        assert len(read_jsonl(counts)) == 4

        warm = run_campaign(jobs, store, workers=2)
        assert warm.done == 4 and warm.cached == 4 and warm.executed == 0
        assert len(read_jsonl(counts)) == 4  # zero re-executions

    def test_parallel_beats_serial_wall_clock(self, tmp_path, runners):
        naptime = 0.3

        def sleepy(job, telemetry):
            time.sleep(naptime)
            return _cheap_run(job)

        runners("sleepy", sleepy)
        jobs = _jobs("sleepy")

        t0 = time.monotonic()
        serial = run_campaign(jobs, ResultStore(tmp_path / "s1"), workers=1)
        serial_wall = time.monotonic() - t0
        t0 = time.monotonic()
        parallel = run_campaign(jobs, ResultStore(tmp_path / "s4"), workers=4)
        parallel_wall = time.monotonic() - t0

        assert serial.ok and parallel.ok
        assert serial_wall >= 4 * naptime
        assert parallel_wall < serial_wall

    def test_duplicate_jobs_collapse(self, tmp_path):
        store = ResultStore(tmp_path)
        job = Job(workload="blackscholes", tool="native")
        result = run_campaign([job, job, job], store, workers=2)
        assert result.total == 1 and result.ok


class TestFailureModes:
    def test_timeout_kills_worker_and_records_timeout(self, tmp_path, runners):
        def stuck(job, telemetry):
            time.sleep(60)
            return _cheap_run(job)

        runners("stuck", stuck)
        store = ResultStore(tmp_path)
        state = CampaignState(store.campaign_dir("t"))
        job = Job(workload="vips", tool="stuck")

        t0 = time.monotonic()
        result = run_campaign([job], store, state, workers=1,
                              timeout=0.3, retries=0)
        wall = time.monotonic() - t0

        assert wall < 10  # the worker was killed, not waited out
        assert result.timed_out == 1 and result.done == 0
        assert not store.has(job.key)
        assert state.replay()[job.key].state == "timeout"

    def test_flaky_job_succeeds_on_retry_two(self, tmp_path, runners):
        counts = tmp_path / "attempts.jsonl"

        def flaky(job, telemetry):
            append_jsonl(counts, {"label": job.label})
            if len(read_jsonl(counts)) <= 2:
                raise RuntimeError("transient flake")
            return _cheap_run(job)

        runners("flaky", flaky)
        store = ResultStore(tmp_path / "store")
        state = CampaignState(store.campaign_dir("t"))
        job = Job(workload="vips", tool="flaky")

        result = run_campaign([job], store, state, workers=1,
                              retries=2, backoff=0.01)
        assert result.ok
        rec = result.records[job.key]
        assert rec.attempts == 3  # two flakes + the success
        assert len(read_jsonl(counts)) == 3
        assert store.has(job.key)

    def test_retries_are_bounded(self, tmp_path, runners):
        counts = tmp_path / "attempts.jsonl"

        def hopeless(job, telemetry):
            append_jsonl(counts, {"label": job.label})
            raise RuntimeError("always broken")

        runners("hopeless", hopeless)
        store = ResultStore(tmp_path / "store")
        job = Job(workload="vips", tool="hopeless")
        result = run_campaign([job], store, workers=1,
                              retries=2, backoff=0.01)
        assert result.failed == 1
        assert len(read_jsonl(counts)) == 3  # initial + 2 retries, then stop
        assert "always broken" in result.records[job.key].error

    def test_worker_crash_marks_one_job_not_the_campaign(
        self, tmp_path, runners
    ):
        def crashing(job, telemetry):
            if job.workload == "dedup":
                os._exit(21)  # simulated segfault/OOM: no Python unwinding
            return _cheap_run(job)

        runners("crashy", crashing)
        store = ResultStore(tmp_path)
        jobs = [Job(workload="vips", tool="crashy"),
                Job(workload="dedup", tool="crashy")]
        result = run_campaign(jobs, store, workers=2, retries=0)

        assert result.done == 1 and result.failed == 1
        assert store.has(jobs[0].key) and not store.has(jobs[1].key)
        assert "exited with code 21" in result.records[jobs[1].key].error

    def test_unknown_tool_fails_cleanly(self, tmp_path):
        store = ResultStore(tmp_path)
        job = Job(workload="vips", tool="no-such-tool")
        result = run_campaign([job], store, workers=1, retries=0)
        assert result.failed == 1
        assert "no runner registered" in result.records[job.key].error


class TestResume:
    def test_resume_skips_jobs_the_journal_completed(self, tmp_path, runners):
        counts = tmp_path / "attempts.jsonl"

        def counting(job, telemetry):
            append_jsonl(counts, {"label": job.label})
            return _cheap_run(job)

        runners("counted", counting)
        store = ResultStore(tmp_path / "store")
        state = CampaignState(store.campaign_dir("t"))
        jobs = _jobs("counted")

        # Simulated interrupt: the journal says two jobs finished before the
        # campaign died (their results never even reached the store).
        for job in jobs[:2]:
            state.append("planned", job)
            state.append("started", job, attempt=1)
            state.append("done", job, cached=False, seconds=0.1)

        result = run_campaign(jobs, store, state, workers=2,
                              skip_keys=state.completed_keys())
        assert result.done == 4
        assert result.cached == 2 and result.executed == 2
        ran = sorted(r["label"] for r in read_jsonl(counts))
        assert ran == sorted(j.label for j in jobs[2:])

    def test_dry_run_executes_nothing(self, tmp_path, runners):
        counts = tmp_path / "attempts.jsonl"

        def counting(job, telemetry):
            append_jsonl(counts, {"label": job.label})
            return _cheap_run(job)

        runners("counted", counting)
        store = ResultStore(tmp_path / "store")
        jobs = _jobs("counted")
        run_campaign(jobs[:1], store, workers=1)  # warm one cell
        result = run_campaign(jobs, store, dry_run=True)
        assert result.cached == 1
        assert sum(1 for r in result.records.values()
                   if r.state == "planned") == 3
        assert len(read_jsonl(counts)) == 1  # only the warm-up ran


class TestRetryJitter:
    """The backoff schedule: exponential base, bounded uniform jitter."""

    def test_delay_is_bounded_by_the_jitter_window(self):
        rng = random.Random(1234)
        for attempt in (1, 2, 3, 4):
            base = 0.5 * 2 ** (attempt - 1)
            for _ in range(200):
                delay = retry_delay(attempt, 0.5, jitter=0.5, rng=rng)
                assert base <= delay < base * 1.5

    def test_zero_jitter_is_exact_exponential(self):
        assert retry_delay(1, 0.5, jitter=0.0) == 0.5
        assert retry_delay(2, 0.5, jitter=0.0) == 1.0
        assert retry_delay(3, 0.5, jitter=0.0) == 2.0
        # attempt floors at 1, so a 0th attempt cannot shrink the base
        assert retry_delay(0, 0.5, jitter=0.0) == 0.5

    def test_seeded_rng_is_deterministic(self):
        a = [retry_delay(2, 0.25, jitter=0.5, rng=random.Random(7))
             for _ in range(3)]
        b = [retry_delay(2, 0.25, jitter=0.5, rng=random.Random(7))
             for _ in range(3)]
        assert a == b

    def test_jitter_actually_spreads_a_fleet(self):
        """Many concurrent retries must not collapse onto one instant."""
        rng = random.Random(99)
        delays = {round(retry_delay(1, 1.0, rng=rng), 6) for _ in range(50)}
        assert len(delays) > 40


class TestHeartbeatIdentity:
    def test_heartbeat_lines_carry_host_and_worker(
        self, tmp_path, runners, monkeypatch
    ):
        monkeypatch.setenv(WORKER_ID_ENV, "w5")

        def slow(job, telemetry):
            time.sleep(0.15)
            return _cheap_run(job)

        runners("slow-beat", slow)
        lines = []
        result = run_campaign(
            _jobs("slow-beat")[:2], ResultStore(tmp_path / "store"),
            workers=1, heartbeat_seconds=0.05, heartbeat=lines.append,
        )
        assert result.ok
        assert lines, "no heartbeat emitted"
        prefix = f"campaign[{hostname()}/w5]: "
        assert all(line.startswith(prefix) for line in lines)
        assert "running" in lines[0] and "pending" in lines[0]
