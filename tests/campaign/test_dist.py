"""The distributed coordinator end to end over local worker subprocesses.

Every test here runs real ``repro campaign worker`` processes through
:class:`LocalBackend` -- the protocol, the executor fork path, the merge,
and the journals are all live.  Jobs are sleep-bound (the bench
``dist-sleep`` tool) so wall time stays small and deterministic on one
core.
"""

from __future__ import annotations

import importlib
import json
import os
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, CampaignState, ResultStore
from repro.campaign.dist import LocalBackend, run_distributed
from repro.telemetry import Telemetry

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _dist_runner(monkeypatch):
    """Register dist-sleep here and in worker subprocesses, sleeping 10ms."""
    monkeypatch.setenv("REPRO_DIST_SLEEP_S", "0.01")
    monkeypatch.syspath_prepend(str(REPO_ROOT))
    extra = os.environ.get("PYTHONPATH", "")
    if str(REPO_ROOT) not in extra.split(os.pathsep):
        monkeypatch.setenv("PYTHONPATH", os.pathsep.join(
            p for p in (str(REPO_ROOT), extra) if p))
    return importlib.import_module("benchmarks.dist_runner")


def _jobs(n, name="dist-e2e"):
    return CampaignSpec.from_lists(
        name=name, workloads=["vips"], sizes=["simsmall"],
        tools=["dist-sleep"],
        configs=[{"batch_size": 1024 + i} for i in range(n)],
    ).jobs()


RUNNER = "benchmarks.dist_runner"


class TestColdAndWarm:
    def test_cold_run_executes_and_merges(self, tmp_path):
        jobs = _jobs(4)
        store = ResultStore(tmp_path / "store")
        result = run_distributed(
            jobs, store,
            backends=[LocalBackend(), LocalBackend()],
            heartbeat_seconds=0.2, runner=RUNNER,
        )
        assert result.ok, result.summary()
        assert result.done == 4 and result.cached == 0
        assert result.bytes_merged > 0
        # both workers reported in, with placement
        assert set(result.workers) == {"w0", "w1"}
        assert all(s["host"] for s in result.workers.values())
        assert sum(s["jobs"] for s in result.workers.values()) == 4
        verify = store.verify_all()
        assert verify.checked == 4 and not verify.corrupt
        assert "2 workers" in result.summary()

    def test_warm_run_is_pure_cache(self, tmp_path):
        jobs = _jobs(3)
        store = ResultStore(tmp_path / "store")
        cold = run_distributed(jobs, store, backends=[LocalBackend()],
                               heartbeat_seconds=0.2, runner=RUNNER)
        assert cold.ok and cold.executed == 3
        warm = run_distributed(jobs, store, backends=[LocalBackend()],
                               heartbeat_seconds=0.2, runner=RUNNER)
        assert warm.ok
        assert warm.cached == 3 and warm.executed == 0
        # nothing pending -> the fleet is never launched
        assert warm.workers == {}

    def test_duplicate_jobs_collapse(self, tmp_path):
        jobs = _jobs(2)
        result = run_distributed(
            list(jobs) + list(jobs), ResultStore(tmp_path / "store"),
            backends=[LocalBackend()],
            heartbeat_seconds=0.2, runner=RUNNER,
        )
        assert result.ok and result.total == 2


class TestStealing:
    def test_killed_worker_loses_no_jobs(self, tmp_path, monkeypatch):
        """Chaos-kill one of two workers mid-job: stolen, still complete."""
        monkeypatch.setenv("REPRO_DIST_SLEEP_S", "0.4")
        jobs = _jobs(4)
        store = ResultStore(tmp_path / "store")
        state = CampaignState(tmp_path / "campaign")
        result = run_distributed(
            jobs, store, state,
            backends=[LocalBackend(), LocalBackend()],
            heartbeat_seconds=0.2, runner=RUNNER,
            chaos_kill=("w0", 0.15),  # w0 dies inside its first sleep
        )
        assert result.ok, result.summary()
        assert result.done == 4
        assert result.steals >= 1
        assert result.workers["w0"]["steals"] >= 1
        verify = store.verify_all()
        assert verify.checked == 4 and not verify.corrupt
        # the theft is durable: the journal replays to all-done anyway
        stolen = [e for e in state.all_events() if e["event"] == "stolen"]
        assert stolen and stolen[0]["worker"] == "w0"
        assert len(state.completed_keys()) == 4


class TestSalvageAndResume:
    def test_unmerged_worker_store_is_salvaged(self, tmp_path, _dist_runner):
        """Results a dead coordinator never merged are ingested, not re-run."""
        jobs = _jobs(3, name="salvage")
        store = ResultStore(tmp_path / "store")
        state = CampaignState(tmp_path / "salvage")
        # A previous run's worker published one result into its mirror and
        # journaled it -- then the coordinator died before merging.
        mirror = ResultStore(store.root / "workers" / "salvage" / "w9"
                             / "store")
        done_job = jobs[0]
        mirror.put_run(done_job, _dist_runner.run_sleep_job(
            done_job, Telemetry()))
        state.append("planned", done_job)
        progress = []
        result = run_distributed(
            jobs, store, state,
            backends=[LocalBackend()],
            heartbeat_seconds=0.2, runner=RUNNER,
            progress=progress.append,
        )
        assert result.ok
        # the salvaged job was a cache hit, only the other two executed
        assert result.cached == 1 and result.executed == 2
        assert result.records[done_job.key].cached is True
        assert any(line.startswith("salvaged 1 results") for line in progress)
        verify = store.verify_all()
        assert verify.checked == 3 and not verify.corrupt

    def test_worker_journals_fold_into_resume_state(self, tmp_path):
        """completed_keys() sees work only a worker's journal recorded."""
        jobs = _jobs(2, name="resume")
        state = CampaignState(tmp_path / "resume")
        store = ResultStore(tmp_path / "store")
        result = run_distributed(
            jobs, store, state, backends=[LocalBackend()],
            heartbeat_seconds=0.2, runner=RUNNER,
        )
        assert result.ok
        assert state.completed_keys() == frozenset(j.key for j in jobs)
        # wipe the coordinator journal; the workers' copies still carry it
        state.journal_path.unlink()
        assert state.completed_keys() == frozenset(j.key for j in jobs)


class TestJournalIdentity:
    def test_records_carry_worker_and_host(self, tmp_path):
        jobs = _jobs(2, name="ident")
        state = CampaignState(tmp_path / "ident")
        result = run_distributed(
            jobs, ResultStore(tmp_path / "store"), state,
            backends=[LocalBackend()],
            heartbeat_seconds=0.2, runner=RUNNER,
        )
        assert result.ok
        done = [e for e in state.events() if e["event"] == "done"]
        assert done and all(e["worker"] == "w0" for e in done)
        assert all(e["host"] for e in done)
        # the worker-side journal stamps its own identity on every record
        worker_journal = state.worker_journal_path("w0")
        records = [json.loads(line) for line in
                   worker_journal.read_text().splitlines()]
        assert records
        assert all(r.get("worker") == "w0" for r in records)
        assert all(r.get("host") for r in records)
        # per-worker telemetry was journaled for `campaign status`
        stats = state.worker_stats()
        assert stats["w0"]["jobs"] == 2
