"""Worker backends: launch argv construction and the ssh transport.

The SSH end-to-end test drives the *real* :class:`SSHBackend` code path --
launch over a channel, journal cat-back, tar store sync -- through a local
shim that interprets ``ssh host cmd`` as ``sh -c cmd``.  No network, no
sshd, same code.
"""

from __future__ import annotations

import importlib
import os
import shlex
import stat
import sys
from pathlib import Path

from repro.campaign import CampaignSpec, ResultStore
from repro.campaign.dist import (
    LaunchSpec,
    SSHBackend,
    make_backends,
    run_distributed,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _spec(tmp_path: Path, **overrides) -> LaunchSpec:
    fields = dict(
        worker="w0",
        campaign="camp",
        worker_dir=tmp_path / "workers" / "w0",
        journal_path=tmp_path / "journals" / "w0.jsonl",
    )
    fields.update(overrides)
    return LaunchSpec(**fields)


class TestLaunchSpec:
    def test_worker_args_core(self, tmp_path):
        spec = _spec(tmp_path, slots=3, heartbeat_seconds=0.5)
        args = spec.worker_args("/s", "/j")
        assert args[:2] == ["campaign", "worker"]
        for flag, value in [("--id", "w0"), ("--store", "/s"),
                            ("--journal", "/j"), ("--slots", "3"),
                            ("--heartbeat-secs", "0.5")]:
            assert args[args.index(flag) + 1] == value
        assert "--timeout" not in args and "--runner" not in args

    def test_worker_args_optional_flags(self, tmp_path):
        spec = _spec(tmp_path, timeout=30.0, runner="benchmarks.dist_runner")
        args = spec.worker_args("/s", "/j")
        assert args[args.index("--timeout") + 1] == "30.0"
        assert args[args.index("--runner") + 1] == "benchmarks.dist_runner"


class TestSSHLaunchCommand:
    def test_command_shape(self, tmp_path):
        backend = SSHBackend("host1", remote_root="/tmp/rd")
        argv = backend.launch_command(_spec(tmp_path))
        assert argv[:4] == ["ssh", "-o", "BatchMode=yes", "host1"]
        remote_cmd = argv[-1]
        assert remote_cmd.startswith("mkdir -p /tmp/rd/camp/w0 && ")
        assert "exec python3 -u -m repro campaign worker" in remote_cmd
        # store and journal are rooted in the per-worker remote dir
        assert "--store /tmp/rd/camp/w0/store" in remote_cmd
        assert "--journal /tmp/rd/camp/w0/journal.jsonl" in remote_cmd

    def test_arguments_are_shell_quoted(self, tmp_path):
        backend = SSHBackend("host1", remote_root="/tmp/r d")
        spec = _spec(tmp_path, runner="pkg.mod")
        remote_cmd = backend.launch_command(spec)[-1]
        assert shlex.quote("/tmp/r d/camp/w0") in remote_cmd
        # the whole tail must survive a round trip through the remote shell
        parts = shlex.split(remote_cmd.split("&&", 1)[1])
        assert parts[:5] == ["exec", "python3", "-u", "-m", "repro"]
        assert parts[parts.index("--store") + 1] == "/tmp/r d/camp/w0/store"

    def test_custom_python_and_ssh_argv(self, tmp_path):
        backend = SSHBackend(
            "h", python="/opt/py/bin/python", ssh_argv=["my-ssh", "-J", "bx"]
        )
        argv = backend.launch_command(_spec(tmp_path))
        assert argv[:4] == ["my-ssh", "-J", "bx", "h"]
        assert "exec /opt/py/bin/python -u -m repro" in argv[-1]


class TestMakeBackends:
    def test_hosts_then_locals(self):
        backends = make_backends(hosts=["h1", "h2"], local_workers=2)
        assert [type(b).__name__ for b in backends] == [
            "SSHBackend", "SSHBackend", "LocalBackend", "LocalBackend"]
        assert [b.host for b in backends[:2]] == ["h1", "h2"]

    def test_ssh_argv_passthrough(self):
        backends = make_backends(hosts=["h"], ssh_argv=["shim"])
        assert backends[0].ssh_argv == ["shim"]

    def test_empty(self):
        assert make_backends() == []


def _write_ssh_shim(tmp_path: Path) -> Path:
    """A fake ``ssh``: swallow the host argument, run the command locally."""
    shim = tmp_path / "fake-ssh"
    shim.write_text("#!/bin/sh\n# $1 = host, $2 = remote command\n"
                    'shift\nexec sh -c "$1"\n')
    shim.chmod(shim.stat().st_mode | stat.S_IXUSR)
    return shim


class TestSSHEndToEnd:
    def test_fake_ssh_round_trip(self, tmp_path, monkeypatch):
        """Launch, execute, journal cat-back, and tar store sync over the shim."""
        monkeypatch.setenv("REPRO_DIST_SLEEP_S", "0.01")
        monkeypatch.syspath_prepend(str(REPO_ROOT))
        importlib.import_module("benchmarks.dist_runner")  # registers the tool
        # Workers must import repro and the runner module wherever the
        # shim's `sh -c` lands them.
        monkeypatch.setenv("PYTHONPATH", os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT)]))
        backend = SSHBackend(
            "nowhere.invalid",
            python=sys.executable,
            remote_root=str(tmp_path / "remote"),
            ssh_argv=[str(_write_ssh_shim(tmp_path))],
        )
        jobs = CampaignSpec.from_lists(
            name="ssh-e2e", workloads=["vips"], sizes=["simsmall"],
            tools=["dist-sleep"],
            configs=[{"batch_size": 1024 + i} for i in range(3)],
        ).jobs()
        store = ResultStore(tmp_path / "store")
        result = run_distributed(
            jobs, store,
            backends=[backend],
            heartbeat_seconds=0.2,
            sync_seconds=0.1,
            runner="benchmarks.dist_runner",
        )
        assert result.ok, result.summary()
        assert result.done == 3
        assert result.bytes_merged > 0
        verify = store.verify_all()
        assert verify.checked == 3 and not verify.corrupt
        # the remote journal was cat-synced back to the local mirror
        mirror = store.root / "workers" / "adhoc" / "w0" / "journal.jsonl"
        assert mirror.exists() and "done" in mirror.read_text()
        # ...and the remote side really was populated by the shim
        remote_store = tmp_path / "remote" / "adhoc" / "w0" / "store"
        assert (remote_store / "objects").is_dir()
