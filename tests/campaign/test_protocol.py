"""The dist wire protocol: framing, validation, noise tolerance."""

from __future__ import annotations

import io
import json

import pytest

from repro.campaign.dist import protocol
from repro.campaign.dist.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    iter_messages,
    msg_assign,
    msg_heartbeat,
    msg_hello,
    msg_result,
    msg_shutdown,
    msg_started,
    parse_message,
    send_message,
)
from repro.campaign.spec import Job


class TestParse:
    def test_blank_lines_are_noise(self):
        assert parse_message("") is None
        assert parse_message("   \n") is None

    def test_non_json_noise_is_skipped(self):
        # An ssh login banner or a stray print must not kill the fleet.
        assert parse_message("Welcome to host42 (Ubuntu)") is None
        assert parse_message("warning: locale not set") is None

    def test_unframed_json_is_noise(self):
        assert parse_message('["a", "b"]') is None
        assert parse_message('{"no_type_field": 1}') is None

    def test_unknown_type_is_loud(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            parse_message('{"type": "frobnicate"}')

    def test_missing_fields_are_loud(self):
        with pytest.raises(ProtocolError, match="missing fields"):
            parse_message('{"type": "result", "key": "k"}')

    def test_bad_result_status_is_loud(self):
        bad = json.dumps({"type": "result", "key": "k", "status": "maybe",
                          "attempt": 1})
        with pytest.raises(ProtocolError, match="maybe"):
            parse_message(bad)

    def test_valid_message_parses(self):
        line = json.dumps(msg_shutdown())
        assert parse_message(line) == {"type": "shutdown"}


class TestRoundTrip:
    def _round_trip(self, message):
        stream = io.StringIO()
        send_message(stream, message)
        text = stream.getvalue()
        assert text.endswith("\n") and text.count("\n") == 1
        return parse_message(text)

    def test_hello(self):
        got = self._round_trip(msg_hello("w0", "hostA", 123, 2, "/s"))
        assert got["worker"] == "w0"
        assert got["protocol"] == PROTOCOL_VERSION
        assert got["slots"] == 2

    def test_assign_carries_full_job(self):
        job = Job(workload="vips", size="simsmall", tool="native")
        got = self._round_trip(msg_assign(job, attempt=2))
        assert got["key"] == job.key
        assert Job.from_dict(got["job"]).key == job.key
        assert got["attempt"] == 2

    def test_started_result_heartbeat(self):
        assert self._round_trip(msg_started("k", "lbl", 1))["key"] == "k"
        result = self._round_trip(
            msg_result("k", "lbl", "timeout", 3, 1.23456, "too slow"))
        assert result["status"] == "timeout"
        assert result["seconds"] == pytest.approx(1.2346)
        beat = self._round_trip(msg_heartbeat(["k1", "k2"], 7))
        assert beat["running"] == ["k1", "k2"] and beat["done"] == 7


class TestIterMessages:
    def test_skips_noise_and_stops_at_eof(self):
        job = Job(workload="vips")
        stream = io.StringIO(
            "login banner\n"
            + json.dumps(msg_assign(job, 1)) + "\n"
            + "\n"
            + json.dumps(msg_shutdown()) + "\n"
        )
        kinds = [m["type"] for m in iter_messages(stream)]
        assert kinds == ["assign", "shutdown"]

    def test_every_declared_type_has_constructor_coverage(self):
        # The constructors and the validator must agree on required fields.
        job = Job(workload="vips")
        samples = [
            msg_hello("w", "h", 1, 1, "/s"),
            msg_assign(job, 1),
            msg_shutdown(),
            msg_started("k", "l", 1),
            msg_result("k", "l", "done", 1, 0.5),
            msg_heartbeat([], 0),
        ]
        assert {m["type"] for m in samples} == set(protocol.MESSAGE_TYPES)
        for message in samples:
            assert parse_message(json.dumps(message)) is not None
