"""Differential property test: batched Callgrind collector versus scalar.

The batched transport plus the collector's run-length kernel, line
expansion, deduped cache walk, and fused branch predictor must reproduce
the scalar path's profile exactly -- same per-context costs, same cache
miss counts, same mispredictions -- for any trace, including accesses that
straddle cache lines and zero-byte accesses.  Hypothesis drives random
interleavings; every batch size from degenerate (1) to never-full (4096)
must agree.
"""

from __future__ import annotations

from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.callgrind import CacheConfig, CallgrindCollector
from repro.trace.batch import BatchingTransport
from repro.trace.events import OpKind

BATCH_SIZES = (1, 3, 64, 4096)

_FN_NAMES = ("f", "g", "h")

# Tiny caches so random traces actually evict: D1 = 2 sets x 2 ways,
# LL = 4 sets x 2 ways, 64-byte lines.
_SMALL_D1 = CacheConfig(size=256, assoc=2, line_size=64)
_SMALL_LL = CacheConfig(size=512, assoc=2, line_size=64)

_COLLECTORS = {
    "cache+branch": lambda: CallgrindCollector(d1=_SMALL_D1, ll=_SMALL_LL),
    "cache-only": lambda: CallgrindCollector(
        d1=_SMALL_D1, ll=_SMALL_LL, simulate_branch=False
    ),
    "branch-only": lambda: CallgrindCollector(simulate_cache=False),
    "counters-only": lambda: CallgrindCollector(
        simulate_cache=False, simulate_branch=False
    ),
}


@st.composite
def callgrind_traces(draw):
    """Traces with line-straddling accesses, ops, branches, syscalls.

    Addresses sit around line boundaries and sizes run up to two lines, so
    batches exercise the ragged line expansion; repeated branch sites walk
    the bimodal counters through their whole state space.
    """
    n_steps = draw(st.integers(min_value=1, max_value=60))
    steps = []
    depth = 0
    for _ in range(n_steps):
        kinds = ["read", "write", "enter", "op", "branch", "syscall"]
        if depth > 0:
            kinds.append("exit")
        kind = draw(st.sampled_from(kinds))
        if kind == "enter":
            steps.append(("enter", draw(st.sampled_from(_FN_NAMES))))
            depth += 1
        elif kind == "exit":
            steps.append(("exit",))
            depth -= 1
        elif kind == "op":
            steps.append((
                "op",
                draw(st.sampled_from([OpKind.INT, OpKind.FLOAT])),
                draw(st.integers(min_value=1, max_value=4)),
            ))
        elif kind == "branch":
            steps.append(("branch", draw(st.integers(min_value=0, max_value=3)),
                          draw(st.booleans())))
        elif kind == "syscall":
            steps.append(("syscall", draw(st.integers(min_value=0, max_value=8))))
        else:
            addr = draw(st.integers(min_value=0, max_value=1024))
            size = draw(st.integers(min_value=0, max_value=130))
            steps.append((kind, addr, size))
    steps.extend([("exit",)] * depth)
    return steps


def _drive(steps, observer) -> None:
    observer.on_run_begin()
    exits: List[str] = []
    for step in steps:
        if step[0] == "enter":
            observer.on_fn_enter(step[1])
            exits.append(step[1])
        elif step[0] == "exit":
            observer.on_fn_exit(exits.pop())
        elif step[0] == "op":
            observer.on_op(step[1], step[2])
        elif step[0] == "branch":
            observer.on_branch(step[1], step[2])
        elif step[0] == "syscall":
            observer.on_syscall_enter("s", step[1])
            observer.on_syscall_exit("s", step[1])
        elif step[0] == "read":
            observer.on_mem_read(step[1], step[2])
        else:
            observer.on_mem_write(step[1], step[2])
    observer.on_run_end()


def _snapshot(collector: CallgrindCollector):
    """Everything observable about a run, as comparable plain data."""
    costs = {
        collector.tree.node(ctx_id).path: (
            c.instructions, c.iops, c.flops,
            c.reads, c.read_bytes, c.writes, c.write_bytes,
            c.l1_misses, c.ll_misses,
            c.branches, c.branch_misses, c.syscalls,
        )
        for ctx_id, c in collector.profile.self_costs.items()
    }
    caches = None
    if collector.caches is not None:
        caches = (
            collector.caches.d1.accesses, collector.caches.d1.misses,
            collector.caches.ll.accesses, collector.caches.ll.misses,
        )
    predictor = None
    if collector.predictor is not None:
        predictor = (
            collector.predictor.branches,
            collector.predictor.mispredicts,
            dict(collector.predictor._counters),
        )
    return costs, caches, predictor, collector.profile.total_cycles()


def _run(steps, make_collector, batch_size: int):
    collector = make_collector()
    observer = (
        BatchingTransport(collector, batch_size, scalar_cutoff=0)
        if batch_size
        else collector
    )
    _drive(steps, observer)
    return _snapshot(collector)


@pytest.mark.parametrize("variant", sorted(_COLLECTORS))
@given(steps=callgrind_traces())
@settings(max_examples=40, deadline=None)
def test_batched_collector_identical_to_scalar(variant, steps):
    """Every batch size reproduces the scalar profile, in every variant."""
    make = _COLLECTORS[variant]
    scalar = _run(steps, make, 0)
    for batch_size in BATCH_SIZES:
        assert _run(steps, make, batch_size) == scalar, (
            f"batch_size={batch_size} diverged from scalar for {variant}"
        )


@given(steps=callgrind_traces())
@settings(max_examples=20, deadline=None)
def test_batched_collector_default_caches_identical_to_scalar(steps):
    """The default (32 KiB D1 / 8 MiB LL) geometry agrees too -- the
    deduped timestamp-LRU walk must match scalar when sets never fill."""
    make = CallgrindCollector
    scalar = _run(steps, make, 0)
    for batch_size in (3, 4096):
        assert _run(steps, make, batch_size) == scalar


@given(steps=callgrind_traces())
@settings(max_examples=20, deadline=None)
def test_default_cutoff_replay_identical(steps):
    """With the default scalar cutoff, short flushes replay as scalar
    calls and long ones take the kernels; the profile must not care."""
    scalar = _run(steps, CallgrindCollector, 0)
    collector = CallgrindCollector()
    _drive(steps, BatchingTransport(collector, 64))
    assert _snapshot(collector) == scalar
