"""Property tests: streamed analyses equal the materialised ones.

The out-of-core code paths (:mod:`repro.analysis.streaming`) must be
invisible to callers: for any event log and any chunking of it, the
streamed critical path and the windowed curves are *identical* to what the
in-memory analysis computes.
"""

from __future__ import annotations

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_critical_path
from repro.analysis.streaming import ChunkSource
from repro.analysis.windowed import windowed_curves
from repro.io import dumps_events_bin

from tests.property.test_roundtrips import run_profiler, trace_steps


@given(trace_steps(), st.sampled_from([1, 7, 64, 1 << 18]))
@settings(max_examples=60, deadline=None)
def test_streamed_critical_path_identical(steps, chunk_rows):
    """Any chunking of the binary log reproduces the materialised DP
    exactly: lengths, per-segment inclusive costs, and the tie-broken
    reported chain."""
    events = run_profiler(steps, event_mode=True).profile().events
    base = analyze_critical_path(events)
    blob = dumps_events_bin(events, chunk_rows=chunk_rows)
    streamed = analyze_critical_path(io.BytesIO(blob))
    assert streamed.serial_length == base.serial_length
    assert streamed.critical_length == base.critical_length
    assert list(streamed.inclusive) == list(base.inclusive)
    assert [s.seg_id for s in streamed.path] == [
        s.seg_id for s in base.path
    ]


@given(trace_steps(), st.sampled_from([1, 7, 64]), st.sampled_from([1, 16, 4096]))
@settings(max_examples=60, deadline=None)
def test_streamed_windowed_curves_identical(steps, chunk_rows, window):
    """WS(t) and friends are invariant under both on-disk chunking and
    synthetic in-memory chunking."""
    events = run_profiler(steps, event_mode=True).profile().events
    base = windowed_curves(events, window=window)
    via_file = windowed_curves(
        dumps_events_bin(events, chunk_rows=chunk_rows), window=window
    )
    via_slices = windowed_curves(
        ChunkSource(events, chunk_rows=chunk_rows), window=window
    )
    assert via_file.to_dict() == base.to_dict()
    assert via_slices.to_dict() == base.to_dict()
