"""Property tests: persistence round-trips and scheduler bounds on random
profiler runs."""

from __future__ import annotations

from typing import List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_critical_path, schedule_events
from repro.core import SigilConfig, SigilProfiler
from repro.io import dumps_events, dumps_profile, loads_events, loads_profile


_FN_NAMES = ("alpha", "beta", "gamma", "fn with spaces", "std::weird<T>")


@st.composite
def trace_steps(draw):
    n_steps = draw(st.integers(min_value=1, max_value=50))
    steps = []
    depth = 0
    for _ in range(n_steps):
        kinds = ["read", "write", "enter", "op", "syscall"]
        if depth > 0:
            kinds.append("exit")
        kind = draw(st.sampled_from(kinds))
        if kind == "enter":
            steps.append(("enter", draw(st.sampled_from(_FN_NAMES))))
            depth += 1
        elif kind == "exit":
            steps.append(("exit",))
            depth -= 1
        elif kind == "op":
            steps.append(("op", draw(st.integers(min_value=1, max_value=50))))
        elif kind == "syscall":
            steps.append((
                "syscall",
                draw(st.sampled_from(["read", "write", "mmap"])),
                draw(st.integers(min_value=0, max_value=64)),
                draw(st.integers(min_value=0, max_value=64)),
            ))
        else:
            steps.append((
                kind,
                draw(st.integers(min_value=0, max_value=6000)),  # spans pages
                draw(st.integers(min_value=1, max_value=16)),
            ))
    steps.extend([("exit",)] * depth)
    return steps


def run_profiler(steps, **config) -> SigilProfiler:
    from repro.trace.events import OpKind

    p = SigilProfiler(SigilConfig(**config))
    p.on_run_begin()
    stack: List[str] = []
    for step in steps:
        if step[0] == "enter":
            p.on_fn_enter(step[1])
            stack.append(step[1])
        elif step[0] == "exit":
            p.on_fn_exit(stack.pop())
        elif step[0] == "op":
            p.on_op(OpKind.INT, step[1])
        elif step[0] == "syscall":
            p.on_syscall_enter(step[1], step[2])
            p.on_syscall_exit(step[1], step[3])
        elif step[0] == "read":
            p.on_mem_read(step[1], step[2])
        else:
            p.on_mem_write(step[1], step[2])
    p.on_run_end()
    return p


@given(trace_steps())
@settings(max_examples=120, deadline=None)
def test_profile_roundtrip_on_random_traces(steps):
    profile = run_profiler(steps, reuse_mode=True).profile()
    text = dumps_profile(profile)
    assert dumps_profile(loads_profile(text)) == text


@given(trace_steps())
@settings(max_examples=80, deadline=None)
def test_eventfile_roundtrip_on_random_traces(steps):
    profile = run_profiler(steps, event_mode=True).profile()
    text = dumps_events(profile.events)
    loaded = loads_events(text)
    assert dumps_events(loaded) == text
    live = analyze_critical_path(profile.events)
    offline = analyze_critical_path(loaded)
    assert offline.critical_length == live.critical_length


@given(trace_steps())
@settings(max_examples=80, deadline=None)
def test_text_roundtrip_preserves_eventlog_equality(steps):
    events = run_profiler(steps, event_mode=True).profile().events
    assert loads_events(dumps_events(events)) == events


@given(
    trace_steps(),
    st.sampled_from([None, "gzip"]),
    st.sampled_from([1, 7, 1 << 18]),
)
@settings(max_examples=60, deadline=None)
def test_binary_roundtrip_preserves_eventlog_equality(
    steps, compression, chunk_rows
):
    import io

    from repro.io import dumps_events_bin, load_events_bin

    events = run_profiler(steps, event_mode=True).profile().events
    blob = dumps_events_bin(
        events, compression=compression, chunk_rows=chunk_rows
    )
    loaded = load_events_bin(io.BytesIO(blob))
    assert loaded == events
    # v1 -> v2 -> v1 is byte-identical, not merely equal.
    assert dumps_events(loaded) == dumps_events(events)


@given(trace_steps())
@settings(max_examples=60, deadline=None)
def test_critical_path_identical_on_both_representations(steps):
    """The array kernel must reproduce the object path exactly, including
    tie-breaking on the reported chain."""
    from repro.core.segments import EventArrays

    events = run_profiler(steps, event_mode=True).profile().events
    obj = analyze_critical_path(events)
    arr = analyze_critical_path(EventArrays.from_eventlog(events))
    assert arr.serial_length == obj.serial_length
    assert arr.critical_length == obj.critical_length
    assert arr.inclusive == obj.inclusive
    assert [s.seg_id for s in arr.path] == [s.seg_id for s in obj.path]


@given(trace_steps(), st.integers(min_value=1, max_value=16))
@settings(max_examples=80, deadline=None)
def test_schedule_bounds_on_random_traces(steps, n_cores):
    """Classic scheduling bounds: critical path <= makespan and
    makespan <= serial length; speedup <= min(cores, parallelism limit)."""
    events = run_profiler(steps, event_mode=True).profile().events
    result = schedule_events(events, n_cores)
    cp = analyze_critical_path(events)
    assert result.makespan >= cp.critical_length
    assert result.makespan <= cp.serial_length
    assert result.speedup <= n_cores + 1e-9
    assert result.speedup <= cp.max_parallelism + 1e-9


@given(trace_steps())
@settings(max_examples=60, deadline=None)
def test_aggregates_invariant_under_event_mode(steps):
    """Event mode adds output, never changes the aggregate classification."""
    base = run_profiler(steps).profile()
    with_events = run_profiler(steps, event_mode=True).profile()
    base_edges = dict(base.comm.items())
    ev_edges = dict(with_events.comm.items())
    assert {
        k: (e.unique_bytes, e.nonunique_bytes) for k, e in base_edges.items()
    } == {
        k: (e.unique_bytes, e.nonunique_bytes) for k, e in ev_edges.items()
    }
