"""Differential property test: the vectorised shadow-memory profiler versus
a byte-at-a-time pure-Python reference model of section II's methodology.

The reference model is deliberately naive (one dict entry per byte, no
NumPy, no paging) so that any disagreement points at the optimised
implementation.  Hypothesis drives random interleavings of function
enter/exit, reads, and writes over a small address range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SigilConfig, SigilProfiler


@dataclass
class _RefByte:
    writer: Optional[Tuple[str, ...]] = None
    reader: Optional[Tuple[str, ...]] = None
    reader_call: int = -1


class ReferenceSigil:
    """Byte-at-a-time reference implementation of the classification."""

    def __init__(self) -> None:
        self.stack: List[Tuple[str, ...]] = [()]
        self.call_stack: List[int] = [0]
        self.call_counter = 0
        self.bytes: Dict[int, _RefByte] = {}
        # (writer_path|None, reader_path) -> [unique, nonunique]
        self.edges: Dict[Tuple[Optional[Tuple[str, ...]], Tuple[str, ...]], List[int]] = {}

    def enter(self, name: str) -> None:
        self.stack.append(self.stack[-1] + (name,))
        self.call_counter += 1
        self.call_stack.append(self.call_counter)

    def exit(self) -> None:
        self.stack.pop()
        self.call_stack.pop()

    def write(self, addr: int, size: int) -> None:
        ctx = self.stack[-1]
        for a in range(addr, addr + size):
            self.bytes[a] = _RefByte(writer=ctx)

    def read(self, addr: int, size: int) -> None:
        ctx = self.stack[-1]
        for a in range(addr, addr + size):
            shadow = self.bytes.setdefault(a, _RefByte())
            unique = shadow.reader != ctx
            key = (shadow.writer, ctx)
            counts = self.edges.setdefault(key, [0, 0])
            counts[0 if unique else 1] += 1
            shadow.reader = ctx
            shadow.reader_call = self.call_stack[-1]


# -- trace generation -------------------------------------------------------

_FN_NAMES = ("f", "g", "h")


@st.composite
def traces(draw):
    """A random well-formed trace: balanced enters/exits, small accesses."""
    n_steps = draw(st.integers(min_value=1, max_value=60))
    steps = []
    depth = 0
    for _ in range(n_steps):
        kinds = ["read", "write", "enter"]
        if depth > 0:
            kinds.append("exit")
        kind = draw(st.sampled_from(kinds))
        if kind == "enter":
            steps.append(("enter", draw(st.sampled_from(_FN_NAMES))))
            depth += 1
        elif kind == "exit":
            steps.append(("exit",))
            depth -= 1
        else:
            addr = draw(st.integers(min_value=0, max_value=40))
            size = draw(st.integers(min_value=1, max_value=12))
            steps.append((kind, addr, size))
    for _ in range(depth):
        steps.append(("exit",))
    return steps


def run_both(steps):
    profiler = SigilProfiler(SigilConfig())
    ref = ReferenceSigil()
    profiler.on_run_begin()
    exits: List[str] = []
    for step in steps:
        if step[0] == "enter":
            profiler.on_fn_enter(step[1])
            ref.enter(step[1])
            exits.append(step[1])
        elif step[0] == "exit":
            profiler.on_fn_exit(exits.pop())
            ref.exit()
        elif step[0] == "read":
            profiler.on_mem_read(step[1], step[2])
            ref.read(step[1], step[2])
        else:
            profiler.on_mem_write(step[1], step[2])
            ref.write(step[1], step[2])
    profiler.on_run_end()
    return profiler.profile(), ref


@given(traces())
@settings(max_examples=200, deadline=None)
def test_edges_match_reference(steps):
    prof, ref = run_both(steps)

    def path_of(ctx_id: int) -> Optional[Tuple[str, ...]]:
        return None if ctx_id < 0 else prof.tree.node(ctx_id).path

    got = {
        (path_of(w), path_of(r)): [e.unique_bytes, e.nonunique_bytes]
        for (w, r), e in prof.comm.items()
    }
    assert got == ref.edges


@given(traces())
@settings(max_examples=100, deadline=None)
def test_read_bytes_fully_classified(steps):
    """Invariant: every function's raw read traffic equals the sum of edge
    bytes attributed to it as reader."""
    prof, _ = run_both(steps)
    for node in prof.contexts():
        classified = sum(
            e.total_bytes for (_, r), e in prof.comm.items() if r == node.id
        )
        assert classified == prof.fn_comm(node.id).read_bytes


@given(traces())
@settings(max_examples=100, deadline=None)
def test_unique_at_most_address_span_per_writer(steps):
    """A reader can take at most one unique byte per (address, generation);
    with addresses bounded to [0, 52), unique bytes from the invalid
    producer can never exceed the span."""
    prof, _ = run_both(steps)
    from repro.common.cct import INVALID_CTX

    for (w, r), e in prof.comm.items():
        if w == INVALID_CTX:
            assert e.unique_bytes <= 52


@st.composite
def page_boundary_traces(draw):
    """Traces whose accesses straddle the 4096-byte shadow page boundary."""
    n_steps = draw(st.integers(min_value=1, max_value=40))
    steps = []
    depth = 0
    for _ in range(n_steps):
        kinds = ["read", "write", "enter"]
        if depth > 0:
            kinds.append("exit")
        kind = draw(st.sampled_from(kinds))
        if kind == "enter":
            steps.append(("enter", draw(st.sampled_from(_FN_NAMES))))
            depth += 1
        elif kind == "exit":
            steps.append(("exit",))
            depth -= 1
        else:
            addr = draw(st.integers(min_value=4080, max_value=4112))
            size = draw(st.integers(min_value=1, max_value=24))
            steps.append((kind, addr, size))
    steps.extend([("exit",)] * depth)
    return steps


@given(page_boundary_traces())
@settings(max_examples=120, deadline=None)
def test_page_straddling_matches_reference(steps):
    """Classification must be identical when ranges cross shadow pages."""
    prof, ref = run_both(steps)

    def path_of(ctx_id):
        return None if ctx_id < 0 else prof.tree.node(ctx_id).path

    got = {
        (path_of(w), path_of(r)): [e.unique_bytes, e.nonunique_bytes]
        for (w, r), e in prof.comm.items()
    }
    assert got == ref.edges


class ThreadedReferenceSigil(ReferenceSigil):
    """Reference model with per-thread call stacks (shared shadow bytes)."""

    def __init__(self) -> None:
        super().__init__()
        self._threads = {0: (self.stack, self.call_stack)}
        self._tid = 0

    def switch(self, tid: int) -> None:
        if tid == self._tid:
            return
        self._threads[self._tid] = (self.stack, self.call_stack)
        if tid not in self._threads:
            self.call_counter += 1
            self._threads[tid] = ([()], [self.call_counter])
        self.stack, self.call_stack = self._threads[tid]
        self._tid = tid


@st.composite
def threaded_traces(draw):
    """Random interleavings across up to three virtual threads."""
    n_steps = draw(st.integers(min_value=1, max_value=60))
    steps = []
    depths = {0: 0, 1: 0, 2: 0}
    tid = 0
    for _ in range(n_steps):
        kinds = ["read", "write", "enter", "switch"]
        if depths[tid] > 0:
            kinds.append("exit")
        kind = draw(st.sampled_from(kinds))
        if kind == "switch":
            tid = draw(st.sampled_from([0, 1, 2]))
            steps.append(("switch", tid))
        elif kind == "enter":
            steps.append(("enter", draw(st.sampled_from(_FN_NAMES))))
            depths[tid] += 1
        elif kind == "exit":
            steps.append(("exit",))
            depths[tid] -= 1
        else:
            addr = draw(st.integers(min_value=0, max_value=40))
            size = draw(st.integers(min_value=1, max_value=12))
            steps.append((kind, addr, size))
    # Drain every thread's stack.
    for t, depth in depths.items():
        if depth:
            steps.append(("switch", t))
            steps.extend([("exit",)] * depth)
    return steps


def run_both_threaded(steps):
    profiler = SigilProfiler(SigilConfig())
    ref = ThreadedReferenceSigil()
    profiler.on_run_begin()
    exits = {0: [], 1: [], 2: []}
    tid = 0
    for step in steps:
        if step[0] == "switch":
            tid = step[1]
            profiler.on_thread_switch(tid)
            ref.switch(tid)
        elif step[0] == "enter":
            profiler.on_fn_enter(step[1])
            ref.enter(step[1])
            exits[tid].append(step[1])
        elif step[0] == "exit":
            profiler.on_fn_exit(exits[tid].pop())
            ref.exit()
        elif step[0] == "read":
            profiler.on_mem_read(step[1], step[2])
            ref.read(step[1], step[2])
        else:
            profiler.on_mem_write(step[1], step[2])
            ref.write(step[1], step[2])
    profiler.on_run_end()
    return profiler.profile(), ref


@given(threaded_traces())
@settings(max_examples=150, deadline=None)
def test_threaded_edges_match_reference(steps):
    """Cross-thread classification equals the per-thread reference model."""
    prof, ref = run_both_threaded(steps)

    def path_of(ctx_id):
        return None if ctx_id < 0 else prof.tree.node(ctx_id).path

    got = {
        (path_of(w), path_of(r)): [e.unique_bytes, e.nonunique_bytes]
        for (w, r), e in prof.comm.items()
    }
    assert got == ref.edges
