"""Differential property test: the vectorised shadow-memory profiler versus
a byte-at-a-time pure-Python reference model of section II's methodology.

The reference model is deliberately naive (one dict entry per byte, no
NumPy, no paging) so that any disagreement points at the optimised
implementation.  Hypothesis drives random interleavings of function
enter/exit, reads, and writes over a small address range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SigilConfig, SigilProfiler
from repro.io.profilefile import dumps_profile
from repro.trace.batch import BatchingTransport
from repro.trace.events import OpKind


@dataclass
class _RefByte:
    writer: Optional[Tuple[str, ...]] = None
    reader: Optional[Tuple[str, ...]] = None
    reader_call: int = -1


class ReferenceSigil:
    """Unit-at-a-time reference implementation of the classification.

    ``line_size`` generalises the model to the line-granularity mode: a unit
    is ``line_size`` bytes and every touched unit is credited at that scale,
    exactly as the optimised profiler does.
    """

    def __init__(self, line_size: int = 1) -> None:
        self.stack: List[Tuple[str, ...]] = [()]
        self.call_stack: List[int] = [0]
        self.call_counter = 0
        self.line_size = line_size
        self._shift = line_size.bit_length() - 1
        self.bytes: Dict[int, _RefByte] = {}
        # (writer_path|None, reader_path) -> [unique, nonunique]
        self.edges: Dict[Tuple[Optional[Tuple[str, ...]], Tuple[str, ...]], List[int]] = {}

    def enter(self, name: str) -> None:
        self.stack.append(self.stack[-1] + (name,))
        self.call_counter += 1
        self.call_stack.append(self.call_counter)

    def exit(self) -> None:
        self.stack.pop()
        self.call_stack.pop()

    def _units(self, addr: int, size: int) -> range:
        if size <= 0:
            # A zero-byte access moves no data and touches no shadow state.
            return range(0)
        return range(addr >> self._shift, ((addr + size - 1) >> self._shift) + 1)

    def write(self, addr: int, size: int) -> None:
        ctx = self.stack[-1]
        for a in self._units(addr, size):
            self.bytes[a] = _RefByte(writer=ctx)

    def read(self, addr: int, size: int) -> None:
        ctx = self.stack[-1]
        for a in self._units(addr, size):
            shadow = self.bytes.setdefault(a, _RefByte())
            unique = shadow.reader != ctx
            key = (shadow.writer, ctx)
            counts = self.edges.setdefault(key, [0, 0])
            counts[0 if unique else 1] += self.line_size
            shadow.reader = ctx
            shadow.reader_call = self.call_stack[-1]


# -- trace generation -------------------------------------------------------

_FN_NAMES = ("f", "g", "h")


@st.composite
def traces(draw):
    """A random well-formed trace: balanced enters/exits, small accesses."""
    n_steps = draw(st.integers(min_value=1, max_value=60))
    steps = []
    depth = 0
    for _ in range(n_steps):
        kinds = ["read", "write", "enter"]
        if depth > 0:
            kinds.append("exit")
        kind = draw(st.sampled_from(kinds))
        if kind == "enter":
            steps.append(("enter", draw(st.sampled_from(_FN_NAMES))))
            depth += 1
        elif kind == "exit":
            steps.append(("exit",))
            depth -= 1
        else:
            addr = draw(st.integers(min_value=0, max_value=40))
            size = draw(st.integers(min_value=1, max_value=12))
            steps.append((kind, addr, size))
    for _ in range(depth):
        steps.append(("exit",))
    return steps


def run_both(steps):
    profiler = SigilProfiler(SigilConfig())
    ref = ReferenceSigil()
    profiler.on_run_begin()
    exits: List[str] = []
    for step in steps:
        if step[0] == "enter":
            profiler.on_fn_enter(step[1])
            ref.enter(step[1])
            exits.append(step[1])
        elif step[0] == "exit":
            profiler.on_fn_exit(exits.pop())
            ref.exit()
        elif step[0] == "read":
            profiler.on_mem_read(step[1], step[2])
            ref.read(step[1], step[2])
        else:
            profiler.on_mem_write(step[1], step[2])
            ref.write(step[1], step[2])
    profiler.on_run_end()
    return profiler.profile(), ref


@given(traces())
@settings(max_examples=200, deadline=None)
def test_edges_match_reference(steps):
    prof, ref = run_both(steps)

    def path_of(ctx_id: int) -> Optional[Tuple[str, ...]]:
        return None if ctx_id < 0 else prof.tree.node(ctx_id).path

    got = {
        (path_of(w), path_of(r)): [e.unique_bytes, e.nonunique_bytes]
        for (w, r), e in prof.comm.items()
    }
    assert got == ref.edges


@given(traces())
@settings(max_examples=100, deadline=None)
def test_read_bytes_fully_classified(steps):
    """Invariant: every function's raw read traffic equals the sum of edge
    bytes attributed to it as reader."""
    prof, _ = run_both(steps)
    for node in prof.contexts():
        classified = sum(
            e.total_bytes for (_, r), e in prof.comm.items() if r == node.id
        )
        assert classified == prof.fn_comm(node.id).read_bytes


@given(traces())
@settings(max_examples=100, deadline=None)
def test_unique_at_most_address_span_per_writer(steps):
    """A reader can take at most one unique byte per (address, generation);
    with addresses bounded to [0, 52), unique bytes from the invalid
    producer can never exceed the span."""
    prof, _ = run_both(steps)
    from repro.common.cct import INVALID_CTX

    for (w, r), e in prof.comm.items():
        if w == INVALID_CTX:
            assert e.unique_bytes <= 52


@st.composite
def page_boundary_traces(draw):
    """Traces whose accesses straddle the 4096-byte shadow page boundary."""
    n_steps = draw(st.integers(min_value=1, max_value=40))
    steps = []
    depth = 0
    for _ in range(n_steps):
        kinds = ["read", "write", "enter"]
        if depth > 0:
            kinds.append("exit")
        kind = draw(st.sampled_from(kinds))
        if kind == "enter":
            steps.append(("enter", draw(st.sampled_from(_FN_NAMES))))
            depth += 1
        elif kind == "exit":
            steps.append(("exit",))
            depth -= 1
        else:
            addr = draw(st.integers(min_value=4080, max_value=4112))
            size = draw(st.integers(min_value=1, max_value=24))
            steps.append((kind, addr, size))
    steps.extend([("exit",)] * depth)
    return steps


@given(page_boundary_traces())
@settings(max_examples=120, deadline=None)
def test_page_straddling_matches_reference(steps):
    """Classification must be identical when ranges cross shadow pages."""
    prof, ref = run_both(steps)

    def path_of(ctx_id):
        return None if ctx_id < 0 else prof.tree.node(ctx_id).path

    got = {
        (path_of(w), path_of(r)): [e.unique_bytes, e.nonunique_bytes]
        for (w, r), e in prof.comm.items()
    }
    assert got == ref.edges


class ThreadedReferenceSigil(ReferenceSigil):
    """Reference model with per-thread call stacks (shared shadow bytes)."""

    def __init__(self) -> None:
        super().__init__()
        self._threads = {0: (self.stack, self.call_stack)}
        self._tid = 0

    def switch(self, tid: int) -> None:
        if tid == self._tid:
            return
        self._threads[self._tid] = (self.stack, self.call_stack)
        if tid not in self._threads:
            self.call_counter += 1
            self._threads[tid] = ([()], [self.call_counter])
        self.stack, self.call_stack = self._threads[tid]
        self._tid = tid


@st.composite
def threaded_traces(draw):
    """Random interleavings across up to three virtual threads."""
    n_steps = draw(st.integers(min_value=1, max_value=60))
    steps = []
    depths = {0: 0, 1: 0, 2: 0}
    tid = 0
    for _ in range(n_steps):
        kinds = ["read", "write", "enter", "switch"]
        if depths[tid] > 0:
            kinds.append("exit")
        kind = draw(st.sampled_from(kinds))
        if kind == "switch":
            tid = draw(st.sampled_from([0, 1, 2]))
            steps.append(("switch", tid))
        elif kind == "enter":
            steps.append(("enter", draw(st.sampled_from(_FN_NAMES))))
            depths[tid] += 1
        elif kind == "exit":
            steps.append(("exit",))
            depths[tid] -= 1
        else:
            addr = draw(st.integers(min_value=0, max_value=40))
            size = draw(st.integers(min_value=1, max_value=12))
            steps.append((kind, addr, size))
    # Drain every thread's stack.
    for t, depth in depths.items():
        if depth:
            steps.append(("switch", t))
            steps.extend([("exit",)] * depth)
    return steps


def run_both_threaded(steps):
    profiler = SigilProfiler(SigilConfig())
    ref = ThreadedReferenceSigil()
    profiler.on_run_begin()
    exits = {0: [], 1: [], 2: []}
    tid = 0
    for step in steps:
        if step[0] == "switch":
            tid = step[1]
            profiler.on_thread_switch(tid)
            ref.switch(tid)
        elif step[0] == "enter":
            profiler.on_fn_enter(step[1])
            ref.enter(step[1])
            exits[tid].append(step[1])
        elif step[0] == "exit":
            profiler.on_fn_exit(exits[tid].pop())
            ref.exit()
        elif step[0] == "read":
            profiler.on_mem_read(step[1], step[2])
            ref.read(step[1], step[2])
        else:
            profiler.on_mem_write(step[1], step[2])
            ref.write(step[1], step[2])
    profiler.on_run_end()
    return profiler.profile(), ref


@given(threaded_traces())
@settings(max_examples=150, deadline=None)
def test_threaded_edges_match_reference(steps):
    """Cross-thread classification equals the per-thread reference model."""
    prof, ref = run_both_threaded(steps)

    def path_of(ctx_id):
        return None if ctx_id < 0 else prof.tree.node(ctx_id).path

    got = {
        (path_of(w), path_of(r)): [e.unique_bytes, e.nonunique_bytes]
        for (w, r), e in prof.comm.items()
    }
    assert got == ref.edges


# -- batched transport differentials ----------------------------------------
#
# The same Hypothesis stream is replayed through (a) the scalar observer
# path, (b) the batched transport at several ring sizes, and (c) the naive
# reference model, asserting bit-identical results.  Profiles are compared
# via their canonical serialisation, which covers every aggregate the
# profiler produces (edges, per-function traffic, clocks, shadow footprint,
# re-use histograms); event mode additionally compares the raw event log.

BATCH_SIZES = (1, 3, 64, 4096)

_BATCH_CONFIGS = {
    "baseline": SigilConfig(),
    "reuse": SigilConfig(reuse_mode=True),
    "events": SigilConfig(event_mode=True),
    "reuse-events": SigilConfig(reuse_mode=True, event_mode=True),
    "line4": SigilConfig(line_size=4),
    "reuse-line8": SigilConfig(reuse_mode=True, line_size=8),
    "paged": SigilConfig(max_shadow_pages=1),
}


@st.composite
def rich_traces(draw):
    """Traces mixing accesses (including zero-byte), ops, and branches.

    Ops and branches advance the profiler's clock, so they exercise the
    transport's flush policy: ops and branches flush (respectively: are
    forwarded scalar) only for time-strict downstreams such as re-use
    mode, and are deferred past buffered accesses otherwise.
    """
    n_steps = draw(st.integers(min_value=1, max_value=60))
    steps = []
    depth = 0
    for _ in range(n_steps):
        kinds = ["read", "write", "enter", "op", "branch"]
        if depth > 0:
            kinds.append("exit")
        kind = draw(st.sampled_from(kinds))
        if kind == "enter":
            steps.append(("enter", draw(st.sampled_from(_FN_NAMES))))
            depth += 1
        elif kind == "exit":
            steps.append(("exit",))
            depth -= 1
        elif kind == "op":
            steps.append(("op", draw(st.integers(min_value=1, max_value=4))))
        elif kind == "branch":
            steps.append(("branch", draw(st.integers(min_value=0, max_value=7)),
                          draw(st.booleans())))
        else:
            addr = draw(st.integers(min_value=0, max_value=40))
            size = draw(st.integers(min_value=0, max_value=12))
            steps.append((kind, addr, size))
    steps.extend([("exit",)] * depth)
    return steps


def _drive(steps, observer) -> None:
    """Replay a step list into ``observer`` (a profiler or a transport)."""
    observer.on_run_begin()
    exits: List[str] = []
    for step in steps:
        if step[0] == "enter":
            observer.on_fn_enter(step[1])
            exits.append(step[1])
        elif step[0] == "exit":
            observer.on_fn_exit(exits.pop())
        elif step[0] == "op":
            observer.on_op(OpKind.INT, step[1])
        elif step[0] == "branch":
            observer.on_branch(step[1], step[2])
        elif step[0] == "read":
            observer.on_mem_read(step[1], step[2])
        else:
            observer.on_mem_write(step[1], step[2])
    observer.on_run_end()


def _events_snapshot(profile):
    """The event log as comparable plain data (None without event mode)."""
    if profile.events is None:
        return None
    segments = tuple(
        (s.seg_id, s.ctx_id, s.call_id, s.start_time, s.ops, s.thread)
        for s in profile.events.segments
    )
    edges = tuple(sorted(
        (e.src, e.dst, e.kind, e.bytes) for e in profile.events.edges()
    ))
    return segments, edges


def _run_config(steps, config: SigilConfig, batch_size: int):
    profiler = SigilProfiler(config)
    # scalar_cutoff=0 forces even tiny flushes through the batch kernels --
    # the whole point here is differential coverage of that code path.
    observer = (
        BatchingTransport(profiler, batch_size, scalar_cutoff=0)
        if batch_size
        else profiler
    )
    _drive(steps, observer)
    profile = profiler.profile()
    return dumps_profile(profile), _events_snapshot(profile)


@pytest.mark.parametrize("config_name", sorted(_BATCH_CONFIGS))
@given(steps=rich_traces())
@settings(max_examples=40, deadline=None)
def test_batched_profile_identical_to_scalar(config_name, steps):
    """Every batch size yields the byte-identical profile, in every mode."""
    config = _BATCH_CONFIGS[config_name]
    scalar = _run_config(steps, config, 0)
    for batch_size in BATCH_SIZES:
        assert _run_config(steps, config, batch_size) == scalar, (
            f"batch_size={batch_size} diverged from scalar for {config_name}"
        )


@pytest.mark.parametrize("config_name", sorted(_BATCH_CONFIGS))
@given(steps=page_boundary_traces())
@settings(max_examples=30, deadline=None)
def test_batched_page_straddling_identical_to_scalar(config_name, steps):
    """Batches whose accesses cross shadow-page boundaries stay identical.

    The grouped kernels gather/scatter shadow state one page span at a
    time; page-straddling accesses (and, for ``paged``, FIFO eviction)
    are the paths a single-page address range never exercises.
    """
    config = _BATCH_CONFIGS[config_name]
    scalar = _run_config(steps, config, 0)
    for batch_size in (3, 64):
        assert _run_config(steps, config, batch_size) == scalar, (
            f"batch_size={batch_size} diverged from scalar for {config_name}"
        )


@given(steps=rich_traces())
@settings(max_examples=60, deadline=None)
def test_batched_edges_match_reference(steps):
    """The batched transport agrees with the naive reference model too."""
    ref = ReferenceSigil()
    exits: List[str] = []
    for step in steps:
        if step[0] == "enter":
            ref.enter(step[1])
            exits.append(step[1])
        elif step[0] == "exit":
            ref.exit()
        elif step[0] == "read":
            ref.read(step[1], step[2])
        elif step[0] == "write":
            ref.write(step[1], step[2])
    for batch_size in (3, 64):
        profiler = SigilProfiler(SigilConfig())
        _drive(steps, BatchingTransport(profiler, batch_size, scalar_cutoff=0))
        prof = profiler.profile()

        def path_of(ctx_id):
            return None if ctx_id < 0 else prof.tree.node(ctx_id).path

        got = {
            (path_of(w), path_of(r)): [e.unique_bytes, e.nonunique_bytes]
            for (w, r), e in prof.comm.items()
        }
        assert got == ref.edges


@given(steps=rich_traces())
@settings(max_examples=40, deadline=None)
def test_batched_line_granularity_matches_reference(steps):
    """Line-granularity classification matches the unit-scaled reference."""
    ref = ReferenceSigil(line_size=4)
    exits: List[str] = []
    for step in steps:
        if step[0] == "enter":
            ref.enter(step[1])
            exits.append(step[1])
        elif step[0] == "exit":
            ref.exit()
        elif step[0] == "read":
            ref.read(step[1], step[2])
        elif step[0] == "write":
            ref.write(step[1], step[2])
    profiler = SigilProfiler(SigilConfig(line_size=4))
    _drive(steps, BatchingTransport(profiler, 64, scalar_cutoff=0))
    prof = profiler.profile()

    def path_of(ctx_id):
        return None if ctx_id < 0 else prof.tree.node(ctx_id).path

    got = {
        (path_of(w), path_of(r)): [e.unique_bytes, e.nonunique_bytes]
        for (w, r), e in prof.comm.items()
    }
    assert got == ref.edges


@given(steps=threaded_traces())
@settings(max_examples=60, deadline=None)
def test_batched_threaded_profile_identical_to_scalar(steps):
    """Thread switches flush; cross-thread profiles stay byte-identical."""

    def run(batch_size):
        profiler = SigilProfiler(SigilConfig())
        observer = (
            BatchingTransport(profiler, batch_size, scalar_cutoff=0)
            if batch_size
            else profiler
        )
        observer.on_run_begin()
        exits = {0: [], 1: [], 2: []}
        tid = 0
        for step in steps:
            if step[0] == "switch":
                tid = step[1]
                observer.on_thread_switch(tid)
            elif step[0] == "enter":
                observer.on_fn_enter(step[1])
                exits[tid].append(step[1])
            elif step[0] == "exit":
                observer.on_fn_exit(exits[tid].pop())
            elif step[0] == "read":
                observer.on_mem_read(step[1], step[2])
            else:
                observer.on_mem_write(step[1], step[2])
        observer.on_run_end()
        return dumps_profile(profiler.profile())

    scalar = run(0)
    for batch_size in BATCH_SIZES:
        assert run(batch_size) == scalar
