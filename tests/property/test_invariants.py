"""Property tests for cache, critical path, reuse, CCT and VM invariants."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.callgrind import Cache, CacheConfig
from repro.analysis import analyze_critical_path
from repro.common.cct import ContextTree
from repro.core.reuse import bucketise_counts
from repro.core.segments import EventLog


# -- cache ------------------------------------------------------------------


class _RefLRU:
    """Reference LRU cache via OrderedDict."""

    def __init__(self, assoc: int, n_sets: int):
        self.assoc = assoc
        self.n_sets = n_sets
        self.sets = [OrderedDict() for _ in range(n_sets)]

    def access(self, line: int) -> bool:
        s = self.sets[line % self.n_sets]
        tag = line // self.n_sets
        if tag in s:
            s.move_to_end(tag)
            return False
        s[tag] = True
        if len(s) > self.assoc:
            s.popitem(last=False)
        return True


@given(
    st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300),
    st.sampled_from([(1, 2), (2, 2), (4, 4), (8, 1)]),
)
@settings(max_examples=150, deadline=None)
def test_cache_matches_reference_lru(lines, geometry):
    assoc, n_sets = geometry
    cache = Cache(CacheConfig(size=assoc * n_sets * 64, assoc=assoc, line_size=64))
    ref = _RefLRU(assoc, n_sets)
    for line in lines:
        assert cache.access_line(line) == ref.access(line)


@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=200))
@settings(max_examples=50, deadline=None)
def test_cache_misses_bounded_by_accesses(lines):
    cache = Cache(CacheConfig(size=1024, assoc=2, line_size=64))
    for line in lines:
        cache.access_line(line)
    assert 0 <= cache.misses <= cache.accesses == len(lines)


# -- critical path -----------------------------------------------------------


@st.composite
def event_logs(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    log = EventLog()
    for i in range(n):
        seg = log.new_segment(ctx_id=i % 4, call_id=i, time=i)
        seg.ops = draw(st.integers(min_value=0, max_value=50))
    n_edges = draw(st.integers(min_value=0, max_value=40))
    for _ in range(n_edges):
        if n < 2:
            break
        src = draw(st.integers(min_value=0, max_value=n - 2))
        dst = draw(st.integers(min_value=src + 1, max_value=n - 1))
        kind = draw(st.sampled_from(["order", "call", "data"]))
        if kind == "order":
            log.add_order_edge(src, dst)
        elif kind == "call":
            log.add_call_edge(src, dst)
        else:
            log.add_data_bytes(src, dst, draw(st.integers(min_value=1, max_value=64)))
    return log


@given(event_logs())
@settings(max_examples=150, deadline=None)
def test_critical_path_bounded(log):
    result = analyze_critical_path(log)
    assert 0 <= result.critical_length <= result.serial_length
    assert result.max_parallelism >= 1.0 or result.serial_length == 0
    # The reported path is a chain with nonincreasing ids backwards.
    ids = [seg.seg_id for seg in result.path]
    assert ids == sorted(ids)
    # Path self-costs sum to the critical length.
    assert sum(seg.ops for seg in result.path) == result.critical_length


@given(event_logs(), st.data())
@settings(max_examples=80, deadline=None)
def test_adding_edge_never_shortens_critical_path(log, data):
    before = analyze_critical_path(log).critical_length
    if log.n_segments >= 2:
        src = data.draw(st.integers(min_value=0, max_value=log.n_segments - 2))
        dst = data.draw(st.integers(min_value=src + 1, max_value=log.n_segments - 1))
        log.add_order_edge(src, dst)
    after = analyze_critical_path(log).critical_length
    assert after >= before


# -- reuse buckets -------------------------------------------------------------


@given(
    st.lists(st.integers(min_value=0, max_value=100_000), max_size=500).map(
        lambda xs: np.array(xs, dtype=np.int64)
    )
)
@settings(max_examples=100, deadline=None)
def test_buckets_partition_counts(counts):
    buckets = bucketise_counts(counts)
    assert buckets.sum() == len(counts)
    assert (buckets >= 0).all()


# -- context tree -----------------------------------------------------------------


@given(st.lists(st.lists(st.sampled_from("abc"), min_size=1, max_size=5), max_size=30))
@settings(max_examples=100, deadline=None)
def test_cct_paths_roundtrip(paths):
    tree = ContextTree()
    for path in paths:
        node = tree.root
        for name in path:
            node = tree.child(node, name)
        assert node.path == tuple(path)
        assert tree.find(tuple(path)) is node
    # ids are dense
    assert sorted(n.id for n in tree.nodes) == list(range(len(tree)))


# -- VM: random straight-line programs -----------------------------------------------


@st.composite
def straight_line_programs(draw):
    from repro.vm import ProgramBuilder

    pb = ProgramBuilder()
    f = pb.function("main")
    regs = [f.const(draw(st.integers(min_value=-100, max_value=100)))]
    base = f.const(0x1000)
    n = draw(st.integers(min_value=1, max_value=25))
    for _ in range(n):
        choice = draw(st.integers(min_value=0, max_value=3))
        a = draw(st.sampled_from(regs))
        b = draw(st.sampled_from(regs))
        if choice == 0:
            regs.append(f.alu(draw(st.sampled_from(["add", "sub", "mul", "min", "max"])), a, b))
        elif choice == 1:
            regs.append(f.alui("add", a, draw(st.integers(-10, 10))))
        elif choice == 2:
            f.store(a, base, offset=draw(st.integers(0, 64)) * 8, size=8)
        else:
            regs.append(f.load(base, offset=draw(st.integers(0, 64)) * 8, size=8))
    f.ret(regs[-1])
    return pb.build()


@given(straight_line_programs())
@settings(max_examples=100, deadline=None)
def test_random_programs_execute_and_balance(program):
    from repro.trace import RecordingObserver
    from repro.trace.events import FnEnter, FnExit
    from repro.vm import FlatMemory, Machine

    obs = RecordingObserver()
    machine = Machine(memory=FlatMemory(strict=False))
    result = machine.run(program, obs)
    assert result.instructions > 0
    depth = 0
    for ev in obs.events:
        if isinstance(ev, FnEnter):
            depth += 1
        elif isinstance(ev, FnExit):
            depth -= 1
        assert depth >= 0
    assert depth == 0


# -- VM: random call graphs ---------------------------------------------------


@st.composite
def call_graph_programs(draw):
    """Random acyclic call graphs: function i may call only functions > i."""
    from repro.vm import ProgramBuilder

    n_funcs = draw(st.integers(min_value=1, max_value=6))
    pb = ProgramBuilder()
    names = ["main"] + [f"fn{i}" for i in range(1, n_funcs)]
    arities = {
        name: (0 if i == 0 else draw(st.integers(min_value=0, max_value=2)))
        for i, name in enumerate(names)
    }
    builders = {name: pb.function(name, arities[name]) for name in names}
    for i, name in enumerate(names):
        f = builders[name]
        regs = [f.const(draw(st.integers(-5, 5)))]
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            regs.append(f.alui("add", draw(st.sampled_from(regs)),
                               draw(st.integers(-3, 3))))
        # Calls to later functions only (acyclic by construction).
        callees = names[i + 1:]
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            if not callees:
                break
            callee = draw(st.sampled_from(callees))
            args = [draw(st.sampled_from(regs)) for _ in range(arities[callee])]
            regs.append(f.call_value(callee, args=args))
        f.ret(draw(st.sampled_from(regs)))
    return pb.build()


@given(call_graph_programs())
@settings(max_examples=80, deadline=None)
def test_random_call_graphs_profile_cleanly(program):
    from repro.core import SigilConfig, SigilProfiler
    from repro.vm import Machine

    profiler = SigilProfiler(SigilConfig(event_mode=True))
    Machine().run(program, profiler)
    prof = profiler.profile()
    # Calls recorded in the tree match the event log's segments per call.
    total_calls = sum(n.calls for n in prof.contexts())
    distinct_calls = {s.call_id for s in prof.events.segments} - {0}
    assert len(distinct_calls) == total_calls
    # Critical path is well-formed on any such program.
    from repro.analysis import analyze_critical_path

    result = analyze_critical_path(prof.events)
    assert 0 <= result.critical_length <= result.serial_length


# -- assembler round-trip on generated programs --------------------------------


@given(straight_line_programs())
@settings(max_examples=60, deadline=None)
def test_asm_roundtrip_straight_line(program):
    from repro.vm.asm import assemble, disassemble

    again = assemble(disassemble(program))
    for name, func in program.functions.items():
        assert again.functions[name].code == func.code


@given(call_graph_programs())
@settings(max_examples=60, deadline=None)
def test_asm_roundtrip_call_graphs(program):
    from repro.vm.asm import assemble, disassemble

    again = assemble(disassemble(program))
    for name, func in program.functions.items():
        assert again.functions[name].code == func.code
        assert again.functions[name].n_params == func.n_params
