"""Calling-context tree tests."""

from __future__ import annotations

from repro.common.cct import ROOT_NAME, ContextTree


class TestContextTree:
    def test_interning(self):
        tree = ContextTree()
        a1 = tree.child(tree.root, "a")
        a2 = tree.child(tree.root, "a")
        assert a1 is a2
        assert len(tree) == 2

    def test_dense_ids(self):
        tree = ContextTree()
        nodes = [tree.child(tree.root, f"f{i}") for i in range(5)]
        assert [n.id for n in nodes] == [1, 2, 3, 4, 5]
        assert all(tree.node(n.id) is n for n in nodes)

    def test_path(self):
        tree = ContextTree()
        a = tree.child(tree.root, "a")
        b = tree.child(a, "b")
        c = tree.child(b, "c")
        assert c.path == ("a", "b", "c")
        assert tree.root.path == ()

    def test_depth(self):
        tree = ContextTree()
        a = tree.child(tree.root, "a")
        b = tree.child(a, "b")
        assert (tree.root.depth, a.depth, b.depth) == (0, 1, 2)

    def test_find(self):
        tree = ContextTree()
        a = tree.child(tree.root, "a")
        b = tree.child(a, "b")
        assert tree.find(("a", "b")) is b
        assert tree.find(("a", "zzz")) is None
        assert tree.find(()) is tree.root

    def test_by_name_across_contexts(self):
        tree = ContextTree()
        a = tree.child(tree.root, "a")
        b = tree.child(tree.root, "b")
        d1 = tree.child(a, "d")
        d2 = tree.child(b, "d")
        assert set(tree.by_name("d")) == {d1, d2}

    def test_walk_covers_subtree(self):
        tree = ContextTree()
        a = tree.child(tree.root, "a")
        b = tree.child(a, "b")
        c = tree.child(a, "c")
        d = tree.child(b, "d")
        assert {n.id for n in a.walk()} == {a.id, b.id, c.id, d.id}

    def test_root_name(self):
        assert ContextTree().root.name == ROOT_NAME
