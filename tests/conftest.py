"""Shared fixtures: toy programs and cached workload profiles."""

from __future__ import annotations

import pytest

from repro.callgrind import CallgrindCollector
from repro.core import SigilConfig, SigilProfiler
from repro.trace import ObserverPipe
from repro.vm import Machine, ProgramBuilder
from repro.workloads import get_workload


def build_toy_program():
    """The spirit of the paper's toy program (Figures 1-3).

    main writes data consumed by A and C; A produces for C and D; C produces
    for D; D is called from two different contexts (D1/D2 in Figure 2).
    """
    pb = ProgramBuilder()

    main = pb.function("main")
    buf = main.const(0x1000)
    x = main.const(5)
    main.store(x, buf, offset=0, size=8)  # main -> A
    main.store(x, buf, offset=8, size=8)  # main -> C
    main.call("A", args=[buf])
    main.call("C", args=[buf])
    main.ret()

    a = pb.function("A", n_params=1)
    v = a.load(a.param(0), offset=0, size=8)
    w = a.addi(v, 1)
    a.store(w, a.param(0), offset=16, size=8)  # A -> C
    a.store(w, a.param(0), offset=24, size=8)  # A -> D (via context 1)
    a.call("D", args=[a.param(0)])
    a.ret()

    c = pb.function("C", n_params=1)
    u = c.load(c.param(0), offset=8, size=8)   # from main
    t = c.load(c.param(0), offset=16, size=8)  # from A
    s = c.alu("add", u, t)
    c.store(s, c.param(0), offset=32, size=8)  # C -> D (via context 2)
    c.call("D", args=[c.param(0)])
    c.ret()

    d = pb.function("D", n_params=1)
    p = d.load(d.param(0), offset=24, size=8)
    q = d.load(d.param(0), offset=32, size=8)
    r = d.alu("add", p, q)
    d.store(r, d.param(0), offset=40, size=8)
    d.ret()

    return pb.build()


@pytest.fixture(scope="session")
def toy_program():
    return build_toy_program()


def profile_toy(config: SigilConfig | None = None):
    """Run the toy program under Sigil (+Callgrind); returns (sigil, cg)."""
    program = build_toy_program()
    sigil = SigilProfiler(
        config if config is not None else SigilConfig(reuse_mode=True, event_mode=True)
    )
    cg = CallgrindCollector()
    Machine().run(program, ObserverPipe([sigil, cg]))
    return sigil.profile(), cg.profile


@pytest.fixture(scope="session")
def toy_profiles():
    return profile_toy()


@pytest.fixture(scope="session")
def blackscholes_profiles():
    """Cached blackscholes simsmall run with full Sigil modes + Callgrind."""
    sigil = SigilProfiler(SigilConfig(reuse_mode=True, event_mode=True))
    cg = CallgrindCollector()
    get_workload("blackscholes", "simsmall").run(ObserverPipe([sigil, cg]))
    return sigil.profile(), cg.profile


@pytest.fixture(scope="session")
def vips_profile():
    """Cached vips simsmall reuse-mode profile (Figures 9-11 source)."""
    sigil = SigilProfiler(SigilConfig(reuse_mode=True))
    get_workload("vips", "simsmall").run(sigil)
    return sigil.profile()
