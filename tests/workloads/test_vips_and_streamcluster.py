"""vips and streamcluster miniatures: the reuse and critical-path anchors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SigilConfig, SigilProfiler
from repro.runtime import TracedRuntime
from repro.trace import NullObserver
from repro.workloads.streamcluster import Streamcluster, dist, drand48_iterate
from repro.workloads.vips import Vips


class TestVipsPipeline:
    @pytest.fixture(scope="class")
    def profile(self):
        sigil = SigilProfiler(SigilConfig(reuse_mode=True))
        Vips("simsmall").run(sigil)
        return sigil.profile()

    def test_stage_dataflow_order(self, profile):
        """embed -> affine -> conv(blur) -> conv(sharpen) -> lintra -> Lab:
        each stage consumes bytes the previous stage produced."""
        def ctx(name, which=0):
            return profile.contexts_named(name)[which].id

        convs = sorted(profile.contexts_named("conv_gen"), key=lambda n: n.id)
        chain = [
            (ctx("im_embed"), ctx("affine_gen")),
            (ctx("affine_gen"), convs[0].id),
            (convs[0].id, convs[1].id),
            (convs[1].id, ctx("im_lintra")),
            (ctx("im_lintra"), ctx("imb_XYZ2Lab")),
        ]
        for writer, reader in chain:
            assert profile.comm.get(writer, reader).unique_bytes > 0, (
                profile.tree.node(writer).name,
                profile.tree.node(reader).name,
            )

    def test_conv_gen_rereads_per_tap(self, profile):
        """A taps-deep vertical convolution re-reads interior rows taps-1
        times: non-unique bytes dominate conv_gen's input edge."""
        convs = profile.contexts_named("conv_gen")
        blur = min(convs, key=lambda n: n.id)
        affine = profile.contexts_named("affine_gen")[0]
        edge = profile.comm.get(affine.id, blur.id)
        taps = Vips.PARAMS[next(iter(Vips.PARAMS))]["taps"]
        assert edge.nonunique_bytes > (taps - 2) * edge.unique_bytes

    def test_lab_output_is_real(self):
        w = Vips("simsmall")
        w.run(NullObserver())
        assert np.isfinite(w.checksum)

    def test_lut_is_highly_reused(self, profile):
        lab = profile.contexts_named("imb_XYZ2Lab")[0]
        stats = profile.reuse.per_fn[lab.id]
        assert stats.reuse_accesses > 0


class TestStreamcluster:
    def test_dist_is_euclidean_squared(self):
        rt = TracedRuntime(NullObserver())
        points = rt.arena.alloc_f64("pts", 16)
        points.poke_block([0.0] * 8 + [3.0, 4.0] + [0.0] * 6)
        assert dist(rt, points, 0, 1, 8) == pytest.approx(25.0)

    def test_lcg_advances_state(self):
        rt = TracedRuntime(NullObserver())
        state = rt.arena.alloc_i64("state", 2)
        state.poke(0, 12345)
        drand48_iterate(rt, state)
        first = int(state.peek(0))
        drand48_iterate(rt, state)
        assert int(state.peek(0)) != first
        assert first == (25214903917 * 12345 + 11) & ((1 << 48) - 1)

    def test_rand_chain_contexts(self):
        """The rand48 helpers nest exactly as the paper's chain shows:
        lrand48 -> __nrand48_r -> drand48_iterate."""
        sigil = SigilProfiler(SigilConfig())
        Streamcluster("simsmall").run(sigil)
        prof = sigil.profile()
        iterate = prof.contexts_named("drand48_iterate")[0]
        assert iterate.path[-3:] == ("lrand48", "__nrand48_r", "drand48_iterate")

    def test_centers_open_during_search(self):
        """pkmedian probabilistically opens facilities; the costs buffer
        must show distances shrinking to zero for chosen centers."""
        w = Streamcluster("simsmall")
        w.run(NullObserver())
        assert w.checksum > 0.0

    def test_rng_state_serialises_rand_calls(self):
        """Each drand48_iterate reads the state its previous call wrote --
        the memory dependence behind the paper's critical path."""
        sigil = SigilProfiler(SigilConfig())
        Streamcluster("simsmall").run(sigil)
        prof = sigil.profile()
        it = prof.contexts_named("drand48_iterate")[0]
        assert prof.unique_local_bytes(it.id) > 0
