"""dedup miniature: deduplication actually happens, pipeline edges exist."""

from __future__ import annotations

import pytest

from repro.core import SigilConfig, SigilProfiler
from repro.runtime import TracedRuntime
from repro.trace import NullObserver
from repro.workloads.dedup import Dedup, adler32, sha1_block
from repro.workloads.lib import LibEnv


class TestKernels:
    def test_sha1_deterministic_and_content_sensitive(self):
        rt = TracedRuntime(NullObserver())
        data = rt.arena.alloc_u8("data", 128)
        digest = rt.arena.alloc_i64("digest", 4)
        data.poke_block(list(range(100, 228)))
        sha1_block(rt, data, 0, 128, digest)
        first = list(digest.peek_block())
        sha1_block(rt, data, 0, 128, digest)
        assert list(digest.peek_block()) == first
        data.poke(0, 7)
        sha1_block(rt, data, 0, 128, digest)
        assert list(digest.peek_block()) != first

    def test_adler32_changes_with_content(self):
        rt = TracedRuntime(NullObserver())
        data = rt.arena.alloc_u8("data", 64)
        data.poke_block([1] * 64)
        a = adler32(rt, data, 0, 64)
        data.poke_block([2] * 64)
        b = adler32(rt, data, 0, 64)
        assert a != b


class TestPipeline:
    @pytest.fixture(scope="class")
    def profile(self):
        sigil = SigilProfiler(SigilConfig())
        Dedup("simsmall").run(sigil)
        return sigil.profile()

    def test_duplicates_are_skipped(self, profile):
        """~25% of chunks repeat a base pattern; compression must run on
        fewer chunks than the stream contains."""
        n_chunks = Dedup.PARAMS[next(iter(Dedup.PARAMS))]["n_chunks"]
        compress_calls = sum(
            node.calls for node in profile.contexts_named("Compress")
        )
        refine_calls = sum(
            node.calls for node in profile.contexts_named("FragmentRefine")
        )
        assert refine_calls == n_chunks
        assert compress_calls < n_chunks
        assert compress_calls >= n_chunks * 0.5

    def test_digest_flows_from_sha1_to_hashtable(self, profile):
        sha1_ctxs = profile.contexts_named("sha1_block_data_order")
        ht = profile.contexts_named("hashtable_search")[0]
        flow = sum(
            profile.comm.get(ctx.id, ht.id).unique_bytes for ctx in sha1_ctxs
        )
        assert flow > 0

    def test_write_file_serialises_through_stream_state(self, profile):
        """write_file reads the cursor its previous call wrote: a self-edge
        (local bytes) on the write_file context."""
        wf = profile.contexts_named("write_file")[0]
        assert profile.unique_local_bytes(wf.id) > 0

    def test_growing_address_footprint(self):
        """Per-chunk output allocations grow the shadow footprint: dedup is
        the memory-limit poster child (section III-A)."""
        small = SigilProfiler(SigilConfig())
        medium = SigilProfiler(SigilConfig())
        Dedup("simsmall").run(small)
        Dedup("simmedium").run(medium)
        assert (
            medium.profile().shadow_stats.peak_pages
            > small.profile().shadow_stats.peak_pages
        )
