"""blackscholes miniature: semantic and structural checks."""

from __future__ import annotations

import math

import pytest

from repro.core import SigilConfig, SigilProfiler
from repro.runtime import TracedRuntime
from repro.trace import NullObserver
from repro.workloads.blackscholes import Blackscholes, cndf, strtof
from repro.workloads.lib import LibEnv


class TestKernels:
    def test_cndf_matches_closed_form(self):
        """The polynomial CNDF must track the true normal CDF."""
        rt = TracedRuntime(NullObserver())
        env = LibEnv.create(rt.arena)
        for x in (-2.0, -0.5, 0.0, 0.5, 1.0, 2.5):
            expected = 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))
            assert cndf(rt, env, x) == pytest.approx(expected, abs=2e-3)

    def test_cndf_symmetry(self):
        rt = TracedRuntime(NullObserver())
        env = LibEnv.create(rt.arena)
        assert cndf(rt, env, 1.3) + cndf(rt, env, -1.3) == pytest.approx(1.0, abs=1e-6)

    def test_strtof_parses_digits(self):
        rt = TracedRuntime(NullObserver())
        env = LibEnv.create(rt.arena)
        text = rt.arena.alloc_u8("text", 8)
        out = rt.arena.alloc_f64("out", 4)
        text.poke_block([ord(c) for c in "00012345"])
        strtof(rt, env, text, 0, out, 1)
        assert out.peek(1) == pytest.approx(12345 / 1e4)


class TestWorkload:
    def test_prices_are_finite_and_mixed(self):
        w = Blackscholes("simsmall")
        w.run(NullObserver())
        assert math.isfinite(w.checksum)
        assert w.checksum != 0.0

    def test_pricing_dominates_operations(self):
        sigil = SigilProfiler(SigilConfig())
        Blackscholes("simsmall").run(sigil)
        prof = sigil.profile()
        by_name = prof.by_name()
        pricing = (
            by_name["BlkSchlsEqEuroNoDiv"].ops
            + by_name["CNDF"].ops
            + sum(v.ops for k, v in by_name.items() if k.startswith("__ieee754"))
        )
        assert pricing > 0.4 * prof.total_ops()

    def test_strtof_feeds_pricing(self):
        """The parse -> price dataflow: strtof writes the option records the
        pricing kernel consumes."""
        sigil = SigilProfiler(SigilConfig())
        Blackscholes("simsmall").run(sigil)
        prof = sigil.profile()
        strtof_ctx = prof.contexts_named("strtof")[0].id
        blk_ctx = prof.contexts_named("BlkSchlsEqEuroNoDiv")[0].id
        edge = prof.comm.get(strtof_ctx, blk_ctx)
        n = Blackscholes.PARAMS[next(iter(Blackscholes.PARAMS))]["n_options"]
        assert edge.unique_bytes == n * 6 * 8

    def test_mpn_mul_called_from_strtof_context(self):
        sigil = SigilProfiler(SigilConfig())
        Blackscholes("simsmall").run(sigil)
        prof = sigil.profile()
        mpn = prof.contexts_named("__mpn_mul")
        assert any(node.parent.name == "strtof" for node in mpn)
