"""Shared library-kernel tests: the miniatures compute real results."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.runtime import TracedRuntime
from repro.trace import RecordingObserver
from repro.trace.events import FnEnter
from repro.workloads.lib import (
    LibEnv,
    call_exp,
    call_isnan,
    call_log,
    call_mpn_mul,
    call_sqrt,
    memchr,
    memcpy,
    memmove,
    memset,
    op_free,
    op_new,
    string_assign,
    string_compare,
)


@pytest.fixture()
def rt():
    return TracedRuntime(RecordingObserver())


@pytest.fixture()
def env(rt):
    return LibEnv.create(rt.arena)


class TestLibm:
    def test_exp_value(self, rt, env):
        assert call_exp(rt, env, 1.0) == pytest.approx(math.e)

    def test_exp_clamps_extremes(self, rt, env):
        assert call_exp(rt, env, 10000.0) == pytest.approx(math.exp(700))

    def test_log_value(self, rt, env):
        assert call_log(rt, env, math.e) == pytest.approx(1.0)

    def test_log_nonpositive(self, rt, env):
        assert call_log(rt, env, 0.0) == -math.inf

    def test_sqrt(self, rt, env):
        assert call_sqrt(rt, env, 9.0) == pytest.approx(3.0)

    def test_isnan(self, rt, env):
        assert call_isnan(rt, env, float("nan")) is True
        assert call_isnan(rt, env, 1.0) is False

    def test_symbol_names_emitted(self, rt, env):
        call_exp(rt, env, 1.0)
        names = [e.name for e in rt.observer.events if isinstance(e, FnEnter)]
        assert names == ["__ieee754_exp"]

    def test_mpn_mul_magnitude(self, rt, env):
        assert call_mpn_mul(rt, env, 3, 5, n_limbs=2) == (3 * 2) * (5 * 2)


class TestMemoryUtilities:
    def test_memcpy_copies(self, rt):
        src = rt.arena.alloc_u8("src", 32)
        dst = rt.arena.alloc_u8("dst", 32)
        src.poke_block(np.arange(32, dtype=np.uint8))
        memcpy(rt, dst, 0, src, 0, 32)
        assert (dst.peek_block() == src.peek_block()).all()

    def test_memmove_moves(self, rt):
        buf = rt.arena.alloc_u8("b", 16)
        buf.poke_block(np.arange(16, dtype=np.uint8))
        memmove(rt, buf, 4, buf, 0, 8)
        assert list(buf.peek_block(4, 8)) == list(range(8))

    def test_memset_fills(self, rt):
        buf = rt.arena.alloc_u8("b", 16)
        memset(rt, buf, 0, 16, 7)
        assert (buf.peek_block() == 7).all()

    def test_memchr_found_and_missing(self, rt):
        buf = rt.arena.alloc_u8("b", 16)
        buf.poke(9, 42)
        assert memchr(rt, buf, 0, 16, 42) == 9
        assert memchr(rt, buf, 0, 8, 42) == -1

    def test_string_compare(self, rt):
        a = rt.arena.alloc_u8("a", 8)
        b = rt.arena.alloc_u8("b", 8)
        a.poke_block([1, 2, 3, 4, 5, 6, 7, 8])
        b.poke_block([1, 2, 3, 4, 5, 6, 7, 8])
        assert string_compare(rt, a, 0, b, 0, 8) == 0
        b.poke(3, 9)
        assert string_compare(rt, a, 0, b, 0, 8) < 0

    def test_string_assign(self, rt, env):
        src = rt.arena.alloc_u8("src", 16)
        dst = rt.arena.alloc_u8("dst", 16)
        src.poke_block(np.full(16, 3, dtype=np.uint8))
        string_assign(rt, env, dst, src, 0, 8)
        assert (dst.peek_block(0, 8) == 3).all()


class TestAllocator:
    def test_new_advances_cursor(self, rt, env):
        a = op_new(rt, env, 64)
        b = op_new(rt, env, 64)
        assert b == a + 64

    def test_free_records_token(self, rt, env):
        token = op_new(rt, env, 8)
        op_free(rt, env, token)
        assert env.heap_meta.peek(1) == token

    def test_rodata_staged_untraced(self, rt):
        """LibEnv staging must not emit trace events (it is program input)."""
        before = len(rt.observer.events)
        LibEnv.create(rt.arena)
        assert len(rt.observer.events) == before
