"""Behavioral checks for the remaining miniatures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SigilConfig, SigilProfiler
from repro.trace import NullObserver
from repro.workloads import get_workload


def profiled(name: str):
    sigil = SigilProfiler(SigilConfig())
    get_workload(name, "simsmall").run(sigil)
    return sigil.profile()


class TestFluidanimate:
    def test_compute_forces_dominates(self):
        prof = profiled("fluidanimate")
        cf = prof.by_name()["ComputeForces"]
        assert cf.ops / prof.total_ops() > 0.8

    def test_step_to_step_dependency(self):
        """ComputeForces rewrites positions each step and re-reads them the
        next step: the context has local unique bytes."""
        prof = profiled("fluidanimate")
        cf = prof.contexts_named("ComputeForces")[0]
        assert prof.unique_local_bytes(cf.id) > 0

    def test_positions_stay_bounded(self):
        w = get_workload("fluidanimate", "simsmall")
        w.run(NullObserver())
        assert np.isfinite(w.checksum)


class TestCanneal:
    def test_swaps_are_accepted(self):
        prof = profiled("canneal")
        swap = prof.contexts_named("netlist::swap_locations")[0]
        assert swap.calls > 10

    def test_driver_self_cost_dominates(self):
        """'Fewer hot code regions': most operations sit in main itself."""
        prof = profiled("canneal")
        main_ops = prof.by_name()["main"].ops
        assert main_ops / prof.total_ops() > 0.35

    def test_locale_output_consumed(self):
        prof = profiled("canneal")
        locale = prof.contexts_named("std::locale::locale")[0]
        assert prof.unique_output_bytes(locale.id) > 0


class TestBodytrack:
    def test_error_values_flow_to_weights(self):
        prof = profiled("bodytrack")
        iei = [
            n for n in prof.contexts_named("ImageMeasurements::ImageErrorInside")
            if n.parent.name == "CalcLikelihood"
        ][0]
        cl = prof.contexts_named("CalcLikelihood")[0]
        assert prof.comm.get(iei.id, cl.id).unique_bytes > 0

    def test_fleximage_set_is_copy_dominated(self):
        prof = profiled("bodytrack")
        fs = prof.contexts_named("FlexImage::Set")[0]
        memcpy_children = [c for c in fs.children.values() if c.name == "memcpy"]
        assert memcpy_children
        copy_ops = sum(prof.fn_comm(c.id).ops for c in memcpy_children)
        assert copy_ops > prof.fn_comm(fs.id).ops


class TestSwaptionsAndFerret:
    @pytest.mark.parametrize("name", ["swaptions", "ferret"])
    def test_low_coverage_shape(self, name):
        """Driver glue in main dominates: under half the ops in kernels
        below any single candidate."""
        prof = profiled(name)
        main_ops = prof.by_name()["main"].ops
        assert main_ops / prof.total_ops() > 0.35

    def test_monte_carlo_price_positive(self):
        w = get_workload("swaptions", "simsmall")
        w.run(NullObserver())
        assert w.checksum > 0

    def test_ferret_queries_touch_database(self):
        prof = profiled("ferret")
        qi = prof.contexts_named("query_index")[0]
        assert prof.fn_comm(qi.id).read_bytes > 1000


class TestFreqmine:
    def test_patterns_found(self):
        w = get_workload("freqmine", "simsmall")
        w.run(NullObserver())
        assert w.checksum > 0

    def test_tree_nodes_reused_across_transactions(self):
        """Root-adjacent FP-tree nodes are touched by many transactions:
        insert_transaction re-reads its own earlier writes."""
        prof = profiled("freqmine")
        ins = prof.contexts_named("insert_transaction")[0]
        local = prof.comm.get(ins.id, ins.id)
        assert local.unique_bytes + local.nonunique_bytes > 0


class TestRaytrace:
    def test_scene_is_reread_heavily(self):
        prof = profiled("raytrace")
        trace = prof.contexts_named("TraceRay")
        nonunique = sum(
            e.nonunique_bytes
            for (_, r), e in prof.comm.items()
            if any(r == t.id for t in trace)
        )
        unique = sum(
            e.unique_bytes
            for (_, r), e in prof.comm.items()
            if any(r == t.id for t in trace)
        )
        assert nonunique > unique  # BVH/triangles re-read across rays

    def test_recursion_depth_creates_nested_contexts(self):
        prof = profiled("raytrace")
        depths = {len(n.path) for n in prof.contexts_named("TraceRay")}
        assert len(depths) >= 2  # top-level and reflection contexts


class TestX264:
    def test_cabac_state_serialises(self):
        prof = profiled("x264")
        cabac = prof.contexts_named("cabac_encode")[0]
        local = prof.comm.get(cabac.id, cabac.id)
        assert local.unique_bytes + local.nonunique_bytes > 0

    def test_reference_frame_reused_by_motion_search(self):
        prof = profiled("x264")
        sad = prof.contexts_named("x264_pixel_sad")[0]
        inbound = [
            e for (w, r), e in prof.comm.items() if r == sad.id
        ]
        assert sum(e.nonunique_bytes for e in inbound) > 0

    def test_bitstream_produced(self):
        w = get_workload("x264", "simsmall")
        w.run(NullObserver())
        assert w.checksum > 0


class TestFacesimAndLibquantum:
    def test_facesim_residual_finite(self):
        w = get_workload("facesim", "simsmall")
        w.run(NullObserver())
        assert np.isfinite(w.checksum)

    def test_facesim_footprint_is_suite_heavy(self):
        prof = profiled("facesim")
        assert prof.shadow_stats.shadow_bytes > 4 * 1024 * 1024

    def test_libquantum_norm_preserved_roughly(self):
        """Gates permute/flip amplitudes; the state's magnitude must not
        explode or vanish."""
        w = get_workload("libquantum", "simsmall")
        w.run(NullObserver())
        assert 0.1 < w.checksum < 10.0

    def test_libquantum_chunks_independent(self):
        """Each gate-apply chunk only touches its own state slice: the gate
        kernels' unique local/input traffic matches the chunked layout."""
        prof = profiled("libquantum")
        gate = prof.contexts_named("quantum_gate_apply")[0]
        kernels = [c for c in gate.children.values()]
        assert kernels
        for k in kernels:
            assert prof.fn_comm(k.id).read_bytes > 0
