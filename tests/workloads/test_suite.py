"""Suite-wide workload tests: every benchmark, every size."""

from __future__ import annotations

import pytest

from repro.core import SigilConfig, SigilProfiler
from repro.trace.observer import BaseObserver, NullObserver
from repro.workloads import ALL_NAMES, PARSEC_NAMES, WORKLOADS, InputSize, get_workload


class BalanceChecker(BaseObserver):
    """Asserts enter/exit balance and sane event arguments on the fly."""

    def __init__(self) -> None:
        self.depth = 0
        self.max_depth = 0
        self.events = 0
        self.ops = 0

    def on_fn_enter(self, name: str) -> None:
        assert name and "\n" not in name
        self.depth += 1
        self.max_depth = max(self.max_depth, self.depth)

    def on_fn_exit(self, name: str) -> None:
        self.depth -= 1
        assert self.depth >= 0, "function exit without matching enter"

    def on_mem_read(self, addr: int, size: int) -> None:
        assert addr >= 0 and size > 0
        self.events += 1

    def on_mem_write(self, addr: int, size: int) -> None:
        assert addr >= 0 and size > 0
        self.events += 1

    def on_op(self, kind, count: int) -> None:
        assert count > 0
        self.ops += count


class TestRegistry:
    def test_fourteen_workloads(self):
        assert len(ALL_NAMES) == 14
        assert len(PARSEC_NAMES) == 13
        assert "libquantum" in ALL_NAMES and "libquantum" not in PARSEC_NAMES

    def test_names_match_classes(self):
        for name, cls in WORKLOADS.items():
            assert cls.name == name
            assert cls.description

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            get_workload("vips", "gigantic")


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryWorkload:
    def test_runs_balanced(self, name):
        checker = BalanceChecker()
        get_workload(name, "simsmall").run(checker)
        assert checker.depth == 0
        assert checker.max_depth >= 2, "expected at least main + one kernel"
        assert checker.events > 0 and checker.ops > 0

    def test_deterministic_checksum(self, name):
        w1 = get_workload(name, "simsmall")
        w2 = get_workload(name, "simsmall")
        w1.run(NullObserver())
        w2.run(NullObserver())
        assert w1.checksum == w2.checksum

    def test_all_sizes_defined(self, name):
        cls = WORKLOADS[name]
        assert set(cls.PARAMS) == set(InputSize)

    def test_sizes_scale_up(self, name):
        """simmedium must do at least as much work as simsmall."""
        small = BalanceChecker()
        medium = BalanceChecker()
        get_workload(name, "simsmall").run(small)
        get_workload(name, "simmedium").run(medium)
        assert medium.ops > small.ops

    def test_profiles_under_sigil(self, name):
        sigil = SigilProfiler(SigilConfig())
        get_workload(name, "simsmall").run(sigil)
        prof = sigil.profile()
        assert prof.total_time > 0
        assert len(prof.contexts()) >= 3
        assert len(prof.comm) > 0


EXPECTED_FUNCTIONS = {
    "blackscholes": {"strtof", "BlkSchlsEqEuroNoDiv", "CNDF", "__ieee754_expf",
                     "__ieee754_logf", "__mpn_mul", "free", "dl_addr"},
    "bodytrack": {"FlexImage::Set", "ImageMeasurements::ImageErrorInside",
                  "DMatrix", "std::vector", "_IO_file_xsgetn", "_IO_sputbackc"},
    "canneal": {"netlist::swap_locations", "mul", "memchr", "memmove",
                "std::string::compare", "__mpn_rshift", "__mpn_lshift",
                "std::locale::locale", "std::basic_string", "operator new",
                "isnan"},
    "dedup": {"sha1_block_data_order", "adler32", "_tr_flush_block",
              "write_file", "hashtable_search"},
    "facesim": {"Update_Position_Based_State", "Add_Velocity_Independent_Forces",
                "One_Newton_Step_Toward_Steady_State", "CG_Iterate",
                "Update_Collision_Body_List"},
    "ferret": {"image_segment", "extract_features", "query_index", "emd",
               "rank_candidates"},
    "fluidanimate": {"RebuildGrid", "ComputeDensities", "ComputeForces",
                     "ProcessCollisions", "AdvanceParticles"},
    "freqmine": {"scan1_DB", "build_header_table", "insert_transaction",
                 "FP_growth"},
    "libquantum": {"quantum_sigma_x", "quantum_cnot", "quantum_toffoli",
                   "quantum_gate_apply"},
    "raytrace": {"BuildBVH", "RenderFrame", "RenderTile", "TraceRay",
                 "Intersect", "Shade"},
    "streamcluster": {"streamCluster", "localSearch", "pkmedian", "dist",
                      "lrand48", "__nrand48_r", "drand48_iterate"},
    "swaptions": {"HJM_Swaption_Blocking", "HJM_SimPath_Forward_Blocking",
                  "Discount_Factors_Blocking", "RanUnif"},
    "vips": {"affine_gen", "conv_gen", "imb_XYZ2Lab", "im_generate",
             "im_prepare", "im_wrapmany"},
    "x264": {"motion_search", "x264_pixel_sad", "x264_macroblock_analyse",
             "dct4x4", "quant4x4", "cabac_encode", "x264_encoder_encode"},
}


@pytest.mark.parametrize("name", sorted(EXPECTED_FUNCTIONS))
def test_paper_function_inventory(name):
    """Each miniature carries the hot-function names the paper reports."""
    sigil = SigilProfiler(SigilConfig())
    get_workload(name, "simsmall").run(sigil)
    prof = sigil.profile()
    profiled = {node.name for node in prof.contexts()}
    missing = EXPECTED_FUNCTIONS[name] - profiled
    assert not missing, f"{name} missing paper functions: {missing}"


def test_sha1_two_contexts_in_dedup():
    """Table II lists sha1_block_data_order twice: two calling contexts."""
    sigil = SigilProfiler(SigilConfig())
    get_workload("dedup", "simsmall").run(sigil)
    contexts = sigil.profile().contexts_named("sha1_block_data_order")
    assert len(contexts) == 2


def test_image_error_inside_two_contexts_in_bodytrack():
    sigil = SigilProfiler(SigilConfig())
    get_workload("bodytrack", "simsmall").run(sigil)
    contexts = sigil.profile().contexts_named(
        "ImageMeasurements::ImageErrorInside"
    )
    assert len(contexts) == 2


def test_conv_gen_two_contexts_in_vips():
    sigil = SigilProfiler(SigilConfig())
    get_workload("vips", "simsmall").run(sigil)
    assert len(sigil.profile().contexts_named("conv_gen")) == 2
