"""All three PARSEC-style input sizes run and scale for every workload."""

from __future__ import annotations

import pytest

from repro.core import SigilConfig, SigilProfiler
from repro.trace import NullObserver
from repro.workloads import ALL_NAMES, InputSize, get_workload


@pytest.mark.parametrize("name", ALL_NAMES)
def test_simlarge_runs(name):
    w = get_workload(name, InputSize.SIMLARGE)
    w.run(NullObserver())
    assert hasattr(w, "checksum")


@pytest.mark.parametrize("name", ["blackscholes", "dedup", "vips"])
def test_work_scales_monotonically(name):
    times = []
    for size in InputSize:
        profiler = SigilProfiler(SigilConfig())
        get_workload(name, size).run(profiler)
        times.append(profiler.profile().total_time)
    assert times == sorted(times)
    assert times[-1] > 1.5 * times[0]


def test_size_strings_accepted():
    w = get_workload("x264", "simlarge")
    assert w.size is InputSize.SIMLARGE
