"""The paper's release story, end to end.

"We will shortly release both the tool and post processing scripts ... In
addition, we plan to release the profile data for many commonly used
benchmarks.  As these profiles are platform independent, researchers can use
the data without running Sigil." (section VI)

This test builds that release bundle -- profiles, event files and
callgrind-equivalent profiles for the whole suite -- then runs every
post-processing study purely from the files.
"""

from __future__ import annotations

import pytest

from repro import SigilConfig, profile_workload
from repro.analysis import (
    analyze_critical_path,
    byte_reuse_breakdown,
    coverage_report,
    render_calltree,
    top_reuse_functions,
    trim_calltree,
)
from repro.io import (
    dump_callgrind,
    dump_events,
    dump_profile,
    load_callgrind,
    load_events,
    load_profile,
)

BUNDLE = ("blackscholes", "canneal", "streamcluster", "vips")


@pytest.fixture(scope="module")
def bundle_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("release-bundle")
    for name in BUNDLE:
        run = profile_workload(
            name, "simsmall",
            config=SigilConfig(reuse_mode=True, event_mode=True),
        )
        dump_profile(run.sigil, root / f"{name}.profile")
        dump_events(run.sigil.events, root / f"{name}.events")
        dump_callgrind(run.callgrind, root / f"{name}.cg")
    return root


class TestOfflineStudies:
    def test_bundle_complete(self, bundle_dir):
        for name in BUNDLE:
            for suffix in (".profile", ".events", ".cg"):
                assert (bundle_dir / f"{name}{suffix}").exists()

    def test_partitioning_study_from_files(self, bundle_dir):
        for name in BUNDLE:
            sigil = load_profile(bundle_dir / f"{name}.profile")
            callgrind = load_callgrind(bundle_dir / f"{name}.cg")
            trimmed = trim_calltree(sigil, callgrind)
            report = coverage_report(name, trimmed)
            assert trimmed.candidates
            assert 0.0 < report.coverage <= 1.0

    def test_reuse_study_from_files(self, bundle_dir):
        for name in BUNDLE:
            sigil = load_profile(bundle_dir / f"{name}.profile")
            breakdown = byte_reuse_breakdown(sigil)
            assert sum(breakdown.values()) == pytest.approx(1.0)
        vips = load_profile(bundle_dir / "vips.profile")
        labels = {r.label for r in top_reuse_functions(vips, n=6)}
        assert any(label.startswith("conv_gen") for label in labels)

    def test_critical_path_study_from_files(self, bundle_dir):
        values = {}
        for name in BUNDLE:
            events = load_events(bundle_dir / f"{name}.events")
            values[name] = analyze_critical_path(events).max_parallelism
        assert values["streamcluster"] > values["vips"]

    def test_calltree_render_from_files(self, bundle_dir):
        sigil = load_profile(bundle_dir / "canneal.profile")
        tree = render_calltree(sigil)
        assert "mul" in tree

    def test_bundle_matches_fresh_run(self, bundle_dir):
        """Offline results must equal a fresh live run bit for bit."""
        from repro.io import dumps_profile

        fresh = profile_workload(
            "canneal", "simsmall",
            config=SigilConfig(reuse_mode=True, event_mode=True),
        )
        stored = (bundle_dir / "canneal.profile").read_text()
        assert dumps_profile(fresh.sigil) == stored
