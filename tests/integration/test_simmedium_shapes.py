"""Scale robustness: the evaluation's qualitative shapes hold at simmedium.

The benches assert the paper's claims at simsmall; these tests re-check the
headline orderings at the next input scale, guarding against conclusions
that only hold at one size.
"""

from __future__ import annotations

import pytest

from repro import SigilConfig, profile_workload
from repro.analysis import (
    analyze_critical_path,
    byte_reuse_breakdown,
    top_reuse_functions,
    trim_calltree,
)


@pytest.fixture(scope="module")
def medium_runs():
    cfg = SigilConfig(reuse_mode=True, event_mode=True)
    names = ("blackscholes", "canneal", "fluidanimate", "streamcluster", "vips")
    return {name: profile_workload(name, "simmedium", config=cfg) for name in names}


class TestPartitioningShapes:
    def test_best_candidates_near_one(self, medium_runs):
        for name in ("blackscholes", "canneal"):
            run = medium_runs[name]
            trimmed = trim_calltree(run.sigil, run.callgrind)
            best = trimmed.sorted_candidates()[0]
            assert best.breakeven < 1.3, name

    def test_canneal_coverage_still_low(self, medium_runs):
        run = medium_runs["canneal"]
        trimmed = trim_calltree(run.sigil, run.callgrind)
        assert trimmed.coverage < 0.65

    def test_utility_functions_still_worst(self, medium_runs):
        run = medium_runs["blackscholes"]
        trimmed = trim_calltree(run.sigil, run.callgrind)
        worst = trimmed.sorted_candidates(worst_first=True)[:3]
        assert {"free", "dl_addr", "std::vector"} & {c.name for c in worst}


class TestCriticalPathShapes:
    def test_fluidanimate_stays_serial(self, medium_runs):
        result = analyze_critical_path(medium_runs["fluidanimate"].sigil.events)
        assert result.max_parallelism < 2.0

    def test_streamcluster_stays_parallel(self, medium_runs):
        run = medium_runs["streamcluster"]
        result = analyze_critical_path(run.sigil.events)
        assert result.max_parallelism > 5.0
        chain = result.path_functions(run.sigil.tree)
        assert "drand48_iterate" in chain and "pkmedian" in chain


class TestReuseShapes:
    def test_vips_conv_gen_still_tops_lifetimes(self, medium_runs):
        profile = medium_runs["vips"].sigil
        rankings = top_reuse_functions(profile, n=6)
        floor = max(r.reused_windows for r in rankings) * 0.01
        major = [r for r in rankings if r.reused_windows >= floor]
        top = max(major, key=lambda r: r.average_lifetime)
        assert top.label.startswith("conv_gen")

    def test_blackscholes_still_reuse_free(self, medium_runs):
        breakdown = byte_reuse_breakdown(medium_runs["blackscholes"].sigil)
        assert breakdown["0"] > 0.9
