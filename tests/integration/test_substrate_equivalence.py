"""Substrate equivalence: the VM and the traced-Python runtime must produce
identical communication classification for the same program logic.

The paper's claim that Sigil "can use any framework that identifies
communicating entities" only holds if the methodology is
substrate-independent.  This differential test implements one program --
a producer filling a buffer, a consumer reducing it (with a re-read), and a
finalizer overwriting part of it -- on both substrates, with identical
function names and identical memory access sequences, and requires the
communication matrices to match byte for byte.
"""

from __future__ import annotations

import pytest

from repro.core import SigilConfig, SigilProfiler
from repro.runtime import TracedRuntime
from repro.vm import Machine, ProgramBuilder

BASE = 0x4000
N = 8  # 8-byte elements


def run_vm_version():
    pb = ProgramBuilder()

    main = pb.function("main")
    buf = main.const(BASE)
    main.call("produce", args=[buf])
    main.call("consume", args=[buf])
    main.call("finalize", args=[buf])
    main.ret()

    produce = pb.function("produce", n_params=1)
    for i in range(N):
        v = produce.const(i * 3)
        produce.store(v, produce.param(0), offset=8 * i, size=8)
    produce.ret()

    consume = pb.function("consume", n_params=1)
    acc = consume.const(0)
    for i in range(N):
        v = consume.load(consume.param(0), offset=8 * i, size=8)
        consume.alu("add", acc, v, dst=acc)
    # Re-read the first element (non-unique).
    consume.load(consume.param(0), offset=0, size=8)
    consume.store(acc, consume.param(0), offset=8 * N, size=8)
    consume.ret()

    finalize = pb.function("finalize", n_params=1)
    total = finalize.load(finalize.param(0), offset=8 * N, size=8)
    finalize.store(total, finalize.param(0), offset=0, size=8)  # overwrite
    finalize.load(finalize.param(0), offset=0, size=8)          # own write
    finalize.ret()

    profiler = SigilProfiler(SigilConfig())
    Machine().run(pb.build(), profiler)
    return profiler.profile()


def run_runtime_version():
    profiler = SigilProfiler(SigilConfig())
    rt = TracedRuntime(profiler)
    with rt.run("main"):
        with rt.frame("produce"):
            for i in range(N):
                rt.observer.on_mem_write(BASE + 8 * i, 8)
        with rt.frame("consume"):
            for i in range(N):
                rt.observer.on_mem_read(BASE + 8 * i, 8)
            rt.observer.on_mem_read(BASE, 8)
            rt.observer.on_mem_write(BASE + 8 * N, 8)
        with rt.frame("finalize"):
            rt.observer.on_mem_read(BASE + 8 * N, 8)
            rt.observer.on_mem_write(BASE, 8)
            rt.observer.on_mem_read(BASE, 8)
    return profiler.profile()


def comm_by_paths(profile):
    def path_of(ctx):
        return None if ctx < 0 else profile.tree.node(ctx).path

    return {
        (path_of(w), path_of(r)): (e.unique_bytes, e.nonunique_bytes)
        for (w, r), e in profile.comm.items()
    }


class TestSubstrateEquivalence:
    def test_comm_matrices_identical(self):
        vm = comm_by_paths(run_vm_version())
        py = comm_by_paths(run_runtime_version())
        assert vm == py

    def test_expected_classification(self):
        prof = run_vm_version()
        produce = prof.tree.find(("main", "produce"))
        consume = prof.tree.find(("main", "consume"))
        finalize = prof.tree.find(("main", "finalize"))
        edge = prof.comm.get(produce.id, consume.id)
        assert edge.unique_bytes == 8 * N
        assert edge.nonunique_bytes == 8  # the deliberate re-read
        assert prof.comm.get(consume.id, finalize.id).unique_bytes == 8
        # finalize reads its own overwrite: local.
        assert prof.unique_local_bytes(finalize.id) == 8

    def test_memory_traffic_totals_match(self):
        vm = run_vm_version()
        py = run_runtime_version()
        for path in (("main", "produce"), ("main", "consume"), ("main", "finalize")):
            a = vm.fn_comm(vm.tree.find(path).id)
            b = py.fn_comm(py.tree.find(path).id)
            assert (a.reads, a.read_bytes, a.writes, a.write_bytes) == (
                b.reads, b.read_bytes, b.writes, b.write_bytes
            ), path


class TestRobustness:
    def test_unbalanced_exit_raises_clear_error(self):
        p = SigilProfiler(SigilConfig())
        p.on_run_begin()
        p.on_fn_enter("f")
        p.on_fn_exit("f")
        with pytest.raises(RuntimeError, match="unbalanced"):
            p.on_fn_exit("f")

    def test_profile_idempotent(self):
        p = SigilProfiler(SigilConfig(reuse_mode=True))
        p.on_run_begin()
        p.on_fn_enter("f")
        p.on_mem_write(0x10, 8)
        p.on_mem_read(0x10, 8)
        p.on_fn_exit("f")
        p.on_run_end()
        first = p.profile().reuse.byte_breakdown()
        second = p.profile().reuse.byte_breakdown()
        assert first == second  # finalisation must not double-retire
