"""Acceptance: out-of-core analyses stay memory-bounded on large logs.

Generates a multi-million-segment v2 event log chunk-by-chunk (never holding
the full tables) and checks that the streaming analyses keep their peak
memory well below what materialising the log would require.  The windowed
pass is measured with :mod:`tracemalloc` (NumPy buffers are tracked);
the critical-path pass -- whose per-segment Python DP makes tracemalloc
prohibitively slow -- is measured as subprocess peak RSS
(``resource.ru_maxrss``) against the materialised analysis of the same file.

``REPRO_STREAM_TEST_SEGMENTS`` scales the log (default 2M segments; set
10000000 for the full acceptance run).
"""

from __future__ import annotations

import os
import subprocess
import sys
import tracemalloc

import numpy as np
import pytest

from repro.analysis.windowed import windowed_curves
from repro.core.segments import DATA_EDGE_DTYPE, OC_EDGE_DTYPE, SEG_DTYPE
from repro.io.eventbin import BinaryEventWriter

N_SEGMENTS = int(os.environ.get("REPRO_STREAM_TEST_SEGMENTS", 2_000_000))
OPS_PER_SEGMENT = 3
_GEN_CHUNK = 1 << 18


def write_big_log(path, n: int) -> int:
    """A serial chain with order edges and distance-7 data edges.

    Written in bounded chunks via the bulk writer API; returns the
    byte size of the three tables were they materialised.
    """
    with BinaryEventWriter(path, compression=None) as w:
        for lo in range(0, n, _GEN_CHUNK):
            hi = min(lo + _GEN_CHUNK, n)
            ids = np.arange(lo, hi)
            segs = np.zeros(len(ids), dtype=SEG_DTYPE)
            segs["ctx"] = ids % 64
            segs["call"] = ids
            segs["start"] = ids * OPS_PER_SEGMENT
            segs["ops"] = OPS_PER_SEGMENT
            w.write_segments(segs)
            oced = np.zeros(len(ids), dtype=OC_EDGE_DTYPE)
            oced["src"] = np.maximum(ids - 1, 0)
            oced["dst"] = ids
            w.write_order_call_edges(oced[1 if lo == 0 else 0 :])
            data = np.zeros(len(ids), dtype=DATA_EDGE_DTYPE)
            data["src"] = np.maximum(ids - 7, 0)
            data["dst"] = ids
            data["bytes"] = 8
            w.write_data_edges(data[7 if lo == 0 else 0 :])
    return n * (
        SEG_DTYPE.itemsize + OC_EDGE_DTYPE.itemsize + DATA_EDGE_DTYPE.itemsize
    )


@pytest.fixture(scope="module")
def big_log(tmp_path_factory):
    path = tmp_path_factory.mktemp("stream") / "big.bin"
    table_bytes = write_big_log(path, N_SEGMENTS)
    return path, table_bytes


def _subprocess_maxrss_kb(code: str) -> int:
    """Peak RSS (KiB on Linux) of one python child running ``code``."""
    wrapped = (
        "import resource, sys\n"
        + code
        + "\nprint('MAXRSS', resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", wrapped],
        capture_output=True, text=True, check=True,
        env={**os.environ, "PYTHONPATH": "src"},
    ).stdout
    return int(out.rsplit("MAXRSS", 1)[1].strip())


class TestWindowedMemory:
    def test_peak_is_bounded_by_chunks_not_tables(self, big_log):
        path, table_bytes = big_log
        tracemalloc.start()
        curves = windowed_curves(path)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # The pass holds ~16B/segment (start+end columns) plus one decoded
        # chunk; materialising would hold the full 88B/row tables.
        assert peak < table_bytes * 0.75
        assert curves.total_segments == N_SEGMENTS
        assert int(curves.ops.sum()) == N_SEGMENTS * OPS_PER_SEGMENT
        assert curves.total_comm_bytes == (N_SEGMENTS - 7) * 8

    def test_peak_chunk_gauge_reflects_decode_bound(self, big_log):
        from repro.io.eventbin import DEFAULT_CHUNK_ROWS
        from repro.telemetry import Telemetry

        path, _ = big_log
        tel = Telemetry()
        windowed_curves(path, telemetry=tel)
        peak_chunk = tel.metrics.snapshot()["analysis.stream.peak_chunk_bytes"]
        assert 0 < peak_chunk <= DEFAULT_CHUNK_ROWS * SEG_DTYPE.itemsize


class TestCriticalPathMemory:
    def test_streamed_rss_below_materialised(self, big_log):
        """The streamed DP's whole-process peak RSS stays under both the
        materialised run's and the import baseline plus the per-segment
        streaming state (16B/seg plus bounded chunk buffers)."""
        path, table_bytes = big_log
        baseline = _subprocess_maxrss_kb(
            "import numpy\nimport repro.analysis\n"
        )
        streamed = _subprocess_maxrss_kb(
            "from repro.analysis import analyze_critical_path\n"
            f"r = analyze_critical_path({str(path)!r})\n"
            f"assert r.critical_length == {N_SEGMENTS * OPS_PER_SEGMENT}\n"
        )
        materialised = _subprocess_maxrss_kb(
            "from repro.analysis import analyze_critical_path\n"
            "from repro.io import load_event_arrays\n"
            f"r = analyze_critical_path(load_event_arrays({str(path)!r}))\n"
            f"assert r.critical_length == {N_SEGMENTS * OPS_PER_SEGMENT}\n"
        )
        assert streamed < materialised
        # Absolute bound: import baseline + streaming state (inclusive +
        # best_pred columns with doubling growth => <= 48B/seg transient)
        # + decoded chunk buffers; far below the 88B/row tables.
        slack_kb = 64 * 1024
        assert streamed - baseline < 48 * N_SEGMENTS // 1024 + slack_kb
        assert streamed - baseline < table_bytes // 1024
