"""End-to-end integration tests: workload -> profile -> every analysis."""

from __future__ import annotations

import pytest

from repro import (
    InputSize,
    SigilConfig,
    line_reuse_run,
    native_seconds,
    profile_workload,
)
from repro.analysis import (
    CDFG,
    analyze_critical_path,
    byte_reuse_breakdown,
    coverage_report,
    top_reuse_functions,
    trim_calltree,
)
from repro.io import dumps_events, dumps_profile, loads_events, loads_profile


class TestHarness:
    def test_profile_workload_returns_everything(self):
        run = profile_workload(
            "blackscholes", "simsmall",
            config=SigilConfig(reuse_mode=True, event_mode=True),
        )
        assert run.name == "blackscholes"
        assert run.size == InputSize.SIMSMALL
        assert run.sigil is not None and run.callgrind is not None
        assert run.wall_seconds > 0

    def test_sigil_only(self):
        run = profile_workload("vips", "simsmall", with_callgrind=False)
        assert run.callgrind is None
        assert run.sigil is not None

    def test_callgrind_only(self):
        run = profile_workload("vips", "simsmall", with_sigil=False)
        assert run.sigil is None
        assert run.callgrind is not None

    def test_native_seconds(self):
        assert native_seconds("streamcluster", "simsmall") > 0

    def test_line_reuse_run(self):
        profiler = line_reuse_run("freqmine", "simsmall")
        assert profiler.n_lines > 0
        breakdown = profiler.reuse_breakdown()
        assert sum(breakdown.values()) == profiler.n_lines


class TestToolAgreement:
    """Sigil and the Callgrind-equivalent observe the same run: totals on
    shared metrics must agree exactly."""

    @pytest.mark.parametrize("name", ["blackscholes", "dedup", "vips"])
    def test_ops_and_traffic_agree(self, name):
        run = profile_workload(name, "simsmall")
        sigil, cg = run.sigil, run.callgrind
        sigil_iops = sum(fc.iops for fc in sigil.functions.values())
        sigil_flops = sum(fc.flops for fc in sigil.functions.values())
        cg_inc = cg.inclusive_costs(cg.tree.root)
        assert sigil_iops == cg_inc.iops
        assert sigil_flops == cg_inc.flops
        sigil_read = sum(fc.read_bytes for fc in sigil.functions.values())
        assert sigil_read == cg_inc.read_bytes

    def test_context_trees_align(self):
        run = profile_workload("canneal", "simsmall")
        for node in run.sigil.contexts():
            if node.name.startswith("sys:"):
                continue  # syscall pseudo-nodes exist only on the Sigil side
            assert run.callgrind.tree.find(node.path) is not None, node.path


class TestOfflineAnalysis:
    """The paper's release model: run once, post-process the files forever."""

    def test_full_roundtrip_analysis(self, tmp_path):
        run = profile_workload(
            "streamcluster", "simsmall",
            config=SigilConfig(reuse_mode=True, event_mode=True),
        )
        profile_text = dumps_profile(run.sigil)
        events_text = dumps_events(run.sigil.events)

        prof = loads_profile(profile_text)
        events = loads_events(events_text)

        cdfg = CDFG(prof)
        assert cdfg.data_edges()
        result = analyze_critical_path(events)
        live = analyze_critical_path(run.sigil.events)
        assert result.max_parallelism == pytest.approx(live.max_parallelism)
        breakdown = byte_reuse_breakdown(prof)
        assert breakdown == byte_reuse_breakdown(run.sigil)

    def test_determinism_across_runs(self):
        """Two runs of the same workload produce identical profiles --
        'the profiles will remain the same despite the platform'."""
        cfg = SigilConfig(reuse_mode=True, event_mode=True)
        a = profile_workload("x264", "simsmall", config=cfg)
        b = profile_workload("x264", "simsmall", config=cfg)
        assert dumps_profile(a.sigil) == dumps_profile(b.sigil)
        assert dumps_events(a.sigil.events) == dumps_events(b.sigil.events)


class TestMemoryLimitAccuracy:
    """Section III-A: dedup runs with the FIFO memory limit; 'we found the
    corresponding loss of accuracy to be negligible'."""

    def test_dedup_limited_vs_unlimited(self):
        full = profile_workload("dedup", "simsmall", config=SigilConfig(reuse_mode=True))
        limited = profile_workload(
            "dedup", "simsmall",
            config=SigilConfig(reuse_mode=True, max_shadow_pages=8),
        )
        assert limited.sigil.shadow_stats.pages_evicted > 0
        assert limited.sigil.shadow_stats.live_pages <= 8

        def total_unique(prof):
            return sum(e.unique_bytes for _, e in prof.comm.items())

        full_u = total_unique(full.sigil)
        lim_u = total_unique(limited.sigil)
        # Eviction only loses producer identity; totals stay within a few
        # percent (reads of evicted bytes become program-input uniques).
        assert abs(full_u - lim_u) / full_u < 0.10

    def test_limited_run_bounds_footprint(self):
        limited = profile_workload(
            "dedup", "simmedium",
            config=SigilConfig(reuse_mode=True, max_shadow_pages=8),
        )
        full = profile_workload("dedup", "simmedium", config=SigilConfig(reuse_mode=True))
        assert (
            limited.sigil.shadow_stats.shadow_bytes
            < full.sigil.shadow_stats.shadow_bytes
        )


class TestPartitioningPipeline:
    def test_coverage_report_for_parsec(self):
        run = profile_workload("fluidanimate", "simsmall")
        trimmed = trim_calltree(run.sigil, run.callgrind)
        report = coverage_report("fluidanimate", trimmed)
        assert 0.5 < report.coverage <= 1.0
        assert report.n_candidates >= 1
        assert report.uncovered == pytest.approx(1.0 - report.coverage)

    def test_reuse_rankings_for_vips(self, vips_profile):
        rankings = top_reuse_functions(vips_profile, n=5)
        assert rankings
        assert all(r.average_lifetime > 0 for r in rankings)
