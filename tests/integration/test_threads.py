"""Multi-threaded tracing tests: per-thread stacks, cross-thread edges."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import analyze_critical_path
from repro.analysis.threads import per_thread_ops, thread_comm_matrix
from repro.callgrind import CallgrindCollector
from repro.core import SigilConfig, SigilProfiler
from repro.io import dumps_events, loads_events
from repro.runtime import TracedRuntime, run_interleaved, traced
from repro.trace import ObserverPipe


@traced("producer")
def producer(rt, buf, start, n):
    rt.iops(2 * n)
    buf.write_block(np.arange(n, dtype=np.float64), start)


@traced("consumer")
def consumer(rt, buf, start, n):
    data = buf.read_block(start, n)
    rt.flops(3 * n)
    return float(data.sum())


def two_thread_run(profiler):
    """Thread 1 produces into a shared buffer; thread 2 consumes it."""
    rt = TracedRuntime(profiler)
    with rt.run("main"):
        shared = rt.arena.alloc_f64("shared", 64)

        def t1():
            producer(rt, shared, 0, 32)
            yield
            producer(rt, shared, 32, 32)

        def t2():
            yield  # let the producer fill the first half
            consumer(rt, shared, 0, 32)
            yield
            consumer(rt, shared, 32, 32)

        run_interleaved(rt, {1: t1(), 2: t2()})
    return rt


class TestProfilerThreads:
    def test_cross_thread_edge_classified(self):
        p = SigilProfiler(SigilConfig())
        two_thread_run(p)
        prof = p.profile()
        prod = prof.contexts_named("producer")[0]
        cons = prof.contexts_named("consumer")[0]
        edge = prof.comm.get(prod.id, cons.id)
        assert edge.unique_bytes == 64 * 8

    def test_per_thread_stacks_balanced(self):
        p = SigilProfiler(SigilConfig())
        rt = two_thread_run(p)
        assert rt.depth == 0
        assert rt.current_thread == 0

    def test_interleaved_stacks_do_not_mix(self):
        """A function open on thread 1 must not become the parent of a
        function entered on thread 2."""
        p = SigilProfiler(SigilConfig())
        rt = TracedRuntime(p)
        with rt.run("main"):
            def t1():
                with rt.frame("alpha"):
                    yield  # switch away while alpha is open

            def t2():
                with rt.frame("beta"):
                    yield

            run_interleaved(rt, {1: t1(), 2: t2()})
        prof = p.profile()
        beta = prof.contexts_named("beta")[0]
        assert beta.path == ("beta",)  # rooted at the thread root, not alpha

    def test_serial_traces_unaffected(self):
        """Thread support must be invisible for single-threaded runs."""
        from repro.io import dumps_profile
        from repro.workloads import get_workload

        a = SigilProfiler(SigilConfig(reuse_mode=True))
        get_workload("canneal", "simsmall").run(a)
        text = dumps_profile(a.profile())
        assert "thread" not in text  # no new records for serial profiles


class TestEventThreads:
    def test_segments_carry_threads(self):
        p = SigilProfiler(SigilConfig(event_mode=True))
        two_thread_run(p)
        events = p.profile().events
        threads = {seg.thread for seg in events.segments}
        assert {0, 1, 2} <= threads

    def test_thread_comm_matrix(self):
        p = SigilProfiler(SigilConfig(event_mode=True))
        two_thread_run(p)
        summary = thread_comm_matrix(p.profile().events)
        assert summary.matrix.get((1, 2)) == 64 * 8
        assert summary.cross_thread_bytes >= 64 * 8
        assert 0 < summary.sharing_fraction() <= 1.0

    def test_per_thread_ops_balance(self):
        p = SigilProfiler(SigilConfig(event_mode=True))
        two_thread_run(p)
        ops = per_thread_ops(p.profile().events)
        assert ops[1] == 2 * 32 * 2   # producer iops
        assert ops[2] == 3 * 32 * 2   # consumer flops

    def test_eventfile_roundtrips_threads(self):
        p = SigilProfiler(SigilConfig(event_mode=True))
        two_thread_run(p)
        events = p.profile().events
        loaded = loads_events(dumps_events(events))
        assert [s.thread for s in loaded.segments] == [
            s.thread for s in events.segments
        ]

    def test_pre_thread_files_still_load(self):
        old = "# sigil-events 1\nseg 0 0 0 0 5\n"
        events = loads_events(old)
        assert events.segments[0].thread == 0

    def test_threads_expose_parallelism(self):
        """Two independent heavy threads -> parallelism near 2."""
        p = SigilProfiler(SigilConfig(event_mode=True))
        rt = TracedRuntime(p)
        with rt.run("main"):
            a = rt.arena.alloc_f64("a", 64)
            b = rt.arena.alloc_f64("b", 64)

            def worker(buf):
                producer(rt, buf, 0, 64)
                yield
                consumer(rt, buf, 0, 64)

            run_interleaved(rt, {1: worker(a), 2: worker(b)})
        result = analyze_critical_path(p.profile().events)
        assert result.max_parallelism == pytest.approx(2.0, rel=0.05)


class TestCallgrindThreads:
    def test_costs_attributed_per_thread_context(self):
        sigil = SigilProfiler(SigilConfig())
        cg = CallgrindCollector()
        pipe = ObserverPipe([sigil, cg])
        two_thread_run(pipe)
        prod = cg.tree.find(("producer",))
        cons = cg.tree.find(("consumer",))
        assert prod is not None and cons is not None
        assert cg.profile.costs_of(prod.id).iops == 2 * 32 * 2
        assert cg.profile.costs_of(cons.id).flops == 3 * 32 * 2


class TestParallelFluidanimate:
    def test_runs_and_is_deterministic(self):
        from repro.trace import NullObserver
        from repro.workloads.fluidanimate_parallel import ParallelFluidanimate

        a = ParallelFluidanimate("simsmall")
        b = ParallelFluidanimate("simsmall")
        a.run(NullObserver())
        b.run(NullObserver())
        assert a.checksum == b.checksum

    def test_ghost_exchange_creates_cross_thread_edges(self):
        from repro.workloads.fluidanimate_parallel import ParallelFluidanimate

        p = SigilProfiler(SigilConfig(event_mode=True))
        ParallelFluidanimate("simsmall").run(p)
        summary = thread_comm_matrix(p.profile().events)
        assert summary.cross_thread_bytes > 0
        assert summary.sharing_fraction() < 0.5  # mostly intra-partition

    def test_balanced_stacks(self):
        from repro.workloads.fluidanimate_parallel import ParallelFluidanimate

        p = SigilProfiler(SigilConfig())
        rt = ParallelFluidanimate("simsmall").run(p)
        assert rt.depth == 0
