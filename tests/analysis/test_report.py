"""Renderer tests: tables, bar charts, stacked bars, histograms."""

from __future__ import annotations

from repro.analysis import (
    format_si,
    render_barchart,
    render_histogram,
    render_stacked_bars,
    render_table,
)


class TestFormatSi:
    def test_scales(self):
        assert format_si(1234) == "1.23K"
        assert format_si(1_234_567) == "1.23M"
        assert format_si(2_000_000_000) == "2.00G"
        assert format_si(42) == "42"
        assert format_si(1.5) == "1.5"


class TestTable:
    def test_columns_aligned(self):
        out = render_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        header, rule, r1, r2 = lines
        assert header.index("value") == r1.index("1")

    def test_title(self):
        out = render_table(["x"], [[1]], title="Table II")
        assert out.splitlines()[0] == "Table II"


class TestBarchart:
    def test_bars_proportional(self):
        out = render_barchart({"a": 10.0, "b": 5.0}, width=10)
        a_line, b_line = out.splitlines()
        assert a_line.count("#") == 10
        assert b_line.count("#") == 5

    def test_empty(self):
        assert "(no data)" in render_barchart({})


class TestStackedBars:
    def test_percentages_shown(self):
        data = {"bench": {"0": 0.5, "1-9": 0.25, ">9": 0.25}}
        out = render_stacked_bars(data)
        assert "0:50.0%" in out
        assert "legend:" in out

    def test_rows_normalised_independently(self):
        data = {
            "a": {"x": 2.0, "y": 2.0},
            "b": {"x": 30.0, "y": 10.0},
        }
        out = render_stacked_bars(data)
        assert "x:50.0%" in out
        assert "x:75.0%" in out


class TestHistogram:
    def test_counts_displayed(self):
        out = render_histogram([(0, 100), (1000, 10), (2000, 1)])
        assert out.splitlines()[0].endswith("100")

    def test_log_scale_compresses(self):
        linear = render_histogram([(0, 1000), (1, 1)], log_scale=False, width=30)
        logd = render_histogram([(0, 1000), (1, 1)], log_scale=True, width=30)
        lin_small = linear.splitlines()[1].count("#")
        log_small = logd.splitlines()[1].count("#")
        assert log_small > lin_small

    def test_empty(self):
        assert "(no data)" in render_histogram([])
