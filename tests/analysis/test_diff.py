"""Profile-diff tests."""

from __future__ import annotations

import pytest

from repro.analysis import diff_profiles
from repro.core import SigilConfig, SigilProfiler
from repro.trace.events import OpKind


def make_profile(include_extra: bool, scale: int = 1):
    p = SigilProfiler(SigilConfig())
    p.on_run_begin()
    p.on_fn_enter("main")
    p.on_fn_enter("kernel")
    p.on_op(OpKind.INT, 100 * scale)
    p.on_mem_write(0x100, 8 * scale)
    p.on_fn_exit("kernel")
    p.on_fn_enter("reader")
    p.on_mem_read(0x100, 8 * scale)
    p.on_fn_exit("reader")
    if include_extra:
        p.on_fn_enter("extra")
        p.on_op(OpKind.FLOAT, 5)
        p.on_fn_exit("extra")
    p.on_fn_exit("main")
    p.on_run_end()
    return p.profile()


class TestDiff:
    def test_identical_profiles_zero_delta(self):
        diff = diff_profiles(make_profile(False), make_profile(False))
        assert all(d.ops_delta == 0 for d in diff.deltas)
        assert diff.ops_ratio == pytest.approx(1.0)
        assert not diff.appeared() and not diff.disappeared()

    def test_scaling_detected(self):
        diff = diff_profiles(make_profile(False, 1), make_profile(False, 3))
        kernel = next(d for d in diff.deltas if d.name == "kernel")
        assert kernel.ops == (100, 300)
        assert kernel.ops_ratio == pytest.approx(3.0)
        reader = next(d for d in diff.deltas if d.name == "reader")
        assert reader.unique_input == (8, 24)

    def test_appeared_and_disappeared(self):
        diff = diff_profiles(make_profile(False), make_profile(True))
        assert [d.name for d in diff.appeared()] == ["extra"]
        assert not diff.disappeared()
        reverse = diff_profiles(make_profile(True), make_profile(False))
        assert [d.name for d in reverse.disappeared()] == ["extra"]

    def test_matching_by_path_not_id(self):
        """Context ids differ across runs; matching must use paths."""
        a = make_profile(True)
        b = make_profile(True)
        diff = diff_profiles(a, b)
        assert all(d.ops_delta == 0 for d in diff.deltas)

    def test_ranking_by_absolute_change(self):
        diff = diff_profiles(make_profile(False, 1), make_profile(False, 4))
        top = diff.by_ops_change(1)
        assert top[0].name == "kernel"


class TestDiffCli:
    def test_cli_diff(self, capsys, tmp_path):
        from repro.cli import main
        from repro.io import dump_profile

        a, b = tmp_path / "a.profile", tmp_path / "b.profile"
        dump_profile(make_profile(False, 1), a)
        dump_profile(make_profile(True, 2), b)
        code = main(["diff", str(a), str(b)])
        out = capsys.readouterr().out
        assert code == 0
        assert "ops_delta" in out
        assert "only in subject" in out
