"""CDFG construction and sub-tree merging tests (Figures 1 and 2)."""

from __future__ import annotations

import pytest

from repro.analysis import CDFG, compute_inclusive, subtree_has_syscall
from repro.common.cct import INVALID_CTX


class TestCDFG:
    def test_call_edges_mirror_tree(self, toy_profiles):
        sigil, _ = toy_profiles
        cdfg = CDFG(sigil)
        edges = {(e.caller, e.callee) for e in cdfg.call_edges()}
        for node in cdfg.nodes():
            assert (node.parent.id, node.id) in edges

    def test_toy_data_edges_match_figure_1_shape(self, toy_profiles):
        """main feeds A and C; A feeds C and D1; C feeds D2."""
        sigil, _ = toy_profiles
        cdfg = CDFG(sigil)
        main = sigil.tree.find(("main",)).id
        a = sigil.tree.find(("main", "A")).id
        c = sigil.tree.find(("main", "C")).id
        d1 = sigil.tree.find(("main", "A", "D")).id
        d2 = sigil.tree.find(("main", "C", "D")).id
        pairs = {(e.writer, e.reader) for e in cdfg.data_edges()}
        assert (main, a) in pairs
        assert (main, c) in pairs
        assert (a, c) in pairs
        assert (a, d1) in pairs
        assert (c, d2) in pairs

    def test_edge_weights_are_unique_bytes(self, toy_profiles):
        sigil, _ = toy_profiles
        cdfg = CDFG(sigil)
        a = sigil.tree.find(("main", "A")).id
        c = sigil.tree.find(("main", "C")).id
        edge = next(e for e in cdfg.data_edges() if (e.writer, e.reader) == (a, c))
        assert edge.unique_bytes == 8

    def test_context_labels_disambiguate(self, toy_profiles):
        sigil, _ = toy_profiles
        cdfg = CDFG(sigil)
        d1 = sigil.tree.find(("main", "A", "D")).id
        d2 = sigil.tree.find(("main", "C", "D")).id
        labels = {cdfg.label(d1), cdfg.label(d2)}
        assert labels == {"D(1)", "D(2)"}
        assert cdfg.label(INVALID_CTX) == "<input>"

    def test_dot_export(self, toy_profiles):
        sigil, _ = toy_profiles
        dot = CDFG(sigil).to_dot()
        assert dot.startswith("digraph")
        assert "style=dashed" in dot and "style=bold" in dot

    def test_dot_labels_escaped(self):
        """Regression: node labels must escape ``"`` and ``\\`` so names
        from demangled C++ cannot break the Graphviz syntax."""
        from repro.core import SigilConfig, SigilProfiler
        from repro.trace.events import OpKind

        weird = 'fn"quoted\\path'
        p = SigilProfiler(SigilConfig())
        p.on_run_begin()
        p.on_fn_enter("main")
        p.on_fn_enter(weird)
        p.on_op(OpKind.INT, 5)
        p.on_fn_exit(weird)
        p.on_fn_exit("main")
        p.on_run_end()
        dot = CDFG(p.profile()).to_dot()
        assert 'fn\\"quoted\\\\path' in dot
        assert 'label="fn"quoted' not in dot


class TestMerging:
    def test_internal_edges_absorbed(self, toy_profiles):
        """Merging A's sub-tree absorbs the A->D1 edge (Figure 2)."""
        sigil, cg = toy_profiles
        a_node = sigil.tree.find(("main", "A"))
        costs = compute_inclusive(sigil, cg, a_node)
        # Inputs crossing into the box: 8 bytes main->A, plus the 8
        # not-yet-written bytes D1 reads (program input).  The A->D1 edge is
        # internal and absorbed.
        assert costs.unique_input_bytes == 16
        # Outputs: A->C (8) and A->D2 (8); both consumers outside the box.
        assert costs.unique_output_bytes == 16

    def test_inclusive_ops_roll_up(self, toy_profiles):
        sigil, cg = toy_profiles
        a_node = sigil.tree.find(("main", "A"))
        d1 = sigil.tree.find(("main", "A", "D"))
        merged = compute_inclusive(sigil, cg, a_node)
        a_self = sigil.fn_comm(a_node.id).ops
        d_self = sigil.fn_comm(d1.id).ops
        assert merged.ops == a_self + d_self

    def test_leaf_merge_is_self(self, toy_profiles):
        sigil, cg = toy_profiles
        d1 = sigil.tree.find(("main", "A", "D"))
        costs = compute_inclusive(sigil, cg, d1)
        assert costs.ops == sigil.fn_comm(d1.id).ops
        assert costs.est_cycles > 0

    def test_est_cycles_align_with_callgrind(self, toy_profiles):
        sigil, cg = toy_profiles
        a_sigil = sigil.tree.find(("main", "A"))
        a_cg = cg.tree.find(("main", "A"))
        costs = compute_inclusive(sigil, cg, a_sigil)
        assert costs.est_cycles == pytest.approx(cg.estimated_cycles(a_cg))

    def test_syscall_detection(self):
        from repro.core import SigilConfig, SigilProfiler

        p = SigilProfiler(SigilConfig())
        p.on_run_begin()
        p.on_fn_enter("main")
        p.on_fn_enter("io_fn")
        p.on_syscall_enter("write", 8)
        p.on_syscall_exit("write", 0)
        p.on_fn_exit("io_fn")
        p.on_fn_enter("pure_fn")
        p.on_fn_exit("pure_fn")
        p.on_fn_exit("main")
        p.on_run_end()
        prof = p.profile()
        assert subtree_has_syscall(prof.tree.find(("main", "io_fn")))
        assert not subtree_has_syscall(prof.tree.find(("main", "pure_fn")))
        assert subtree_has_syscall(prof.tree.find(("main",)))
