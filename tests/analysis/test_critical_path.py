"""Critical-path analysis tests (section II-C2, Figure 3, Figure 13)."""

from __future__ import annotations

import pytest

from repro.analysis import analyze_critical_path
from repro.core import SigilConfig, SigilProfiler
from repro.core.segments import EventLog
from repro.trace.events import OpKind


def profiler():
    return SigilProfiler(SigilConfig(event_mode=True))


class TestLongestPath:
    def test_empty_log(self):
        result = analyze_critical_path(EventLog())
        assert result.max_parallelism == 1.0
        assert result.path == []

    def test_serial_program_has_no_parallelism(self):
        p = profiler()
        p.on_run_begin()
        p.on_fn_enter("main")
        p.on_mem_write(0x100, 8)
        p.on_op(OpKind.INT, 50)
        p.on_fn_enter("f")
        p.on_mem_read(0x100, 8)
        p.on_op(OpKind.INT, 50)
        p.on_fn_exit("f")
        p.on_fn_exit("main")
        p.on_run_end()
        result = analyze_critical_path(p.profile().events)
        assert result.max_parallelism == pytest.approx(1.0)

    def test_independent_calls_expose_parallelism(self):
        """Non-blocking call model: calls with no data dependencies are
        limited only by the caller's sequencing."""
        p = profiler()
        p.on_run_begin()
        p.on_fn_enter("main")
        for i in range(10):
            p.on_fn_enter("work")
            p.on_op(OpKind.INT, 100)
            p.on_mem_write(0x1000 + 64 * i, 8)
            p.on_fn_exit("work")
        p.on_fn_exit("main")
        p.on_run_end()
        result = analyze_critical_path(p.profile().events)
        assert result.max_parallelism == pytest.approx(10.0)

    def test_data_dependency_serialises(self):
        """A chain through memory forces sequential execution."""
        p = profiler()
        p.on_run_begin()
        p.on_fn_enter("main")
        for i in range(10):
            p.on_fn_enter("work")
            if i:
                p.on_mem_read(0x1000 + 64 * (i - 1), 8)
            p.on_op(OpKind.INT, 100)
            p.on_mem_write(0x1000 + 64 * i, 8)
            p.on_fn_exit("work")
        p.on_fn_exit("main")
        p.on_run_end()
        result = analyze_critical_path(p.profile().events)
        assert result.max_parallelism == pytest.approx(1.0, abs=0.01)

    def test_figure_3_inclusive_costs(self):
        """Figure 3's bookkeeping: inclusive cost of a node is the longest
        chain of self-costs from the start to it."""
        p = profiler()
        p.on_run_begin()
        p.on_fn_enter("main")
        p.on_op(OpKind.INT, 16)
        p.on_fn_enter("A")
        p.on_op(OpKind.INT, 12)
        p.on_mem_write(0x100, 8)
        p.on_fn_exit("A")
        p.on_fn_enter("C")
        p.on_op(OpKind.INT, 18)
        p.on_mem_read(0x100, 8)
        p.on_fn_exit("C")
        p.on_fn_exit("main")
        p.on_run_end()
        events = p.profile().events
        result = analyze_critical_path(events)
        # C's chain: main(16) -> A(12) -> C(18) = 46 via the data edge.
        c_ctx = p.tree.find(("main", "C")).id
        c_seg = next(s for s in events.segments if s.ctx_id == c_ctx)
        assert result.inclusive[c_seg.seg_id] == 46

    def test_path_functions_leaf_to_main(self, toy_profiles):
        sigil, _ = toy_profiles
        result = analyze_critical_path(sigil.events)
        fns = result.path_functions(sigil.tree)
        assert fns[-1] == "main"
        assert len(fns) == len(set(fns))

    def test_serial_length_equals_total_ops(self, toy_profiles):
        sigil, _ = toy_profiles
        result = analyze_critical_path(sigil.events)
        assert result.serial_length == sigil.events.total_ops()

    def test_parallelism_at_least_one(self, toy_profiles):
        sigil, _ = toy_profiles
        result = analyze_critical_path(sigil.events)
        assert result.max_parallelism >= 1.0

    def test_malformed_backward_edge_rejected(self):
        log = EventLog()
        log.new_segment(0, 0, 0)
        log.new_segment(1, 1, 1)
        log.add_order_edge(1, 1)
        with pytest.raises(ValueError):
            analyze_critical_path(log)


class TestPaperChains:
    def test_streamcluster_chain_matches_paper(self):
        """Section IV-C: drand48_iterate -> nrand48_r -> lrand48 ->
        pkmedian -> localSearch -> streamCluster -> main."""
        from repro.workloads import get_workload

        p = profiler()
        get_workload("streamcluster", "simsmall").run(p)
        prof = p.profile()
        result = analyze_critical_path(prof.events)
        fns = result.path_functions(prof.tree)
        for fn in ("drand48_iterate", "pkmedian", "localSearch",
                   "streamCluster", "main"):
            assert fn in fns, f"{fn} missing from critical path {fns}"
        # Leaf-to-main ordering.
        assert fns.index("drand48_iterate") < fns.index("pkmedian")
        assert fns.index("pkmedian") < fns.index("main")

    def test_fluidanimate_dominated_by_compute_forces(self):
        """Section IV-C: fluidanimate's path is composed of ComputeForces,
        ~90% of the operations in the workload."""
        from repro.workloads import get_workload

        p = profiler()
        get_workload("fluidanimate", "simsmall").run(p)
        prof = p.profile()
        result = analyze_critical_path(prof.events)
        fns = result.path_functions(prof.tree)
        assert "ComputeForces" in fns
        cf_ops = sum(
            s.ops for s in prof.events.segments
            if prof.tree.node(s.ctx_id).name == "ComputeForces"
        )
        assert cf_ops / result.serial_length > 0.80
        assert result.max_parallelism < 2.0


class TestEventsToDot:
    def test_highlights_critical_path(self, toy_profiles):
        from repro.analysis import analyze_critical_path, events_to_dot

        sigil, _ = toy_profiles
        result = analyze_critical_path(sigil.events)
        dot = events_to_dot(sigil.events, sigil.tree, result)
        assert dot.startswith("digraph")
        assert dot.count("grey80") == len(result.path)
        assert "penwidth=2.5" in dot

    def test_truncation_keeps_path(self):
        from repro.analysis import analyze_critical_path, events_to_dot
        from repro.core import SigilConfig, SigilProfiler
        from repro.workloads import get_workload

        profiler = SigilProfiler(SigilConfig(event_mode=True))
        get_workload("streamcluster", "simsmall").run(profiler)
        prof = profiler.profile()
        result = analyze_critical_path(prof.events)
        dot = events_to_dot(prof.events, prof.tree, result, max_segments=20)
        for seg in result.path:
            assert f"s{seg.seg_id} [" in dot

    def test_data_edge_weights_labelled(self, toy_profiles):
        from repro.analysis import events_to_dot

        sigil, _ = toy_profiles
        dot = events_to_dot(sigil.events, sigil.tree)
        assert 'label="8B"' in dot

    def test_labels_escape_quotes_and_backslashes(self):
        """Regression: a function name carrying ``"`` or ``\\`` (demangled
        C++, odd syscall pseudo-nodes) used to be emitted verbatim into the
        double-quoted DOT label, producing invalid Graphviz."""
        from repro.analysis import events_to_dot

        weird = 'operator""_kb\\alias'
        p = profiler()
        p.on_run_begin()
        p.on_fn_enter("main")
        p.on_fn_enter(weird)
        p.on_op(OpKind.INT, 5)
        p.on_fn_exit(weird)
        p.on_fn_exit("main")
        p.on_run_end()
        prof = p.profile()
        dot = events_to_dot(prof.events, prof.tree)
        assert 'operator\\"\\"_kb\\\\alias' in dot
        # The raw name must never appear unescaped inside a label.
        assert f'label="{weird}' not in dot
