"""Re-use post-processing tests (Figures 8-11 machinery)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    byte_reuse_breakdown,
    lifetime_histogram,
    top_reuse_functions,
    top_unique_contributors,
)
from repro.core import SigilConfig, SigilProfiler
from repro.trace.events import OpKind


class TestByteBreakdown:
    def test_normalised_fractions_sum_to_one(self, vips_profile):
        breakdown = byte_reuse_breakdown(vips_profile)
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert set(breakdown) == {"0", "1-9", ">9"}

    def test_raw_counts_available(self, vips_profile):
        raw = byte_reuse_breakdown(vips_profile, normalised=False)
        assert sum(raw.values()) > 0

    def test_requires_reuse_mode(self, toy_profiles):
        p = SigilProfiler(SigilConfig())  # no reuse mode
        p.on_run_begin()
        p.on_run_end()
        with pytest.raises(ValueError):
            byte_reuse_breakdown(p.profile())


class TestRanking:
    def test_top_functions_sorted_by_contribution(self, vips_profile):
        rankings = top_reuse_functions(vips_profile, n=8)
        windows = [r.reused_windows for r in rankings]
        assert windows == sorted(windows, reverse=True)
        assert all(r.reused_windows > 0 for r in rankings)

    def test_vips_conv_gen_contexts_distinguished(self, vips_profile):
        """Figure 9 separates conv_gen(1) and conv_gen(2)."""
        rankings = top_reuse_functions(vips_profile, n=10)
        labels = {r.label for r in rankings}
        assert "conv_gen(1)" in labels
        assert "conv_gen(2)" in labels

    def test_average_lifetime_consistent(self, vips_profile):
        for r in top_reuse_functions(vips_profile, n=5):
            stats = vips_profile.reuse.per_fn[r.node.id]
            assert r.average_lifetime == pytest.approx(
                stats.lifetime_sum / stats.reused_windows
            )

    def test_top_unique_contributors_shares(self, vips_profile):
        contributors = top_unique_contributors(vips_profile, n=10)
        shares = [share for _, _, share in contributors]
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) <= 1.0 + 1e-9


class TestHistogram:
    def test_histogram_sorted_by_bin(self, vips_profile):
        conv = vips_profile.tree.by_name("conv_gen")[0]
        hist = lifetime_histogram(vips_profile, conv.id)
        starts = [s for s, _ in hist]
        assert starts == sorted(starts)
        assert all(count > 0 for _, count in hist)

    def test_histogram_totals_match_windows(self, vips_profile):
        conv = vips_profile.tree.by_name("conv_gen")[0]
        hist = lifetime_histogram(vips_profile, conv.id)
        stats = vips_profile.reuse.per_fn[conv.id]
        assert sum(c for _, c in hist) == stats.reused_windows

    def test_unknown_context_empty(self, vips_profile):
        assert lifetime_histogram(vips_profile, 10_000) == []


class TestVipsShapes:
    """The qualitative Figure 9-11 claims on our miniature vips."""

    def test_conv_gen_lifetimes_exceed_xyz2lab(self, vips_profile):
        """conv_gen: long per-tile windows; imb_XYZ2Lab: short per-row
        windows ("peak at 0 ... short tail")."""
        conv = max(
            vips_profile.tree.by_name("conv_gen"),
            key=lambda n: vips_profile.reuse.per_fn[n.id].reused_windows,
        )
        lab = vips_profile.tree.by_name("imb_XYZ2Lab")[0]
        conv_stats = vips_profile.reuse.per_fn[conv.id]
        lab_stats = vips_profile.reuse.per_fn[lab.id]
        assert conv_stats.average_lifetime > 5 * lab_stats.average_lifetime

    def test_xyz2lab_histogram_peaks_at_zero_bin(self, vips_profile):
        lab = vips_profile.tree.by_name("imb_XYZ2Lab")[0]
        hist = dict(lifetime_histogram(vips_profile, lab.id))
        assert hist, "expected reuse in imb_XYZ2Lab"
        peak_bin = max(hist, key=hist.get)
        assert peak_bin == 0

    def test_conv_gen_histogram_has_tail(self, vips_profile):
        conv = max(
            vips_profile.tree.by_name("conv_gen"),
            key=lambda n: vips_profile.reuse.per_fn[n.id].reused_windows,
        )
        hist = lifetime_histogram(vips_profile, conv.id)
        lab = vips_profile.tree.by_name("imb_XYZ2Lab")[0]
        lab_hist = lifetime_histogram(vips_profile, lab.id)
        assert hist[-1][0] > lab_hist[-1][0], "conv_gen tail should be longer"

    def test_big_three_contribute_most_unique_bytes(self, vips_profile):
        """affine_gen, conv_gen and imb_XYZ2Lab lead the unique-byte
        contributors, "with each of their individual contributions being
        close to 10%" and the rest spread thinner."""
        top = top_unique_contributors(vips_profile, n=6)
        names = {label.split("(")[0] for label, _, _ in top}
        assert {"affine_gen", "conv_gen", "imb_XYZ2Lab"} <= names
        shares = [share for _, _, share in top]
        assert all(0.05 < s < 0.30 for s in shares)
