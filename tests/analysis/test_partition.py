"""Partitioning tests: breakeven-speedup (Eq. 1) and calltree trimming."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    BusModel,
    PartitionPolicy,
    breakeven_speedup,
    trim_calltree,
)


class TestBreakevenSpeedup:
    def test_equation_1(self):
        # S = t_sw / (t_sw - (t_in + t_out))
        assert breakeven_speedup(100.0, 5.0, 5.0) == pytest.approx(100 / 90)

    def test_no_communication_is_unity(self):
        assert breakeven_speedup(100.0, 0.0, 0.0) == pytest.approx(1.0)

    def test_communication_dominates_is_infinite(self):
        assert breakeven_speedup(10.0, 6.0, 6.0) == math.inf
        assert breakeven_speedup(10.0, 10.0, 0.0) == math.inf

    def test_zero_time_is_infinite(self):
        assert breakeven_speedup(0.0, 0.0, 0.0) == math.inf

    def test_monotone_in_communication(self):
        values = [breakeven_speedup(100.0, t, t) for t in (0, 10, 20, 40)]
        assert values == sorted(values)


class TestBusModel:
    def test_bandwidth(self):
        bus = BusModel(bytes_per_cycle=8.0)
        assert bus.offload_cycles(80) == pytest.approx(10.0)

    def test_latency_per_transfer(self):
        bus = BusModel(bytes_per_cycle=8.0, per_transfer_latency=100.0)
        assert bus.offload_cycles(80, n_transfers=2) == pytest.approx(210.0)

    def test_zero_bytes_free(self):
        assert BusModel().offload_cycles(0) == 0.0


class TestTrimming:
    def test_toy_trim_produces_disjoint_candidates(self, toy_profiles):
        sigil, cg = toy_profiles
        trimmed = trim_calltree(sigil, cg)
        ids_seen = set()
        for cand in trimmed.candidates:
            subtree = {n.id for n in cand.node.walk()}
            assert not (subtree & ids_seen), "candidate subtrees overlap"
            ids_seen |= subtree

    def test_main_never_a_candidate(self, toy_profiles):
        sigil, cg = toy_profiles
        trimmed = trim_calltree(sigil, cg)
        assert all(c.name != "main" for c in trimmed.candidates)

    def test_coverage_bounded(self, toy_profiles):
        sigil, cg = toy_profiles
        trimmed = trim_calltree(sigil, cg)
        assert 0.0 <= trimmed.coverage <= 1.0
        assert trimmed.total_cycles == pytest.approx(cg.total_cycles())

    def test_sorted_candidates(self, blackscholes_profiles):
        sigil, cg = blackscholes_profiles
        trimmed = trim_calltree(sigil, cg)
        top = trimmed.sorted_candidates()
        assert [c.breakeven for c in top] == sorted(c.breakeven for c in top)
        worst = trimmed.sorted_candidates(worst_first=True)
        assert worst[0].breakeven == max(c.breakeven for c in top)

    def test_syscall_subtrees_stay_interior(self):
        """A sub-tree containing I/O cannot be merged into an accelerator."""
        from repro.callgrind import CallgrindCollector
        from repro.core import SigilConfig, SigilProfiler
        from repro.trace import ObserverPipe, OpKind

        sigil = SigilProfiler(SigilConfig())
        cg = CallgrindCollector()
        pipe = ObserverPipe([sigil, cg])
        pipe.on_run_begin()
        pipe.on_fn_enter("main")
        pipe.on_fn_enter("loader")
        pipe.on_syscall_enter("read", 0)
        pipe.on_syscall_exit("read", 100)
        pipe.on_op(OpKind.INT, 50)
        pipe.on_fn_enter("decode")
        pipe.on_op(OpKind.INT, 500)
        pipe.on_fn_exit("decode")
        pipe.on_fn_exit("loader")
        pipe.on_fn_exit("main")
        pipe.on_run_end()
        trimmed = trim_calltree(sigil.profile(), cg.profile)
        names = {c.name for c in trimmed.candidates}
        assert "loader" not in names
        assert "decode" in names

    def test_policy_never_merge(self, blackscholes_profiles):
        sigil, cg = blackscholes_profiles
        policy = PartitionPolicy(never_merge=frozenset({"main", "bs_thread"}))
        trimmed = trim_calltree(sigil, cg, policy)
        assert all(c.name != "bs_thread" for c in trimmed.candidates)
        # With bs_thread interior, candidates come from below it (either the
        # pricing kernel merged, or its libm leaves if splitting wins).
        below = {"BlkSchlsEqEuroNoDiv", "CNDF", "__ieee754_exp",
                 "__ieee754_expf", "__ieee754_logf", "__ieee754_sqrt"}
        assert below & {c.name for c in trimmed.candidates}

    def test_compute_dense_functions_rank_best(self, blackscholes_profiles):
        """Table II/III shape: compute-dense kernels have breakeven near 1;
        allocator/utility functions rank worst."""
        sigil, cg = blackscholes_profiles
        trimmed = trim_calltree(sigil, cg)
        ranked = trimmed.sorted_candidates()
        assert ranked[0].breakeven < 1.2
        by_name = {c.name: c.breakeven for c in ranked}
        assert "free" in by_name
        assert by_name["free"] > ranked[0].breakeven

    def test_deep_chain_does_not_blow_recursion(self):
        """Regression: ``resolve`` used to recurse per tree level and raised
        ``RecursionError`` on call chains past ~1000 frames."""
        from repro.core import SigilConfig, SigilProfiler
        from repro.trace import OpKind

        p = SigilProfiler(SigilConfig())
        p.on_run_begin()
        p.on_fn_enter("main")
        names = [f"f{i}" for i in range(5000)]
        for name in names:
            p.on_fn_enter(name)
            p.on_op(OpKind.INT, 1)
        for name in reversed(names):
            p.on_fn_exit(name)
        p.on_fn_exit("main")
        p.on_run_end()
        trimmed = trim_calltree(p.profile(), None)
        # The whole chain merges into one candidate rooted just below main.
        assert [c.name for c in trimmed.candidates] == ["f0"]

    def test_trim_without_callgrind_gives_inf(self, toy_profiles):
        """Without timing data every breakeven degenerates; the structure
        still comes out."""
        sigil, _ = toy_profiles
        trimmed = trim_calltree(sigil, None)
        assert trimmed.total_cycles == 0.0
        assert trimmed.coverage == 0.0
