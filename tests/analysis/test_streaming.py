"""Chunk-at-a-time event consumption tests (:mod:`repro.analysis.streaming`)."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.analysis import analyze_critical_path
from repro.analysis.streaming import (
    ChunkSource,
    EdgeCursor,
    GrowingColumn,
    SegmentColumns,
    UnsortedEdges,
    as_chunk_source,
    stream_resolved,
)
from repro.core.segments import (
    DATA_EDGE_DTYPE,
    SEG_DTYPE,
    EventArrays,
    EventLog,
)
from repro.io import dump_events, dumps_events, dumps_events_bin


def make_log(n: int = 12) -> EventLog:
    """A serial chain with a few data edges at varied distances."""
    log = EventLog()
    t = 0
    for i in range(n):
        seg = log.new_segment(i % 3, i, t)
        seg.ops = 2 + i % 5
        t += seg.ops
        if i:
            log.add_order_edge(i - 1, i)
    for src, dst, nbytes in ((1, 2, 8), (0, 3, 16), (2, n - 1, 64)):
        log.add_data_bytes(src, dst, nbytes)
    return log


def seg_rows(*rows) -> np.ndarray:
    return np.array(list(rows), dtype=SEG_DTYPE)


def data_rows(*rows) -> np.ndarray:
    return np.array(list(rows), dtype=DATA_EDGE_DTYPE)


class _FakeSource:
    """Hand-ordered chunks, for exercising the edge holding buffer."""

    def __init__(self, script):
        self._script = script

    def chunks(self, tables=None):
        for table, rows in self._script:
            if tables is None or table in tables:
                yield table, rows


class TestChunkSource:
    @pytest.mark.parametrize("form", [
        "log", "arrays", "v2_bytes", "v2_path", "v1_text", "v1_path", "fh",
    ])
    def test_all_forms_materialise_identically(self, form, tmp_path):
        log = make_log()
        expected = EventArrays.from_eventlog(log)
        if form == "log":
            source = ChunkSource(log)
        elif form == "arrays":
            source = ChunkSource(expected)
        elif form == "v2_bytes":
            source = ChunkSource(dumps_events_bin(log, chunk_rows=3))
        elif form == "v2_path":
            path = tmp_path / "v2.bin"
            path.write_bytes(dumps_events_bin(log))
            source = ChunkSource(path)
        elif form == "v1_text":
            source = ChunkSource(dumps_events(log).encode())
        elif form == "v1_path":
            path = tmp_path / "v1.events"
            dump_events(log, path)
            source = ChunkSource(path)
        else:
            source = ChunkSource(io.BytesIO(dumps_events_bin(log)))
        assert source.to_event_arrays() == expected

    def test_chunks_is_reiterable(self):
        source = ChunkSource(make_log(), chunk_rows=4)
        first = [(t, len(r)) for t, r in source.chunks()]
        second = [(t, len(r)) for t, r in source.chunks()]
        assert first == second and first

    def test_chunk_rows_bounds_synthetic_chunks(self):
        source = ChunkSource(make_log(20), chunk_rows=3)
        assert all(len(rows) <= 3 for _, rows in source.chunks())
        assert sum(
            len(r) for t, r in source.chunks() if t == "segs"
        ) == 20

    def test_tables_filter(self):
        source = ChunkSource(make_log())
        assert {t for t, _ in source.chunks(("segs", "data"))} == {
            "segs", "data"
        }

    def test_as_chunk_source_idempotent(self):
        source = ChunkSource(make_log())
        assert as_chunk_source(source) is source
        resized = as_chunk_source(source, chunk_rows=2)
        assert resized is not source and resized.chunk_rows == 2

    def test_rejects_negative_chunk_rows(self):
        with pytest.raises(ValueError, match="chunk_rows"):
            ChunkSource(make_log(), chunk_rows=-1)


class TestGrowingState:
    def test_growing_column_appends_across_capacity(self):
        col = GrowingColumn(capacity=2)
        for lo in range(0, 100, 7):
            col.append(np.arange(lo, min(lo + 7, 100)))
        assert np.array_equal(col.view(), np.arange(100))

    def test_segment_columns_end_pseudo_field(self):
        cols = SegmentColumns(("start", "end"))
        cols.append(seg_rows((0, 0, 0, 4, 0), (1, 1, 4, 6, 0)))
        assert cols.n == 2
        assert cols.col("start").tolist() == [0, 4]
        assert cols.col("end").tolist() == [4, 10]


class TestStreamResolved:
    def test_edges_held_until_both_endpoints_arrive(self):
        """An edge chunk flushed ahead of its segment chunk is buffered."""
        source = _FakeSource([
            ("segs", seg_rows((0, 0, 0, 4, 0), (1, 1, 4, 2, 0))),
            ("data", data_rows((0, 1, 8), (1, 2, 16), (0, 3, 32))),
            ("segs", seg_rows((2, 2, 6, 1, 0))),
            ("segs", seg_rows((3, 3, 7, 1, 0))),
        ])
        cols = SegmentColumns(())
        order = [
            (table, rows["dst"].tolist() if table == "data" else len(rows))
            for table, rows in stream_resolved(source, cols)
        ]
        assert order == [
            ("segs", 2), ("data", [1]),
            ("segs", 1), ("data", [2]),
            ("segs", 1), ("data", [3]),
        ]
        assert cols.n == 4

    def test_backward_edges_resolve_on_the_younger_endpoint(self):
        """Threaded logs carry data edges whose consumer is *older* than
        the producer; they must be held until the producer arrives."""
        source = _FakeSource([
            ("segs", seg_rows((0, 0, 0, 4, 0))),
            ("data", data_rows((2, 0, 8))),  # producer not yet seen
            ("segs", seg_rows((1, 1, 4, 2, 0), (2, 2, 6, 1, 1))),
        ])
        out = list(stream_resolved(source, SegmentColumns(())))
        assert [t for t, _ in out] == ["segs", "segs", "data"]

    def test_dangling_edge_rejected_at_eof(self):
        source = _FakeSource([
            ("segs", seg_rows((0, 0, 0, 4, 0))),
            ("data", data_rows((0, 5, 8))),
        ])
        with pytest.raises(ValueError, match="endpoints out of range"):
            list(stream_resolved(source, SegmentColumns(())))

    def test_negative_endpoint_rejected(self):
        source = _FakeSource([
            ("segs", seg_rows((0, 0, 0, 4, 0))),
            ("data", data_rows((-1, 0, 8))),
        ])
        with pytest.raises(ValueError, match="endpoints out of range"):
            list(stream_resolved(source, SegmentColumns(())))

    def test_negative_ops_rejected(self):
        source = _FakeSource([("segs", seg_rows((0, 0, 0, -1, 0)))])
        with pytest.raises(ValueError, match="non-negative"):
            list(stream_resolved(source, SegmentColumns(())))

    def test_negative_bytes_rejected(self):
        source = _FakeSource([
            ("segs", seg_rows((0, 0, 0, 4, 0), (1, 1, 4, 2, 0))),
            ("data", data_rows((0, 1, -8))),
        ])
        with pytest.raises(ValueError, match="byte counts"):
            list(stream_resolved(source, SegmentColumns(())))

    def test_peak_chunk_bytes_gauge(self):
        from repro.telemetry import Telemetry

        tel = Telemetry()
        source = as_chunk_source(make_log(), chunk_rows=4)
        list(stream_resolved(source, SegmentColumns(()), telemetry=tel))
        peak = tel.metrics.snapshot()["analysis.stream.peak_chunk_bytes"]
        assert 0 < peak <= 4 * SEG_DTYPE.itemsize


class TestEdgeCursor:
    def test_walks_sorted_run_in_order(self):
        source = as_chunk_source(make_log(), chunk_rows=2)
        cursor = EdgeCursor(source.chunks(tables=("data",)), "data")
        src, dst = cursor.take_below(3)
        assert dst.tolist() == [2]
        src, dst = cursor.take_below(100)
        assert dst.tolist() == [3, 11]
        cursor.require_empty(12)

    def test_unsorted_destinations_raise(self):
        chunks = iter([
            ("data", data_rows((0, 3, 8))),
            ("data", data_rows((0, 1, 8))),
        ])
        cursor = EdgeCursor(chunks, "data")
        with pytest.raises(UnsortedEdges):
            # Consuming past the first chunk advances into the violation.
            cursor.take_below(4)

    def test_backward_edge_raises_topology_error(self):
        chunks = iter([("data", data_rows((3, 1, 8)))])
        cursor = EdgeCursor(chunks, "data")
        with pytest.raises(ValueError, match="topologically ordered"):
            cursor.take_below(4)

    def test_require_empty_rejects_leftovers(self):
        chunks = iter([("data", data_rows((0, 1, 8)))])
        cursor = EdgeCursor(chunks, "data")
        with pytest.raises(ValueError, match="endpoints out of range"):
            cursor.require_empty(1)


class TestStreamingEquivalence:
    """Streamed analyses match the materialised ones bit for bit."""

    @pytest.mark.parametrize("chunk_rows", [1, 3, 64])
    def test_critical_path_chunk_size_invariant(self, chunk_rows):
        log = make_log(40)
        base = analyze_critical_path(log)
        streamed = analyze_critical_path(
            ChunkSource(dumps_events_bin(log, chunk_rows=chunk_rows))
        )
        assert streamed.serial_length == base.serial_length
        assert streamed.critical_length == base.critical_length
        assert list(streamed.inclusive) == list(base.inclusive)
        assert [s.seg_id for s in streamed.path] == [
            s.seg_id for s in base.path
        ]

    def test_unsorted_data_edges_fall_back_to_materialised(self):
        """dst-unsorted (but forward) edge tables still analyse correctly
        via the materialised fallback."""
        log = make_log(8)
        log.add_data_bytes(4, 6, 8)
        log.add_data_bytes(0, 5, 8)  # dst 5 after dst 6: unsorted
        base = analyze_critical_path(EventArrays.from_eventlog(log))
        streamed = analyze_critical_path(ChunkSource(dumps_events_bin(log)))
        assert streamed.critical_length == base.critical_length
        assert [s.seg_id for s in streamed.path] == [
            s.seg_id for s in base.path
        ]

    def test_thread_comm_matrix_accepts_file_and_log(self, tmp_path):
        from repro.analysis import thread_comm_matrix

        log = make_log()
        path = tmp_path / "ev.bin"
        path.write_bytes(dumps_events_bin(log, chunk_rows=2))
        assert thread_comm_matrix(path) == thread_comm_matrix(log)

    def test_ctx_comm_accepts_file_and_log(self, tmp_path):
        from repro.analysis import ctx_comm_from_events

        log = make_log()
        blob = dumps_events_bin(log, chunk_rows=2)
        assert ctx_comm_from_events(blob) == ctx_comm_from_events(log)

    def test_schedule_accepts_binary_bytes(self):
        from repro.analysis import schedule_events

        log = make_log(20)
        base = schedule_events(log, 4)
        streamed = schedule_events(dumps_events_bin(log, chunk_rows=3), 4)
        assert streamed.makespan == base.makespan
        assert streamed.speedup == pytest.approx(base.speedup)
