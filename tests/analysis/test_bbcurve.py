"""BB-curve tests: buffer size vs external bandwidth pressure."""

from __future__ import annotations

import math

import pytest

from repro.analysis.bbcurve import BBCurveProfiler
from repro.analysis.partition import BusModel
from repro.workloads import get_workload


class TestScoping:
    def test_only_target_accesses_recorded(self):
        p = BBCurveProfiler(["hot"])
        p.on_run_begin()
        p.on_fn_enter("main")
        p.on_mem_read(0, 64)           # outside any target: ignored
        p.on_fn_enter("hot")
        p.on_mem_read(0, 64)
        p.on_fn_enter("child")         # sub-tree accesses belong to hot
        p.on_mem_read(64, 64)
        p.on_fn_exit("child")
        p.on_fn_exit("hot")
        p.on_fn_exit("main")
        p.on_run_end()
        curve = p.curve("hot")
        assert curve.total_accesses == 2

    def test_innermost_target_wins(self):
        p = BBCurveProfiler(["outer", "inner"])
        p.on_run_begin()
        p.on_fn_enter("outer")
        p.on_mem_read(0, 64)
        p.on_fn_enter("inner")
        p.on_mem_read(64, 64)
        p.on_fn_exit("inner")
        p.on_fn_exit("outer")
        p.on_run_end()
        assert p.curve("outer").total_accesses == 1
        assert p.curve("inner").total_accesses == 1

    def test_unknown_target_rejected(self):
        p = BBCurveProfiler(["hot"])
        with pytest.raises(KeyError):
            p.curve("cold")


class TestCurveShape:
    @pytest.fixture(scope="class")
    def conv_curve(self):
        profiler = BBCurveProfiler(["conv_gen"], line_size=64)
        get_workload("vips", "simsmall").run(profiler)
        return profiler.curve("conv_gen")

    def test_external_traffic_monotone_in_buffer(self, conv_curve):
        externals = [pt.external_bytes for pt in conv_curve.points]
        assert externals == sorted(externals, reverse=True)

    def test_large_buffer_reaches_cold_floor(self, conv_curve):
        """With an unbounded buffer only cold fetches remain: the unique
        footprint of the function, far below total traffic."""
        floor = conv_curve.points[-1]
        assert floor.external_bytes < 0.5 * conv_curve.total_bytes
        assert floor.external_bytes > 0

    def test_reuse_makes_buffers_pay_off(self):
        """conv_gen (taps-deep re-use) benefits more from a buffer than
        imb_XYZ2Lab-style streaming."""
        profiler = BBCurveProfiler(["conv_gen", "affine_gen"], line_size=64)
        get_workload("vips", "simsmall").run(profiler)
        conv = profiler.curve("conv_gen", capacities=[1, 256])
        affine = profiler.curve("affine_gen", capacities=[1, 256])

        def saving(curve):
            small = curve.external_bytes_at(1)
            big = curve.external_bytes_at(256)
            return (small - big) / small

        assert saving(conv) > saving(affine)

    def test_breakeven_improves_with_buffer(self, conv_curve):
        bus = BusModel(bytes_per_cycle=8.0)
        small = conv_curve.breakeven_at(1, bus)
        big = conv_curve.breakeven_at(4096, bus)
        assert (not math.isfinite(small)) or big <= small
        assert math.isfinite(big)
