"""Scheduler tests: the section IV-C mapping of chains onto cores."""

from __future__ import annotations

import pytest

from repro.analysis import analyze_critical_path, schedule_events, speedup_curve
from repro.core.segments import EventLog


def chain_log(n: int, ops: int = 10) -> EventLog:
    """n segments in one serial dependency chain."""
    log = EventLog()
    for i in range(n):
        seg = log.new_segment(0, i, i)
        seg.ops = ops
        if i:
            log.add_order_edge(i - 1, i)
    return log


def fan_log(n: int, ops: int = 10) -> EventLog:
    """A zero-cost root fanning out to n independent segments."""
    log = EventLog()
    log.new_segment(0, 0, 0)
    for i in range(1, n + 1):
        seg = log.new_segment(i, i, i)
        seg.ops = ops
        log.add_call_edge(0, i)
    return log


class TestScheduleBasics:
    def test_empty_log(self):
        result = schedule_events(EventLog(), 4)
        assert result.makespan == 0
        assert result.speedup == 1.0

    def test_serial_chain_gains_nothing(self):
        result = schedule_events(chain_log(10), 8)
        assert result.makespan == 100
        assert result.speedup == pytest.approx(1.0)

    def test_fan_out_scales_with_cores(self):
        log = fan_log(8)
        assert schedule_events(log, 1).makespan == 80
        assert schedule_events(log, 2).makespan == 40
        assert schedule_events(log, 8).makespan == 10

    def test_one_core_equals_serial_length(self):
        log = fan_log(5)
        result = schedule_events(log, 1)
        assert result.makespan == result.serial_length

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            schedule_events(fan_log(2), 0)

    def test_placement_respects_dependencies(self):
        log = chain_log(6)
        result = schedule_events(log, 4)
        for i in range(1, 6):
            prev_core, prev_start = result.placement[i - 1]
            _, start = result.placement[i]
            assert start >= prev_start + 10

    def test_no_core_overlap(self):
        log = fan_log(16, ops=7)
        result = schedule_events(log, 3)
        busy = {}
        for seg_id, (core, start) in result.placement.items():
            ops = 7 if seg_id else 0
            for other_start, other_end in busy.get(core, []):
                assert start >= other_end or start + ops <= other_start
            busy.setdefault(core, []).append((start, start + ops))


class TestCrossCoreCommunication:
    def test_single_core_has_no_cross_traffic(self):
        log = chain_log(4)
        log.add_data_bytes(0, 3, 64)
        assert schedule_events(log, 1).cross_core_bytes == 0

    def test_split_producer_consumer_counts(self):
        log = fan_log(2, ops=50)
        log.add_data_bytes(1, 2, 0)  # ignored (zero bytes)
        # Two independent heavy segments with a light data edge between two
        # NEW segments placed apart.
        a = log.new_segment(3, 3, 3)
        a.ops = 50
        b = log.new_segment(4, 4, 4)
        b.ops = 50
        log.add_call_edge(0, 3)
        log.add_call_edge(0, 4)
        log.add_data_bytes(3, 4, 128)
        result = schedule_events(log, 4)
        src_core = result.placement[3][0]
        dst_core = result.placement[4][0]
        expected = 128 if src_core != dst_core else 0
        assert result.cross_core_bytes == expected


class TestAgainstTheoreticalLimit:
    def test_speedup_never_exceeds_parallelism_limit(self):
        """The achievable schedule is bounded by Figure 13's ratio."""
        from repro.core import SigilConfig, SigilProfiler
        from repro.workloads import get_workload

        for name in ("streamcluster", "fluidanimate"):
            profiler = SigilProfiler(SigilConfig(event_mode=True))
            get_workload(name, "simsmall").run(profiler)
            events = profiler.profile().events
            limit = analyze_critical_path(events).max_parallelism
            for result in speedup_curve(events, [1, 2, 8, 64]):
                assert result.speedup <= limit + 1e-9, name

    def test_speedup_monotone_in_cores(self):
        from repro.core import SigilConfig, SigilProfiler
        from repro.workloads import get_workload

        profiler = SigilProfiler(SigilConfig(event_mode=True))
        get_workload("libquantum", "simsmall").run(profiler)
        curve = speedup_curve(profiler.profile().events, [1, 2, 4, 8])
        speeds = [r.speedup for r in curve]
        assert all(b >= a - 1e-9 for a, b in zip(speeds, speeds[1:]))
        assert speeds[0] == pytest.approx(1.0)

    def test_efficiency_decreases(self):
        log = fan_log(8)
        r2 = schedule_events(log, 2)
        r16 = schedule_events(log, 16)
        assert r2.efficiency > r16.efficiency
