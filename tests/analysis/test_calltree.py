"""Annotated calltree renderer tests."""

from __future__ import annotations

import re

from repro.analysis import render_calltree


class TestRenderCalltree:
    def test_shares_sum_sensibly(self, toy_profiles):
        sigil, _ = toy_profiles
        out = render_calltree(sigil, min_share=0.0)
        assert "100.0%" in out  # main is everything
        for name in ("main", "A", "C", "D"):
            assert name in out

    def test_children_sorted_by_inclusive_cost(self, blackscholes_profiles):
        sigil, _ = blackscholes_profiles
        out = render_calltree(sigil, min_share=0.0, max_depth=2)
        lines = [l for l in out.splitlines() if "%" in l and "|" in l or "`-" in l]
        # bs_thread dominates blackscholes: it must appear before strtof.
        text = out.replace("\n", " ")
        assert text.index("bs_thread") < text.index("strtof")

    def test_depth_limit_marks_truncation(self, blackscholes_profiles):
        sigil, _ = blackscholes_profiles
        out = render_calltree(sigil, max_depth=1, min_share=0.0)
        assert "depth limit" in out

    def test_pruning_summarised(self, blackscholes_profiles):
        sigil, _ = blackscholes_profiles
        out = render_calltree(sigil, min_share=0.5)
        assert "subtree(s) below" in out

    def test_deep_chain_does_not_blow_recursion(self):
        """Regression: the inclusive-ops accumulation used to recurse per
        tree level and raised ``RecursionError`` on deep call chains."""
        from repro.core import SigilConfig, SigilProfiler
        from repro.trace import OpKind

        p = SigilProfiler(SigilConfig())
        p.on_run_begin()
        p.on_fn_enter("main")
        names = [f"f{i}" for i in range(5000)]
        for name in names:
            p.on_fn_enter(name)
            p.on_op(OpKind.INT, 1)
        for name in reversed(names):
            p.on_fn_exit(name)
        p.on_fn_exit("main")
        p.on_run_end()
        out = render_calltree(p.profile(), max_depth=3, min_share=0.0)
        assert "f0" in out and "depth limit" in out

    def test_comm_column_toggle(self, toy_profiles):
        sigil, _ = toy_profiles
        with_comm = render_calltree(sigil)
        without = render_calltree(sigil, show_comm=False)
        assert "[" in with_comm.splitlines()[2]
        assert "uniq_in_B" not in without

    def test_percentages_well_formed(self, toy_profiles):
        sigil, _ = toy_profiles
        out = render_calltree(sigil, min_share=0.0)
        for match in re.finditer(r"(\d+\.\d)%", out):
            assert 0.0 <= float(match.group(1)) <= 100.0
