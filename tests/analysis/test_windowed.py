"""Time-resolved curve tests (:mod:`repro.analysis.windowed`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.streaming import ChunkSource
from repro.analysis.windowed import (
    DEFAULT_WINDOW_OPS,
    WINDOWED_SCHEMA,
    WindowedCurves,
    windowed_curves,
)
from repro.core.segments import EventLog
from repro.io import dumps_events_bin


def chain_log() -> EventLog:
    """Four back-to-back segments of 10 ops, two data edges.

    With ``window=10`` each segment owns one window.  Edge A: produced at
    op 10 (end of seg 0), consumed at op 20 (start of seg 2): lifetime 10,
    live through windows 1..2.  Edge B: produced at op 20, consumed at
    op 30: lifetime 10, live through windows 2..3.
    """
    log = EventLog()
    for i in range(4):
        seg = log.new_segment(i, i, 10 * i)
        seg.ops = 10
        if i:
            log.add_order_edge(i - 1, i)
    log.add_data_bytes(0, 2, 64)
    log.add_data_bytes(1, 3, 16)
    return log


class TestHandComputed:
    def test_chain_curves(self):
        c = windowed_curves(chain_log(), window=10)
        assert c.n_windows == 4
        assert c.ops.tolist() == [10, 10, 10, 10]
        assert c.comm_bytes.tolist() == [0, 0, 64, 16]
        # WS: edge A live in windows 1-2 (64B), edge B in windows 2-3 (16B).
        assert c.ws_bytes.tolist() == [0, 64, 80, 16]
        assert c.lifetime_sum.tolist() == [0, 0, 10, 10]
        assert c.lifetime_edges.tolist() == [0, 0, 1, 1]
        assert c.mean_lifetime.tolist() == [0, 0, 10, 10]
        # Lifetime 10 falls in bin floor(log2(10)) + 1 = 4 ([8, 16)).
        assert c.lifetime_hist.tolist() == [0, 0, 0, 0, 2]
        assert c.peak_ws_bytes == 80
        assert c.total_comm_bytes == 80
        assert c.total_segments == 4
        assert c.total_edges == 2

    def test_zero_lifetime_edge_lands_in_bin_zero(self):
        log = EventLog()
        a = log.new_segment(0, 0, 0)
        a.ops = 5
        b = log.new_segment(1, 1, 5)
        b.ops = 5
        log.add_data_bytes(0, 1, 8)
        c = windowed_curves(log, window=100)
        assert c.lifetime_hist.tolist() == [1]
        assert c.mean_lifetime.tolist() == [0.0]

    def test_backward_edge_clamps_lifetime(self):
        """A consumer older than its producer (threaded logs) contributes a
        zero lifetime and a working-set interval anchored at the earlier
        endpoint."""
        log = EventLog()
        for i in range(3):
            seg = log.new_segment(i, i, 10 * i)
            seg.ops = 10
        log.add_data_bytes(2, 0, 32)  # producer is the youngest segment
        c = windowed_curves(log, window=10)
        assert c.lifetime_sum.tolist() == [0, 0, 0]
        assert c.comm_bytes.tolist() == [32, 0, 0]
        assert c.lifetime_hist.tolist() == [1]


class TestEdgeCases:
    def test_empty_log(self):
        c = windowed_curves(EventLog())
        assert c.n_windows == 0
        assert c.peak_ws_bytes == 0
        assert c.total_comm_bytes == 0
        assert c.window == DEFAULT_WINDOW_OPS

    def test_one_segment_log(self):
        log = EventLog()
        seg = log.new_segment(0, 0, 0)
        seg.ops = 5
        c = windowed_curves(log, window=10)
        assert c.n_windows == 1
        assert c.ops.tolist() == [5]
        assert c.ws_bytes.tolist() == [0]

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            windowed_curves(EventLog(), window=0)


class TestChunkInvariance:
    @pytest.mark.parametrize("chunk_rows", [1, 3, 1 << 18])
    def test_binary_chunking_does_not_change_curves(self, chunk_rows):
        log = chain_log()
        base = windowed_curves(log, window=10)
        blob = dumps_events_bin(log, chunk_rows=chunk_rows)
        streamed = windowed_curves(blob, window=10)
        assert streamed.to_dict() == base.to_dict()

    def test_synthetic_chunking_does_not_change_curves(self):
        log = chain_log()
        base = windowed_curves(log, window=10)
        resliced = windowed_curves(
            ChunkSource(log, chunk_rows=1), window=10
        )
        assert resliced.to_dict() == base.to_dict()

    def test_profiled_run_curves_from_file_match_in_memory(self, toy_profiles):
        sigil, _ = toy_profiles
        base = windowed_curves(sigil.events, window=8)
        blob = dumps_events_bin(sigil.events, chunk_rows=2)
        assert windowed_curves(blob, window=8).to_dict() == base.to_dict()


class TestSerialisation:
    def test_round_trip(self):
        c = windowed_curves(chain_log(), window=10)
        back = WindowedCurves.from_dict(c.to_dict())
        assert back.to_dict() == c.to_dict()
        assert back.window == 10

    def test_schema_tagged(self):
        assert windowed_curves(EventLog()).to_dict()["schema"] == (
            WINDOWED_SCHEMA
        )

    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            WindowedCurves.from_dict({"schema": "bogus/9", "window": 1})

    def test_json_round_trip_types(self):
        import json

        c = windowed_curves(chain_log(), window=10)
        back = WindowedCurves.from_dict(json.loads(json.dumps(c.to_dict())))
        assert np.array_equal(back.ws_bytes, c.ws_bytes)
        assert back.ws_bytes.dtype == np.int64


class TestAggregateConsistency:
    def test_totals_match_whole_run_aggregates(self, toy_profiles):
        sigil, _ = toy_profiles
        events = sigil.events
        c = windowed_curves(events, window=4)
        assert int(c.ops.sum()) == events.total_ops()
        edge_bytes = sum(e.bytes for e in events.edges() if e.kind == "data")
        assert c.total_comm_bytes == edge_bytes
        assert int(c.lifetime_hist.sum()) == c.total_edges
