"""Coverage for smaller analysis helpers."""

from __future__ import annotations

import pytest

from repro.analysis import CDFG, inclusive_cost_table
from repro.analysis.merge import MergedNode, compute_inclusive


class TestInclusiveCostTable:
    def test_every_context_present(self, toy_profiles):
        sigil, cg = toy_profiles
        table = inclusive_cost_table(sigil, cg)
        assert set(table) == {n.id for n in sigil.contexts()}

    def test_matches_individual_computation(self, toy_profiles):
        sigil, cg = toy_profiles
        table = inclusive_cost_table(sigil, cg)
        a = sigil.tree.find(("main", "A"))
        assert table[a.id] == compute_inclusive(sigil, cg, a)

    def test_root_child_includes_everything(self, toy_profiles):
        sigil, cg = toy_profiles
        table = inclusive_cost_table(sigil, cg)
        main = sigil.tree.find(("main",))
        assert table[main.id].ops == sum(
            fc.ops for fc in sigil.functions.values()
        )

    def test_merged_node_name(self, toy_profiles):
        sigil, cg = toy_profiles
        a = sigil.tree.find(("main", "A"))
        merged = MergedNode(a, compute_inclusive(sigil, cg, a))
        assert merged.name == "A"


class TestCdfgEdgeQueries:
    def test_edges_into_and_from(self, toy_profiles):
        sigil, _ = toy_profiles
        cdfg = CDFG(sigil)
        c = sigil.tree.find(("main", "C")).id
        into = cdfg.data_edges_into(c)
        assert {e.writer for e in into} == {
            sigil.tree.find(("main",)).id,
            sigil.tree.find(("main", "A")).id,
        }
        outof = cdfg.data_edges_from(c)
        assert all(e.writer == c for e in outof)

    def test_local_edges_excluded_by_default(self):
        from repro.core import SigilConfig, SigilProfiler

        p = SigilProfiler(SigilConfig())
        p.on_run_begin()
        p.on_fn_enter("f")
        p.on_mem_write(0x10, 8)
        p.on_mem_read(0x10, 8)
        p.on_fn_exit("f")
        p.on_run_end()
        cdfg = CDFG(p.profile())
        assert cdfg.data_edges() == []
        assert len(cdfg.data_edges(include_local=True)) == 1

    def test_dot_max_nodes(self, blackscholes_profiles):
        sigil, _ = blackscholes_profiles
        dot = CDFG(sigil).to_dot(max_nodes=3)
        node_lines = [
            line for line in dot.splitlines()
            if "[label=" in line and "->" not in line
        ]
        assert len(node_lines) == 3


class TestProfileByName:
    def test_by_name_sums_contexts(self, blackscholes_profiles):
        sigil, _ = blackscholes_profiles
        by_name = sigil.by_name()
        mpn_total = sum(
            sigil.fn_comm(n.id).ops for n in sigil.contexts_named("__mpn_mul")
        )
        assert by_name["__mpn_mul"].ops == mpn_total
