"""Release hygiene: importability, docstrings, and documentation accuracy."""

from __future__ import annotations

import importlib
import pkgutil
import re
from pathlib import Path

import pytest

import repro

REPO = Path(__file__).resolve().parent.parent


def all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", all_modules())
def test_module_imports_and_is_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20, f"{module_name} docstring too thin"


@pytest.mark.parametrize("module_name", [m for m in all_modules() if m != "repro"])
def test_public_api_is_documented(module_name):
    """Every name a module exports must carry a docstring."""
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        obj = getattr(module, name)
        if isinstance(obj, (int, str, float, tuple, frozenset, dict)):
            continue  # constants document themselves via the module
        assert getattr(obj, "__doc__", None), f"{module_name}.{name} undocumented"


class TestDocsReferenceRealFiles:
    DOCS = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "CONTRIBUTING.md"] + [
        f"docs/{p.name}" for p in (REPO / "docs").glob("*.md")
    ]

    @pytest.mark.parametrize("doc", DOCS)
    def test_referenced_paths_exist(self, doc):
        text = (REPO / doc).read_text()
        pattern = re.compile(
            r"`((?:src|tests|benchmarks|examples|docs)/[A-Za-z0-9_./-]+"
            r"\.(?:py|md|s|txt))`"
        )
        missing = []
        for match in pattern.finditer(text):
            path = match.group(1)
            if path.startswith("benchmarks/results/"):
                continue  # generated artifacts
            if not (REPO / path).exists():
                missing.append(path)
        assert not missing, f"{doc} references missing files: {missing}"

    def test_readme_names_real_cli_commands(self):
        from repro.cli import build_parser

        parser = build_parser()
        subcommands = set(
            parser._subparsers._group_actions[0].choices  # noqa: SLF001
        )
        readme = (REPO / "README.md").read_text()
        for cmd in re.findall(r"^repro (\w+)", readme, flags=re.MULTILINE):
            assert cmd in subcommands, f"README mentions unknown command {cmd!r}"

    def test_design_experiment_index_bench_files_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for name in re.findall(r"`benchmarks/(bench_[a-z0-9_]+\.py)`", text):
            assert (REPO / "benchmarks" / name).exists(), name


class TestRepoHygiene:
    def test_gitignore_covers_build_artifacts(self):
        """Packaging and cache litter must never reach the index."""
        patterns = (REPO / ".gitignore").read_text().splitlines()
        for required in ("*.egg-info/", "__pycache__/", ".pytest_cache/"):
            assert required in patterns, f".gitignore misses {required}"

    def test_no_build_artifacts_tracked(self):
        """Nothing matching the ignore patterns is committed."""
        import subprocess

        tracked = subprocess.run(
            ["git", "ls-files"], cwd=REPO, capture_output=True, text=True,
        )
        if tracked.returncode != 0:  # not a git checkout (e.g. sdist)
            pytest.skip("not a git checkout")
        litter = [
            line for line in tracked.stdout.splitlines()
            if ".egg-info/" in line or "__pycache__/" in line
        ]
        assert not litter, f"build artifacts tracked: {litter}"

    def test_makefile_wires_telemetry_smoke_into_test(self):
        text = (REPO / "Makefile").read_text()
        assert "telemetry-smoke:" in text
        assert re.search(r"^test:.*\btelemetry-smoke\b", text, re.MULTILINE)

    def test_makefile_wires_campaign_smoke_into_test(self):
        text = (REPO / "Makefile").read_text()
        assert "campaign-smoke:" in text
        assert re.search(r"^test:.*\bcampaign-smoke\b", text, re.MULTILINE)

    def test_gitignore_covers_campaign_stores(self):
        """Result stores are caches; they must never reach the index."""
        patterns = (REPO / ".gitignore").read_text().splitlines()
        for required in (".repro-campaigns/", ".campaign-smoke/",
                         "benchmarks/results/store/"):
            assert required in patterns, f".gitignore misses {required}"
