"""Batch-boundary semantics of the batched trace transport.

These tests pin down the ordering contract: a batch is a faithful reordering
of scalar observer calls whose *classification* is order-insensitive, and
every event that could observe intermediate state (function boundaries,
thread switches, branches, syscalls) forces a flush first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SigilConfig, SigilProfiler
from repro.core.shadow import SHADOW_PAGE_SIZE
from repro.io.profilefile import dumps_profile
from repro.trace.batch import (
    DEFAULT_BATCH_SIZE,
    SCALAR_FLUSH_CUTOFF,
    BatchingTransport,
)
from repro.trace.events import OpKind
from repro.trace.observer import (
    MEM_READ,
    MEM_WRITE,
    BaseObserver,
    ObserverPipe,
    RecordingObserver,
    replay,
)


def _profile_text(drive, batch_size):
    profiler = SigilProfiler(SigilConfig())
    # scalar_cutoff=0: these tests pin the *batch kernel's* semantics, so
    # even tiny flushes must go through on_mem_batch.
    observer = (
        BatchingTransport(profiler, batch_size, scalar_cutoff=0)
        if batch_size
        else profiler
    )
    observer.on_run_begin()
    observer.on_fn_enter("main")
    drive(observer)
    observer.on_fn_exit("main")
    observer.on_run_end()
    return dumps_profile(profiler.profile())


class TestIntraBatchOrdering:
    def test_write_then_read_same_byte_one_batch(self):
        """W->R of one byte inside a single batch classifies exactly like
        the scalar path: a unique self-read of the fresh value."""

        def drive(obs):
            obs.on_mem_write(10, 1)
            obs.on_mem_read(10, 1)

        assert _profile_text(drive, 64) == _profile_text(drive, 0)

    def test_read_then_write_same_byte_one_batch(self):
        """R->W must *not* look like a read of the new value."""

        def drive(obs):
            obs.on_mem_read(10, 1)
            obs.on_mem_write(10, 1)
            obs.on_mem_read(10, 1)
            obs.on_mem_write(10, 1)

        assert _profile_text(drive, 64) == _profile_text(drive, 0)

    def test_alternating_rw_runs_same_unit(self):
        def drive(obs):
            for _ in range(5):
                obs.on_mem_read(3, 2)
                obs.on_mem_read(3, 2)
                obs.on_mem_write(4, 1)
                obs.on_mem_read(2, 4)

        for batch_size in (1, 2, 3, 64):
            assert _profile_text(drive, batch_size) == _profile_text(drive, 0)

    def test_page_straddling_accesses(self):
        """Accesses spanning the shadow-page boundary split and classify
        identically whether delivered scalar or batched."""
        edge = SHADOW_PAGE_SIZE - 3

        def drive(obs):
            obs.on_mem_write(edge, 8)
            obs.on_mem_read(edge, 8)
            obs.on_mem_write(2 * SHADOW_PAGE_SIZE - 1, 2)
            obs.on_mem_read(2 * SHADOW_PAGE_SIZE - 4, 16)

        for batch_size in (1, 3, 64):
            assert _profile_text(drive, batch_size) == _profile_text(drive, 0)


class TestFlushBoundaries:
    def _transport(self, batch_size=DEFAULT_BATCH_SIZE):
        rec = RecordingObserver()
        return BatchingTransport(rec, batch_size), rec

    def test_fn_exit_flushes_mid_buffer(self):
        """Accesses buffered inside a call must land before its exit."""
        transport, rec = self._transport()
        transport.on_fn_enter("f")
        transport.on_mem_write(1, 4)
        transport.on_mem_read(1, 4)
        transport.on_fn_exit("f")
        kinds = [type(e).__name__ for e in rec.events]
        assert kinds == ["FnEnter", "MemWrite", "MemRead", "FnExit"]

    def test_thread_switch_flushes_mid_buffer(self):
        transport, rec = self._transport()
        transport.on_mem_write(1, 1)
        transport.on_thread_switch(1)
        transport.on_mem_read(1, 1)
        transport.flush()
        kinds = [type(e).__name__ for e in rec.events]
        assert kinds == ["MemWrite", "ThreadSwitch", "MemRead"]

    def test_branch_and_syscall_flush(self):
        transport, rec = self._transport()
        transport.on_mem_write(1, 1)
        transport.on_branch(7, True)
        transport.on_mem_read(1, 1)
        transport.on_syscall_enter("read", 64)
        transport.on_syscall_exit("read", 64)
        kinds = [type(e).__name__ for e in rec.events]
        assert kinds == [
            "MemWrite", "Branch", "MemRead", "SyscallEnter", "SyscallExit",
        ]

    def test_run_end_drains_buffer(self):
        transport, rec = self._transport()
        transport.on_mem_write(1, 1)
        transport.on_run_end()
        assert [type(e).__name__ for e in rec.events] == ["MemWrite"]

    def test_op_does_not_flush_lenient_downstream(self):
        """Ops overtake buffered accesses for time-insensitive observers --
        the whole point of the transport."""

        class Lenient(BaseObserver):
            batch_time_strict = False

            def __init__(self):
                self.order = []

            def on_op(self, kind, count):
                self.order.append("op")

            def on_mem_batch(self, addrs, sizes, kinds):
                self.order.append(f"batch{len(addrs)}")

        obs = Lenient()
        transport = BatchingTransport(obs, 64, scalar_cutoff=0)
        transport.on_mem_write(1, 1)
        transport.on_op(OpKind.INT, 1)
        transport.on_mem_read(1, 1)
        transport.flush()
        assert obs.order == ["op", "batch2"]

    def test_short_flushes_replay_as_scalar_calls(self):
        """Below the occupancy cutoff the flush replays scalar calls --
        tiny batches cost more through the array kernels than they save."""

        class Both(BaseObserver):
            def __init__(self):
                self.calls = []

            def on_mem_read(self, addr, size):
                self.calls.append(("read", addr, size))

            def on_mem_write(self, addr, size):
                self.calls.append(("write", addr, size))

            def on_mem_batch(self, addrs, sizes, kinds):
                self.calls.append(("batch", len(addrs)))

        obs = Both()
        transport = BatchingTransport(obs, 64)  # default cutoff
        transport.on_mem_write(1, 4)
        transport.on_mem_read(2, 8)
        transport.flush()
        assert obs.calls == [("write", 1, 4), ("read", 2, 8)]
        assert transport.flushes == 1 and transport.batched_accesses == 2

        obs.calls.clear()
        for i in range(SCALAR_FLUSH_CUTOFF):
            transport.on_mem_read(i, 1)
        transport.flush()
        assert obs.calls == [("batch", SCALAR_FLUSH_CUTOFF)]

    def test_op_flushes_strict_downstream(self):
        """RecordingObserver demands exact scalar order (it is the ordering
        oracle), so ops must not overtake its buffered accesses."""
        transport, rec = self._transport()
        assert transport.strict_time
        transport.on_mem_write(1, 1)
        transport.on_op(OpKind.INT, 2)
        transport.on_mem_read(1, 1)
        transport.flush()
        assert [type(e).__name__ for e in rec.events] == [
            "MemWrite", "Op", "MemRead",
        ]

    def test_buffer_full_flushes(self):
        transport, rec = self._transport(batch_size=2)
        for i in range(5):
            transport.on_mem_write(i, 1)
        assert transport.flushes == 2
        writes = lambda: [e for e in rec.events if type(e).__name__ == "MemWrite"]
        assert len(writes()) == 4
        transport.flush()
        assert len(writes()) == 5

    def test_counters_and_occupancy(self):
        transport, _ = self._transport(batch_size=4)
        for i in range(6):
            transport.on_mem_read(i, 1)
        transport.flush()
        assert transport.batched_accesses == 6
        assert transport.flushes == 2
        assert transport.mean_occupancy == pytest.approx(3.0)

    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ValueError):
            BatchingTransport(RecordingObserver(), 0)
        with pytest.raises(ValueError):
            BatchingTransport(RecordingObserver(), -1)


class _LenientBranchObserver(BaseObserver):
    """Lenient downstream that accepts both mem and branch batches."""

    batch_time_strict = False

    def __init__(self):
        self.order = []

    def on_op(self, kind, count):
        self.order.append("op")

    def on_branch(self, site, taken):
        self.order.append(("branch", site, taken))

    def on_branch_batch(self, sites, takens):
        self.order.append(("branches", sites.tolist(), takens.tolist()))

    def on_mem_batch(self, addrs, sizes, kinds):
        self.order.append(("mem", len(addrs)))


class TestLenientBranchBuffering:
    def test_branches_buffered_and_delivered_after_mem(self):
        """For lenient downstreams branches do not flush the access buffer;
        at a boundary the mem batch lands first, then one branch batch."""
        obs = _LenientBranchObserver()
        transport = BatchingTransport(obs, 64, scalar_cutoff=0)
        transport.on_mem_write(1, 1)
        transport.on_branch(7, True)
        transport.on_mem_read(1, 1)
        transport.on_branch(7, False)
        transport.on_fn_exit("f")  # boundary: drains both buffers
        assert obs.order == [
            ("mem", 2),
            ("branches", [7, 7], [True, False]),
        ]
        assert transport.batched_branches == 2

    def test_ops_overtake_buffered_branches(self):
        """Ops forward immediately; deferred branches are sums for lenient
        tools, so the reordering is observable only as batching."""
        obs = _LenientBranchObserver()
        transport = BatchingTransport(obs, 64, scalar_cutoff=0)
        transport.on_branch(3, True)
        transport.on_op(OpKind.INT, 1)
        transport.flush()
        assert obs.order == ["op", ("branches", [3], [True])]

    def test_branch_buffer_full_flushes(self):
        obs = _LenientBranchObserver()
        transport = BatchingTransport(obs, 2, scalar_cutoff=0)
        for i in range(5):
            transport.on_branch(i, bool(i % 2))
        assert obs.order == [
            ("branches", [0, 1], [False, True]),
            ("branches", [2, 3], [False, True]),
        ]
        transport.flush()
        assert obs.order[-1] == ("branches", [4], [False])

    def test_short_branch_flushes_replay_as_scalar(self):
        """Below the cutoff branches replay as scalar on_branch calls with
        plain bools, preserving intra-stream order."""
        obs = _LenientBranchObserver()
        transport = BatchingTransport(obs, 64)  # default cutoff
        transport.on_branch(1, True)
        transport.on_branch(2, False)
        transport.flush()
        assert obs.order == [("branch", 1, True), ("branch", 2, False)]

    def test_default_expansion_for_hookless_lenient_observer(self):
        """A lenient observer without its own on_branch_batch gets the
        BaseObserver expansion: scalar on_branch calls, plain bools."""

        class NoHook(BaseObserver):
            batch_time_strict = False

            def __init__(self):
                self.calls = []

            def on_branch(self, site, taken):
                assert isinstance(taken, bool)
                self.calls.append((site, taken))

        obs = NoHook()
        transport = BatchingTransport(obs, 64, scalar_cutoff=0)
        for site, taken in [(0, True), (1, False), (0, True)]:
            transport.on_branch(site, taken)
        transport.flush()
        assert obs.calls == [(0, True), (1, False), (0, True)]

    def test_strict_downstream_never_sees_branch_batches(self):
        """Strict downstreams (the ordering oracle) keep exact scalar
        interleaving: branch arrives after the flushed accesses."""
        rec = RecordingObserver()
        transport = BatchingTransport(rec, 64, scalar_cutoff=0)
        transport.on_mem_write(1, 1)
        transport.on_branch(9, True)
        kinds = [type(e).__name__ for e in rec.events]
        assert kinds == ["MemWrite", "Branch"]
        assert transport.batched_branches == 0


class TestObserverPipeMixing:
    def test_pipe_mixes_batch_aware_and_scalar_observers(self):
        """A scalar-only observer in a pipe sees the batch expanded in the
        exact order RecordingObserver (the oracle) records it."""

        class ScalarOnly:
            """Deliberately not a BaseObserver: no on_mem_batch at all."""

            def __init__(self):
                self.calls = []

            def on_run_begin(self): ...
            def on_run_end(self): ...
            def on_fn_enter(self, name): self.calls.append(("enter", name))
            def on_fn_exit(self, name): self.calls.append(("exit", name))
            def on_op(self, kind, count): ...
            def on_branch(self, site, taken): ...
            def on_syscall_enter(self, name, nbytes): ...
            def on_syscall_exit(self, name, nbytes): ...
            def on_thread_switch(self, tid): ...
            def on_mem_read(self, addr, size):
                self.calls.append(("read", addr, size))
            def on_mem_write(self, addr, size):
                self.calls.append(("write", addr, size))

        scalar = ScalarOnly()
        oracle = RecordingObserver()
        pipe = ObserverPipe([scalar, oracle])
        # scalar_cutoff=0 so the pipe really receives a batch to expand.
        transport = BatchingTransport(pipe, 64, scalar_cutoff=0)
        transport.on_fn_enter("f")
        transport.on_mem_write(4, 2)
        transport.on_mem_read(4, 2)
        transport.on_mem_read(9, 1)
        transport.on_fn_exit("f")

        expected = []
        for event in oracle.events:
            name = type(event).__name__
            if name == "MemRead":
                expected.append(("read", event.addr, event.size))
            elif name == "MemWrite":
                expected.append(("write", event.addr, event.size))
            elif name == "FnEnter":
                expected.append(("enter", event.name))
            elif name == "FnExit":
                expected.append(("exit", event.name))
        assert scalar.calls == expected

    def test_batch_beneficial_advertisement(self):
        """Configs that expand batches to scalar calls anyway say so, and a
        pipe benefits if any member does."""
        assert SigilProfiler(SigilConfig()).batch_beneficial
        # Re-use mode has its own grouped kernel; only the FIFO page cap
        # (in-batch eviction order) still forces scalar expansion.
        assert SigilProfiler(SigilConfig(reuse_mode=True)).batch_beneficial
        capped = SigilProfiler(SigilConfig(max_shadow_pages=1))
        assert not capped.batch_beneficial
        assert not ObserverPipe([capped]).batch_beneficial
        assert ObserverPipe(
            [capped, SigilProfiler(SigilConfig())]
        ).batch_beneficial

    def test_pipe_is_strict_if_any_member_is(self):
        lenient = SigilProfiler(SigilConfig())  # baseline: not strict
        strict = SigilProfiler(SigilConfig(reuse_mode=True))
        assert not ObserverPipe([lenient]).batch_time_strict
        assert ObserverPipe([lenient, strict]).batch_time_strict
        assert ObserverPipe([lenient, RecordingObserver()]).batch_time_strict

    def test_pipe_profilers_match_scalar(self):
        """Two profilers sharing one pipe under one transport both match
        their scalar twins."""
        a = SigilProfiler(SigilConfig())
        b = SigilProfiler(SigilConfig(line_size=4))
        transport = BatchingTransport(ObserverPipe([a, b]), 8)

        sa = SigilProfiler(SigilConfig())
        sb = SigilProfiler(SigilConfig(line_size=4))

        for obs in (transport, ObserverPipe([sa, sb])):
            obs.on_run_begin()
            obs.on_fn_enter("main")
            for i in range(30):
                obs.on_mem_write(i * 3, 4)
                obs.on_mem_read(i * 3 + 1, 2)
            obs.on_fn_exit("main")
            obs.on_run_end()

        assert dumps_profile(a.profile()) == dumps_profile(sa.profile())
        assert dumps_profile(b.profile()) == dumps_profile(sb.profile())


class TestReplayBatching:
    def test_replay_batch_size_matches_scalar(self):
        rec = RecordingObserver()
        rec.on_run_begin()
        rec.on_fn_enter("main")
        for i in range(50):
            rec.on_mem_write(i, 2)
            rec.on_mem_read(i, 2)
            if i % 7 == 0:
                rec.on_branch(1, True)
        rec.on_fn_exit("main")
        rec.on_run_end()

        scalar = SigilProfiler(SigilConfig())
        replay(rec.events, scalar)
        for batch_size in (1, 4, 4096):
            batched = SigilProfiler(SigilConfig())
            replay(rec.events, batched, batch_size=batch_size)
            assert dumps_profile(batched.profile()) == dumps_profile(
                scalar.profile()
            )

    def test_batch_passthrough_preserves_order(self):
        """on_mem_batch into a transport flushes its own buffer first."""
        transport, rec = self._mk()
        transport.on_mem_write(1, 1)
        transport.on_mem_batch(
            np.array([2, 3]), np.array([1, 1]),
            np.array([MEM_READ, MEM_WRITE], dtype=np.uint8),
        )
        transport.flush()
        got = [(type(e).__name__, e.addr) for e in rec.events]
        assert got == [("MemWrite", 1), ("MemRead", 2), ("MemWrite", 3)]

    @staticmethod
    def _mk():
        rec = RecordingObserver()
        return BatchingTransport(rec, 64), rec
