"""Observer plumbing tests: pipe fan-out, recording, replay."""

from __future__ import annotations

from repro.trace import (
    NullObserver,
    ObserverPipe,
    RecordingObserver,
    TraceObserver,
    replay,
)
from repro.trace.events import FnEnter, FnExit, MemRead, MemWrite, Op, OpKind


def emit_sample(obs):
    obs.on_run_begin()
    obs.on_fn_enter("main")
    obs.on_op(OpKind.INT, 3)
    obs.on_mem_write(0x10, 4)
    obs.on_mem_read(0x10, 4)
    obs.on_branch(0, True)
    obs.on_syscall_enter("read", 1)
    obs.on_syscall_exit("read", 2)
    obs.on_fn_exit("main")
    obs.on_run_end()


class TestPipe:
    def test_fans_out_in_order(self):
        a, b = RecordingObserver(), RecordingObserver()
        emit_sample(ObserverPipe([a, b]))
        assert a.events == b.events
        assert len(a.events) == 8

    def test_null_observer_accepts_everything(self):
        emit_sample(NullObserver())  # must not raise

    def test_protocol_runtime_checkable(self):
        assert isinstance(RecordingObserver(), TraceObserver)
        assert isinstance(NullObserver(), TraceObserver)


class TestReplay:
    def test_replay_equals_live(self):
        live = RecordingObserver()
        emit_sample(live)
        replayed = RecordingObserver()
        replay(live.events, replayed)
        assert replayed.events == live.events

    def test_replay_into_profiler_matches_live(self):
        """A stored trace must profile identically to a live run -- the
        paper's promise that released profiles replace re-running Sigil."""
        from repro.core import SigilConfig, SigilProfiler
        from repro.io import dumps_profile

        live_rec = RecordingObserver()
        emit_sample(live_rec)

        p1 = SigilProfiler(SigilConfig(reuse_mode=True))
        emit_sample(p1)
        p2 = SigilProfiler(SigilConfig(reuse_mode=True))
        replay(live_rec.events, p2)
        assert dumps_profile(p1.profile()) == dumps_profile(p2.profile())


class TestEventDataclasses:
    def test_equality_and_hash(self):
        assert MemRead(1, 2) == MemRead(1, 2)
        assert MemRead(1, 2) != MemWrite(1, 2)
        assert hash(FnEnter("f")) == hash(FnEnter("f"))

    def test_frozen(self):
        import pytest

        ev = Op(OpKind.INT, 1)
        with pytest.raises(Exception):
            ev.count = 2
