"""Profile persistence round-trip tests."""

from __future__ import annotations

import pytest

from repro.io import dump_profile, dumps_profile, load_profile, loads_profile


class TestRoundTrip:
    def test_text_roundtrip_stable(self, toy_profiles):
        sigil, _ = toy_profiles
        text = dumps_profile(sigil)
        loaded = loads_profile(text)
        assert dumps_profile(loaded) == text

    def test_tree_preserved(self, toy_profiles):
        sigil, _ = toy_profiles
        loaded = loads_profile(dumps_profile(sigil))
        assert len(loaded.tree) == len(sigil.tree)
        for node in sigil.contexts():
            other = loaded.tree.find(node.path)
            assert other is not None
            assert other.calls == node.calls

    def test_edges_preserved(self, toy_profiles):
        sigil, _ = toy_profiles
        loaded = loads_profile(dumps_profile(sigil))
        for (w, r), edge in sigil.comm.items():
            w_path = sigil.tree.node(w).path if w >= 0 else None
            r_path = sigil.tree.node(r).path
            lw = loaded.tree.find(w_path).id if w_path is not None else w
            lr = loaded.tree.find(r_path).id
            other = loaded.comm.get(lw, lr)
            assert other.unique_bytes == edge.unique_bytes
            assert other.nonunique_bytes == edge.nonunique_bytes

    def test_reuse_preserved(self, toy_profiles):
        sigil, _ = toy_profiles
        loaded = loads_profile(dumps_profile(sigil))
        assert loaded.reuse is not None
        assert loaded.reuse.byte_breakdown() == sigil.reuse.byte_breakdown()

    def test_file_roundtrip(self, toy_profiles, tmp_path):
        sigil, _ = toy_profiles
        path = tmp_path / "toy.profile"
        dump_profile(sigil, path)
        loaded = load_profile(path)
        assert loaded.total_time == sigil.total_time

    def test_analysis_works_on_loaded_profile(self, toy_profiles):
        """Post-processing released profile data without re-running Sigil."""
        from repro.analysis import CDFG

        sigil, _ = toy_profiles
        loaded = loads_profile(dumps_profile(sigil))
        cdfg = CDFG(loaded)
        assert len(cdfg.data_edges()) == len(CDFG(sigil).data_edges())


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(ValueError):
            loads_profile("not a profile\n")

    def test_unknown_line_kind(self):
        with pytest.raises(ValueError):
            loads_profile("# sigil-profile 1\nfrobnicate 1 2 3\n")

    def test_newline_in_name_rejected_at_dump(self, toy_profiles):
        sigil, _ = toy_profiles
        node = sigil.contexts()[0]
        original = node.name
        try:
            node.name = "bad\nname"
            with pytest.raises(ValueError):
                dumps_profile(sigil)
        finally:
            node.name = original
