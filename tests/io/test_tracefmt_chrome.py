"""Chrome trace-event export: schema validity, round-trip totals, pipeline."""

from __future__ import annotations

import json
from collections import defaultdict

import pytest

from repro.core.segments import EDGE_DATA, EventLog
from repro.io import (
    dumps_chrome,
    dumps_events,
    events_to_chrome,
    loads_events,
    manifest_to_chrome,
    spans_to_chrome,
)
from repro.io.tracefmt import PIPELINE_PID, synthesize_spans
from repro.telemetry import Manifest

VALID_PHASES = {"X", "M", "s", "f", "C", "B", "E", "b", "e", "i"}


def slices(trace):
    return [e for e in trace if e["ph"] == "X"]


def flows(trace):
    return [e for e in trace if e["ph"] in ("s", "f")]


class TestEventTimeline:
    def test_serialises_to_a_list_of_ph_keyed_dicts(self, blackscholes_profiles):
        sigil, _ = blackscholes_profiles
        parsed = json.loads(dumps_chrome(events_to_chrome(sigil.events)))
        assert isinstance(parsed, list) and parsed
        for event in parsed:
            assert isinstance(event, dict)
            assert event["ph"] in VALID_PHASES
            if event["ph"] != "M":
                assert isinstance(event["ts"], (int, float))
            assert "pid" in event and "tid" in event

    def test_one_duration_event_per_segment(self, blackscholes_profiles):
        sigil, _ = blackscholes_profiles
        trace = events_to_chrome(sigil.events)
        assert len(slices(trace)) == sigil.events.n_segments

    def test_per_track_ordering_is_monotone(self, blackscholes_profiles):
        sigil, _ = blackscholes_profiles
        by_track = defaultdict(list)
        for event in slices(events_to_chrome(sigil.events)):
            by_track[(event["pid"], event["tid"])].append(event["ts"])
        assert by_track
        for track_ts in by_track.values():
            assert track_ts == sorted(track_ts)

    def test_flow_bytes_total_matches_event_log(self, blackscholes_profiles):
        sigil, _ = blackscholes_profiles
        expected = sum(
            e.bytes for e in sigil.events.edges() if e.kind == EDGE_DATA
        )
        starts = [e for e in flows(events_to_chrome(sigil.events))
                  if e["ph"] == "s"]
        assert sum(e["args"]["bytes"] for e in starts) == expected > 0

    def test_flow_ids_resolve_in_pairs(self, blackscholes_profiles):
        sigil, _ = blackscholes_profiles
        seen = defaultdict(lambda: {"s": 0, "f": 0})
        for event in flows(events_to_chrome(sigil.events)):
            seen[event["id"]][event["ph"]] += 1
            if event["ph"] == "f":
                assert event["bp"] == "e"  # bind to the enclosing slice
        assert seen
        for counts in seen.values():
            assert counts == {"s": 1, "f": 1}

    def test_flows_point_forward_in_time(self, blackscholes_profiles):
        sigil, _ = blackscholes_profiles
        trace = events_to_chrome(sigil.events)
        start_ts = {e["id"]: e["ts"] for e in trace if e["ph"] == "s"}
        for event in trace:
            if event["ph"] == "f":
                assert event["ts"] >= start_ts[event["id"]] - 0

    def test_counter_tracks_are_cumulative(self, blackscholes_profiles):
        sigil, _ = blackscholes_profiles
        trace = events_to_chrome(sigil.events)
        for name, total in (
            ("unique bytes (cum)",
             sum(e.bytes for e in sigil.events.edges() if e.kind == EDGE_DATA)),
            ("ops (cum)", sigil.events.total_ops()),
        ):
            samples = [e for e in trace if e["ph"] == "C" and e["name"] == name]
            values = [e["args"][name] for e in samples]
            assert values == sorted(values)
            assert values[-1] == total

    def test_tree_labels_name_the_tracks(self, toy_profiles):
        sigil, _ = toy_profiles
        trace = events_to_chrome(sigil.events, sigil.tree)
        names = {e["name"] for e in slices(trace)}
        assert {"main", "A", "C", "D"} <= names
        thread_names = {
            e["args"]["name"] for e in trace
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "A" in thread_names

    def test_without_tree_tracks_use_ctx_ids(self, toy_profiles):
        sigil, _ = toy_profiles
        reloaded = loads_events(dumps_events(sigil.events))
        names = {e["name"] for e in slices(events_to_chrome(reloaded))}
        assert all(name.startswith("ctx") for name in names)

    def test_threads_map_to_processes(self):
        log = EventLog()
        log.new_segment(1, 1, 0, thread=0).ops = 4
        log.new_segment(2, 2, 4, thread=3).ops = 2
        trace = events_to_chrome(log)
        pids = {e["pid"] for e in slices(trace)}
        assert pids == {1, 4}  # pid_base + thread


class TestEmptyLog:
    def test_empty_log_renders_as_empty_trace(self):
        """``[]`` is valid Chrome trace JSON; an empty log must not emit
        orphan counter samples or process metadata."""
        trace = events_to_chrome(EventLog())
        assert trace == []
        assert json.loads(dumps_chrome(trace)) == []


class TestCurveTracks:
    def _curves(self, window=10):
        from repro.analysis.windowed import windowed_curves

        log = EventLog()
        for i in range(4):
            log.new_segment(i, i, 10 * i).ops = 10
        log.add_data_bytes(0, 2, 64)
        log.add_data_bytes(1, 3, 16)
        return windowed_curves(log, window=window)

    def test_one_sample_per_window_per_track(self):
        from repro.io import curves_to_chrome

        curves = self._curves()
        trace = curves_to_chrome(curves)
        counters = [e for e in trace if e["ph"] == "C"]
        by_name = defaultdict(list)
        for event in counters:
            assert event["args"][event["name"]] is not None
            by_name[event["name"]].append(event["ts"])
        assert set(by_name) == {
            "WS(t) bytes", "comm bytes/window", "ops/window",
            "mean reuse lifetime (ops)", "unique bytes (cum)", "ops (cum)",
        }
        for ts in by_name.values():
            assert ts == [k * curves.window for k in range(curves.n_windows)]

    def test_ws_track_carries_the_curve(self):
        from repro.io import curves_to_chrome

        curves = self._curves()
        ws = [
            e["args"]["WS(t) bytes"]
            for e in curves_to_chrome(curves)
            if e["ph"] == "C" and e["name"] == "WS(t) bytes"
        ]
        assert ws == curves.ws_bytes.tolist()

    def test_cumulative_tracks_optional(self):
        from repro.io import curves_to_chrome

        trace = curves_to_chrome(self._curves(), include_cumulative=False)
        names = {e["name"] for e in trace if e["ph"] == "C"}
        assert "unique bytes (cum)" not in names and "ops (cum)" not in names

    def test_process_name_optional(self):
        from repro.io import curves_to_chrome

        named = curves_to_chrome(self._curves())
        meta = [e for e in named if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "workload timeline"
        anonymous = curves_to_chrome(self._curves(), process_name=None)
        assert not [e for e in anonymous if e["ph"] == "M"]

    def test_empty_curves_render_as_empty_trace(self):
        from repro.analysis.windowed import windowed_curves
        from repro.io import curves_to_chrome

        assert curves_to_chrome(windowed_curves(EventLog())) == []

    def test_combined_harness_trace_is_schema_valid(self, toy_profiles):
        """ProfiledRun.chrome_trace keeps every event in the valid-phase
        set once the timeline counter tracks ride along."""
        from repro.analysis.windowed import windowed_curves
        from repro.io import curves_to_chrome

        sigil, _ = toy_profiles
        trace = events_to_chrome(sigil.events) + curves_to_chrome(
            windowed_curves(sigil.events),
            include_cumulative=False,
            process_name=None,
        )
        for event in trace:
            assert event["ph"] in VALID_PHASES


class TestPipelineSpans:
    def test_spans_render_as_phase_slices(self):
        spans = [("setup", 0.0, 0.5), ("execute", 0.5, 2.0)]
        trace = spans_to_chrome(spans)
        phases = slices(trace)
        assert [e["name"] for e in phases] == ["setup", "execute"]
        assert phases[0]["pid"] == PIPELINE_PID
        assert phases[1]["ts"] == pytest.approx(0.5e6)
        assert phases[1]["dur"] == pytest.approx(1.5e6)

    def test_synthesize_spans_nests_children_in_parents(self):
        spans = {p: (s, e) for p, s, e in synthesize_spans(
            {"setup": 1.0, "execute": 4.0, "execute/replay": 3.0,
             "aggregate": 0.5}
        )}
        assert spans["setup"] == (0.0, 1.0)
        assert spans["execute"] == (1.0, 5.0)
        assert spans["execute/replay"] == (1.0, 4.0)  # inside the parent
        assert spans["aggregate"] == (5.0, 5.5)

    def test_manifest_prefers_recorded_spans(self):
        manifest = Manifest(
            workload="w", size="s",
            phases={"setup": 1.0, "execute": 2.0},
            spans=[["setup", 0.25, 1.25], ["execute", 1.25, 3.25]],
        )
        phases = slices(manifest_to_chrome(manifest))
        assert phases[0]["ts"] == pytest.approx(0.25e6)

    def test_pre_span_manifest_falls_back_to_synthesis(self):
        manifest = Manifest(
            workload="w", size="s", phases={"setup": 1.0, "execute": 2.0}
        )
        phases = slices(manifest_to_chrome(manifest))
        assert [e["name"] for e in phases] == ["setup", "execute"]
        assert phases[1]["ts"] == pytest.approx(1e6)

    def test_process_named_after_workload(self):
        manifest = Manifest(workload="vips", size="simsmall",
                            phases={"execute": 1.0})
        meta = [e for e in manifest_to_chrome(manifest)
                if e["ph"] == "M" and e["name"] == "process_name"]
        assert "vips/simsmall" in meta[0]["args"]["name"]
