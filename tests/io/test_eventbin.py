"""Binary columnar event-file (``# sigil-events 2``) tests."""

from __future__ import annotations

import io
import struct

import numpy as np
import pytest

from repro.core.segments import (
    DATA_EDGE_DTYPE,
    OC_EDGE_DTYPE,
    SEG_DTYPE,
    EventArrays,
    EventLog,
)
from repro.io import (
    BinaryEventWriter,
    dump_events,
    dump_events_bin,
    dumps_events,
    dumps_events_bin,
    iter_event_chunks,
    load_event_arrays,
    load_event_arrays_bin,
    load_events,
    load_events_bin,
)
from repro.io.eventbin import MAGIC_V2, is_binary_events, zstd_available


def make_log() -> EventLog:
    log = EventLog()
    s0 = log.new_segment(0, 0, 0)
    s1 = log.new_segment(1, 1, 5, thread=1)
    s2 = log.new_segment(2, 2, 9)
    s0.ops, s1.ops, s2.ops = 3, 10, 7
    log.add_call_edge(0, 1)
    log.add_order_edge(0, 2)
    log.add_data_bytes(1, 2, 64)
    return log


class TestRoundTrip:
    @pytest.mark.parametrize("compression", [None, "gzip"])
    def test_bytes_roundtrip(self, compression):
        log = make_log()
        blob = dumps_events_bin(log, compression=compression)
        assert blob.startswith(MAGIC_V2)
        assert load_events_bin(io.BytesIO(blob)) == log

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "events.bin"
        dump_events_bin(make_log(), path)
        assert load_events_bin(path) == make_log()

    def test_v1_v2_v1_byte_identical(self):
        log = make_log()
        via_v2 = load_events_bin(io.BytesIO(dumps_events_bin(log)))
        assert dumps_events(via_v2) == dumps_events(log)

    def test_chunked_roundtrip(self):
        """Tables spanning many tiny chunks reassemble losslessly."""
        log = make_log()
        blob = dumps_events_bin(log, chunk_rows=1)
        assert load_events_bin(io.BytesIO(blob)) == log

    def test_empty_log(self):
        blob = dumps_events_bin(EventLog())
        loaded = load_event_arrays_bin(io.BytesIO(blob))
        assert loaded.n_segments == 0
        assert len(loaded.ordercall) == 0 and len(loaded.data) == 0

    def test_order_call_interleaving_preserved(self):
        log = EventLog()
        for i in range(4):
            log.new_segment(i, i, i)
        log.add_order_edge(0, 1)
        log.add_call_edge(1, 2)
        log.add_order_edge(2, 3)
        loaded = load_events_bin(io.BytesIO(dumps_events_bin(log)))
        assert [e.kind for e in loaded.edges()] == ["order", "call", "order"]

    def test_accepts_event_arrays_input(self):
        arrays = EventArrays.from_eventlog(make_log())
        blob = dumps_events_bin(arrays)
        assert load_event_arrays_bin(io.BytesIO(blob)) == arrays


class TestStreamingWriter:
    def test_scalar_appends_match_bulk_dump(self, tmp_path):
        log = make_log()
        path = tmp_path / "stream.bin"
        with BinaryEventWriter(path, chunk_rows=2) as w:
            for seg in log.segments:
                assert (
                    w.add_segment(
                        seg.ctx_id, seg.call_id, seg.start_time,
                        seg.ops, seg.thread,
                    )
                    == seg.seg_id
                )
            w.add_call_edge(0, 1)
            w.add_order_edge(0, 2)
            w.add_data_edge(1, 2, 64)
        assert load_events_bin(path) == log

    def test_unclosed_writer_detected_as_truncated(self, tmp_path):
        path = tmp_path / "truncated.bin"
        w = BinaryEventWriter(path)
        w.add_segment(0, 0, 0, 1)
        w._fh.flush()
        # no close(): trailer missing
        with pytest.raises(ValueError, match="trailer"):
            list(iter_event_chunks(path))
        w.close()

    def test_write_after_close_rejected(self, tmp_path):
        w = BinaryEventWriter(tmp_path / "closed.bin")
        w.close()
        with pytest.raises(ValueError, match="closed"):
            w.add_segment(0, 0, 0, 1)

    def test_streaming_reader_yields_per_chunk(self):
        blob = dumps_events_bin(make_log(), chunk_rows=1)
        chunks = list(iter_event_chunks(io.BytesIO(blob)))
        assert [t for t, _ in chunks].count("segs") == 3
        assert all(len(rows) == 1 for _, rows in chunks)
        assert all(
            rows.dtype in (SEG_DTYPE, OC_EDGE_DTYPE, DATA_EDGE_DTYPE)
            for _, rows in chunks
        )


class TestSniffing:
    def test_load_events_sniffs_both(self, tmp_path):
        log = make_log()
        v1, v2 = tmp_path / "v1.events", tmp_path / "v2.events"
        dump_events(log, v1)
        dump_events_bin(log, v2)
        assert load_events(v1) == log
        assert load_events(v2) == log

    def test_load_event_arrays_sniffs_both(self, tmp_path):
        log = make_log()
        v1, v2 = tmp_path / "v1.events", tmp_path / "v2.events"
        dump_events(log, v1)
        dump_events_bin(log, v2)
        expected = EventArrays.from_eventlog(log)
        assert load_event_arrays(v1) == expected
        assert load_event_arrays(v2) == expected

    def test_is_binary_events(self):
        assert is_binary_events(MAGIC_V2)
        assert is_binary_events(MAGIC_V2 + b"junk")
        assert not is_binary_events(b"# sigil-events 1\n")


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            load_events_bin(io.BytesIO(b"# sigil-events 1\nseg 0 0 0 0 0\n"))

    def test_truncated_payload(self):
        blob = dumps_events_bin(make_log())
        with pytest.raises(ValueError, match="truncated"):
            load_events_bin(io.BytesIO(blob[:-10]))

    def test_unknown_chunk_tag(self):
        buf = io.BytesIO()
        buf.write(MAGIC_V2)
        buf.write(struct.pack("<4s4sQ", b"wild", b"raw.", 0))
        with pytest.raises(ValueError, match="unknown event-chunk tag"):
            list(iter_event_chunks(io.BytesIO(buf.getvalue())))

    def test_trailer_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.bin"
        w = BinaryEventWriter(path, compression=None)
        w.add_segment(0, 0, 0, 1)
        w._counts[b"segs"] = 2  # corrupt the bookkeeping before sealing
        w.close()
        with pytest.raises(ValueError, match="trailer row counts"):
            load_events_bin(path)

    def test_negative_ops_rejected(self):
        arrays = EventArrays.from_eventlog(make_log())
        arrays.segs["ops"][0] = -1
        blob = dumps_events_bin(arrays)
        with pytest.raises(ValueError, match="non-negative"):
            load_event_arrays_bin(io.BytesIO(blob))

    def test_backward_edge_rejected(self):
        arrays = EventArrays.from_eventlog(make_log())
        arrays.ordercall["src"][0] = 2
        arrays.ordercall["dst"][0] = 1
        blob = dumps_events_bin(arrays)
        with pytest.raises(ValueError, match="forward"):
            load_event_arrays_bin(io.BytesIO(blob))

    def test_zstd_gated_when_unavailable(self):
        if zstd_available():
            pytest.skip("zstandard installed; gating not exercised")
        with pytest.raises(ValueError, match="zstandard"):
            dumps_events_bin(make_log(), compression="zstd")


class TestErrorLocation:
    """Truncation/corruption errors name the chunk index and byte offset."""

    def test_truncated_payload_names_chunk_and_offset(self):
        blob = dumps_events_bin(make_log(), compression=None, chunk_rows=1)
        with pytest.raises(ValueError, match=r"chunk \d+ at byte \d+"):
            list(iter_event_chunks(io.BytesIO(blob[:-10])))

    def test_partial_header_names_chunk_and_offset(self):
        blob = dumps_events_bin(make_log(), compression=None)
        # Cut inside a chunk header: magic + 3 bytes of the first header.
        cut = blob[: len(MAGIC_V2) + 3]
        with pytest.raises(
            ValueError, match=r"partial chunk header \(chunk 0 at byte \d+\)"
        ):
            list(iter_event_chunks(io.BytesIO(cut)))

    def test_reported_offset_is_the_real_file_offset(self):
        """The byte offset in the message points at the damaged chunk."""
        blob = dumps_events_bin(make_log(), compression=None, chunk_rows=1)
        # Overwrite the second chunk's tag with garbage; its true offset is
        # magic + first chunk (header + payload length from that header).
        first_len = struct.unpack_from(
            "<Q", blob, len(MAGIC_V2) + 8
        )[0]
        second = len(MAGIC_V2) + 16 + first_len
        bad = bytearray(blob)
        bad[second : second + 4] = b"wild"
        with pytest.raises(
            ValueError,
            match=rf"unknown event-chunk tag .* \(chunk 1 at byte {second}\)",
        ):
            list(iter_event_chunks(io.BytesIO(bytes(bad))))

    def test_trailer_mismatch_names_chunk_and_offset(self, tmp_path):
        path = tmp_path / "bad.bin"
        w = BinaryEventWriter(path, compression=None)
        w.add_segment(0, 0, 0, 1)
        w._counts[b"segs"] = 2
        w.close()
        with pytest.raises(
            ValueError, match=r"trailer row counts .* \(chunk \d+ at byte \d+\)"
        ):
            list(iter_event_chunks(path))

    def test_missing_trailer_names_last_offset(self, tmp_path):
        path = tmp_path / "truncated.bin"
        w = BinaryEventWriter(path)
        w.add_segment(0, 0, 0, 1)
        w._fh.flush()  # no close(): trailer missing
        with pytest.raises(
            ValueError, match=r"missing trailer .*chunk \d+ at byte \d+"
        ):
            list(iter_event_chunks(path))
        w.close()


class TestTableFilter:
    """``iter_event_chunks(..., tables=...)`` skips unwanted payloads."""

    def test_filters_to_requested_tables(self):
        blob = dumps_events_bin(make_log())
        only_segs = list(
            iter_event_chunks(io.BytesIO(blob), tables=("segs",))
        )
        assert {t for t, _ in only_segs} == {"segs"}
        assert sum(len(rows) for _, rows in only_segs) == 3
        pair = list(
            iter_event_chunks(io.BytesIO(blob), tables=("segs", "data"))
        )
        assert {t for t, _ in pair} == {"segs", "data"}

    def test_unknown_table_rejected(self):
        blob = dumps_events_bin(make_log())
        with pytest.raises(ValueError, match="unknown event tables"):
            list(iter_event_chunks(io.BytesIO(blob), tables=("edges",)))

    def test_filtered_pass_skips_other_tables_trailer_check(self, tmp_path):
        """Skipped tables are not decoded, so their counts are unchecked."""
        path = tmp_path / "bad_data.bin"
        w = BinaryEventWriter(path, compression=None)
        w.add_segment(0, 0, 0, 1)
        w.add_segment(1, 1, 1, 1)
        w.add_data_edge(0, 1, 8)
        w._counts[b"data"] = 5  # corrupt only the data-table count
        w.close()
        segs = list(iter_event_chunks(path, tables=("segs",)))
        assert sum(len(rows) for _, rows in segs) == 2
        with pytest.raises(ValueError, match="trailer row counts"):
            list(iter_event_chunks(path))
