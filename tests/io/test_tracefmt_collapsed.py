"""Collapsed-stack flamegraph export: exact weight sums, stack paths."""

from __future__ import annotations

import re

import pytest

from repro.io import profile_to_collapsed
from repro.io.tracefmt import COLLAPSED_WEIGHTS, dumps_collapsed

LINE_RE = re.compile(r"^(?P<stack>.+) (?P<weight>\d+)$")


def parse_collapsed(text):
    """stack tuple -> weight, parsed the way flamegraph.pl splits lines."""
    out = {}
    for line in text.splitlines():
        match = LINE_RE.match(line)
        assert match, f"malformed collapsed line: {line!r}"
        out[tuple(match.group("stack").split(";"))] = int(match.group("weight"))
    return out


class TestWeights:
    def test_unique_in_sums_to_total_unique_input_bytes(
        self, blackscholes_profiles
    ):
        sigil, _ = blackscholes_profiles
        stacks = parse_collapsed(profile_to_collapsed(sigil, "unique_in"))
        expected = sum(
            sigil.unique_input_bytes(n.id) for n in sigil.contexts()
        )
        assert sum(stacks.values()) == expected > 0

    def test_ops_sums_to_total_context_ops(self, blackscholes_profiles):
        sigil, _ = blackscholes_profiles
        stacks = parse_collapsed(profile_to_collapsed(sigil, "ops"))
        expected = sum(sigil.fn_comm(n.id).ops for n in sigil.contexts())
        assert sum(stacks.values()) == expected > 0

    def test_comm_is_in_plus_out(self, blackscholes_profiles):
        sigil, _ = blackscholes_profiles
        comm = parse_collapsed(profile_to_collapsed(sigil, "comm"))
        total_in = sum(sigil.unique_input_bytes(n.id) for n in sigil.contexts())
        total_out = sum(
            sigil.unique_output_bytes(n.id) for n in sigil.contexts()
        )
        assert sum(comm.values()) == total_in + total_out

    def test_every_weight_axis_renders(self, toy_profiles):
        sigil, _ = toy_profiles
        for weight in COLLAPSED_WEIGHTS:
            parse_collapsed(profile_to_collapsed(sigil, weight))

    def test_unknown_weight_rejected(self, toy_profiles):
        sigil, _ = toy_profiles
        with pytest.raises(ValueError, match="unknown weight"):
            profile_to_collapsed(sigil, "cycles")


class TestStacks:
    def test_stacks_are_context_paths(self, toy_profiles):
        sigil, _ = toy_profiles
        stacks = parse_collapsed(profile_to_collapsed(sigil, "ops"))
        assert ("main",) in stacks
        assert ("main", "A", "D") in stacks  # context-sensitive D1
        assert ("main", "C", "D") in stacks  # vs D2 (Figure 2)

    def test_context_sensitive_weights_stay_separate(self, toy_profiles):
        sigil, _ = toy_profiles
        stacks = parse_collapsed(profile_to_collapsed(sigil, "unique_in"))
        d1 = sigil.tree.find(("main", "A", "D"))
        assert stacks.get(("main", "A", "D"), 0) == sigil.unique_input_bytes(
            d1.id
        )

    def test_zero_weight_contexts_omitted(self, toy_profiles):
        sigil, _ = toy_profiles
        stacks = parse_collapsed(profile_to_collapsed(sigil, "local"))
        for weight in stacks.values():
            assert weight > 0

    def test_dumps_alias_matches(self, toy_profiles):
        sigil, _ = toy_profiles
        assert dumps_collapsed(sigil, "ops") == profile_to_collapsed(
            sigil, "ops"
        )
