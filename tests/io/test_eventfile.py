"""Event-file persistence tests."""

from __future__ import annotations

import pytest

from repro.analysis import analyze_critical_path
from repro.core.segments import EDGE_DATA, EventLog
from repro.io import dump_events, dumps_events, load_events, loads_events


def make_log() -> EventLog:
    log = EventLog()
    s0 = log.new_segment(0, 0, 0)
    s1 = log.new_segment(1, 1, 5)
    s2 = log.new_segment(2, 2, 9)
    s0.ops, s1.ops, s2.ops = 3, 10, 7
    log.add_call_edge(0, 1)
    log.add_order_edge(0, 2)
    log.add_data_bytes(1, 2, 64)
    return log


class TestRoundTrip:
    def test_text_stable(self):
        log = make_log()
        text = dumps_events(log)
        assert dumps_events(loads_events(text)) == text

    def test_segments_preserved(self):
        loaded = loads_events(dumps_events(make_log()))
        assert loaded.n_segments == 3
        assert [s.ops for s in loaded.segments] == [3, 10, 7]
        assert [s.start_time for s in loaded.segments] == [0, 5, 9]

    def test_edges_preserved(self):
        loaded = loads_events(dumps_events(make_log()))
        kinds = sorted(e.kind for e in loaded.edges())
        assert kinds == ["call", "data", "order"]
        data = [e for e in loaded.edges() if e.kind == EDGE_DATA]
        assert data[0].bytes == 64

    def test_critical_path_identical_after_roundtrip(self, toy_profiles):
        sigil, _ = toy_profiles
        loaded = loads_events(dumps_events(sigil.events))
        live = analyze_critical_path(sigil.events)
        offline = analyze_critical_path(loaded)
        assert offline.critical_length == live.critical_length
        assert offline.serial_length == live.serial_length

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "events.txt"
        dump_events(make_log(), path)
        assert load_events(path).n_segments == 3


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(ValueError):
            loads_events("garbage\n")

    def test_out_of_order_segments_rejected(self):
        with pytest.raises(ValueError):
            loads_events("# sigil-events 1\nseg 5 0 0 0 0\n")

    def test_unknown_edge_kind(self):
        with pytest.raises(ValueError):
            loads_events("# sigil-events 1\nseg 0 0 0 0 0\nedge warp 0 0\n")

    def test_errors_carry_line_number_and_text(self):
        with pytest.raises(ValueError) as exc:
            loads_events("# sigil-events 1\nseg 0 0 0 0 0\nseg x y z 0 0\n")
        assert "line 3" in str(exc.value)
        assert "seg x y z 0 0" in str(exc.value)

    def test_out_of_order_error_names_the_line(self):
        with pytest.raises(ValueError, match=r"line 2"):
            loads_events("# sigil-events 1\nseg 5 0 0 0 0\n")

    def test_wrong_field_count_reported(self):
        with pytest.raises(ValueError, match=r"5 or 6 fields.*line 2"):
            loads_events("# sigil-events 1\nseg 0 0\n")

    def test_data_edge_operand_count(self):
        with pytest.raises(ValueError, match=r"data edges take 3 operands"):
            loads_events("# sigil-events 1\nseg 0 0 0 0 0\nedge data 0 0\n")

    def test_malformed_edge_bytes(self):
        with pytest.raises(ValueError) as exc:
            loads_events(
                "# sigil-events 1\nseg 0 0 0 0 0\nedge data 0 0 lots\n"
            )
        assert "malformed edge record" in str(exc.value)
        assert "line 3" in str(exc.value)

    def test_blank_and_comment_lines_skipped(self):
        loaded = loads_events(
            "# sigil-events 1\n\n# a comment\nseg 0 0 0 0 0\n"
        )
        assert loaded.n_segments == 1

    def test_negative_ops_rejected(self):
        """Regression: negative ops used to load silently and corrupt every
        downstream cost sum."""
        with pytest.raises(
            ValueError, match=r"ops must be non-negative.*line 2"
        ):
            loads_events("# sigil-events 1\nseg 0 0 0 0 -3 0\n")

    def test_negative_thread_rejected(self):
        with pytest.raises(
            ValueError, match=r"thread must be non-negative.*line 2"
        ):
            loads_events("# sigil-events 1\nseg 0 0 0 0 5 -1\n")

    def test_negative_data_bytes_rejected(self):
        """Regression: negative data-edge bytes used to load silently."""
        with pytest.raises(
            ValueError, match=r"bytes must be non-negative.*line 4"
        ):
            loads_events(
                "# sigil-events 1\n"
                "seg 0 0 0 0 1 0\n"
                "seg 1 1 1 1 1 0\n"
                "edge data 0 1 -64\n"
            )


class TestThreadField:
    def test_six_field_seg_roundtrips_thread(self):
        log = EventLog()
        s0 = log.new_segment(0, 0, 0, thread=2)
        s0.ops = 4
        text = dumps_events(log)
        assert "seg 0 0 0 0 4 2" in text
        assert loads_events(text).segments[0].thread == 2

    def test_legacy_five_field_seg_defaults_thread_zero(self):
        loaded = loads_events("# sigil-events 1\nseg 0 0 0 0 7\n")
        assert loaded.segments[0].thread == 0
        assert loaded.segments[0].ops == 7
