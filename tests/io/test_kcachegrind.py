"""callgrind-format export tests: structural validity of the output."""

from __future__ import annotations

import re

import pytest

from repro.core import SigilConfig, SigilProfiler
from repro.io import export_callgrind, export_sigil
from repro.runtime import TracedRuntime


def parse_callgrind(text):
    """Minimal callgrind-format parser: fn -> (self vector, calls list)."""
    events = None
    functions = {}
    current = None
    pending_call = None
    for line in text.splitlines():
        if line.startswith("events:"):
            events = line.split(":", 1)[1].split()
        elif line.startswith("fn="):
            current = line[3:]
            functions.setdefault(current, {"self": None, "calls": []})
        elif line.startswith("cfn="):
            pending_call = [line[4:], None, None]
        elif line.startswith("calls="):
            pending_call[1] = int(line.split("=", 1)[1].split()[0])
        elif re.match(r"^\d", line):
            costs = [int(x) for x in line.split()[1:]]
            if pending_call is not None:
                pending_call[2] = costs
                functions[current]["calls"].append(tuple(pending_call))
                pending_call = None
            elif current is not None and functions[current]["self"] is None:
                functions[current]["self"] = costs
    return events, functions


class TestCallgrindExport:
    def test_structure_and_events(self, toy_profiles, tmp_path):
        _, cg = toy_profiles
        out = tmp_path / "toy.callgrind"
        export_callgrind(cg, out)
        text = out.read_text()
        assert text.startswith("# callgrind format")
        events, functions = parse_callgrind(text)
        assert events == ["Ir", "Dr", "Dw", "L1m", "LLm", "Bc", "Bm"]
        assert "main" in functions and "D" in functions

    def test_self_costs_match_profile(self, toy_profiles, tmp_path):
        _, cg = toy_profiles
        out = tmp_path / "toy.callgrind"
        export_callgrind(cg, out)
        _, functions = parse_callgrind(out.read_text())
        main = cg.tree.find(("main",))
        costs = cg.self_costs[main.id]
        assert functions["main"]["self"][0] == costs.instructions

    def test_call_records_present(self, toy_profiles, tmp_path):
        _, cg = toy_profiles
        out = tmp_path / "toy.callgrind"
        export_callgrind(cg, out)
        _, functions = parse_callgrind(out.read_text())
        callees = {c[0] for c in functions["main"]["calls"]}
        assert callees == {"A", "C"}
        a_call = next(c for c in functions["main"]["calls"] if c[0] == "A")
        assert a_call[1] == 1  # one call
        # Inclusive Ir of A >= A's self Ir.
        assert a_call[2][0] >= functions["A"]["self"][0]


class TestSigilExport:
    def test_communication_events(self, toy_profiles, tmp_path):
        sigil, _ = toy_profiles
        out = tmp_path / "toy.sigil.callgrind"
        export_sigil(sigil, out)
        events, functions = parse_callgrind(out.read_text())
        assert events == ["Ops", "UniqIn", "UniqOut", "Local", "NonUniqIn"]
        a = sigil.tree.find(("main", "A"))
        assert functions["A"]["self"][1] == sigil.unique_input_bytes(a.id)
        assert functions["A"]["self"][2] == sigil.unique_output_bytes(a.id)

    def test_inclusive_call_vectors_accumulate(self, blackscholes_profiles, tmp_path):
        sigil, _ = blackscholes_profiles
        out = tmp_path / "bs.sigil.callgrind"
        export_sigil(sigil, out)
        _, functions = parse_callgrind(out.read_text())
        bs_call = next(
            c for c in functions["main"]["calls"] if c[0] == "bs_thread"
        )
        bs_thread = sigil.tree.find(("main", "bs_thread"))
        subtree_ops = sum(
            sigil.fn_comm(n.id).ops for n in bs_thread.walk()
        )
        assert bs_call[2][0] == subtree_ops


class TestSigilExportRecursion:
    DEPTH = 6  # fib(DEPTH) -> DEPTH + 1 nested fib contexts

    @pytest.fixture()
    def recursive_profile(self):
        profiler = SigilProfiler(SigilConfig())
        rt = TracedRuntime(profiler)
        with rt.run("main"):
            scratch = rt.arena.alloc_i64("scratch", self.DEPTH + 1)

            def fib(n):
                with rt.frame("fib"):
                    rt.iops(3)
                    scratch.write(n, n)
                    scratch.read(n)
                    if n:
                        fib(n - 1)

            fib(self.DEPTH)
        return profiler.profile()

    def test_one_section_per_recursion_level(self, recursive_profile, tmp_path):
        out = tmp_path / "fib.sigil.callgrind"
        export_sigil(recursive_profile, out)  # must terminate
        sections = re.findall(r"^fn=fib$", out.read_text(), re.MULTILINE)
        assert len(sections) == self.DEPTH + 1

    def test_inclusive_chain_has_no_double_count(
        self, recursive_profile, tmp_path
    ):
        sigil = recursive_profile
        out = tmp_path / "fib.sigil.callgrind"
        export_sigil(sigil, out)
        _, functions = parse_callgrind(out.read_text())
        fib_call = next(
            c for c in functions["main"]["calls"] if c[0] == "fib"
        )
        chain = list(sigil.tree.find(("main", "fib")).walk())
        assert len(chain) == self.DEPTH + 1
        # Inclusive Ops/UniqIn of main -> fib equal the exact chain sums:
        # each recursion level counted once, none twice.
        assert fib_call[2][0] == sum(sigil.fn_comm(n.id).ops for n in chain)
        assert fib_call[2][1] == sum(
            sigil.unique_input_bytes(n.id) for n in chain
        )

    def test_every_level_gets_a_call_record(self, recursive_profile, tmp_path):
        out = tmp_path / "fib.sigil.callgrind"
        export_sigil(recursive_profile, out)
        _, functions = parse_callgrind(out.read_text())
        # DEPTH of the DEPTH + 1 fib contexts call a deeper fib.
        assert len(functions["fib"]["calls"]) == self.DEPTH
