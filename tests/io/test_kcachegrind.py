"""callgrind-format export tests: structural validity of the output."""

from __future__ import annotations

import re

import pytest

from repro.io import export_callgrind, export_sigil


def parse_callgrind(text):
    """Minimal callgrind-format parser: fn -> (self vector, calls list)."""
    events = None
    functions = {}
    current = None
    pending_call = None
    for line in text.splitlines():
        if line.startswith("events:"):
            events = line.split(":", 1)[1].split()
        elif line.startswith("fn="):
            current = line[3:]
            functions.setdefault(current, {"self": None, "calls": []})
        elif line.startswith("cfn="):
            pending_call = [line[4:], None, None]
        elif line.startswith("calls="):
            pending_call[1] = int(line.split("=", 1)[1].split()[0])
        elif re.match(r"^\d", line):
            costs = [int(x) for x in line.split()[1:]]
            if pending_call is not None:
                pending_call[2] = costs
                functions[current]["calls"].append(tuple(pending_call))
                pending_call = None
            elif current is not None and functions[current]["self"] is None:
                functions[current]["self"] = costs
    return events, functions


class TestCallgrindExport:
    def test_structure_and_events(self, toy_profiles, tmp_path):
        _, cg = toy_profiles
        out = tmp_path / "toy.callgrind"
        export_callgrind(cg, out)
        text = out.read_text()
        assert text.startswith("# callgrind format")
        events, functions = parse_callgrind(text)
        assert events == ["Ir", "Dr", "Dw", "L1m", "LLm", "Bc", "Bm"]
        assert "main" in functions and "D" in functions

    def test_self_costs_match_profile(self, toy_profiles, tmp_path):
        _, cg = toy_profiles
        out = tmp_path / "toy.callgrind"
        export_callgrind(cg, out)
        _, functions = parse_callgrind(out.read_text())
        main = cg.tree.find(("main",))
        costs = cg.self_costs[main.id]
        assert functions["main"]["self"][0] == costs.instructions

    def test_call_records_present(self, toy_profiles, tmp_path):
        _, cg = toy_profiles
        out = tmp_path / "toy.callgrind"
        export_callgrind(cg, out)
        _, functions = parse_callgrind(out.read_text())
        callees = {c[0] for c in functions["main"]["calls"]}
        assert callees == {"A", "C"}
        a_call = next(c for c in functions["main"]["calls"] if c[0] == "A")
        assert a_call[1] == 1  # one call
        # Inclusive Ir of A >= A's self Ir.
        assert a_call[2][0] >= functions["A"]["self"][0]


class TestSigilExport:
    def test_communication_events(self, toy_profiles, tmp_path):
        sigil, _ = toy_profiles
        out = tmp_path / "toy.sigil.callgrind"
        export_sigil(sigil, out)
        events, functions = parse_callgrind(out.read_text())
        assert events == ["Ops", "UniqIn", "UniqOut", "Local", "NonUniqIn"]
        a = sigil.tree.find(("main", "A"))
        assert functions["A"]["self"][1] == sigil.unique_input_bytes(a.id)
        assert functions["A"]["self"][2] == sigil.unique_output_bytes(a.id)

    def test_inclusive_call_vectors_accumulate(self, blackscholes_profiles, tmp_path):
        sigil, _ = blackscholes_profiles
        out = tmp_path / "bs.sigil.callgrind"
        export_sigil(sigil, out)
        _, functions = parse_callgrind(out.read_text())
        bs_call = next(
            c for c in functions["main"]["calls"] if c[0] == "bs_thread"
        )
        bs_thread = sigil.tree.find(("main", "bs_thread"))
        subtree_ops = sum(
            sigil.fn_comm(n.id).ops for n in bs_thread.walk()
        )
        assert bs_call[2][0] == subtree_ops
