"""Callgrind-profile persistence tests."""

from __future__ import annotations

import pytest

from repro.io import dump_callgrind, dumps_callgrind, load_callgrind, loads_callgrind


class TestRoundTrip:
    def test_text_stable(self, toy_profiles):
        _, cg = toy_profiles
        text = dumps_callgrind(cg)
        assert dumps_callgrind(loads_callgrind(text)) == text

    def test_costs_preserved(self, toy_profiles):
        _, cg = toy_profiles
        loaded = loads_callgrind(dumps_callgrind(cg))
        for node in cg.tree.nodes:
            if node.parent is None:
                continue
            other = loaded.tree.find(node.path)
            assert other is not None
            a = cg.costs_of(node.id)
            b = loaded.costs_of(other.id)
            assert (a.instructions, a.iops, a.flops, a.l1_misses) == (
                b.instructions, b.iops, b.flops, b.l1_misses
            )

    def test_cycle_estimates_survive(self, toy_profiles):
        _, cg = toy_profiles
        loaded = loads_callgrind(dumps_callgrind(cg))
        assert loaded.total_cycles() == pytest.approx(cg.total_cycles())

    def test_model_preserved(self, toy_profiles):
        _, cg = toy_profiles
        loaded = loads_callgrind(dumps_callgrind(cg))
        assert loaded.cycle_model == cg.cycle_model

    def test_file_roundtrip(self, toy_profiles, tmp_path):
        _, cg = toy_profiles
        path = tmp_path / "toy.cg"
        dump_callgrind(cg, path)
        assert load_callgrind(path).total_cycles() == pytest.approx(cg.total_cycles())

    def test_offline_partitioning_matches_live(self, blackscholes_profiles):
        """The full partitioning study must be reproducible from files."""
        from repro.analysis import trim_calltree
        from repro.io import dumps_profile, loads_profile

        sigil, cg = blackscholes_profiles
        sigil2 = loads_profile(dumps_profile(sigil))
        cg2 = loads_callgrind(dumps_callgrind(cg))
        live = trim_calltree(sigil, cg)
        offline = trim_calltree(sigil2, cg2)
        live_rank = [(c.name, round(c.breakeven, 9)) for c in live.sorted_candidates()]
        off_rank = [(c.name, round(c.breakeven, 9)) for c in offline.sorted_candidates()]
        assert live_rank == off_rank
        assert offline.coverage == pytest.approx(live.coverage)


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(ValueError):
            loads_callgrind("nope\n")

    def test_unknown_line(self):
        with pytest.raises(ValueError):
            loads_callgrind("# callgrind-equiv 1\nwat 1 2\n")
