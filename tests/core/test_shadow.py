"""Shadow memory structure tests (Table I, section II-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.shadow import SHADOW_PAGE_SIZE, ShadowMemory, ShadowPage


class TestShadowPage:
    def test_initialised_invalid(self):
        """Shadow objects start 'invalid' until touched."""
        page = ShadowPage(0, reuse_mode=False, event_mode=False)
        assert (page.writer == -1).all()
        assert (page.reader == -1).all()
        assert (page.reader_call == -1).all()

    def test_baseline_has_no_reuse_fields(self):
        """Table I: the re-use variables are 'Additional variables for Reuse
        mode' only."""
        page = ShadowPage(0, reuse_mode=False, event_mode=False)
        assert page.reuse_count is None
        assert page.win_first is None
        assert page.writer_seg is None

    def test_reuse_mode_extends_object(self):
        page = ShadowPage(0, reuse_mode=True, event_mode=True)
        assert page.reuse_count is not None
        assert (page.win_first == -1).all()
        assert page.writer_seg is not None

    def test_reuse_mode_footprint_larger(self):
        """"With data-re-use monitoring enabled, Sigil's memory usage is up
        to 2 times larger" -- the per-page footprint reflects the extra
        fields."""
        base = ShadowPage(0, reuse_mode=False, event_mode=False).nbytes
        reuse = ShadowPage(0, reuse_mode=True, event_mode=False).nbytes
        assert reuse > base
        assert reuse <= 3 * base


class TestTwoLevelTable:
    def test_pages_materialise_on_touch(self):
        shadow = ShadowMemory()
        assert shadow.live_pages == 0
        shadow.page(7)
        shadow.page(7)
        shadow.page(123456)
        assert shadow.live_pages == 2
        assert shadow.pages_created == 2

    def test_chunks_split_across_pages(self):
        shadow = ShadowMemory()
        addr = SHADOW_PAGE_SIZE - 10
        chunks = list(shadow.chunks(addr, 20))
        assert len(chunks) == 2
        (p1, lo1, hi1), (p2, lo2, hi2) = chunks
        assert (hi1 - lo1) + (hi2 - lo2) == 20
        assert lo1 == SHADOW_PAGE_SIZE - 10 and hi1 == SHADOW_PAGE_SIZE
        assert lo2 == 0 and hi2 == 10
        assert p1.page_no == 0 and p2.page_no == 1

    def test_chunks_empty_for_zero_size(self):
        shadow = ShadowMemory()
        assert list(shadow.chunks(100, 0)) == []
        assert shadow.live_pages == 0

    def test_footprint_accounting(self):
        shadow = ShadowMemory()
        shadow.page(0)
        per_page = shadow.shadow_bytes
        shadow.page(1)
        assert shadow.shadow_bytes == 2 * per_page
        assert shadow.peak_shadow_bytes == 2 * per_page


class TestFifoMemoryLimit:
    def test_eviction_keeps_page_count_bounded(self):
        """The memory-limit option frees shadow of least recently touched
        addresses (section III-A)."""
        shadow = ShadowMemory(max_pages=4)
        for i in range(10):
            shadow.page(i)
        assert shadow.live_pages == 4
        assert shadow.pages_evicted == 6

    def test_eviction_is_least_recently_touched(self):
        shadow = ShadowMemory(max_pages=2)
        shadow.page(0)
        shadow.page(1)
        shadow.page(0)  # refresh 0; page 1 is now the coldest
        shadow.page(2)  # evicts 1
        live = {p.page_no for p in shadow.pages()}
        assert live == {0, 2}

    def test_eviction_callback_receives_victim(self):
        victims = []
        shadow = ShadowMemory(max_pages=1, on_evict=lambda p: victims.append(p.page_no))
        shadow.page(10)
        shadow.page(11)
        shadow.page(12)
        assert victims == [10, 11]

    def test_evicted_page_state_is_fresh_on_return(self):
        """Re-touching an evicted page sees invalid shadow objects again
        (the accuracy loss the paper calls negligible)."""
        shadow = ShadowMemory(max_pages=1)
        page = shadow.page(5)
        page.writer[:] = 42
        shadow.page(6)  # evicts 5
        page_again = shadow.page(5)  # evicts 6, fresh 5
        assert (page_again.writer == -1).all()


class TestLimitValidation:
    def test_zero_limit_rejected_via_config(self):
        from repro.core.config import SigilConfig

        with pytest.raises(ValueError):
            SigilConfig(max_shadow_pages=0)
