"""Event-mode tests: segments and dependency edges (section II-C2, Fig 3)."""

from __future__ import annotations

import pytest

from repro.core import SigilConfig, SigilProfiler
from repro.core.segments import EDGE_CALL, EDGE_DATA, EDGE_ORDER, EventLog
from repro.trace.events import OpKind


def _profiler() -> SigilProfiler:
    return SigilProfiler(SigilConfig(event_mode=True))


class TestSegmentCreation:
    def test_resumed_caller_gets_new_segment(self):
        """Figure 3: 'we add the second occurrence of A as a separate node
        although it belongs to the same call'."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("A")
        p.on_op(OpKind.INT, 10)
        p.on_fn_enter("C")
        p.on_op(OpKind.INT, 18)
        p.on_fn_exit("C")
        p.on_op(OpKind.INT, 5)
        p.on_fn_exit("A")
        p.on_run_end()
        events = p.profile().events
        a_ctx = p.tree.by_name("A")[0].id
        a_segments = [s for s in events.segments if s.ctx_id == a_ctx]
        assert len(a_segments) == 2
        assert a_segments[0].call_id == a_segments[1].call_id
        assert [s.ops for s in a_segments] == [10, 5]

    def test_order_edge_enforces_same_call_order(self):
        """'We also add a dependency link to the previous occurrence of A to
        conservatively enforce order between regions within A.'"""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("A")
        p.on_fn_enter("C")
        p.on_fn_exit("C")
        p.on_fn_exit("A")
        p.on_run_end()
        events = p.profile().events
        a_ctx = p.tree.by_name("A")[0].id
        a_ids = [s.seg_id for s in events.segments if s.ctx_id == a_ctx]
        order = [
            e for e in events.edges()
            if e.kind == EDGE_ORDER and e.src == a_ids[0] and e.dst == a_ids[1]
        ]
        assert len(order) == 1

    def test_call_edge_from_caller_segment(self):
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("A")
        p.on_fn_enter("C")
        p.on_fn_exit("C")
        p.on_fn_exit("A")
        p.on_run_end()
        events = p.profile().events
        a0 = next(s for s in events.segments if s.ctx_id == p.tree.by_name("A")[0].id)
        c0 = next(s for s in events.segments if s.ctx_id == p.tree.by_name("C")[0].id)
        assert any(
            e.kind == EDGE_CALL and e.src == a0.seg_id and e.dst == c0.seg_id
            for e in events.edges()
        )


class TestDataEdges:
    def test_data_edge_weighted_by_unique_bytes(self):
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("A")
        p.on_mem_write(0x100, 24)
        p.on_fn_exit("A")
        p.on_fn_enter("D")
        p.on_mem_read(0x100, 24)
        p.on_mem_read(0x100, 24)  # re-read adds no new edge weight
        p.on_fn_exit("D")
        p.on_run_end()
        events = p.profile().events
        data = [e for e in events.edges() if e.kind == EDGE_DATA]
        assert len(data) == 1
        assert data[0].bytes == 24

    def test_consumption_identifies_producing_segment(self):
        """'Node D is then added when it consumes data from that particular
        call of A' -- the edge points to the exact producing segment."""
        p = _profiler()
        p.on_run_begin()
        for i in range(2):
            p.on_fn_enter("A")
            p.on_mem_write(0x100 + 64 * i, 8)
            p.on_fn_exit("A")
        p.on_fn_enter("D")
        p.on_mem_read(0x100 + 64, 8)  # from the SECOND call of A
        p.on_fn_exit("D")
        p.on_run_end()
        events = p.profile().events
        data = [e for e in events.edges() if e.kind == EDGE_DATA]
        assert len(data) == 1
        producer = events.segments[data[0].src]
        a_segs = [
            s for s in events.segments
            if s.ctx_id == p.tree.by_name("A")[0].id
        ]
        assert producer.seg_id == a_segs[1].seg_id

    def test_edges_point_forward_in_time(self):
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("A")
        p.on_mem_write(0x100, 8)
        p.on_fn_enter("B")
        p.on_mem_read(0x100, 8)
        p.on_mem_write(0x200, 8)
        p.on_fn_exit("B")
        p.on_mem_read(0x200, 8)
        p.on_fn_exit("A")
        p.on_run_end()
        events = p.profile().events
        for e in events.edges():
            assert e.src < e.dst


class TestEventLogUnit:
    def test_data_bytes_aggregate_per_pair(self):
        log = EventLog()
        log.new_segment(0, 0, 0)
        log.new_segment(1, 1, 1)
        log.add_data_bytes(0, 1, 8)
        log.add_data_bytes(0, 1, 16)
        data = [e for e in log.edges() if e.kind == EDGE_DATA]
        assert len(data) == 1 and data[0].bytes == 24

    def test_self_edges_ignored(self):
        log = EventLog()
        log.new_segment(0, 0, 0)
        log.add_data_bytes(0, 0, 8)
        assert not [e for e in log.edges() if e.kind == EDGE_DATA]

    def test_total_ops(self):
        log = EventLog()
        s1 = log.new_segment(0, 0, 0)
        s2 = log.new_segment(1, 1, 0)
        s1.ops = 7
        s2.ops = 5
        assert log.total_ops() == 12
