"""Line-granularity re-use mode tests (section IV-B3, Figure 12)."""

from __future__ import annotations

import pytest

from repro.core.linegrain import LineReuseProfiler
from repro.trace.events import OpKind


class TestLineTracking:
    def test_straddling_access_touches_both_lines(self):
        p = LineReuseProfiler(64)
        p.on_mem_read(60, 8)  # bytes 60..67 cross the line at 64
        assert p.n_lines == 2

    def test_reuse_counts_repeat_touches(self):
        p = LineReuseProfiler(64)
        p.on_mem_write(0, 8)
        p.on_mem_read(8, 8)    # same line
        p.on_mem_read(32, 16)  # same line
        records = p.records()
        assert len(records) == 1
        assert records[0].accesses == 3
        assert records[0].reuse_count == 2

    def test_lifetime_spans_first_to_last(self):
        p = LineReuseProfiler(64)
        p.on_mem_write(0, 8)
        p.on_op(OpKind.INT, 100)
        p.on_mem_read(0, 8)
        rec = p.records()[0]
        assert rec.lifetime == 101

    def test_rewrites_do_not_retire_lines(self):
        """A line is a fixed container: overwrites keep accumulating."""
        p = LineReuseProfiler(64)
        for _ in range(5):
            p.on_mem_write(0, 64)
        assert p.records()[0].accesses == 5

    def test_breakdown_buckets(self):
        p = LineReuseProfiler(64)
        p.on_mem_read(0, 8)            # line 0: 0 re-uses
        for _ in range(12):
            p.on_mem_read(64, 8)       # line 1: 11 re-uses
        breakdown = p.reuse_breakdown()
        assert breakdown["0"] == 1
        assert breakdown["10-99"] == 1
        assert sum(breakdown.values()) == 2

    def test_line_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            LineReuseProfiler(48)


class TestLineVsByteGranularity:
    def test_adjacent_bytes_share_line_reuse(self):
        """Two distinct bytes on one line count as line re-use even though
        byte-level reuse is zero -- the architecture-dependence the paper
        notes for this mode."""
        p = LineReuseProfiler(64)
        p.on_mem_read(0, 1)
        p.on_mem_read(1, 1)
        assert p.records()[0].reuse_count == 1
