"""Re-use distance analysis tests, including the LRU-equivalence property."""

from __future__ import annotations

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import COLD, ReuseDistanceProfiler


def touch_lines(profiler: ReuseDistanceProfiler, lines) -> None:
    for line in lines:
        profiler.on_mem_read(line * profiler.line_size, 1)


class TestStackDistance:
    def test_first_access_is_cold(self):
        p = ReuseDistanceProfiler()
        touch_lines(p, [5])
        assert p.histogram == {COLD: 1}

    def test_immediate_rereference_distance_zero(self):
        p = ReuseDistanceProfiler()
        touch_lines(p, [5, 5])
        assert p.histogram[0] == 1

    def test_classic_sequence(self):
        # a b c a : a's re-reference skips over {b, c} -> distance 2.
        p = ReuseDistanceProfiler()
        touch_lines(p, [1, 2, 3, 1])
        assert p.histogram[2] == 1

    def test_repeats_do_not_inflate_distance(self):
        # a b b b a : only ONE distinct line between the two a's.
        p = ReuseDistanceProfiler()
        touch_lines(p, [1, 2, 2, 2, 1])
        assert p.histogram[1] == 1

    def test_straddling_access_touches_lines(self):
        p = ReuseDistanceProfiler(64)
        p.on_mem_read(60, 8)
        assert p.accesses == 2
        assert p.cold_misses == 2

    def test_bad_line_size(self):
        with pytest.raises(ValueError):
            ReuseDistanceProfiler(33)


class TestMissRatio:
    def test_cold_always_misses(self):
        p = ReuseDistanceProfiler()
        touch_lines(p, [1, 2, 3])
        assert p.miss_ratio(100) == 1.0

    def test_capacity_one_keeps_only_last_line(self):
        p = ReuseDistanceProfiler()
        touch_lines(p, [1, 1, 2, 2, 1])
        # hits: the immediate re-touches of 1 and 2 (distance 0); misses:
        # 2 colds + the final 1 (distance 1 >= capacity 1).
        assert p.miss_ratio(1) == pytest.approx(3 / 5)

    def test_curve_is_monotone(self):
        p = ReuseDistanceProfiler()
        touch_lines(p, [1, 2, 3, 1, 2, 3, 4, 1])
        curve = p.miss_ratio_curve([1, 2, 4, 8, 16])
        ratios = [r for _, r in curve]
        assert ratios == sorted(ratios, reverse=True)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReuseDistanceProfiler().miss_ratio(0)


class _LRUCache:
    """Reference fully-associative LRU cache."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._lines: "OrderedDict[int, bool]" = OrderedDict()

    def access(self, line: int) -> bool:
        """Returns True on miss."""
        if line in self._lines:
            self._lines.move_to_end(line)
            return False
        self._lines[line] = True
        if len(self._lines) > self.capacity:
            self._lines.popitem(last=False)
        return True


@given(
    st.lists(st.integers(min_value=0, max_value=24), min_size=1, max_size=300),
    st.sampled_from([1, 2, 4, 8, 16]),
)
@settings(max_examples=150, deadline=None)
def test_miss_ratio_equals_lru_simulation(lines, capacity):
    """The defining property: stack distance >= C iff a C-line LRU misses."""
    profiler = ReuseDistanceProfiler()
    cache = _LRUCache(capacity)
    touch_lines(profiler, lines)
    misses = sum(cache.access(line) for line in lines)
    assert profiler.miss_ratio(capacity) == pytest.approx(misses / len(lines))


@given(st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_histogram_accounts_every_access(lines):
    profiler = ReuseDistanceProfiler()
    touch_lines(profiler, lines)
    assert sum(profiler.histogram.values()) == len(lines)
    assert profiler.cold_misses == len(set(lines))


class TestOnWorkloads:
    def test_vips_curve_shows_working_set_knee(self):
        """Long re-use lifetimes (conv_gen) -> the miss-ratio curve drops
        substantially once the working set fits."""
        from repro.workloads import get_workload

        profiler = ReuseDistanceProfiler(64)
        get_workload("vips", "simsmall").run(profiler)
        small = profiler.miss_ratio(4)
        large = profiler.miss_ratio(4096)
        assert small > large
        assert large <= profiler.cold_misses / profiler.accesses + 1e-9
