"""Zero-byte accesses must touch no shadow state.

Regression tests for a line-granularity unit-count bug: with
``n_units = ((addr + size - 1) >> shift) - (addr >> shift) + 1`` a size-0
access at an unaligned address yielded ``n_units == 1``, fabricating
communication (and line re-use) out of an access that moved no data.  A
zero-byte access still retires an instruction -- the clock advances, the
function's access count increments -- but the shadow memory must not change.
"""

from __future__ import annotations

import pytest

from repro.core import SigilConfig, SigilProfiler
from repro.core.linegrain import LineReuseProfiler
from repro.io.profilefile import dumps_profile
from repro.trace.batch import BatchingTransport


def _run(config, steps, batch_size=0):
    profiler = SigilProfiler(config)
    # scalar_cutoff=0: the batch kernels themselves must get the zero-size
    # accesses, however short the stream is.
    obs = (
        BatchingTransport(profiler, batch_size, scalar_cutoff=0)
        if batch_size
        else profiler
    )
    obs.on_run_begin()
    obs.on_fn_enter("main")
    for kind, addr, size in steps:
        if kind == "r":
            obs.on_mem_read(addr, size)
        else:
            obs.on_mem_write(addr, size)
    obs.on_fn_exit("main")
    obs.on_run_end()
    return profiler.profile()


@pytest.mark.parametrize("line_size", [1, 4, 64])
@pytest.mark.parametrize("batch_size", [0, 3, 4096])
def test_zero_byte_access_creates_no_edges(line_size, batch_size):
    """Size-0 reads/writes at unaligned addresses produce no communication."""
    profile = _run(
        SigilConfig(line_size=line_size),
        [("w", 5, 0), ("r", 5, 0), ("r", 7, 0), ("w", 1023, 0)],
        batch_size,
    )
    assert len(profile.comm) == 0


@pytest.mark.parametrize("line_size", [1, 4])
@pytest.mark.parametrize("batch_size", [0, 3])
def test_zero_byte_write_does_not_clobber_writer(line_size, batch_size):
    """A size-0 write between a real write and read must not retarget the
    edge (it used to overwrite the unit's writer at line granularity)."""
    config = SigilConfig(line_size=line_size)
    with_zero = _run(
        config,
        [("w", 4, 4), ("w", 6, 0), ("r", 4, 4)],
        batch_size,
    )
    without = _run(config, [("w", 4, 4), ("r", 4, 4)], batch_size)
    assert {k: (e.unique_bytes, e.nonunique_bytes)
            for k, e in with_zero.comm.items()} == \
           {k: (e.unique_bytes, e.nonunique_bytes)
            for k, e in without.comm.items()}


@pytest.mark.parametrize("batch_size", [0, 3])
def test_zero_byte_access_still_counts_and_ticks(batch_size):
    """The instruction retires: clocks and access counts are unaffected by
    the fix, only the shadow state is."""
    profile = _run(SigilConfig(), [("w", 0, 0), ("r", 0, 0)], batch_size)
    assert profile.total_time == 2
    (ctx,) = [n for n in profile.contexts() if n.name == "main"]
    fn = profile.fn_comm(ctx.id)
    assert fn.writes == 1 and fn.reads == 1
    assert fn.write_bytes == 0 and fn.read_bytes == 0


@pytest.mark.parametrize("batch_size", [0, 4])
def test_zero_byte_access_in_reuse_mode(batch_size):
    """Re-use mode: a zero-byte access opens no re-use window."""
    profile = _run(
        SigilConfig(reuse_mode=True),
        [("w", 8, 0), ("r", 8, 0), ("w", 16, 2), ("r", 16, 2)],
        batch_size,
    )
    assert profile.reuse is not None
    # Only the two real bytes ever lived.
    assert sum(profile.reuse.byte_breakdown().values()) == 2


@pytest.mark.parametrize("batch_size", [0, 3, 4096])
def test_line_reuse_profiler_ignores_zero_byte_touches(batch_size):
    profiler = LineReuseProfiler(line_size=64)
    obs = (
        BatchingTransport(profiler, batch_size, scalar_cutoff=0)
        if batch_size
        else profiler
    )
    obs.on_run_begin()
    obs.on_mem_write(100, 0)
    obs.on_mem_read(70, 0)
    obs.on_mem_write(10, 4)
    obs.on_mem_read(10, 4)
    obs.on_run_end()
    assert profiler.n_lines == 1
    (rec,) = profiler.records()
    assert rec.line_no == 0
    assert rec.accesses == 2
    # Zero-byte accesses still tick the clock (they retire an instruction).
    assert profiler.time == 4
    assert rec.first_access == 3 and rec.last_access == 4


@pytest.mark.parametrize("batch_size", [0, 3])
def test_scalar_and_batched_agree_on_zero_sizes(batch_size):
    """Belt and braces: the full profile text matches across transports for
    a mixed stream of zero and non-zero accesses."""
    steps = [("w", 5, 0), ("w", 4, 4), ("r", 6, 0), ("r", 4, 4),
             ("w", 63, 0), ("r", 63, 2), ("w", 63, 2), ("r", 62, 0)]
    for config in (SigilConfig(), SigilConfig(line_size=4),
                   SigilConfig(reuse_mode=True)):
        assert dumps_profile(_run(config, steps, batch_size)) == \
               dumps_profile(_run(config, steps, 0))
