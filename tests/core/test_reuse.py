"""Re-use mode tests: counts, lifetime windows, histograms (section IV-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SigilConfig, SigilProfiler
from repro.core.reuse import REUSE_BUCKET_LABELS, ReuseStats, bucketise_counts


def _profiler() -> SigilProfiler:
    return SigilProfiler(SigilConfig(reuse_mode=True))


def _ctx(profile, name):
    return profile.contexts_named(name)[0].id


class TestBucketise:
    def test_bucket_edges(self):
        counts = np.array([0, 1, 9, 10, 99, 100, 999, 1000, 9999, 10000, 50000])
        buckets = bucketise_counts(counts)
        assert buckets.tolist() == [1, 2, 2, 2, 2, 2]

    def test_empty(self):
        assert bucketise_counts(np.array([], dtype=np.int64)).sum() == 0

    def test_labels_align(self):
        assert len(REUSE_BUCKET_LABELS) == 6


class TestByteReuseCounts:
    def test_write_once_read_once_is_zero_reuse(self):
        """Figure 8's bottom section: written once and read only once."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("f")
        p.on_mem_write(0x100, 8)
        p.on_mem_read(0x100, 8)
        p.on_fn_exit("f")
        p.on_run_end()
        breakdown = p.profile().reuse.byte_breakdown()
        assert breakdown["0"] == 8
        assert sum(breakdown.values()) == 8

    def test_read_by_two_functions_still_zero_reuse(self):
        """'read only once within each function it is accessed in'."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("w")
        p.on_mem_write(0x100, 8)
        p.on_fn_exit("w")
        for name in ("a", "b"):
            p.on_fn_enter(name)
            p.on_mem_read(0x100, 8)
            p.on_fn_exit(name)
        p.on_run_end()
        breakdown = p.profile().reuse.byte_breakdown()
        assert breakdown["0"] == 8
        assert breakdown["1-9"] == 0

    def test_rereads_accumulate(self):
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("f")
        p.on_mem_write(0x100, 4)
        for _ in range(4):
            p.on_mem_read(0x100, 4)
        p.on_fn_exit("f")
        p.on_run_end()
        breakdown = p.profile().reuse.byte_breakdown()
        assert breakdown["1-9"] == 4  # 3 re-reads each

    def test_overwrite_retires_old_generation(self):
        """Each overwrite starts a new data object whose re-use is counted
        separately."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("f")
        p.on_mem_write(0x100, 8)
        p.on_mem_read(0x100, 8)
        p.on_mem_read(0x100, 8)   # generation 1: one re-read
        p.on_mem_write(0x100, 8)
        p.on_mem_read(0x100, 8)   # generation 2: zero re-reads
        p.on_fn_exit("f")
        p.on_run_end()
        breakdown = p.profile().reuse.byte_breakdown()
        assert breakdown["1-9"] == 8
        assert breakdown["0"] == 8


class TestLifetimeWindows:
    def test_lifetime_measured_within_a_call(self):
        """Re-use lifetime: time between first and last read of a byte
        within one function call, in retired instructions."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("f")
        p.on_mem_write(0x100, 8)
        p.on_mem_read(0x100, 8)
        from repro.trace.events import OpKind

        p.on_op(OpKind.INT, 500)
        p.on_mem_read(0x100, 8)
        p.on_fn_exit("f")
        p.on_run_end()
        prof = p.profile()
        stats = prof.reuse.per_fn[_ctx(prof, "f")]
        assert stats.reused_windows == 8
        # Lifetime per byte: 500 ops + 1 for the read event itself.
        assert stats.average_lifetime == pytest.approx(501.0)

    def test_single_read_window_not_reused(self):
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("f")
        p.on_mem_write(0x100, 8)
        p.on_mem_read(0x100, 8)
        p.on_fn_exit("f")
        p.on_run_end()
        prof = p.profile()
        assert prof.reuse.per_fn.get(_ctx(prof, "f"), None) is None or (
            prof.reuse.per_fn[_ctx(prof, "f")].reused_windows == 0
        )

    def test_new_call_opens_new_window(self):
        """Windows are per call: two calls each re-reading yield two
        windows with their own lifetimes."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("w")
        p.on_mem_write(0x100, 8)
        p.on_fn_exit("w")
        for _ in range(2):
            p.on_fn_enter("f")
            p.on_mem_read(0x100, 8)
            p.on_mem_read(0x100, 8)
            p.on_fn_exit("f")
        p.on_run_end()
        prof = p.profile()
        stats = prof.reuse.per_fn[_ctx(prof, "f")]
        assert stats.reused_windows == 16  # 8 bytes x 2 call windows

    def test_histogram_binning(self):
        """Figures 10/11: windows land in bin lifetime // 1000."""
        p = _profiler()
        from repro.trace.events import OpKind

        p.on_run_begin()
        p.on_fn_enter("f")
        p.on_mem_write(0x100, 1)
        p.on_mem_read(0x100, 1)
        p.on_op(OpKind.FLOAT, 2500)
        p.on_mem_read(0x100, 1)
        p.on_fn_exit("f")
        p.on_run_end()
        prof = p.profile()
        hist = prof.reuse.fn_histogram(_ctx(prof, "f"))
        assert hist == [(2000, 1)]


class TestReuseStatsUnit:
    def test_close_windows_groups_by_context(self):
        stats = ReuseStats()
        readers = np.array([3, 3, 5], dtype=np.int32)
        first = np.array([10, 10, 10], dtype=np.int64)
        last = np.array([1500, 2500, 10], dtype=np.int64)
        stats.close_windows(readers, first, last)
        assert stats.per_fn[3].reused_windows == 2
        assert stats.per_fn[3].lifetime_sum == (1490 + 2490)
        assert 5 not in stats.per_fn  # lifetime 0 -> not reused

    def test_close_windows_bins_beyond_24_bits(self):
        """Regression: grouping once packed keys as (ctx << 24) | bin, so a
        lifetime bin >= 2**24 (a long run with a small bin_size) bled into
        the context part and corrupted a *different* function's histogram.
        Boundary bins must land in the right function at the right bin."""
        stats = ReuseStats(histogram_bin_size=1)
        big = 1 << 24  # first colliding bin under the old packing
        readers = np.array([1, 1, 2], dtype=np.int32)
        first = np.array([0, 0, 0], dtype=np.int64)
        last = np.array([big - 1, big + 1, big], dtype=np.int64)
        stats.close_windows(readers, first, last)
        assert stats.per_fn[1].reused_windows == 2
        assert stats.per_fn[1].lifetime_sum == (big - 1) + (big + 1)
        assert stats.per_fn[1].histogram == {big - 1: 1, big + 1: 1}
        assert stats.per_fn[2].reused_windows == 1
        assert stats.per_fn[2].histogram == {big: 1}
        # Under the old packing, ctx=1 with bin=2**24 aliased to ctx=2 bin=0.
        assert 0 not in stats.per_fn[2].histogram
        assert 3 not in stats.per_fn

    def test_close_windows_cross_context_no_collision(self):
        """(ctx=0, bin=2**24) and (ctx=1, bin=0) were one key under the old
        packing; they must stay distinct groups."""
        stats = ReuseStats(histogram_bin_size=1)
        readers = np.array([0, 1], dtype=np.int32)
        first = np.array([0, 5], dtype=np.int64)
        last = np.array([1 << 24, 5 + 3], dtype=np.int64)
        stats.close_windows(readers, first, last)
        assert stats.per_fn[0].histogram == {1 << 24: 1}
        assert stats.per_fn[1].histogram == {3: 1}

    def test_fifo_eviction_preserves_reuse_totals(self):
        """Evicting shadow pages must not lose already-observed re-use:
        only producer tracking degrades (paper: negligible loss)."""
        limited = SigilProfiler(SigilConfig(reuse_mode=True, max_shadow_pages=2))
        unlimited = SigilProfiler(SigilConfig(reuse_mode=True))
        for p in (limited, unlimited):
            p.on_run_begin()
            p.on_fn_enter("f")
            for page in range(6):
                addr = 0x10000 + page * 4096
                p.on_mem_write(addr, 8)
                p.on_mem_read(addr, 8)
                p.on_mem_read(addr, 8)
            p.on_fn_exit("f")
            p.on_run_end()
        lb = limited.profile().reuse.byte_breakdown()
        ub = unlimited.profile().reuse.byte_breakdown()
        assert lb == ub
