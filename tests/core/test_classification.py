"""Classification semantics of section II-A: the heart of the methodology.

Each test drives the profiler through a hand-built trace and checks the
two-axis classification (input/output/local x unique/non-unique) byte by
byte.
"""

from __future__ import annotations

import pytest

from repro.common.cct import INVALID_CTX
from repro.core import SigilConfig, SigilProfiler


def _profiler(**kwargs) -> SigilProfiler:
    return SigilProfiler(SigilConfig(**kwargs))


def _ctx(profile, name: str) -> int:
    nodes = profile.contexts_named(name)
    assert len(nodes) == 1, f"expected one context for {name}"
    return nodes[0].id


class TestInputOutputLocal:
    def test_producer_consumer_edge(self):
        """A byte written by one function and read by another is output of
        the writer and input of the reader."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("writer")
        p.on_mem_write(0x100, 8)
        p.on_fn_exit("writer")
        p.on_fn_enter("reader")
        p.on_mem_read(0x100, 8)
        p.on_fn_exit("reader")
        p.on_run_end()
        prof = p.profile()
        w, r = _ctx(prof, "writer"), _ctx(prof, "reader")
        assert prof.unique_output_bytes(w) == 8
        assert prof.unique_input_bytes(r) == 8
        assert prof.unique_local_bytes(w) == 0
        assert prof.unique_local_bytes(r) == 0

    def test_local_communication(self):
        """Generated and read by the same function -> local."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("f")
        p.on_mem_write(0x100, 16)
        p.on_mem_read(0x100, 16)
        p.on_fn_exit("f")
        p.on_run_end()
        prof = p.profile()
        f = _ctx(prof, "f")
        assert prof.unique_local_bytes(f) == 16
        assert prof.unique_input_bytes(f) == 0
        assert prof.unique_output_bytes(f) == 0

    def test_program_input_has_invalid_producer(self):
        """Reading never-written bytes attributes them to the invalid
        pseudo-producer (Table I: shadow objects start invalid)."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("f")
        p.on_mem_read(0x500, 4)
        p.on_fn_exit("f")
        p.on_run_end()
        prof = p.profile()
        f = _ctx(prof, "f")
        edge = prof.comm.get(INVALID_CTX, f)
        assert edge.unique_bytes == 4
        assert prof.unique_input_bytes(f) == 4

    def test_total_reads_fully_classified(self):
        """Every byte read lands in exactly one edge: edge totals must equal
        the function's raw read traffic."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("w")
        p.on_mem_write(0x100, 32)
        p.on_fn_exit("w")
        p.on_fn_enter("r")
        p.on_mem_read(0x100, 32)   # unique from w
        p.on_mem_read(0x100, 16)   # non-unique re-read
        p.on_mem_read(0x400, 8)    # program input
        p.on_fn_exit("r")
        p.on_run_end()
        prof = p.profile()
        r = _ctx(prof, "r")
        classified = sum(
            e.total_bytes for (_, reader), e in prof.comm.items() if reader == r
        )
        assert classified == prof.fn_comm(r).read_bytes == 56


class TestUniqueNonUnique:
    def test_rereads_by_same_function_are_non_unique(self):
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("w")
        p.on_mem_write(0x100, 8)
        p.on_fn_exit("w")
        p.on_fn_enter("r")
        p.on_mem_read(0x100, 8)
        p.on_mem_read(0x100, 8)
        p.on_mem_read(0x100, 8)
        p.on_fn_exit("r")
        p.on_run_end()
        prof = p.profile()
        edge = prof.comm.get(_ctx(prof, "w"), _ctx(prof, "r"))
        assert edge.unique_bytes == 8
        assert edge.nonunique_bytes == 16

    def test_reread_across_calls_is_non_unique(self):
        """Uniqueness compares the *function*: a later call of the same
        function re-reading a byte is still a re-read (an accelerator's
        internal buffer keeps it)."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("w")
        p.on_mem_write(0x100, 8)
        p.on_fn_exit("w")
        for _ in range(2):
            p.on_fn_enter("r")
            p.on_mem_read(0x100, 8)
            p.on_fn_exit("r")
        p.on_run_end()
        prof = p.profile()
        edge = prof.comm.get(_ctx(prof, "w"), _ctx(prof, "r"))
        assert edge.unique_bytes == 8
        assert edge.nonunique_bytes == 8

    def test_interleaved_reader_resets_last_reader(self):
        """Last-reader tracking is a single pointer (Table I): A, then B,
        then A again -> A's second read counts as unique because B displaced
        it as last reader."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("w")
        p.on_mem_write(0x100, 8)
        p.on_fn_exit("w")
        for name in ("A", "B", "A"):
            p.on_fn_enter(name)
            p.on_mem_read(0x100, 8)
            p.on_fn_exit(name)
        p.on_run_end()
        prof = p.profile()
        edge_a = prof.comm.get(_ctx(prof, "w"), _ctx(prof, "A"))
        edge_b = prof.comm.get(_ctx(prof, "w"), _ctx(prof, "B"))
        assert edge_a.unique_bytes == 16  # both A reads counted unique
        assert edge_a.nonunique_bytes == 0
        assert edge_b.unique_bytes == 8

    def test_overwrite_makes_next_read_unique(self):
        """A write kills the old value: the same reader re-reading after an
        overwrite is consuming new data."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("w")
        p.on_mem_write(0x100, 8)
        p.on_fn_exit("w")
        p.on_fn_enter("r")
        p.on_mem_read(0x100, 8)
        p.on_fn_exit("r")
        p.on_fn_enter("w")
        p.on_mem_write(0x100, 8)
        p.on_fn_exit("w")
        p.on_fn_enter("r")
        p.on_mem_read(0x100, 8)
        p.on_fn_exit("r")
        p.on_run_end()
        prof = p.profile()
        # "w" has two contexts? No: same path both times -> same context.
        edge = prof.comm.get(_ctx(prof, "w"), _ctx(prof, "r"))
        assert edge.unique_bytes == 16
        assert edge.nonunique_bytes == 0

    def test_partial_overlap_classifies_per_byte(self):
        """A read spanning written and unwritten bytes splits correctly."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("w")
        p.on_mem_write(0x100, 4)
        p.on_fn_exit("w")
        p.on_fn_enter("r")
        p.on_mem_read(0x100, 8)  # 4 from w, 4 program input
        p.on_fn_exit("r")
        p.on_run_end()
        prof = p.profile()
        w, r = _ctx(prof, "w"), _ctx(prof, "r")
        assert prof.comm.get(w, r).unique_bytes == 4
        assert prof.comm.get(INVALID_CTX, r).unique_bytes == 4


class TestContextSensitivity:
    def test_same_function_two_contexts(self):
        """Costs are kept per calling context (D1/D2 in Figure 2)."""
        p = _profiler()
        p.on_run_begin()
        for parent in ("A", "B"):
            p.on_fn_enter(parent)
            p.on_fn_enter("D")
            p.on_mem_write(0x200, 8)
            p.on_mem_read(0x200, 8)
            p.on_fn_exit("D")
            p.on_fn_exit(parent)
        p.on_run_end()
        prof = p.profile()
        d_contexts = prof.contexts_named("D")
        assert len(d_contexts) == 2
        paths = {node.path for node in d_contexts}
        assert paths == {("A", "D"), ("B", "D")}

    def test_cross_context_read_is_an_edge_between_contexts(self):
        """D called from A writes; D called from B reads: the edge connects
        the two *contexts* of D."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("A")
        p.on_fn_enter("D")
        p.on_mem_write(0x300, 8)
        p.on_fn_exit("D")
        p.on_fn_exit("A")
        p.on_fn_enter("B")
        p.on_fn_enter("D")
        p.on_mem_read(0x300, 8)
        p.on_fn_exit("D")
        p.on_fn_exit("B")
        p.on_run_end()
        prof = p.profile()
        d1 = prof.tree.find(("A", "D"))
        d2 = prof.tree.find(("B", "D"))
        edge = prof.comm.get(d1.id, d2.id)
        assert edge.unique_bytes == 8


class TestSyscalls:
    def test_syscall_creates_pseudo_node_with_io_bytes(self):
        """Sigil captures syscall names and boundary bytes, not internals
        (section III)."""
        p = _profiler()
        p.on_run_begin()
        p.on_fn_enter("main")
        p.on_syscall_enter("read", 16)
        p.on_syscall_exit("read", 4096)
        p.on_fn_exit("main")
        p.on_run_end()
        prof = p.profile()
        sys_nodes = prof.contexts_named("sys:read")
        assert len(sys_nodes) == 1
        sys_id = sys_nodes[0].id
        main_id = _ctx(prof, "main")
        assert prof.comm.get(main_id, sys_id).unique_bytes == 16
        assert prof.comm.get(sys_id, main_id).unique_bytes == 4096
        assert prof.fn_comm(sys_id).syscall_output_bytes == 4096
