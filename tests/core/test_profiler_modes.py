"""Profiler mode interactions: line granularity, combined modes, timing."""

from __future__ import annotations

import pytest

from repro.core import SigilConfig, SigilProfiler
from repro.trace.events import OpKind


class TestLineGranularProfiler:
    """SigilConfig(line_size=N): the full methodology at block granularity
    ("In this mode, Sigil shadows every line in memory rather than every
    byte")."""

    def test_partial_line_charges_whole_line(self):
        p = SigilProfiler(SigilConfig(line_size=64))
        p.on_run_begin()
        p.on_fn_enter("w")
        p.on_mem_write(0, 1)       # touches line 0
        p.on_fn_exit("w")
        p.on_fn_enter("r")
        p.on_mem_read(8, 1)        # same line, different byte
        p.on_fn_exit("r")
        p.on_run_end()
        prof = p.profile()
        w = prof.contexts_named("w")[0].id
        r = prof.contexts_named("r")[0].id
        assert prof.comm.get(w, r).unique_bytes == 64

    def test_straddling_access_charges_both_lines(self):
        p = SigilProfiler(SigilConfig(line_size=64))
        p.on_run_begin()
        p.on_fn_enter("w")
        p.on_mem_write(60, 8)
        p.on_fn_exit("w")
        p.on_fn_enter("r")
        p.on_mem_read(60, 8)
        p.on_fn_exit("r")
        p.on_run_end()
        prof = p.profile()
        w = prof.contexts_named("w")[0].id
        r = prof.contexts_named("r")[0].id
        assert prof.comm.get(w, r).unique_bytes == 128

    def test_raw_byte_totals_unscaled(self):
        """read_bytes stays the program's true traffic even in line mode."""
        p = SigilProfiler(SigilConfig(line_size=64))
        p.on_run_begin()
        p.on_fn_enter("f")
        p.on_mem_read(0, 8)
        p.on_fn_exit("f")
        p.on_run_end()
        prof = p.profile()
        f = prof.contexts_named("f")[0].id
        assert prof.fn_comm(f).read_bytes == 8


class TestCombinedModes:
    def test_reuse_and_events_together(self):
        p = SigilProfiler(SigilConfig(reuse_mode=True, event_mode=True))
        p.on_run_begin()
        p.on_fn_enter("a")
        p.on_mem_write(0x10, 8)
        p.on_fn_exit("a")
        p.on_fn_enter("b")
        p.on_mem_read(0x10, 8)
        p.on_mem_read(0x10, 8)
        p.on_fn_exit("b")
        p.on_run_end()
        prof = p.profile()
        assert prof.reuse is not None and prof.events is not None
        assert prof.reuse.byte_breakdown()["1-9"] == 8
        data = [e for e in prof.events.edges() if e.kind == "data"]
        assert data and data[0].bytes == 8


class TestTimeProxy:
    def test_time_counts_all_instruction_classes(self):
        p = SigilProfiler(SigilConfig())
        p.on_run_begin()
        p.on_fn_enter("f")
        p.on_op(OpKind.INT, 10)
        p.on_op(OpKind.FLOAT, 5)
        p.on_mem_write(0, 8)   # +1
        p.on_mem_read(0, 8)    # +1
        p.on_branch(0, True)   # +1
        p.on_fn_exit("f")
        p.on_run_end()
        assert p.profile().total_time == 18

    def test_syscalls_do_not_advance_time(self):
        p = SigilProfiler(SigilConfig())
        p.on_run_begin()
        p.on_fn_enter("f")
        p.on_syscall_enter("read", 0)
        p.on_syscall_exit("read", 4096)
        p.on_fn_exit("f")
        p.on_run_end()
        assert p.profile().total_time == 0
