"""CommMatrix unit tests: edges, classification views, boundary accounting."""

from __future__ import annotations

import pytest

from repro.common.cct import INVALID_CTX
from repro.core.aggregate import CommEdge, CommMatrix, FnComm


class TestEdges:
    def test_add_accumulates(self):
        m = CommMatrix()
        m.add(1, 2, unique=8)
        m.add(1, 2, unique=4, nonunique=16)
        edge = m.get(1, 2)
        assert edge.unique_bytes == 12
        assert edge.nonunique_bytes == 16
        assert edge.total_bytes == 28

    def test_get_missing_is_zero(self):
        m = CommMatrix()
        edge = m.get(5, 6)
        assert edge.unique_bytes == 0 and edge.total_bytes == 0

    def test_len_counts_pairs(self):
        m = CommMatrix()
        m.add(1, 2, unique=1)
        m.add(2, 1, unique=1)
        m.add(1, 2, nonunique=1)
        assert len(m) == 2


class TestClassificationViews:
    def make(self):
        m = CommMatrix()
        m.add(1, 1, unique=10)              # local
        m.add(2, 1, unique=20, nonunique=5)  # input from 2
        m.add(INVALID_CTX, 1, unique=30)     # program input
        m.add(1, 3, unique=40)               # output to 3
        return m

    def test_local(self):
        assert self.make().unique_local_bytes(1) == 10

    def test_input_includes_program_input(self):
        m = self.make()
        assert m.unique_input_bytes(1) == 50
        assert set(m.input_edges(1)) == {2, INVALID_CTX}

    def test_output(self):
        m = self.make()
        assert m.unique_output_bytes(1) == 40
        assert set(m.output_edges(1)) == {3}

    def test_views_do_not_overlap(self):
        m = self.make()
        total_in_edges = sum(e.total_bytes for e in m.input_edges(1).values())
        local = m.local_edge(1).total_bytes
        # 55 external input + 10 local == all bytes read by ctx 1.
        assert total_in_edges + local == 65


class TestBoundary:
    def make(self):
        # Sub-tree {1, 2}: external producer 3, external consumer 4.
        m = CommMatrix()
        m.add(1, 2, unique=100)             # internal: absorbed
        m.add(3, 2, unique=8)               # input
        m.add(INVALID_CTX, 1, unique=16)    # program input
        m.add(2, 4, unique=24)              # output
        m.add(2, 4, nonunique=999)          # re-reads don't count (accelerator buffer)
        return m

    def test_internal_edges_absorbed(self):
        inp, out = self.make().boundary_bytes({1, 2})
        assert inp == 24  # 8 + 16 program input (default included)
        assert out == 24

    def test_program_input_excludable(self):
        inp, out = self.make().boundary_bytes({1, 2}, include_program_input=False)
        assert inp == 8
        assert out == 24

    def test_nonunique_never_counts(self):
        _, out = self.make().boundary_bytes({1, 2})
        assert out == 24  # the 999 non-unique bytes are free

    def test_whole_graph_has_no_internal_boundary(self):
        m = self.make()
        inp, out = m.boundary_bytes({1, 2, 3, 4}, include_program_input=False)
        assert inp == 0 and out == 0


class TestFnComm:
    def test_ops_property(self):
        fc = FnComm(iops=3, flops=4)
        assert fc.ops == 7

    def test_defaults_zero(self):
        fc = FnComm()
        assert fc.reads == fc.read_bytes == fc.syscall_input_bytes == 0
