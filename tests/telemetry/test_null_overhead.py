"""The zero-cost guarantee: null telemetry adds nothing to the hot path."""

from __future__ import annotations

import sys

from repro.core.config import SigilConfig
from repro.core.profiler import SigilProfiler
from repro.harness import _assemble_observer, profile_workload
from repro.telemetry import NULL_TELEMETRY, EventCounter, NullTelemetry, Telemetry
from repro.trace.observer import NullObserver, ObserverPipe


class TestNullTelemetrySingletons:
    def test_accessors_share_one_null_metric(self):
        tel = NULL_TELEMETRY
        assert tel.counter("a") is tel.counter("b")
        assert tel.counter("a") is tel.gauge("c") is tel.histogram("d")

    def test_phase_is_a_shared_noop_context_manager(self):
        tel = NULL_TELEMETRY
        assert tel.phase("x") is tel.phase("y")
        with tel.phase("x"):
            pass  # must be usable as a context manager

    def test_null_metric_absorbs_all_operations(self):
        metric = NULL_TELEMETRY.counter("anything")
        metric.inc(10)
        metric.set(5)
        metric.set_max(7)
        metric.observe(3)
        assert metric.value == 0
        assert metric.summary() == {}

    def test_disabled_flags_and_empty_snapshot(self):
        tel = NullTelemetry()
        assert tel.enabled is False
        assert tel.make_heartbeat("x") is None
        assert tel.snapshot() == {"phases": {}, "metrics": {}}
        tel.record_process_stats()  # no-op, must not raise


class TestObserverAssembly:
    def test_lone_tool_attaches_directly_with_null_telemetry(self):
        profiler = SigilProfiler(SigilConfig())
        observer, counter = _assemble_observer([profiler], NULL_TELEMETRY, "x")
        assert observer is profiler
        assert counter is None

    def test_no_tools_yield_null_observer(self):
        observer, counter = _assemble_observer([], NULL_TELEMETRY, "x")
        assert isinstance(observer, NullObserver)
        assert counter is None

    def test_enabled_telemetry_adds_event_counter_to_pipe(self):
        profiler = SigilProfiler(SigilConfig())
        observer, counter = _assemble_observer([profiler], Telemetry(), "x")
        assert isinstance(observer, ObserverPipe)
        assert isinstance(counter, EventCounter)

    def test_null_dispatch_adds_zero_python_calls_per_event(self):
        """The acceptance bar: --no-telemetry means the observer fan-out
        dispatches exactly as many Python-level calls as the seed code."""

        def drive(observer):
            observer.on_fn_enter("f")
            for i in range(50):
                observer.on_mem_write(0x1000 + i, 4)
                observer.on_mem_read(0x1000 + i, 4)
            observer.on_fn_exit("f")

        def count_calls(observer):
            calls = 0

            def tracer(frame, event, arg):
                nonlocal calls
                if event == "call":
                    calls += 1

            sys.setprofile(tracer)
            try:
                drive(observer)
            finally:
                sys.setprofile(None)
            return calls

        raw = SigilProfiler(SigilConfig())
        baseline = count_calls(raw)

        assembled, _ = _assemble_observer(
            [SigilProfiler(SigilConfig())], NULL_TELEMETRY, "x"
        )
        assert count_calls(assembled) == baseline


class TestManifestProduction:
    def test_default_run_has_no_manifest(self):
        run = profile_workload("blackscholes", "simsmall")
        assert run.manifest is None

    def test_telemetry_run_produces_complete_manifest(self):
        run = profile_workload(
            "blackscholes", "simsmall", telemetry=Telemetry()
        )
        m = run.manifest
        assert m is not None
        for phase in ("setup", "execute", "aggregate"):
            assert m.phase_seconds(phase) >= 0
        assert m.phase_seconds("execute") > 0
        assert m.events_total > 0
        assert m.events_per_sec > 0
        assert m.metric("events.total") == m.events_total
        assert m.metric("sigil.shadow.peak_shadow_bytes") > 0
        assert m.metric("sigil.bytes.unique") > 0
        assert m.metric("sigil.bytes.nonunique") > 0
        assert m.metric("process.peak_rss_bytes") > 0
        assert m.metric("vm.instructions_retired", default=None) is None  # synthetic workloads bypass the VM
        assert m.config_hash

    def test_phase_split_sums_to_wall_seconds(self):
        run = profile_workload("blackscholes", "simsmall")
        assert run.wall_seconds == (
            run.setup_seconds + run.execute_seconds + run.aggregate_seconds
        )
        assert run.execute_seconds > 0
