"""Run manifests: serialisation, hashing, and the stats CLI round-trip."""

from __future__ import annotations

import json

import pytest

from repro.core.config import SigilConfig
from repro.telemetry import (
    MANIFEST_SCHEMA,
    Manifest,
    build_manifest,
    config_hash,
    git_rev,
)


class TestConfigHash:
    def test_deterministic(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_distinguishes_configs(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_accepts_dataclass_and_none(self):
        assert config_hash(SigilConfig()) == config_hash(SigilConfig())
        assert config_hash(SigilConfig()) != config_hash(
            SigilConfig(reuse_mode=True)
        )
        assert len(config_hash(None)) == 12


class TestGitRev:
    def test_returns_short_rev_or_none(self):
        rev = git_rev()
        assert rev is None or (4 <= len(rev) <= 40 and rev.isalnum())

    def test_unavailable_outside_a_repo(self, tmp_path):
        assert git_rev(tmp_path) is None


class TestManifestRoundTrip:
    def _sample(self) -> Manifest:
        return build_manifest(
            workload="vips",
            size="simsmall",
            command="repro profile vips --telemetry",
            config=SigilConfig(reuse_mode=True),
            phases={"setup": 0.01, "execute": 0.5, "aggregate": 0.02},
            metrics={"events.total": 1000, "sigil.bytes.unique": 42},
            events_total=1000,
            execute_seconds=0.5,
        )

    def test_json_round_trip_preserves_everything(self):
        m = self._sample()
        again = Manifest.from_json(m.to_json())
        assert again == m

    def test_write_and_load(self, tmp_path):
        m = self._sample()
        path = m.write(tmp_path / "run.manifest.json")
        assert Manifest.load(path) == m
        # File is well-formed, schema-tagged JSON.
        data = json.loads(path.read_text())
        assert data["schema"] == MANIFEST_SCHEMA

    def test_from_dict_ignores_unknown_keys(self):
        data = self._sample().to_dict()
        data["future_field"] = "surprise"
        m = Manifest.from_dict(data)
        assert m.workload == "vips"
        assert not hasattr(m, "future_field")

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ValueError):
            Manifest.from_json("[1, 2]")

    def test_derived_fields(self):
        m = self._sample()
        assert m.events_per_sec == pytest.approx(2000.0)
        assert m.config_hash == config_hash(SigilConfig(reuse_mode=True))
        assert m.config["reuse_mode"] is True
        assert m.created_unix > 0

    def test_lookup_helpers(self):
        m = self._sample()
        assert m.metric("sigil.bytes.unique") == 42
        assert m.metric("absent.metric") == 0
        assert m.metric("absent.metric", default=None) is None
        assert m.phase_seconds("execute") == pytest.approx(0.5)
        assert m.phase_seconds("never") == 0.0

    def test_spans_round_trip_and_normalise(self):
        m = build_manifest(
            workload="vips",
            size="simsmall",
            command="repro",
            config=None,
            phases={"setup": 0.1, "execute": 0.4},
            metrics={},
            spans=[("setup", 0.0, 0.1), ("execute", 0.1, 0.5)],
        )
        again = Manifest.from_json(m.to_json())
        assert again.phase_spans() == [
            ("setup", 0.0, 0.1),
            ("execute", 0.1, 0.5),
        ]

    def test_manifest_without_spans_stays_loadable(self):
        # Manifests written before the spans field existed parse cleanly.
        data = self._sample().to_dict()
        data.pop("spans", None)
        m = Manifest.from_dict(data)
        assert m.spans == []
        assert m.phase_spans() == []
