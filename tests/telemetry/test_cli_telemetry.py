"""End-to-end CLI telemetry: manifests out of `repro profile`, into `stats`."""

from __future__ import annotations

import json

from repro.cli import main
from repro.telemetry import MANIFEST_SCHEMA, Manifest


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestProfileManifest:
    def test_telemetry_flag_writes_manifest_in_cwd(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, out, _ = run_cli(
            capsys, "profile", "vips", "--size", "simsmall", "--telemetry"
        )
        assert code == 0
        path = tmp_path / "vips-simsmall.manifest.json"
        assert path.exists()
        assert "manifest written to" in out

        m = Manifest.load(path)
        assert m.schema == MANIFEST_SCHEMA
        assert m.workload == "vips"
        assert m.size == "simsmall"
        assert "profile vips --size simsmall --telemetry" in m.command
        assert m.phase_seconds("execute") > 0
        assert m.events_per_sec > 0
        assert m.metric("sigil.shadow.peak_shadow_bytes") > 0
        assert m.metric("sigil.bytes.unique") > 0
        assert m.metric("sigil.bytes.nonunique") > 0

    def test_manifest_out_overrides_location(self, capsys, tmp_path):
        target = tmp_path / "custom.json"
        code, _, _ = run_cli(
            capsys, "profile", "blackscholes",
            "--manifest-out", str(target),
        )
        assert code == 0
        assert target.exists()

    def test_manifest_lands_next_to_profile_output(self, capsys, tmp_path):
        prof = tmp_path / "w.profile"
        code, _, _ = run_cli(
            capsys, "profile", "blackscholes", "-o", str(prof),
        )
        assert code == 0
        assert prof.exists()
        assert (tmp_path / "w.profile.manifest.json").exists()

    def test_no_telemetry_writes_nothing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, out, _ = run_cli(
            capsys, "profile", "blackscholes", "--no-telemetry"
        )
        assert code == 0
        assert not list(tmp_path.glob("*.manifest.json"))
        assert "manifest written" not in out

    def test_global_flag_before_subcommand(self, capsys, tmp_path):
        target = tmp_path / "pre.json"
        code, _, _ = run_cli(
            capsys, "--manifest-out", str(target), "profile", "blackscholes",
        )
        assert code == 0
        assert target.exists()

    def test_non_positive_heartbeat_is_a_usage_error(self, capsys):
        import pytest

        for argv in (
            ["profile", "blackscholes", "--heartbeat", "0"],
            ["profile", "blackscholes", "--heartbeat-secs", "-1"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            assert "must be positive" in capsys.readouterr().err

    def test_heartbeat_lines_on_stderr(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "profile", "blackscholes", "--heartbeat", "500",
            "--manifest-out", str(tmp_path / "hb.json"),
        )
        assert code == 0
        assert "[repro] blackscholes/simsmall:" in err
        assert "(done)" in err


class TestReuseAndRunManifests:
    def test_reuse_manifest(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, _, _ = run_cli(
            capsys, "reuse", "dedup", "--size", "simsmall", "--telemetry"
        )
        assert code == 0
        m = Manifest.load(tmp_path / "dedup-simsmall-reuse.manifest.json")
        assert m.config["reuse_mode"] is True
        assert m.metric("sigil.bytes.unique") > 0

    def test_run_manifest_for_vm_program(self, capsys, tmp_path, monkeypatch):
        from pathlib import Path

        toy = Path(__file__).resolve().parents[2] / "examples" / "toy_program.s"
        monkeypatch.chdir(tmp_path)
        code, _, _ = run_cli(
            capsys, "run", str(toy), "--telemetry"
        )
        assert code == 0
        manifests = list(tmp_path.glob("*.manifest.json"))
        assert len(manifests) == 1
        m = Manifest.load(manifests[0])
        assert m.metric("vm.instructions_retired") > 0
        assert m.phase_seconds("execute") > 0


class TestStats:
    def _write_manifest(self, capsys, path):
        code, _, _ = run_cli(
            capsys, "profile", "vips", "--manifest-out", str(path),
        )
        assert code == 0

    def test_renders_single_manifest(self, capsys, tmp_path):
        path = tmp_path / "vips.json"
        self._write_manifest(capsys, path)
        code, out, _ = run_cli(capsys, "stats", str(path))
        assert code == 0
        assert "vips" in out
        assert "execute_s" in out
        assert "ev/s" in out

    def test_compares_two_manifests(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        self._write_manifest(capsys, a)
        self._write_manifest(capsys, b)
        code, out, _ = run_cli(capsys, "stats", str(a), str(b))
        assert code == 0
        assert "vs" in out or "ratio" in out.lower() or "same_config" in out

    def test_metrics_dump(self, capsys, tmp_path):
        path = tmp_path / "vips.json"
        self._write_manifest(capsys, path)
        code, out, _ = run_cli(capsys, "stats", str(path), "--metrics")
        assert code == 0
        assert "sigil.bytes.unique" in out

    def test_unreadable_manifest_fails_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code, _, err = run_cli(capsys, "stats", str(bad))
        assert code == 2
        assert "cannot read manifest" in err

    def test_rejects_wrong_shape(self, capsys, tmp_path):
        bad = tmp_path / "list.json"
        bad.write_text(json.dumps([1, 2, 3]))
        code, _, err = run_cli(capsys, "stats", str(bad))
        assert code == 2

    def test_dash_reads_manifest_from_stdin(self, capsys, tmp_path, monkeypatch):
        import io
        import sys

        path = tmp_path / "vips.json"
        self._write_manifest(capsys, path)
        monkeypatch.setattr(sys, "stdin", io.StringIO(path.read_text()))
        code, out, _ = run_cli(capsys, "stats", "-")
        assert code == 0
        assert "<stdin>" in out
        assert "vips" in out

    def test_dash_with_garbage_stdin_fails_cleanly(self, capsys, monkeypatch):
        import io
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO("{broken"))
        code, _, err = run_cli(capsys, "stats", "-")
        assert code == 2
        assert "cannot read manifest" in err
