"""Heartbeat observer: periodic progress lines on a long run."""

from __future__ import annotations

import io

import pytest

from repro.telemetry import CLOCK_CHECK_INTERVAL, HeartbeatObserver


def _drive(observer, events: int) -> None:
    for i in range(events):
        observer.on_mem_read(0x1000 + i, 4)


class TestEventBeats:
    def test_beats_every_n_events_plus_final(self):
        out = io.StringIO()
        hb = HeartbeatObserver("vips/simsmall", every_events=10, stream=out)
        _drive(hb, 35)
        hb.on_run_end()
        assert hb.events == 35
        assert hb.beats == 4  # at 10, 20, 30, and the final beat
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 4
        assert all(line.startswith("[repro] vips/simsmall:") for line in lines)
        assert lines[-1].endswith("(done)")
        assert "35 events" in lines[-1]

    def test_counts_every_event_kind(self):
        hb = HeartbeatObserver("x", every_events=1000, stream=io.StringIO())
        hb.on_fn_enter("f")
        hb.on_fn_exit("f")
        hb.on_mem_read(0, 1)
        hb.on_mem_write(0, 1)
        hb.on_op(None, 1)
        hb.on_branch(0, True)
        hb.on_syscall_enter("read", 0)
        hb.on_syscall_exit("read", 0)
        hb.on_thread_switch(1)
        assert hb.events == 9


class TestTimeBeats:
    def test_clock_checked_only_at_interval(self):
        # A clock that jumps far past the threshold immediately: a beat may
        # still only happen on a CLOCK_CHECK_INTERVAL boundary.
        now = [0.0]
        out = io.StringIO()
        hb = HeartbeatObserver(
            "x", every_seconds=0.5, stream=out, clock=lambda: now[0]
        )
        now[0] = 100.0
        _drive(hb, CLOCK_CHECK_INTERVAL - 1)
        assert hb.beats == 0
        _drive(hb, 1)
        assert hb.beats == 1

    def test_no_beat_before_interval_elapses(self):
        now = [0.0]
        hb = HeartbeatObserver(
            "x", every_seconds=60.0, stream=io.StringIO(), clock=lambda: now[0]
        )
        now[0] = 1.0
        _drive(hb, CLOCK_CHECK_INTERVAL * 3)
        assert hb.beats == 0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"every_events": 0},
        {"every_events": -5},
        {"every_seconds": 0},
        {"every_seconds": -1.0},
    ])
    def test_rejects_non_positive_thresholds(self, kwargs):
        with pytest.raises(ValueError):
            HeartbeatObserver("x", **kwargs)
