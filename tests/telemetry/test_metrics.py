"""Metric primitives and phase timers: the telemetry vocabulary."""

from __future__ import annotations

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricRegistry, PhaseTimer


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("events.total")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_rejects_negative_increment(self):
        c = Counter("events.total")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0


class TestGauge:
    def test_set_replaces(self):
        g = Gauge("shadow.live_pages")
        g.set(10)
        g.set(3)
        assert g.value == 3

    def test_set_max_keeps_peak(self):
        g = Gauge("process.peak_rss_bytes")
        g.set_max(100)
        g.set_max(50)
        g.set_max(200)
        assert g.value == 200


class TestHistogram:
    def test_empty_summary(self):
        h = Histogram("access.size")
        assert h.mean == 0.0
        assert h.summary() == {
            "count": 0, "sum": 0, "min": None, "max": None, "mean": 0.0,
            "p50": None, "p90": None, "p99": None,
        }

    def test_observations_land_in_one_bucket_each(self):
        h = Histogram("access.size", bounds=[4, 16, 64])
        for v in (1, 4, 5, 16, 17, 65, 10**9):
            h.observe(v)
        assert sum(h.bucket_counts) == h.count == 7
        assert h.bucket_counts == [2, 2, 1, 2]  # <=4, <=16, <=64, overflow

    def test_summary_statistics(self):
        h = Histogram("x")
        for v in (2, 4, 6):
            h.observe(v)
        summary = h.summary()
        assert {k: summary[k] for k in ("count", "sum", "min", "max", "mean")} \
            == {"count": 3, "sum": 12, "min": 2, "max": 6, "mean": 4.0}
        assert set(summary) >= {"p50", "p90", "p99"}
        assert 2 <= summary["p50"] <= summary["p90"] <= summary["p99"] <= 6

    def test_quantiles_interpolate_and_clamp(self):
        h = Histogram("latency", bounds=[1, 10, 100])
        for v in (5, 5, 5, 5):
            h.observe(v)
        # All mass in the (1, 10] bucket: estimates stay within [min, max].
        assert h.quantile(0.5) == 5.0
        assert h.quantile(1.0) == 5.0
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantiles_overflow_bucket_uses_observed_max(self):
        h = Histogram("big", bounds=[10])
        h.observe(1000)
        assert h.quantile(0.99) <= 1000
        assert h.quantile(1.0) == 1000


class TestMetricRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_is_flat_sorted_and_json_ready(self):
        reg = MetricRegistry()
        reg.counter("z.count").inc(5)
        reg.gauge("a.gauge").set(7)
        reg.histogram("m.hist").observe(3)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["z.count"] == 5
        assert snap["a.gauge"] == 7
        assert snap["m.hist"]["count"] == 1


class TestLabels:
    def test_distinct_labelsets_are_distinct_metrics(self):
        reg = MetricRegistry()
        a = reg.counter("jobs_total", {"tool": "sigil"})
        b = reg.counter("jobs_total", {"tool": "callgrind"})
        assert a is not b
        a.inc(2)
        b.inc(5)
        assert a.value == 2 and b.value == 5

    def test_same_labels_any_order_return_same_object(self):
        reg = MetricRegistry()
        a = reg.gauge("g", {"x": "1", "y": "2"})
        b = reg.gauge("g", {"y": "2", "x": "1"})
        assert a is b

    def test_unlabelled_and_labelled_coexist(self):
        reg = MetricRegistry()
        bare = reg.counter("hits")
        labelled = reg.counter("hits", {"kind": "warm"})
        assert bare is not labelled
        bare.inc()
        snap = reg.snapshot()
        assert snap["hits"] == 1
        assert snap["hits{kind=warm}"] == 0

    def test_help_text_is_kept_per_family(self):
        reg = MetricRegistry()
        reg.counter("x_total", help_text="things done")
        reg.counter("x_total", {"s": "a"})  # later call may omit help
        assert reg.help_text("x_total") == "things done"
        assert reg.help_text("unknown") is None

    def test_collect_groups_families_deterministically(self):
        reg = MetricRegistry()
        reg.counter("b_total", {"t": "y"})
        reg.counter("b_total", {"t": "x"})
        reg.gauge("a_gauge")
        collected = list(reg.collect())
        kinds = [(kind, name) for kind, name, _ in collected]
        assert kinds == [("counter", "b_total"), ("gauge", "a_gauge")]
        children = collected[0][2]
        assert [m.labels["t"] for m in children] == ["x", "y"]


class TestPhaseTimer:
    def test_nested_phases_record_slash_joined_paths(self):
        ticks = iter(range(100))
        timer = PhaseTimer(clock=lambda: next(ticks))
        with timer.phase("outer"):
            with timer.phase("inner"):
                pass
        snap = timer.snapshot()
        assert set(snap) == {"outer", "outer/inner"}
        assert snap["outer"] >= snap["outer/inner"]

    def test_reentered_phase_accumulates(self):
        timer = PhaseTimer(clock=iter([0, 1, 10, 12]).__next__)
        with timer.phase("execute"):
            pass
        with timer.phase("execute"):
            pass
        assert timer.seconds("execute") == 3

    def test_snapshot_order_follows_entry_order(self):
        timer = PhaseTimer()
        with timer.phase("setup"):
            pass
        with timer.phase("execute"):
            with timer.phase("replay"):
                pass
        assert list(timer.snapshot()) == ["setup", "execute", "execute/replay"]

    def test_depth_and_slash_rejection(self):
        timer = PhaseTimer()
        assert timer.depth == 0
        with timer.phase("a"):
            assert timer.depth == 1
            with pytest.raises(ValueError):
                with timer.phase("b/c"):
                    pass
        assert timer.depth == 0

    def test_record_adds_premeasured_seconds(self):
        timer = PhaseTimer()
        timer.record("execute", 1.5)
        timer.record("execute", 0.5)
        assert timer.seconds("execute") == 2.0
        assert timer.seconds("never-ran") == 0.0

    def test_spans_are_offsets_from_first_reading(self):
        # Clock starts at 100: spans must still begin at offset 0.
        timer = PhaseTimer(clock=iter([100, 101, 103, 106]).__next__)
        with timer.phase("setup"):
            pass
        with timer.phase("execute"):
            pass
        assert timer.spans() == [("setup", 0, 1), ("execute", 3, 6)]

    def test_nested_spans_nest_inside_the_parent(self):
        timer = PhaseTimer(clock=iter([0, 1, 4, 5]).__next__)
        with timer.phase("execute"):
            with timer.phase("replay"):
                pass
        spans = dict(
            (path, (start, end)) for path, start, end in timer.spans()
        )
        assert spans["execute/replay"] == (1, 4)
        assert spans["execute"] == (0, 5)

    def test_recorded_spans_land_back_to_back(self):
        timer = PhaseTimer()
        timer.record("setup", 1.0)
        timer.record("execute", 2.5)
        assert timer.spans() == [
            ("setup", 0.0, 1.0),
            ("execute", 1.0, 3.5),
        ]

    def test_spans_returns_a_copy(self):
        timer = PhaseTimer()
        timer.record("setup", 1.0)
        timer.spans().clear()
        assert timer.spans() == [("setup", 0.0, 1.0)]
