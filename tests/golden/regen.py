"""Regenerate the golden-profile fixtures: ``make regen-golden``.

Run this ONLY when a change to the profiler's observable output is
intentional; review the fixture diff like any other code change.

    PYTHONPATH=src python -m tests.golden.regen [key ...]
"""

from __future__ import annotations

import sys

from tests.golden.lib import SPECS, regenerate


def main(argv) -> int:
    keys = argv or sorted(SPECS)
    unknown = [k for k in keys if k not in SPECS]
    if unknown:
        print(
            f"unknown fixture(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(SPECS))}",
            file=sys.stderr,
        )
        return 2
    regenerate(keys)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
