"""Golden-profile fixtures: byte-exact end-to-end pins on real workloads.

Each fixture stores the canonical profile text of one deterministic
workload run.  Any divergence -- a classification change, a clock drift, a
serialisation tweak -- fails with a unified diff and instructions.  The
batched transport is additionally required to reproduce the same bytes as
the scalar path, making these fixtures the end-to-end complement of the
Hypothesis differential tests.
"""

from __future__ import annotations

import difflib

import pytest

from tests.golden.lib import (
    SPECS,
    compute_text,
    fixture_path,
    fixture_text,
    load_fixture,
)

KEYS = sorted(SPECS)


def _diff_message(key: str, want: str, got: str) -> str:
    diff = "\n".join(
        difflib.unified_diff(
            want.splitlines(),
            got.splitlines(),
            fromfile=f"tests/golden/{key}.json (pinned)",
            tofile=f"{key} (computed)",
            lineterm="",
        )
    )
    return (
        f"golden profile for {key!r} diverged from the pinned fixture.\n"
        f"{diff}\n\n"
        "If this change to the profiler's output is INTENTIONAL, refresh\n"
        "the fixtures with `make regen-golden` and commit the diff.\n"
        "If it is not, this is a regression: the profiler no longer\n"
        "reproduces its pinned output byte for byte."
    )


@pytest.fixture(scope="module")
def computed():
    """Each spec's scalar profile text, computed once per test session."""
    return {key: compute_text(SPECS[key], batch_size=0) for key in KEYS}


@pytest.mark.parametrize("key", KEYS)
def test_fixture_exists(key):
    assert fixture_path(key).exists(), (
        f"missing golden fixture tests/golden/{key}.json -- "
        "generate it with `make regen-golden`"
    )


@pytest.mark.parametrize("key", KEYS)
def test_profile_matches_golden(key, computed):
    fixture = load_fixture(key)
    want = fixture_text(fixture)
    got = computed[key]
    assert got == want, _diff_message(key, want, got)


@pytest.mark.parametrize("key", KEYS)
def test_digest_matches_golden(key, computed):
    """The pinned digest guards the fixture file itself against hand-edits."""
    import hashlib

    fixture = load_fixture(key)
    body = fixture_text(fixture)
    assert fixture["digest"] == "sha256:" + hashlib.sha256(body.encode()).hexdigest(), (
        f"tests/golden/{key}.json is internally inconsistent (profile lines "
        "do not hash to the recorded digest); regenerate it with "
        "`make regen-golden` instead of editing by hand"
    )


@pytest.mark.parametrize("key", KEYS)
@pytest.mark.parametrize("batch_size", [64, 4096])
def test_batched_transport_reproduces_golden(key, batch_size, computed):
    """The batched transport must hit the same bytes as the scalar path."""
    got = compute_text(SPECS[key], batch_size=batch_size)
    assert got == computed[key], (
        f"batched transport (batch_size={batch_size}) diverged from the "
        f"scalar profile for {key!r} -- transport must be invisible in the "
        "output"
    )
