"""Shared machinery for the golden-profile fixtures.

A golden fixture pins the *byte-exact* canonical profile text of one
workload run.  The same module is used by the pytest suite (compare) and by
``make regen-golden`` (rewrite), so the two can never disagree about how a
profile is produced.

Fixture runs deliberately span the profiler's modes: baseline byte
granularity, re-use mode, and a threaded workload driven outside the
registry.  All runs are fully deterministic (seeded workload data, no
wall-clock anywhere in the profile).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict

from repro.core import SigilConfig, SigilProfiler
from repro.io.profilefile import dumps_profile, profile_digest
from repro.trace.batch import BatchingTransport
from repro.workloads.fluidanimate_parallel import ParallelFluidanimate
from repro.workloads.registry import get_workload

GOLDEN_DIR = Path(__file__).parent

FIXTURE_FORMAT = 1


@dataclass(frozen=True)
class GoldenSpec:
    """One pinned run: how to build the workload and the profiler config."""

    key: str
    workload: str
    size: str
    make_workload: Callable[[], object]
    config: SigilConfig = SigilConfig()


SPECS: Dict[str, GoldenSpec] = {
    spec.key: spec
    for spec in (
        GoldenSpec(
            key="blackscholes",
            workload="blackscholes",
            size="simsmall",
            make_workload=lambda: get_workload("blackscholes", "simsmall"),
        ),
        GoldenSpec(
            key="dedup",
            workload="dedup",
            size="simsmall",
            make_workload=lambda: get_workload("dedup", "simsmall"),
            # dedup is the paper's memory-limit case study; pin re-use mode
            # here so the golden set covers the re-use aggregates too.
            config=SigilConfig(reuse_mode=True),
        ),
        GoldenSpec(
            key="fluidanimate_parallel",
            workload="fluidanimate-parallel",
            size="simsmall",
            # Not in the registry (it is the threading case study, not one
            # of the paper's 14 benchmarks); drive the class directly.
            make_workload=lambda: ParallelFluidanimate("simsmall"),
        ),
    )
}


def fixture_path(key: str) -> Path:
    return GOLDEN_DIR / f"{key}.json"


def compute_profile(spec: GoldenSpec, batch_size: int):
    """Run the spec's workload and return its profile."""
    profiler = SigilProfiler(spec.config)
    observer = (
        BatchingTransport(profiler, batch_size) if batch_size else profiler
    )
    spec.make_workload().run(observer)
    return profiler.profile()


def compute_text(spec: GoldenSpec, batch_size: int = 0) -> str:
    return dumps_profile(compute_profile(spec, batch_size))


def render_fixture(spec: GoldenSpec, text: str) -> str:
    """The on-disk JSON for one fixture (newline-terminated, stable keys)."""
    profile = {
        "format": FIXTURE_FORMAT,
        "workload": spec.workload,
        "size": spec.size,
        "reuse_mode": spec.config.reuse_mode,
        "line_size": spec.config.line_size,
        "digest": "sha256:" + _digest_of(text),
        "profile": text.splitlines(),
    }
    return json.dumps(profile, indent=2, sort_keys=True) + "\n"


def _digest_of(text: str) -> str:
    import hashlib

    return hashlib.sha256(text.encode()).hexdigest()


def load_fixture(key: str) -> dict:
    return json.loads(fixture_path(key).read_text())


def fixture_text(fixture: dict) -> str:
    return "\n".join(fixture["profile"]) + "\n"


def regenerate(keys=None) -> None:
    """Rewrite the named fixtures (all of them by default)."""
    for key in keys or sorted(SPECS):
        spec = SPECS[key]
        text = compute_text(spec)
        fixture_path(key).write_text(render_fixture(spec, text))
        print(f"regenerated {fixture_path(key).relative_to(GOLDEN_DIR.parent.parent)}")
