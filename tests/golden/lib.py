"""Shared machinery for the golden-profile fixtures.

A golden fixture pins the *byte-exact* canonical profile text of one
workload run.  The same module is used by the pytest suite (compare) and by
``make regen-golden`` (rewrite), so the two can never disagree about how a
profile is produced.

Fixture runs deliberately span the profiler's modes: baseline byte
granularity, re-use mode, and a threaded workload driven outside the
registry.  All runs are fully deterministic (seeded workload data, no
wall-clock anywhere in the profile).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict

from repro.callgrind import CallgrindCollector
from repro.core import SigilConfig, SigilProfiler
from repro.io.callgrindfile import dumps_callgrind
from repro.io.profilefile import dumps_profile, profile_digest
from repro.trace.batch import BatchingTransport
from repro.workloads.fluidanimate_parallel import ParallelFluidanimate
from repro.workloads.registry import get_workload

GOLDEN_DIR = Path(__file__).parent

FIXTURE_FORMAT = 1


@dataclass(frozen=True)
class GoldenSpec:
    """One pinned run: how to build the workload and the tool observing it.

    ``tool`` selects the profiler: ``"sigil"`` (SigilProfiler under
    ``config``) or ``"callgrind"`` (CallgrindCollector with default cache
    geometry and branch predictor).
    """

    key: str
    workload: str
    size: str
    make_workload: Callable[[], object]
    tool: str = "sigil"
    config: SigilConfig = SigilConfig()


SPECS: Dict[str, GoldenSpec] = {
    spec.key: spec
    for spec in (
        GoldenSpec(
            key="blackscholes",
            workload="blackscholes",
            size="simsmall",
            make_workload=lambda: get_workload("blackscholes", "simsmall"),
        ),
        GoldenSpec(
            key="dedup",
            workload="dedup",
            size="simsmall",
            make_workload=lambda: get_workload("dedup", "simsmall"),
            # dedup is the paper's memory-limit case study; pin re-use mode
            # here so the golden set covers the re-use aggregates too.
            config=SigilConfig(reuse_mode=True),
        ),
        GoldenSpec(
            key="fluidanimate_parallel",
            workload="fluidanimate-parallel",
            size="simsmall",
            # Not in the registry (it is the threading case study, not one
            # of the paper's 14 benchmarks); drive the class directly.
            make_workload=lambda: ParallelFluidanimate("simsmall"),
        ),
        GoldenSpec(
            key="sigil-reuse",
            workload="blackscholes",
            size="simsmall",
            make_workload=lambda: get_workload("blackscholes", "simsmall"),
            # Pins the grouped re-use batch kernel on a second workload
            # (dedup above covers re-use on the memory-limit case study);
            # event mode additionally pins the producer-segment tracking.
            config=SigilConfig(reuse_mode=True, event_mode=True),
        ),
        GoldenSpec(
            key="callgrind",
            workload="blackscholes",
            size="simsmall",
            make_workload=lambda: get_workload("blackscholes", "simsmall"),
            # Pins the vectorised cache-simulation and branch-predictor
            # batch kernels end to end, including the cycle model.
            tool="callgrind",
        ),
    )
}


def fixture_path(key: str) -> Path:
    return GOLDEN_DIR / f"{key}.json"


def compute_text(spec: GoldenSpec, batch_size: int = 0) -> str:
    """Run the spec's workload and return its canonical profile text."""
    if spec.tool == "callgrind":
        tool = CallgrindCollector()
    else:
        tool = SigilProfiler(spec.config)
    observer = BatchingTransport(tool, batch_size) if batch_size else tool
    spec.make_workload().run(observer)
    if spec.tool == "callgrind":
        return dumps_callgrind(tool.profile)
    return dumps_profile(tool.profile())


def render_fixture(spec: GoldenSpec, text: str) -> str:
    """The on-disk JSON for one fixture (newline-terminated, stable keys)."""
    profile = {
        "format": FIXTURE_FORMAT,
        "tool": spec.tool,
        "workload": spec.workload,
        "size": spec.size,
        "digest": "sha256:" + _digest_of(text),
        "profile": text.splitlines(),
    }
    if spec.tool == "sigil":
        profile["reuse_mode"] = spec.config.reuse_mode
        profile["line_size"] = spec.config.line_size
    return json.dumps(profile, indent=2, sort_keys=True) + "\n"


def _digest_of(text: str) -> str:
    import hashlib

    return hashlib.sha256(text.encode()).hexdigest()


def load_fixture(key: str) -> dict:
    return json.loads(fixture_path(key).read_text())


def fixture_text(fixture: dict) -> str:
    return "\n".join(fixture["profile"]) + "\n"


def regenerate(keys=None) -> None:
    """Rewrite the named fixtures (all of them by default)."""
    for key in keys or sorted(SPECS):
        spec = SPECS[key]
        text = compute_text(spec)
        fixture_path(key).write_text(render_fixture(spec, text))
        print(f"regenerated {fixture_path(key).relative_to(GOLDEN_DIR.parent.parent)}")
