"""Cache simulator tests: geometry, LRU, hierarchy."""

from __future__ import annotations

import pytest

from repro.callgrind import Cache, CacheConfig, CacheHierarchy


class TestConfig:
    def test_sets_computed(self):
        cfg = CacheConfig(size=32 * 1024, assoc=8, line_size=64)
        assert cfg.n_sets == 64

    def test_bad_line_size(self):
        with pytest.raises(ValueError):
            CacheConfig(line_size=48)

    def test_size_divisibility(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1000, assoc=8, line_size=64)

    def test_non_power_of_two_set_count_rejected(self):
        """96 KiB / 8-way / 64 B lines gives 192 sets; indexing masks with
        n_sets - 1, so such a geometry would silently alias sets."""
        with pytest.raises(ValueError, match="power of two"):
            CacheConfig(size=96 * 1024, assoc=8, line_size=64)

    def test_near_miss_power_of_two_geometries_accepted(self):
        # The neighbouring valid geometries of the rejected 96 KiB one.
        assert CacheConfig(size=64 * 1024, assoc=8, line_size=64).n_sets == 128
        assert CacheConfig(size=128 * 1024, assoc=8, line_size=64).n_sets == 256
        # Non-power-of-two *associativity* is fine as long as sets are 2^k.
        assert CacheConfig(size=96 * 1024, assoc=12, line_size=64).n_sets == 128

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size=0, assoc=8, line_size=64)


class TestLRU:
    def make(self, assoc=2, sets=2):
        return Cache(CacheConfig(size=assoc * sets * 64, assoc=assoc, line_size=64))

    def test_cold_miss_then_hit(self):
        c = self.make()
        assert c.access_line(0) is True
        assert c.access_line(0) is False

    def test_lru_eviction(self):
        c = self.make(assoc=2, sets=1)
        c.access_line(0)
        c.access_line(1)
        c.access_line(0)      # 1 becomes LRU
        assert c.access_line(2) is True   # evicts 1
        assert c.access_line(0) is False  # 0 retained
        assert c.access_line(1) is True   # 1 was evicted

    def test_sets_are_independent(self):
        c = self.make(assoc=1, sets=2)
        assert c.access_line(0) is True   # set 0
        assert c.access_line(1) is True   # set 1
        assert c.access_line(0) is False
        assert c.access_line(1) is False

    def test_lines_of_straddling_access(self):
        c = self.make()
        assert list(c.lines_of(60, 8)) == [0, 1]
        assert list(c.lines_of(0, 64)) == [0]
        assert list(c.lines_of(64, 1)) == [1]

    def test_counters(self):
        c = self.make()
        c.access_line(0)
        c.access_line(0)
        c.access_line(99)
        assert c.accesses == 3
        assert c.misses == 2


class TestHierarchy:
    def test_ll_filters_d1_misses(self):
        h = CacheHierarchy(
            d1=CacheConfig(size=128, assoc=1, line_size=64),
            ll=CacheConfig(size=4096, assoc=4, line_size=64),
        )
        r1 = h.access(0, 8)
        assert (r1.l1_misses, r1.ll_misses) == (1, 1)
        # Thrash D1 set 0 while LL retains both lines.
        h.access(128, 8)   # same D1 set, evicts line 0 from D1
        r3 = h.access(0, 8)
        assert r3.l1_misses == 1
        assert r3.ll_misses == 0

    def test_hit_reports_no_misses(self):
        h = CacheHierarchy()
        h.access(0, 8)
        r = h.access(0, 8)
        assert (r.l1_misses, r.ll_misses) == (0, 0)

    def test_mismatched_line_sizes_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                d1=CacheConfig(line_size=32, size=1024, assoc=1),
                ll=CacheConfig(line_size=64),
            )

    def test_large_access_counts_every_line(self):
        h = CacheHierarchy()
        r = h.access(0, 640)
        assert r.l1_misses == 10
