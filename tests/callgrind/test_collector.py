"""Callgrind-equivalent collector tests: costs, contexts, cycles."""

from __future__ import annotations

import pytest

from repro.callgrind import (
    BimodalPredictor,
    CallgrindCollector,
    CallgrindCosts,
    CycleModel,
)
from repro.trace.events import OpKind


class TestPredictor:
    def test_warms_up_to_taken(self):
        p = BimodalPredictor()
        assert p.record(0, True) is True    # starts weakly not-taken
        assert p.record(0, True) is False   # now predicts taken
        assert p.record(0, True) is False

    def test_saturation(self):
        p = BimodalPredictor()
        for _ in range(10):
            p.record(0, True)
        assert p.record(0, False) is True   # one surprise
        assert p.record(0, True) is False   # still biased taken

    def test_sites_independent(self):
        p = BimodalPredictor()
        for _ in range(4):
            p.record(0, True)
        assert p.record(1, True) is True  # fresh site mispredicts

    def test_miss_rate(self):
        p = BimodalPredictor()
        p.record(0, True)
        p.record(0, True)
        assert p.miss_rate == pytest.approx(0.5)


class TestCollector:
    def run_simple(self):
        cg = CallgrindCollector()
        cg.on_run_begin()
        cg.on_fn_enter("main")
        cg.on_op(OpKind.INT, 10)
        cg.on_fn_enter("child")
        cg.on_op(OpKind.FLOAT, 4)
        cg.on_mem_read(0x100, 8)
        cg.on_mem_write(0x100, 8)
        cg.on_branch(0, True)
        cg.on_fn_exit("child")
        cg.on_fn_exit("main")
        cg.on_run_end()
        return cg

    def test_self_costs_attributed(self):
        cg = self.run_simple()
        main = cg.tree.find(("main",))
        child = cg.tree.find(("main", "child"))
        mc = cg.profile.costs_of(main.id)
        cc = cg.profile.costs_of(child.id)
        assert mc.iops == 10 and mc.flops == 0
        assert cc.flops == 4
        assert cc.reads == 1 and cc.writes == 1
        assert cc.read_bytes == 8 and cc.write_bytes == 8
        assert cc.branches == 1
        # instructions = ops + mem accesses + branches
        assert cc.instructions == 4 + 2 + 1

    def test_inclusive_costs_roll_up(self):
        cg = self.run_simple()
        main = cg.tree.find(("main",))
        inc = cg.profile.inclusive_costs(main)
        assert inc.iops == 10
        assert inc.flops == 4
        assert inc.instructions == 10 + 4 + 2 + 1

    def test_calls_counted(self):
        cg = CallgrindCollector()
        cg.on_run_begin()
        cg.on_fn_enter("main")
        for _ in range(3):
            cg.on_fn_enter("f")
            cg.on_fn_exit("f")
        cg.on_fn_exit("main")
        cg.on_run_end()
        f = cg.tree.find(("main", "f"))
        assert f.calls == 3

    def test_context_separation(self):
        cg = CallgrindCollector()
        cg.on_run_begin()
        for parent in ("a", "b"):
            cg.on_fn_enter(parent)
            cg.on_fn_enter("util")
            cg.on_op(OpKind.INT, 1)
            cg.on_fn_exit("util")
            cg.on_fn_exit(parent)
        cg.on_run_end()
        assert cg.tree.find(("a", "util")) is not cg.tree.find(("b", "util"))

    def test_cache_misses_attributed(self):
        cg = CallgrindCollector()
        cg.on_run_begin()
        cg.on_fn_enter("f")
        cg.on_mem_read(0, 8)     # cold miss
        cg.on_mem_read(0, 8)     # hit
        cg.on_fn_exit("f")
        cg.on_run_end()
        costs = cg.profile.costs_of(cg.tree.find(("f",)).id)
        assert costs.l1_misses == 1
        assert costs.ll_misses == 1

    def test_cache_simulation_optional(self):
        cg = CallgrindCollector(simulate_cache=False)
        cg.on_run_begin()
        cg.on_fn_enter("f")
        cg.on_mem_read(0, 8)
        cg.on_fn_exit("f")
        cg.on_run_end()
        costs = cg.profile.costs_of(cg.tree.find(("f",)).id)
        assert costs.l1_misses == 0
        assert costs.reads == 1


class TestCycleModel:
    def test_formula(self):
        model = CycleModel()
        assert model.estimate(1000, 10, 20, 5) == 1000 + 100 + 200 + 500

    def test_custom_weights(self):
        model = CycleModel(per_ll_miss=200.0)
        assert model.estimate(0, 0, 0, 1) == 200.0

    def test_estimated_cycles_through_profile(self):
        cg = CallgrindCollector()
        cg.on_run_begin()
        cg.on_fn_enter("f")
        cg.on_op(OpKind.INT, 100)
        cg.on_mem_read(0, 8)  # cold: 1 L1 + 1 LL miss, 1 instruction
        cg.on_fn_exit("f")
        cg.on_run_end()
        node = cg.tree.find(("f",))
        assert cg.profile.estimated_cycles(node) == 101 + 10 + 100
        assert cg.profile.total_cycles() == 211

    def test_costs_add_and_copy(self):
        a = CallgrindCosts(instructions=1, iops=1)
        b = a.copy()
        b.add(CallgrindCosts(instructions=2, flops=3))
        assert (b.instructions, b.iops, b.flops) == (3, 1, 3)
        assert a.instructions == 1
        assert b.ops == 4
