"""Additional mini-VM coverage: remaining opcodes and edge behaviours."""

from __future__ import annotations

import math

import pytest

from repro.vm import Machine, ProgramBuilder
from repro.vm.isa import Alu, Const, Ret
from repro.vm.program import Function, Program


def run(build):
    pb = ProgramBuilder()
    build(pb)
    return Machine().run(pb.build())


class TestRemainingIntOps:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("mod", 17, 5, 2),
        ("min", -3, 7, -3),
        ("max", -3, 7, 7),
        ("and", 0b1100, 0b1010, 0b1000),
        ("or", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("shl", 3, 4, 48),
        ("shr", 48, 4, 3),
        ("le", 4, 4, 1),
        ("ne", 4, 4, 0),
        ("gt", 5, 4, 1),
        ("ge", 3, 4, 0),
        ("eq", 9, 9, 1),
    ])
    def test_op(self, op, a, b, expected):
        def build(pb):
            f = pb.function("main")
            ra = f.const(a)
            rb = f.const(b)
            f.ret(f.alu(op, ra, rb))

        assert run(build).value == expected

    def test_mov(self):
        def build(pb):
            f = pb.function("main")
            a = f.const(99)
            f.ret(f.mov(a))

        assert run(build).value == 99

    def test_mod_by_zero(self):
        from repro.vm import VMError

        def build(pb):
            f = pb.function("main")
            a = f.const(1)
            z = f.const(0)
            f.alu("mod", a, z)
            f.ret()

        with pytest.raises(VMError):
            run(build)


class TestRemainingFloatOps:
    @pytest.mark.parametrize("op,x,expected", [
        ("fneg", 2.5, -2.5),
        ("fabs", -2.5, 2.5),
        ("fexp", 0.0, 1.0),
        ("flog", 1.0, 0.0),
    ])
    def test_unary(self, op, x, expected):
        def build(pb):
            f = pb.function("main")
            a = f.const(x)
            f.ret(f.funary(op, a))

        assert run(build).value == pytest.approx(expected)

    @pytest.mark.parametrize("op,a,b,expected", [
        ("fsub", 5.0, 1.5, 3.5),
        ("fdiv", 7.0, 2.0, 3.5),
        ("fmin", 1.0, 2.0, 1.0),
        ("fmax", 1.0, 2.0, 2.0),
    ])
    def test_binary(self, op, a, b, expected):
        def build(pb):
            f = pb.function("main")
            ra = f.const(a)
            rb = f.const(b)
            f.ret(f.falu(op, ra, rb))

        assert run(build).value == pytest.approx(expected)

    def test_fdiv_by_zero(self):
        from repro.vm import VMError

        def build(pb):
            f = pb.function("main")
            a = f.const(1.0)
            z = f.const(0.0)
            f.falu("fdiv", a, z)
            f.ret()

        with pytest.raises(VMError):
            run(build)


class TestStructuralEdges:
    def test_fall_off_end_implicit_return(self):
        """Hand-built code without a Ret: the machine returns implicitly."""
        program = Program()
        program.add(Function("main", 0, (Const(0, 7),), 1))
        result = Machine().run(program)
        assert result.value is None
        assert result.instructions == 1

    def test_call_void_function_result_defaults_zero(self):
        def build(pb):
            f = pb.function("main")
            r = f.call_value("void_fn")
            f.ret(r)
            v = pb.function("void_fn")
            v.const(5)
            v.ret()  # no value

        assert run(build).value == 0

    def test_small_int_sizes_roundtrip_sign(self):
        def build(pb):
            f = pb.function("main")
            base = f.const(0x3000)
            v = f.const(-2)
            f.store(v, base, offset=0, size=2)
            f.ret(f.load(base, offset=0, size=2))

        assert run(build).value == -2

    def test_nested_syscalls_from_child(self):
        from repro.trace import RecordingObserver
        from repro.trace.events import SyscallEnter

        pb = ProgramBuilder()
        f = pb.function("main")
        f.call("io")
        f.ret()
        io = pb.function("io")
        io.syscall("write", input_bytes=64)
        io.ret()
        obs = RecordingObserver()
        Machine().run(pb.build(), obs)
        assert SyscallEnter("write", 64) in obs.events


class TestFloatDomainErrors:
    @pytest.mark.parametrize("op,x", [
        ("fsqrt", -1.0),
        ("fexp", 1e6),
        ("flog", 0.0),
        ("flog", -3.0),
    ])
    def test_domain_errors_raise_vm_error(self, op, x):
        from repro.vm import VMError

        def build(pb):
            f = pb.function("main")
            a = f.const(x)
            f.funary(op, a)
            f.ret()

        with pytest.raises(VMError):
            run(build)

    def test_asm_negative_offset(self):
        from repro.vm.asm import assemble
        from repro.vm import Machine

        program = assemble("""
.func main
    const r0, 4104
    const r1, 11
    store r1, [r0-8], 8
    load  r2, [r0-8], 8
    ret   r2
""")
        assert Machine().run(program).value == 11
