"""Builder API and program validation tests."""

from __future__ import annotations

import pytest

from repro.vm import (
    InvalidRegisterError,
    ProgramBuilder,
    ProgramError,
    UnknownFunctionError,
    UnknownLabelError,
)
from repro.vm.isa import Alu, BranchIf, Call, Ret
from repro.vm.program import Function, Program


class TestBuilder:
    def test_registers_are_fresh(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        regs = {f.const(i) for i in range(10)}
        assert len(regs) == 10

    def test_params_occupy_low_registers(self):
        pb = ProgramBuilder()
        f = pb.function("f", n_params=3)
        assert [f.param(i) for i in range(3)] == [0, 1, 2]
        assert f.reg() == 3

    def test_param_out_of_range(self):
        pb = ProgramBuilder()
        f = pb.function("f", n_params=1)
        with pytest.raises(ProgramError):
            f.param(1)

    def test_implicit_return_appended(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.const(1)
        func = f.finalise()
        assert isinstance(func.code[-1], Ret)

    def test_unbound_label_rejected(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        lab = f.label()
        one = f.const(1)
        f.branch_if(one, lab)
        with pytest.raises(UnknownLabelError):
            f.finalise()

    def test_label_bound_twice_rejected(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        lab = f.label()
        f.bind(lab)
        with pytest.raises(ProgramError):
            f.bind(lab)

    def test_duplicate_function_rejected(self):
        pb = ProgramBuilder()
        pb.function("f")
        with pytest.raises(ProgramError):
            pb.function("f")

    def test_branch_sites_unique(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        lab = f.label()
        f.bind(lab)
        c = f.const(0)
        f.branch_if(c, lab)
        f.branch_if(c, lab)
        func = f.finalise()
        sites = [ins.site for ins in func.code if isinstance(ins, BranchIf)]
        assert len(set(sites)) == 2


class TestValidation:
    def test_missing_entry(self):
        program = Program(entry="main")
        with pytest.raises(UnknownFunctionError):
            program.validate()

    def test_entry_with_params_rejected(self):
        program = Program()
        program.add(Function("main", 1, (Ret(None),), 2))
        with pytest.raises(ProgramError):
            program.validate()

    def test_call_to_undefined_function(self):
        program = Program()
        program.add(Function("main", 0, (Call("ghost", ()), Ret(None)), 1))
        with pytest.raises(UnknownFunctionError):
            program.validate()

    def test_call_arity_mismatch(self):
        program = Program()
        program.add(Function("main", 0, (Call("f", (0,)), Ret(None)), 1))
        program.add(Function("f", 2, (Ret(None),), 3))
        with pytest.raises(ProgramError):
            program.validate()

    def test_register_out_of_frame(self):
        program = Program()
        program.add(Function("main", 0, (Alu("add", 5, 0, 0), Ret(None)), 2))
        with pytest.raises(InvalidRegisterError):
            program.validate()

    def test_bad_alu_op(self):
        program = Program()
        program.add(Function("main", 0, (Alu("frobnicate", 0, 0, 0), Ret(None)), 1))
        with pytest.raises(ProgramError):
            program.validate()

    def test_branch_target_out_of_range(self):
        program = Program()
        program.add(Function("main", 0, (BranchIf(0, 99, 0), Ret(None)), 1))
        with pytest.raises(UnknownLabelError):
            program.validate()

    def test_valid_program_passes(self, toy_program):
        toy_program.validate()
