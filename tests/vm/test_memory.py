"""FlatMemory tests: sparse pages, typed access, allocator."""

from __future__ import annotations

import pytest

from repro.vm import FlatMemory, MemoryFault
from repro.vm.memory import PAGE_SIZE


class TestByteAccess:
    def test_roundtrip(self):
        mem = FlatMemory()
        mem.write_bytes(0x1234, b"hello")
        assert mem.read_bytes(0x1234, 5) == b"hello"

    def test_cross_page_write_and_read(self):
        mem = FlatMemory()
        addr = PAGE_SIZE - 3
        mem.write_bytes(addr, b"abcdef")
        assert mem.read_bytes(addr, 6) == b"abcdef"

    def test_strict_read_of_unmapped_faults(self):
        mem = FlatMemory()
        with pytest.raises(MemoryFault):
            mem.read_bytes(0x9999, 4)

    def test_non_strict_reads_zero(self):
        mem = FlatMemory(strict=False)
        assert mem.read_bytes(0x9999, 4) == b"\x00" * 4

    def test_negative_address_faults(self):
        mem = FlatMemory()
        with pytest.raises(MemoryFault):
            mem.write_bytes(-8, b"x")


class TestTypedAccess:
    def test_signed_int_roundtrip(self):
        mem = FlatMemory()
        mem.write_int(0x100, -42, 8)
        assert mem.read_int(0x100, 8) == -42

    def test_small_sizes(self):
        mem = FlatMemory()
        mem.write_int(0x100, 127, 1)
        assert mem.read_int(0x100, 1) == 127

    def test_float_roundtrip(self):
        mem = FlatMemory()
        mem.write_float(0x200, 2.718281828)
        assert mem.read_float(0x200) == pytest.approx(2.718281828)


class TestAllocator:
    def test_alloc_disjoint(self):
        mem = FlatMemory()
        a = mem.alloc(100)
        b = mem.alloc(100)
        assert b >= a + 100

    def test_alignment(self):
        mem = FlatMemory()
        addr = mem.alloc(10, align=64)
        assert addr % 64 == 0

    def test_bad_alignment_rejected(self):
        mem = FlatMemory()
        with pytest.raises(ValueError):
            mem.alloc(8, align=3)

    def test_negative_size_rejected(self):
        mem = FlatMemory()
        with pytest.raises(ValueError):
            mem.alloc(-1)

    def test_mapped_bytes_tracks_pages(self):
        mem = FlatMemory()
        assert mem.mapped_bytes == 0
        mem.write_bytes(0, b"x")
        assert mem.mapped_bytes == PAGE_SIZE
