"""Mini-VM interpreter tests: semantics and trace emission."""

from __future__ import annotations

import pytest

from repro.trace import RecordingObserver
from repro.trace.events import Branch, FnEnter, FnExit, MemRead, MemWrite, Op, OpKind
from repro.vm import (
    ExecutionLimitExceeded,
    FlatMemory,
    Machine,
    ProgramBuilder,
    VMError,
)


def run_main(build_fn, **machine_kwargs):
    pb = ProgramBuilder()
    build_fn(pb)
    obs = RecordingObserver()
    result = Machine(**machine_kwargs).run(pb.build(), obs)
    return result, obs


class TestArithmetic:
    def test_integer_ops(self):
        def build(pb):
            f = pb.function("main")
            a = f.const(10)
            b = f.const(3)
            s = f.alu("add", a, b)
            d = f.alu("div", s, b)
            f.ret(d)

        result, _ = run_main(build)
        assert result.value == 4

    def test_float_ops(self):
        def build(pb):
            f = pb.function("main")
            a = f.const(2.0)
            r = f.funary("fsqrt", a)
            r2 = f.falu("fmul", r, r)
            f.ret(r2)

        result, _ = run_main(build)
        assert result.value == pytest.approx(2.0)

    def test_division_by_zero_raises(self):
        def build(pb):
            f = pb.function("main")
            a = f.const(1)
            z = f.const(0)
            f.alu("div", a, z)
            f.ret()

        with pytest.raises(VMError):
            run_main(build)

    def test_comparison_ops_produce_flags(self):
        def build(pb):
            f = pb.function("main")
            a = f.const(5)
            b = f.const(7)
            lt = f.alu("lt", a, b)
            ge = f.alu("ge", a, b)
            combined = f.alu("shl", lt, ge)  # 1 << 0 == 1
            f.ret(combined)

        result, _ = run_main(build)
        assert result.value == 1


class TestMemoryInstructions:
    def test_store_load_roundtrip(self):
        def build(pb):
            f = pb.function("main")
            base = f.const(0x2000)
            v = f.const(-12345)
            f.store(v, base, offset=16, size=8)
            out = f.load(base, offset=16, size=8)
            f.ret(out)

        result, obs = run_main(build)
        assert result.value == -12345
        assert MemWrite(0x2010, 8) in obs.events
        assert MemRead(0x2010, 8) in obs.events

    def test_float_memory(self):
        def build(pb):
            f = pb.function("main")
            base = f.const(0x2000)
            v = f.const(3.25)
            f.store(v, base, size=8, is_float=True)
            out = f.load(base, size=8, is_float=True)
            f.ret(out)

        result, _ = run_main(build)
        assert result.value == 3.25


class TestControlFlow:
    def test_loop_sums(self):
        def build(pb):
            f = pb.function("main")
            i = f.const(0)
            acc = f.const(0)
            limit = f.const(5)
            top = f.label()
            f.bind(top)
            f.alu("add", acc, i, dst=acc)
            f.alui("add", i, 1, dst=i)
            cond = f.alu("lt", i, limit)
            f.branch_if(cond, top)
            f.ret(acc)

        result, obs = run_main(build)
        assert result.value == 0 + 1 + 2 + 3 + 4
        branches = [e for e in obs.events if isinstance(e, Branch)]
        assert len(branches) == 5
        assert [b.taken for b in branches] == [True] * 4 + [False]

    def test_call_and_return_value(self):
        def build(pb):
            f = pb.function("main")
            x = f.const(20)
            y = f.call_value("double", args=[x])
            f.ret(y)
            d = pb.function("double", n_params=1)
            r = d.alui("mul", d.param(0), 2)
            d.ret(r)

        result, obs = run_main(build)
        assert result.value == 40
        names = [e.name for e in obs.events if isinstance(e, FnEnter)]
        assert names == ["main", "double"]

    def test_recursion(self):
        def build(pb):
            f = pb.function("main")
            n = f.const(6)
            r = f.call_value("fact", args=[n])
            f.ret(r)
            g = pb.function("fact", n_params=1)
            one = g.const(1)
            cond = g.alu("le", g.param(0), one)
            base = g.label()
            g.branch_if(cond, base)
            nm1 = g.alui("sub", g.param(0), 1)
            rec = g.call_value("fact", args=[nm1])
            out = g.alu("mul", g.param(0), rec)
            g.ret(out)
            g.bind(base)
            g.ret(one)

        result, _ = run_main(build)
        assert result.value == 720

    def test_halt_unwinds_stack(self):
        def build(pb):
            f = pb.function("main")
            f.call("child")
            f.ret()
            c = pb.function("child")
            c.halt()

        _, obs = run_main(build)
        exits = [e.name for e in obs.events if isinstance(e, FnExit)]
        assert exits == ["child", "main"]

    def test_fuel_limit(self):
        def build(pb):
            f = pb.function("main")
            top = f.label()
            f.bind(top)
            one = f.const(1)
            f.branch_if(one, top)

        with pytest.raises(ExecutionLimitExceeded):
            run_main(build, max_instructions=1000)


class TestTraceShape:
    def test_enter_exit_balanced(self):
        def build(pb):
            f = pb.function("main")
            f.call("a")
            f.ret()
            a = pb.function("a")
            a.call("b")
            a.ret()
            b = pb.function("b")
            b.ret()

        _, obs = run_main(build)
        depth = 0
        for e in obs.events:
            if isinstance(e, FnEnter):
                depth += 1
            elif isinstance(e, FnExit):
                depth -= 1
            assert depth >= 0
        assert depth == 0

    def test_op_events_count_instructions(self):
        def build(pb):
            f = pb.function("main")
            a = f.const(1)
            b = f.const(2)
            f.alu("add", a, b)
            f.falu("fadd", a, b)
            f.ret()

        result, obs = run_main(build)
        ops = [e for e in obs.events if isinstance(e, Op)]
        kinds = [o.kind for o in ops]
        assert kinds.count(OpKind.INT) == 3  # 2 consts + 1 add
        assert kinds.count(OpKind.FLOAT) == 1

    def test_syscall_events(self):
        def build(pb):
            f = pb.function("main")
            f.syscall("read", input_bytes=8, output_bytes=256)
            f.ret()

        _, obs = run_main(build)
        from repro.trace.events import SyscallEnter, SyscallExit

        assert SyscallEnter("read", 8) in obs.events
        assert SyscallExit("read", 256) in obs.events

    def test_deterministic_across_runs(self, toy_program):
        o1, o2 = RecordingObserver(), RecordingObserver()
        Machine().run(toy_program, o1)
        Machine().run(toy_program, o2)
        assert o1.events == o2.events
