"""Assembler/disassembler tests, including the round-trip property."""

from __future__ import annotations

import pytest

from repro.trace import RecordingObserver
from repro.trace.events import FnEnter, SyscallEnter
from repro.vm import Machine
from repro.vm.asm import AsmError, assemble, disassemble

HELLO = """
; toy producer/consumer
.func main
    const r0, 4096
    const r1, 7
    store r1, [r0+0], 8
    call  helper, r0 -> r2
    syscall write, in=8
    ret   r2

.func helper/1
    load  r1, [r0+0], 8
    addi  r2, r1, 35
    ret   r2
"""


class TestAssemble:
    def test_executes(self):
        program = assemble(HELLO)
        result = Machine().run(program)
        assert result.value == 42

    def test_trace_shape(self):
        program = assemble(HELLO)
        obs = RecordingObserver()
        Machine().run(program, obs)
        entries = [e.name for e in obs.events if isinstance(e, FnEnter)]
        assert entries == ["main", "helper"]
        assert SyscallEnter("write", 8) in obs.events

    def test_loop_with_labels(self):
        program = assemble("""
.func main
    const r0, 5
    const r1, 0
loop:
    add  r1, r1, r0
    subi r0, r0, 1
    gti  r2, r0, 0
    br   r2, loop
    ret  r1
""")
        assert Machine().run(program).value == 15

    def test_forward_label(self):
        program = assemble("""
.func main
    const r0, 1
    br r0, done
    const r1, 99
done:
    ret r0
""")
        assert Machine().run(program).value == 1

    def test_float_ops(self):
        program = assemble("""
.func main
    const r0, 2.25
    fsqrt r1, r0
    fmul  r2, r1, r1
    const r3, 8192
    store r2, [r3+0], 8, f
    load  r4, [r3+0], 8, f
    ret   r4
""")
        assert Machine().run(program).value == pytest.approx(2.25)

    def test_comments_and_blank_lines(self):
        program = assemble("""
; leading comment

.func main     ; trailing comment
    const r0, 3   ; another
    ret r0
""")
        assert Machine().run(program).value == 3

    def test_hex_immediates(self):
        program = assemble(".func main\n const r0, 0x10\n ret r0\n")
        assert Machine().run(program).value == 16


class TestErrors:
    def test_instruction_outside_function(self):
        with pytest.raises(AsmError, match="outside"):
            assemble("const r0, 1\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError, match="unknown mnemonic"):
            assemble(".func main\n frobnicate r0\n")

    def test_bad_register(self):
        with pytest.raises(AsmError, match="expected register"):
            assemble(".func main\n mov r0, x1\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AsmError, match="expects"):
            assemble(".func main\n add r0, r1\n")

    def test_unbound_label(self):
        from repro.vm.errors import UnknownLabelError

        with pytest.raises(UnknownLabelError):
            assemble(".func main\n const r0, 1\n br r0, nowhere\n")

    def test_bad_memory_operand(self):
        with pytest.raises(AsmError, match="operand"):
            assemble(".func main\n load r0, r1, 8\n")

    def test_line_numbers_reported(self):
        with pytest.raises(AsmError, match="line 3"):
            assemble(".func main\n const r0, 1\n wat\n")


class TestRoundTrip:
    def test_disassemble_reassemble_identity(self):
        program = assemble(HELLO)
        text = disassemble(program)
        again = assemble(text)
        for name, func in program.functions.items():
            assert again.functions[name].code == func.code
            assert again.functions[name].n_params == func.n_params

    def test_roundtrip_with_control_flow(self):
        program = assemble("""
.func main
    const r0, 5
    const r1, 0
top:
    add r1, r1, r0
    subi r0, r0, 1
    gti r2, r0, 0
    br r2, top
    call leaf -> r3
    ret r1

.func leaf
    const r0, 1
    ret r0
""")
        again = assemble(disassemble(program))
        assert Machine().run(again).value == Machine().run(program).value
        for name in program.functions:
            assert again.functions[name].code == program.functions[name].code

    def test_roundtrip_toy_program(self, toy_program):
        text = disassemble(toy_program)
        again = assemble(text)
        for name, func in toy_program.functions.items():
            assert again.functions[name].code == func.code
