"""CLI tests: every subcommand, live and offline paths."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestList:
    def test_lists_all_workloads(self, capsys):
        code, out, _ = run_cli(capsys, "list")
        assert code == 0
        for name in ("blackscholes", "libquantum", "x264"):
            assert name in out
        assert "simsmall" in out


class TestProfile:
    def test_summary_output(self, capsys):
        code, out, _ = run_cli(capsys, "profile", "streamcluster", "--top", "5")
        assert code == 0
        assert "streamcluster" in out
        assert "contexts" in out
        assert "uniq_in_B" in out

    def test_writes_all_outputs(self, capsys, tmp_path):
        prof = tmp_path / "w.profile"
        events = tmp_path / "w.events"
        cg = tmp_path / "w.cg"
        code, out, _ = run_cli(
            capsys, "profile", "freqmine", "--reuse", "--events",
            "-o", str(prof), "--events-out", str(events),
            "--callgrind-out", str(cg),
        )
        assert code == 0
        assert prof.read_text().startswith("# sigil-profile 1")
        # Event files default to the binary columnar v2 format.
        assert events.read_bytes().startswith(b"# sigil-events 2\n")
        assert cg.read_text().startswith("# callgrind-equiv 1")

    def test_events_out_implies_events(self, capsys, tmp_path):
        events = tmp_path / "x.events"
        code, _, _ = run_cli(
            capsys, "profile", "freqmine", "--events-out", str(events),
        )
        assert code == 0
        assert events.read_bytes().startswith(b"# sigil-events 2\n")

    def test_events_format_text_writes_v1(self, capsys, tmp_path):
        events = tmp_path / "x.events"
        code, _, _ = run_cli(
            capsys, "profile", "freqmine", "--events-out", str(events),
            "--events-format", "text",
        )
        assert code == 0
        assert events.read_text().startswith("# sigil-events 1")

    def test_binary_and_text_events_analyze_identically(self, capsys, tmp_path):
        from repro.io import load_event_arrays

        text_path = tmp_path / "t.events"
        bin_path = tmp_path / "b.events"
        for path, fmt in ((text_path, "text"), (bin_path, "bin")):
            code, _, _ = run_cli(
                capsys, "profile", "freqmine", "--events-out", str(path),
                "--events-format", fmt,
            )
            assert code == 0
        assert load_event_arrays(text_path) == load_event_arrays(bin_path)

    def test_trace_out_writes_combined_chrome_trace(self, capsys, tmp_path):
        trace = tmp_path / "run.trace.json"
        code, out, _ = run_cli(
            capsys, "profile", "blackscholes", "--trace-out", str(trace),
        )
        assert code == 0
        assert "perfetto" in out
        events = json.loads(trace.read_text())
        assert isinstance(events, list)
        pids = {e["pid"] for e in events}
        assert 0 in pids and 1 in pids  # pipeline track + workload thread
        phase_names = {e["name"] for e in events if e.get("cat") == "phase"}
        assert {"setup", "execute", "aggregate"} <= phase_names

    def test_memory_limit_flag(self, capsys):
        code, out, _ = run_cli(
            capsys, "profile", "dedup", "--max-shadow-pages", "8",
        )
        assert code == 0

    def test_unknown_workload_rejected(self, capsys):
        code, _, err = run_cli(capsys, "profile", "doom")
        assert code == 1
        # One line on stderr, no traceback: campaign workers parse this.
        assert "unknown workload" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1


class TestReport:
    def test_offline_report(self, capsys, tmp_path):
        prof = tmp_path / "w.profile"
        run_cli(capsys, "profile", "canneal", "-o", str(prof))
        code, out, _ = run_cli(capsys, "report", str(prof), "--top", "6")
        assert code == 0
        assert "data edges" in out
        assert "mul" in out or "swap_locations" in out

    def test_dot_export(self, capsys, tmp_path):
        prof = tmp_path / "w.profile"
        dot = tmp_path / "w.dot"
        run_cli(capsys, "profile", "canneal", "-o", str(prof))
        code, _, _ = run_cli(capsys, "report", str(prof), "--dot", str(dot))
        assert code == 0
        assert dot.read_text().startswith("digraph")


class TestPartition:
    def test_live(self, capsys):
        code, out, _ = run_cli(capsys, "partition", "blackscholes")
        assert code == 0
        assert "S(breakeven)" in out
        assert "candidates cover" in out

    def test_offline_matches_live(self, capsys, tmp_path):
        prof = tmp_path / "bs.profile"
        cg = tmp_path / "bs.cg"
        run_cli(capsys, "profile", "blackscholes", "-o", str(prof),
                "--callgrind-out", str(cg))
        code, offline_out, _ = run_cli(
            capsys, "partition", "--profile", str(prof), "--callgrind", str(cg)
        )
        assert code == 0
        _, live_out, _ = run_cli(capsys, "partition", "blackscholes")
        # Same candidate table (headers + rows), regardless of run order.
        offline_table = offline_out.split("\n\n")[-1]
        live_table = live_out.split("\n\n")[-1]
        assert offline_table == live_table

    def test_bandwidth_changes_breakeven(self, capsys):
        _, narrow, _ = run_cli(capsys, "partition", "vips", "--bandwidth", "1")
        _, wide, _ = run_cli(capsys, "partition", "vips", "--bandwidth", "64")
        assert narrow != wide

    def test_missing_inputs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "partition")


class TestReuse:
    def test_breakdown_and_rankings(self, capsys):
        code, out, _ = run_cli(capsys, "reuse", "vips")
        assert code == 0
        assert "re-use count" in out
        assert "conv_gen" in out
        assert "contributors" in out

    def test_function_histogram(self, capsys):
        code, out, _ = run_cli(
            capsys, "reuse", "vips", "--function", "imb_XYZ2Lab"
        )
        assert code == 0
        assert "lifetime histogram" in out

    def test_unknown_function(self, capsys):
        code, _, err = run_cli(capsys, "reuse", "vips", "--function", "nope")
        assert code == 2
        assert "not found" in err


class TestCritpath:
    def test_live_workload(self, capsys):
        code, out, _ = run_cli(capsys, "critpath", "streamcluster")
        assert code == 0
        assert "parallelism" in out
        assert "pkmedian" in out

    def test_event_file_with_schedule(self, capsys, tmp_path):
        events = tmp_path / "sc.events"
        run_cli(capsys, "profile", "streamcluster", "--events",
                "--events-out", str(events))
        code, out, _ = run_cli(
            capsys, "critpath", str(events), "--cores", "1,2,4"
        )
        assert code == 0
        assert "speedup" in out
        assert "cross_core_B" in out

    def test_bogus_target(self, capsys):
        code, _, err = run_cli(capsys, "critpath", "no-such-thing")
        assert code == 2


class TestTrace:
    @pytest.fixture()
    def bs_files(self, capsys, tmp_path):
        """One blackscholes run's event file, profile and manifest."""
        events = tmp_path / "e.txt"
        prof = tmp_path / "p.profile"
        manifest = tmp_path / "m.manifest.json"
        code, _, _ = run_cli(
            capsys, "profile", "blackscholes", "--size", "simsmall",
            "--events-out", str(events), "-o", str(prof),
            "--manifest-out", str(manifest),
        )
        assert code == 0
        return events, prof, manifest

    def test_chrome_round_trip_matches_event_log(self, capsys, bs_files):
        from collections import defaultdict

        from repro.io import load_events

        events_path, _, _ = bs_files
        target = events_path.with_name("t.json")
        code, _, _ = run_cli(
            capsys, "trace", str(events_path), "--format", "chrome",
            "-o", str(target),
        )
        assert code == 0
        log = load_events(events_path)
        trace = json.loads(target.read_text())
        # Chrome trace-event schema: a list of ph-keyed dicts.
        assert isinstance(trace, list)
        assert all(isinstance(e, dict) and "ph" in e for e in trace)
        # Segment count round-trips.
        slices = [e for e in trace if e["ph"] == "X"]
        assert len(slices) == log.n_segments
        # Per-track ordering is monotone in ts.
        by_track = defaultdict(list)
        for e in slices:
            by_track[(e["pid"], e["tid"])].append(e["ts"])
        for ts in by_track.values():
            assert ts == sorted(ts)
        # Flow ids resolve: one start + one finish each; bytes total matches.
        pairs = defaultdict(set)
        for e in trace:
            if e["ph"] in ("s", "f"):
                pairs[e["id"]].add(e["ph"])
        assert all(kinds == {"s", "f"} for kinds in pairs.values())
        total = sum(
            e["args"]["bytes"] for e in trace if e["ph"] == "s"
        )
        assert total == sum(
            edge.bytes for edge in log.edges() if edge.kind == "data"
        ) > 0

    def test_collapsed_export_with_weight(self, capsys, bs_files):
        _, prof, _ = bs_files
        target = prof.with_name("f.collapsed")
        code, out, _ = run_cli(
            capsys, "trace", str(prof), "--format", "collapsed",
            "--weight", "unique_in", "-o", str(target),
        )
        assert code == 0
        assert "speedscope" in out
        lines = target.read_text().splitlines()
        assert lines
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)

    def test_manifest_renders_pipeline_phases(self, capsys, bs_files):
        _, _, manifest = bs_files
        target = manifest.with_name("pipe.trace.json")
        code, out, _ = run_cli(capsys, "trace", str(manifest), "-o", str(target))
        assert code == 0
        names = {e["name"] for e in json.loads(target.read_text())
                 if e["ph"] == "X"}
        assert {"setup", "execute", "aggregate"} <= names

    def test_stdout_output(self, capsys, bs_files):
        _, prof, _ = bs_files
        code, out, _ = run_cli(
            capsys, "trace", str(prof), "--format", "collapsed", "-o", "-",
        )
        assert code == 0
        assert "main" in out

    def test_default_output_lands_next_to_input(self, capsys, bs_files):
        events_path, _, _ = bs_files
        code, _, _ = run_cli(capsys, "trace", str(events_path))
        assert code == 0
        assert events_path.with_name("e.trace.json").exists()

    def test_profile_rejected_for_chrome(self, capsys, bs_files):
        _, prof, _ = bs_files
        code, _, err = run_cli(capsys, "trace", str(prof), "--format", "chrome")
        assert code == 2
        assert "collapsed" in err

    def test_events_rejected_for_collapsed(self, capsys, bs_files):
        events_path, _, _ = bs_files
        code, _, err = run_cli(
            capsys, "trace", str(events_path), "--format", "collapsed",
        )
        assert code == 2
        assert "profile" in err

    def test_unrecognised_input(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.txt"
        bogus.write_text("hello\n")
        code, _, err = run_cli(capsys, "trace", str(bogus))
        assert code == 2
        assert "unrecognised" in err

    def test_missing_file(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "trace", str(tmp_path / "nope.txt"))
        assert code == 2

    def test_empty_event_log_renders_empty_trace(self, capsys, tmp_path):
        """An empty log exports as ``[]`` -- valid Chrome trace JSON."""
        from repro.core.segments import EventLog
        from repro.io import dump_events_bin

        events = tmp_path / "empty.bin"
        dump_events_bin(EventLog(), events)
        target = tmp_path / "empty.trace.json"
        code, _, _ = run_cli(
            capsys, "trace", str(events), "-o", str(target)
        )
        assert code == 0
        assert json.loads(target.read_text()) == []


class TestTimeline:
    @pytest.fixture()
    def event_file(self, tmp_path):
        from repro.core.segments import EventLog
        from repro.io import dump_events_bin

        log = EventLog()
        for i in range(6):
            log.new_segment(i % 2, i, 10 * i).ops = 10
            if i:
                log.add_order_edge(i - 1, i)
        log.add_data_bytes(0, 2, 64)
        log.add_data_bytes(1, 5, 16)
        path = tmp_path / "ev.bin"
        dump_events_bin(log, path)
        return path

    def test_writes_counter_tracks(self, capsys, event_file):
        target = event_file.with_name("tl.json")
        code, out, _ = run_cli(
            capsys, "timeline", str(event_file), "--window", "10",
            "-o", str(target),
        )
        assert code == 0
        assert "6 windows of 10 ops" in out
        assert "perfetto" in out
        trace = json.loads(target.read_text())
        names = {e["name"] for e in trace if e["ph"] == "C"}
        assert "WS(t) bytes" in names
        assert "comm bytes/window" in names
        assert all(e["ph"] in ("C", "M") for e in trace)

    def test_default_output_lands_next_to_input(self, capsys, event_file):
        code, _, _ = run_cli(
            capsys, "timeline", str(event_file), "--window", "10"
        )
        assert code == 0
        assert event_file.with_name("ev.timeline.json").exists()

    def test_stdout_output(self, capsys, event_file):
        code, out, _ = run_cli(
            capsys, "timeline", str(event_file), "--window", "10", "-o", "-"
        )
        assert code == 0
        assert isinstance(json.loads(out), list)

    def test_curves_out_writes_schema_artifact(self, capsys, event_file):
        from repro.analysis.windowed import WINDOWED_SCHEMA, WindowedCurves

        curves_path = event_file.with_name("curves.json")
        code, _, _ = run_cli(
            capsys, "timeline", str(event_file), "--window", "10",
            "--curves-out", str(curves_path), "-o", "-",
        )
        assert code == 0
        payload = json.loads(curves_path.read_text())
        assert payload["schema"] == WINDOWED_SCHEMA
        curves = WindowedCurves.from_dict(payload)
        assert curves.n_windows == 6
        assert curves.total_comm_bytes == 80

    def test_empty_log(self, capsys, tmp_path):
        from repro.core.segments import EventLog
        from repro.io import dump_events_bin

        events = tmp_path / "empty.bin"
        dump_events_bin(EventLog(), events)
        code, out, _ = run_cli(capsys, "timeline", str(events), "-o", "-")
        assert code == 0
        assert json.loads(out) == []

    def test_missing_file(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "timeline", str(tmp_path / "nope.bin")
        )
        assert code == 2
        assert "cannot analyse" in err

    def test_window_must_be_positive(self, capsys, event_file):
        with pytest.raises(SystemExit):
            run_cli(
                capsys, "timeline", str(event_file), "--window", "0"
            )


class TestRun:
    def test_assembly_program(self, capsys, tmp_path):
        src = tmp_path / "prog.s"
        src.write_text(
            ".func main\n"
            "    const r0, 4096\n"
            "    const r1, 5\n"
            "    store r1, [r0+0], 8\n"
            "    call double, r0 -> r2\n"
            "    ret r2\n"
            "\n"
            ".func double/1\n"
            "    load r1, [r0+0], 8\n"
            "    muli r2, r1, 2\n"
            "    ret r2\n"
        )
        code, out, _ = run_cli(capsys, "run", str(src))
        assert code == 0
        assert "returned 10" in out
        assert "double" in out

    def test_run_writes_outputs(self, capsys, tmp_path):
        src = tmp_path / "prog.s"
        src.write_text(".func main\n    const r0, 1\n    ret r0\n")
        prof = tmp_path / "p.profile"
        events = tmp_path / "p.events"
        code, _, _ = run_cli(
            capsys, "run", str(src), "--events",
            "-o", str(prof), "--events-out", str(events),
        )
        assert code == 0
        assert prof.exists() and events.exists()

    def test_shipped_example_runs(self, capsys):
        from pathlib import Path

        example = Path(__file__).parent.parent / "examples" / "toy_program.s"
        code, out, _ = run_cli(capsys, "run", str(example))
        assert code == 0
        assert "returned 42" in out


class TestReportTree:
    def test_calltree_rendering(self, capsys, tmp_path):
        prof = tmp_path / "w.profile"
        run_cli(capsys, "profile", "dedup", "-o", str(prof))
        code, out, _ = run_cli(capsys, "report", str(prof), "--tree")
        assert code == 0
        assert "incl%" in out
        assert "sha1_block_data_order" in out

    def test_matmul_example(self, capsys):
        from pathlib import Path

        example = Path(__file__).parent.parent / "examples" / "matmul.s"
        code, out, _ = run_cli(capsys, "run", str(example))
        assert code == 0
        assert "returned 4944" in out  # sum of (A @ A) with A = 1..16
        assert "dot_row" in out


class TestFigures:
    def test_single_figure_regeneration(self, capsys):
        code, out, _ = run_cli(capsys, "figures", "--only", "fig9")
        assert code == 0
        assert "fig9_vips_lifetimes.txt" in out

    def test_kcachegrind_export(self, capsys, tmp_path):
        prof = tmp_path / "w.profile"
        kcg = tmp_path / "w.callgrind"
        run_cli(capsys, "profile", "dedup", "-o", str(prof))
        code, out, _ = run_cli(
            capsys, "report", str(prof), "--kcachegrind", str(kcg)
        )
        assert code == 0
        assert kcg.read_text().startswith("# callgrind format")
        assert "events: Ops UniqIn UniqOut Local NonUniqIn" in kcg.read_text()


class TestAssemblyPipeline:
    def test_run_then_offline_analyses(self, capsys, tmp_path):
        """Author a program in assembly, profile it once, then run the
        report and critical-path studies purely from the files."""
        src = tmp_path / "prog.s"
        src.write_text(
            ".func main\n"
            "    const r0, 4096\n"
            "    call fill, r0\n"
            "    call sum, r0 -> r1\n"
            "    ret r1\n"
            "\n"
            ".func fill/1\n"
            "    const r1, 0\n"
            "loop:\n"
            "    muli r2, r1, 8\n"
            "    add  r3, r0, r2\n"
            "    store r1, [r3+0], 8\n"
            "    addi r1, r1, 1\n"
            "    lti  r4, r1, 8\n"
            "    br   r4, loop\n"
            "    ret\n"
            "\n"
            ".func sum/1\n"
            "    const r1, 0\n"
            "    const r2, 0\n"
            "sloop:\n"
            "    muli r3, r1, 8\n"
            "    add  r4, r0, r3\n"
            "    load r5, [r4+0], 8\n"
            "    add  r2, r2, r5\n"
            "    addi r1, r1, 1\n"
            "    lti  r6, r1, 8\n"
            "    br   r6, sloop\n"
            "    ret r2\n"
        )
        prof = tmp_path / "p.profile"
        events = tmp_path / "p.events"
        code, out, _ = run_cli(
            capsys, "run", str(src), "--events",
            "-o", str(prof), "--events-out", str(events),
        )
        assert code == 0
        assert "returned 28" in out  # 0+1+...+7

        code, out, _ = run_cli(capsys, "report", str(prof), "--tree")
        assert code == 0
        assert "fill" in out and "sum" in out

        code, out, _ = run_cli(capsys, "critpath", str(events), "--cores", "1,2")
        assert code == 0
        assert "parallelism" in out
