"""CLI tests: every subcommand, live and offline paths."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestList:
    def test_lists_all_workloads(self, capsys):
        code, out, _ = run_cli(capsys, "list")
        assert code == 0
        for name in ("blackscholes", "libquantum", "x264"):
            assert name in out
        assert "simsmall" in out


class TestProfile:
    def test_summary_output(self, capsys):
        code, out, _ = run_cli(capsys, "profile", "streamcluster", "--top", "5")
        assert code == 0
        assert "streamcluster" in out
        assert "contexts" in out
        assert "uniq_in_B" in out

    def test_writes_all_outputs(self, capsys, tmp_path):
        prof = tmp_path / "w.profile"
        events = tmp_path / "w.events"
        cg = tmp_path / "w.cg"
        code, out, _ = run_cli(
            capsys, "profile", "freqmine", "--reuse", "--events",
            "-o", str(prof), "--events-out", str(events),
            "--callgrind-out", str(cg),
        )
        assert code == 0
        assert prof.read_text().startswith("# sigil-profile 1")
        assert events.read_text().startswith("# sigil-events 1")
        assert cg.read_text().startswith("# callgrind-equiv 1")

    def test_events_out_requires_events(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "profile", "freqmine",
            "--events-out", str(tmp_path / "x.events"),
        )
        assert code == 2
        assert "--events" in err

    def test_memory_limit_flag(self, capsys):
        code, out, _ = run_cli(
            capsys, "profile", "dedup", "--max-shadow-pages", "8",
        )
        assert code == 0

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "profile", "doom")


class TestReport:
    def test_offline_report(self, capsys, tmp_path):
        prof = tmp_path / "w.profile"
        run_cli(capsys, "profile", "canneal", "-o", str(prof))
        code, out, _ = run_cli(capsys, "report", str(prof), "--top", "6")
        assert code == 0
        assert "data edges" in out
        assert "mul" in out or "swap_locations" in out

    def test_dot_export(self, capsys, tmp_path):
        prof = tmp_path / "w.profile"
        dot = tmp_path / "w.dot"
        run_cli(capsys, "profile", "canneal", "-o", str(prof))
        code, _, _ = run_cli(capsys, "report", str(prof), "--dot", str(dot))
        assert code == 0
        assert dot.read_text().startswith("digraph")


class TestPartition:
    def test_live(self, capsys):
        code, out, _ = run_cli(capsys, "partition", "blackscholes")
        assert code == 0
        assert "S(breakeven)" in out
        assert "candidates cover" in out

    def test_offline_matches_live(self, capsys, tmp_path):
        prof = tmp_path / "bs.profile"
        cg = tmp_path / "bs.cg"
        run_cli(capsys, "profile", "blackscholes", "-o", str(prof),
                "--callgrind-out", str(cg))
        code, offline_out, _ = run_cli(
            capsys, "partition", "--profile", str(prof), "--callgrind", str(cg)
        )
        assert code == 0
        _, live_out, _ = run_cli(capsys, "partition", "blackscholes")
        # Same candidate table (headers + rows), regardless of run order.
        offline_table = offline_out.split("\n\n")[-1]
        live_table = live_out.split("\n\n")[-1]
        assert offline_table == live_table

    def test_bandwidth_changes_breakeven(self, capsys):
        _, narrow, _ = run_cli(capsys, "partition", "vips", "--bandwidth", "1")
        _, wide, _ = run_cli(capsys, "partition", "vips", "--bandwidth", "64")
        assert narrow != wide

    def test_missing_inputs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "partition")


class TestReuse:
    def test_breakdown_and_rankings(self, capsys):
        code, out, _ = run_cli(capsys, "reuse", "vips")
        assert code == 0
        assert "re-use count" in out
        assert "conv_gen" in out
        assert "contributors" in out

    def test_function_histogram(self, capsys):
        code, out, _ = run_cli(
            capsys, "reuse", "vips", "--function", "imb_XYZ2Lab"
        )
        assert code == 0
        assert "lifetime histogram" in out

    def test_unknown_function(self, capsys):
        code, _, err = run_cli(capsys, "reuse", "vips", "--function", "nope")
        assert code == 2
        assert "not found" in err


class TestCritpath:
    def test_live_workload(self, capsys):
        code, out, _ = run_cli(capsys, "critpath", "streamcluster")
        assert code == 0
        assert "parallelism" in out
        assert "pkmedian" in out

    def test_event_file_with_schedule(self, capsys, tmp_path):
        events = tmp_path / "sc.events"
        run_cli(capsys, "profile", "streamcluster", "--events",
                "--events-out", str(events))
        code, out, _ = run_cli(
            capsys, "critpath", str(events), "--cores", "1,2,4"
        )
        assert code == 0
        assert "speedup" in out
        assert "cross_core_B" in out

    def test_bogus_target(self, capsys):
        code, _, err = run_cli(capsys, "critpath", "no-such-thing")
        assert code == 2


class TestRun:
    def test_assembly_program(self, capsys, tmp_path):
        src = tmp_path / "prog.s"
        src.write_text(
            ".func main\n"
            "    const r0, 4096\n"
            "    const r1, 5\n"
            "    store r1, [r0+0], 8\n"
            "    call double, r0 -> r2\n"
            "    ret r2\n"
            "\n"
            ".func double/1\n"
            "    load r1, [r0+0], 8\n"
            "    muli r2, r1, 2\n"
            "    ret r2\n"
        )
        code, out, _ = run_cli(capsys, "run", str(src))
        assert code == 0
        assert "returned 10" in out
        assert "double" in out

    def test_run_writes_outputs(self, capsys, tmp_path):
        src = tmp_path / "prog.s"
        src.write_text(".func main\n    const r0, 1\n    ret r0\n")
        prof = tmp_path / "p.profile"
        events = tmp_path / "p.events"
        code, _, _ = run_cli(
            capsys, "run", str(src), "--events",
            "-o", str(prof), "--events-out", str(events),
        )
        assert code == 0
        assert prof.exists() and events.exists()

    def test_shipped_example_runs(self, capsys):
        from pathlib import Path

        example = Path(__file__).parent.parent / "examples" / "toy_program.s"
        code, out, _ = run_cli(capsys, "run", str(example))
        assert code == 0
        assert "returned 42" in out


class TestReportTree:
    def test_calltree_rendering(self, capsys, tmp_path):
        prof = tmp_path / "w.profile"
        run_cli(capsys, "profile", "dedup", "-o", str(prof))
        code, out, _ = run_cli(capsys, "report", str(prof), "--tree")
        assert code == 0
        assert "incl%" in out
        assert "sha1_block_data_order" in out

    def test_matmul_example(self, capsys):
        from pathlib import Path

        example = Path(__file__).parent.parent / "examples" / "matmul.s"
        code, out, _ = run_cli(capsys, "run", str(example))
        assert code == 0
        assert "returned 4944" in out  # sum of (A @ A) with A = 1..16
        assert "dot_row" in out


class TestFigures:
    def test_single_figure_regeneration(self, capsys):
        code, out, _ = run_cli(capsys, "figures", "--only", "fig9")
        assert code == 0
        assert "fig9_vips_lifetimes.txt" in out

    def test_kcachegrind_export(self, capsys, tmp_path):
        prof = tmp_path / "w.profile"
        kcg = tmp_path / "w.callgrind"
        run_cli(capsys, "profile", "dedup", "-o", str(prof))
        code, out, _ = run_cli(
            capsys, "report", str(prof), "--kcachegrind", str(kcg)
        )
        assert code == 0
        assert kcg.read_text().startswith("# callgrind format")
        assert "events: Ops UniqIn UniqOut Local NonUniqIn" in kcg.read_text()


class TestAssemblyPipeline:
    def test_run_then_offline_analyses(self, capsys, tmp_path):
        """Author a program in assembly, profile it once, then run the
        report and critical-path studies purely from the files."""
        src = tmp_path / "prog.s"
        src.write_text(
            ".func main\n"
            "    const r0, 4096\n"
            "    call fill, r0\n"
            "    call sum, r0 -> r1\n"
            "    ret r1\n"
            "\n"
            ".func fill/1\n"
            "    const r1, 0\n"
            "loop:\n"
            "    muli r2, r1, 8\n"
            "    add  r3, r0, r2\n"
            "    store r1, [r3+0], 8\n"
            "    addi r1, r1, 1\n"
            "    lti  r4, r1, 8\n"
            "    br   r4, loop\n"
            "    ret\n"
            "\n"
            ".func sum/1\n"
            "    const r1, 0\n"
            "    const r2, 0\n"
            "sloop:\n"
            "    muli r3, r1, 8\n"
            "    add  r4, r0, r3\n"
            "    load r5, [r4+0], 8\n"
            "    add  r2, r2, r5\n"
            "    addi r1, r1, 1\n"
            "    lti  r6, r1, 8\n"
            "    br   r6, sloop\n"
            "    ret r2\n"
        )
        prof = tmp_path / "p.profile"
        events = tmp_path / "p.events"
        code, out, _ = run_cli(
            capsys, "run", str(src), "--events",
            "-o", str(prof), "--events-out", str(events),
        )
        assert code == 0
        assert "returned 28" in out  # 0+1+...+7

        code, out, _ = run_cli(capsys, "report", str(prof), "--tree")
        assert code == 0
        assert "fill" in out and "sum" in out

        code, out, _ = run_cli(capsys, "critpath", str(events), "--cores", "1,2")
        assert code == 0
        assert "parallelism" in out
