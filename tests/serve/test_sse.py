"""Event channels: SSE framing, durable sequencing, gap/dup-free resume."""

from __future__ import annotations

import json
import queue
import threading

import pytest

from repro.serve.sse import EventBroker, JobChannel, format_sse


class TestFormatSSE:
    def test_frame_shape(self):
        frame = format_sse({"seq": 7, "event": "done", "x": 1})
        lines = frame.split("\n")
        assert lines[0] == "id: 7"
        assert lines[1] == "event: done"
        assert lines[2].startswith("data: ")
        assert frame.endswith("\n\n")
        assert json.loads(lines[2][len("data: "):]) == \
            {"seq": 7, "event": "done", "x": 1}

    def test_data_is_one_line_even_for_nested_payloads(self):
        frame = format_sse({"seq": 1, "event": "e", "nest": {"a": [1, 2]}})
        # SSE data spanning lines would need multiple data: fields; we
        # guarantee compact single-line JSON instead.
        assert frame.count("\n") == 4


class TestJobChannel:
    def test_emit_assigns_contiguous_seqs_and_persists(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        chan = JobChannel(trace)
        for name in ("a", "b", "c"):
            chan.emit(name)
        assert [r["seq"] for r in chan.events()] == [1, 2, 3]
        assert chan.last_seq == 3
        # A fresh channel on the same file (daemon restart) resumes the seq.
        reborn = JobChannel(trace)
        assert reborn.last_seq == 3
        reborn.emit("d")
        assert [r["seq"] for r in reborn.events()] == [1, 2, 3, 4]

    def test_events_after_filters(self, tmp_path):
        chan = JobChannel(tmp_path / "t.jsonl")
        for i in range(5):
            chan.emit("e", i=i)
        assert [r["seq"] for r in chan.events(after=3)] == [4, 5]

    def test_subscribe_sees_backlog_then_live(self, tmp_path):
        chan = JobChannel(tmp_path / "t.jsonl")
        chan.emit("old")
        backlog, live = chan.subscribe()
        assert [r["event"] for r in backlog] == ["old"]
        chan.emit("new")
        assert live.get(timeout=1)["event"] == "new"
        chan.unsubscribe(live)
        chan.emit("after-detach")
        with pytest.raises(queue.Empty):
            live.get(timeout=0.05)

    def test_unsubscribe_is_idempotent(self, tmp_path):
        chan = JobChannel(tmp_path / "t.jsonl")
        _, live = chan.subscribe()
        chan.unsubscribe(live)
        chan.unsubscribe(live)
        assert chan.n_subscribers == 0


class TestResumeUnderConcurrency:
    """The SSE contract: resume from any seq, no gap, no duplicate."""

    N_EMITTERS = 4
    PER_EMITTER = 50

    def _hammer(self, chan):
        barrier = threading.Barrier(self.N_EMITTERS)

        def emitter(k):
            barrier.wait()
            for i in range(self.PER_EMITTER):
                chan.emit("tick", emitter=k, i=i)

        threads = [threading.Thread(target=emitter, args=(k,))
                   for k in range(self.N_EMITTERS)]
        for t in threads:
            t.start()
        return threads

    def test_trace_is_gapless_under_concurrent_emitters(self, tmp_path):
        chan = JobChannel(tmp_path / "t.jsonl")
        for t in self._hammer(chan):
            t.join()
        total = self.N_EMITTERS * self.PER_EMITTER
        seqs = [r["seq"] for r in chan.events()]
        assert seqs == list(range(1, total + 1))

    def test_mid_stream_subscriber_resumes_without_gap_or_dup(self, tmp_path):
        chan = JobChannel(tmp_path / "t.jsonl")
        threads = self._hammer(chan)
        total = self.N_EMITTERS * self.PER_EMITTER

        # Subscribe while emitters are racing; the handshake must hand us
        # a backlog + live queue that covers every seq exactly once.
        backlog, live = chan.subscribe(after=0)
        for t in threads:
            t.join()
        got = [r["seq"] for r in backlog]
        while len(got) < total:
            got.append(live.get(timeout=2)["seq"])
        chan.unsubscribe(live)
        assert got == list(range(1, total + 1))

    def test_resume_from_arbitrary_seq(self, tmp_path):
        chan = JobChannel(tmp_path / "t.jsonl")
        for i in range(20):
            chan.emit("e")
        backlog, live = chan.subscribe(after=12)
        assert [r["seq"] for r in backlog] == list(range(13, 21))
        chan.emit("last")
        assert live.get(timeout=1)["seq"] == 21
        chan.unsubscribe(live)


class TestEventBroker:
    def test_channel_requires_path_on_first_use(self, tmp_path):
        broker = EventBroker()
        with pytest.raises(KeyError):
            broker.channel("job-000001")
        chan = broker.channel("job-000001", tmp_path / "t.jsonl")
        assert broker.channel("job-000001") is chan
        assert broker.has("job-000001")
        assert not broker.has("job-999999")

    def test_subscriber_totals_across_channels(self, tmp_path):
        broker = EventBroker()
        a = broker.channel("a", tmp_path / "a.jsonl")
        b = broker.channel("b", tmp_path / "b.jsonl")
        _, qa = a.subscribe()
        _, qb1 = b.subscribe()
        _, qb2 = b.subscribe()
        assert broker.n_subscribers() == 3
        a.unsubscribe(qa)
        b.unsubscribe(qb1)
        b.unsubscribe(qb2)
        assert broker.n_subscribers() == 0
