"""JobManager lifecycle: submit, trace, cache-hit warm runs, restart resume."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.campaign import ResultStore
from repro.serve.jobs import (
    JobManager,
    TERMINAL_EVENTS,
    local_workers_from_body,
    spec_from_body,
)

_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not _FORK, reason="campaign workers need the fork start method"
)

_CELL = {"workload": "blackscholes", "size": "simsmall", "tool": "native"}


class TestSpecFromBody:
    def test_single_cell_form(self):
        spec = spec_from_body(_CELL)
        assert len(spec) == 1
        job = spec.jobs()[0]
        assert (job.workload, job.size, job.tool) == \
            ("blackscholes", "simsmall", "native")

    def test_single_cell_defaults(self):
        spec = spec_from_body({"workload": "vips"})
        job = spec.jobs()[0]
        assert job.size == "simsmall" and job.tool == "sigil+callgrind"

    def test_campaign_form(self):
        spec = spec_from_body({
            "name": "sweep",
            "workloads": ["vips", "dedup"],
            "sizes": ["simsmall"],
            "tools": ["native"],
        })
        assert spec.name == "sweep" and len(spec) == 2

    @pytest.mark.parametrize("body,fragment", [
        ({}, "workload"),
        ({"workload": "vips", "workloads": ["vips"]}, "not both"),
        ({"workload": "vips", "bogus": 1}, "unknown job keys"),
        ({"workloads": ["vips"], "bogus": 1}, "unknown campaign keys"),
        ({"workload": "no-such-workload"}, "no-such-workload"),
        ({"workload": "vips", "size": "huge"}, "huge"),
    ])
    def test_rejects_malformed_bodies(self, body, fragment):
        with pytest.raises(ValueError, match=fragment):
            spec_from_body(body)


@pytest.fixture()
def manager(tmp_path):
    mgr = JobManager(ResultStore(tmp_path), workers=2)
    yield mgr
    mgr.shutdown(wait=True)


@needs_fork
class TestLifecycle:
    def test_cold_job_runs_with_ordered_trace(self, manager):
        job = manager.submit(_CELL)
        assert manager.wait(job.id, timeout=60)
        assert job.state == "done"
        assert job.result["executed"] == 1 and job.result["cached"] == 0
        chan = manager.broker.channel(job.id)
        records = chan.events()
        seqs = [r["seq"] for r in records]
        assert seqs == list(range(1, len(records) + 1))
        kinds = [r["event"] for r in records]
        assert kinds[0] == "submitted"
        assert "running" in kinds and "done" in kinds
        assert kinds[-1] == "completed"
        assert sum(1 for k in kinds if k in TERMINAL_EVENTS) == 1
        # The executed cell surfaced its phase timings on the stream.
        assert any(r["event"] == "phases" for r in records)

    def test_warm_resubmit_is_pure_cache_hit(self, manager):
        first = manager.submit(_CELL)
        assert manager.wait(first.id, timeout=60)
        second = manager.submit(_CELL)
        assert manager.wait(second.id, timeout=60)
        assert second.result["cached"] == 1 and second.result["executed"] == 0
        done = [r for r in manager.broker.channel(second.id).events()
                if r["event"] == "done"]
        assert done and done[0]["cached"] is True
        assert manager.metrics.cache_hits.value == 1
        assert manager.metrics.cache_misses.value == 1

    def test_detail_includes_campaign_manifest(self, manager):
        job = manager.submit(_CELL)
        assert manager.wait(job.id, timeout=60)
        doc = manager.detail(job.id)
        assert doc["state"] == "done"
        assert doc["campaign"]["schema"] == "repro-campaign/1"
        assert doc["last_seq"] == len(
            manager.broker.channel(job.id).events()
        )
        with pytest.raises(KeyError):
            manager.detail("job-999999")

    def test_invalid_submit_raises_before_any_side_effect(self, manager):
        with pytest.raises(ValueError):
            manager.submit({"workload": "vips", "bogus": 1})
        assert manager.list() == []
        assert manager.metrics.jobs_submitted.value == 0

    def test_job_ids_are_sequential_and_files_land_on_disk(self, manager):
        a = manager.submit(_CELL)
        b = manager.submit(dict(_CELL, workload="streamcluster"))
        assert (a.id, b.id) == ("job-000001", "job-000002")
        for job in (a, b):
            assert manager.wait(job.id, timeout=60)
            assert (manager.job_dir(job.id) / "request.json").exists()
            assert manager.trace_path(job.id).exists()
            assert (manager.job_dir(job.id) / "campaign"
                    / "journal.jsonl").exists()


@needs_fork
class TestRestartResume:
    def test_unfinished_job_requeues_and_completes(self, tmp_path):
        store = ResultStore(tmp_path)
        # A daemon died right after accepting this job: request.json is
        # there, the trace never reached a terminal event.
        job_dir = store.root / "serve" / "jobs" / "job-000007"
        job_dir.mkdir(parents=True)
        (job_dir / "request.json").write_text(json.dumps(
            {"body": _CELL, "submitted_unix": 123.0}
        ))
        mgr = JobManager(store, workers=2)
        try:
            assert mgr.wait("job-000007", timeout=60)
            job = mgr.get("job-000007")
            assert job.state == "done"
            assert mgr.metrics.jobs_resumed.value == 1
            events = [r["event"] for r in
                      mgr.broker.channel("job-000007").events()]
            assert "resumed" in events and events[-1] == "completed"
            # New submissions number past the recovered job.
            fresh = mgr.submit(_CELL)
            assert fresh.id == "job-000008"
            assert mgr.wait(fresh.id, timeout=60)
        finally:
            mgr.shutdown(wait=True)

    def test_finished_job_loads_read_only(self, tmp_path):
        store = ResultStore(tmp_path)
        mgr = JobManager(store, workers=2)
        job = mgr.submit(_CELL)
        assert mgr.wait(job.id, timeout=60)
        mgr.shutdown(wait=True)

        reborn = JobManager(store, workers=2)
        try:
            loaded = reborn.get(job.id)
            assert loaded is not None and loaded.state == "done"
            assert loaded.result["total"] == 1
            assert reborn.metrics.jobs_resumed.value == 0
            # Completed cells stay in the store: a resubmit is all cache.
            again = reborn.submit(_CELL)
            assert reborn.wait(again.id, timeout=60)
            assert again.result["cached"] == 1
        finally:
            reborn.shutdown(wait=True)

    def test_resume_skips_journaled_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        mgr = JobManager(store, workers=2)
        done = mgr.submit(_CELL)
        assert mgr.wait(done.id, timeout=60)
        mgr.shutdown(wait=True)
        # Kill simulation: drop the terminal events from the trace so the
        # job looks in-flight, keeping the campaign journal intact.
        trace = store.root / "serve" / "jobs" / done.id / "trace.jsonl"
        kept = [
            line for line in trace.read_text().splitlines()
            if json.loads(line)["event"] not in ("completed", "error")
        ]
        trace.write_text("\n".join(kept) + "\n")

        reborn = JobManager(store, workers=2)
        try:
            assert reborn.wait(done.id, timeout=60)
            job = reborn.get(done.id)
            assert job.state == "done"
            # The journal's completed cells were skipped, not re-run.
            assert job.result["executed"] == 0
        finally:
            reborn.shutdown(wait=True)


class TestLocalWorkersBody:
    def test_campaign_body_accepts_local_workers(self):
        spec = spec_from_body({
            "workloads": ["vips"], "tools": ["native"], "local_workers": 2,
        })
        # placement, not matrix shape: the spec is unchanged by it
        assert len(spec) == 1
        assert local_workers_from_body({"local_workers": 2}) == 2

    def test_local_workers_defaults_to_single_host(self):
        assert local_workers_from_body({}) == 0
        assert local_workers_from_body({"local_workers": None}) == 0

    @pytest.mark.parametrize("bad", [-1, "three", [2], {"n": 2}])
    def test_bad_local_workers_is_a_400_shaped_error(self, bad):
        with pytest.raises(ValueError, match="non-negative integer"):
            local_workers_from_body({"local_workers": bad})

    def test_single_cell_form_rejects_local_workers(self):
        with pytest.raises(ValueError, match="unknown job keys"):
            spec_from_body({"workload": "vips", "local_workers": 1})


@needs_fork
class TestDistLifecycle:
    def test_dist_job_runs_and_feeds_worker_metrics(self, manager):
        job = manager.submit({
            "name": "dist-serve",
            "workloads": ["blackscholes"],
            "sizes": ["simsmall"],
            "tools": ["native"],
            "local_workers": 1,
        })
        assert job.local_workers == 1
        assert manager.wait(job.id, timeout=120)
        assert job.state == "done", job.error
        assert job.result["executed"] == 1
        assert job.result["workers"] == 1 and job.result["steals"] == 0
        entry = job.to_dict()
        assert entry["local_workers"] == 1
        # the job document carries the per-worker table, like CLI status
        doc = manager.detail(job.id)
        assert doc["campaign"]["workers"]["w0"]["jobs"] == 1
        text = manager.metrics.render()
        assert 'repro_dist_jobs_total{host="' in text
        assert 'worker="w0"} 1' in text
