"""The daemon over real sockets: routing, SSE resume, metrics, concurrency."""

from __future__ import annotations

import json
import multiprocessing
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import create_server
from tests.serve.test_promfmt import assert_valid_exposition

_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not _FORK, reason="campaign workers need the fork start method"
)

_CELL = {"workload": "blackscholes", "size": "simsmall", "tool": "native"}


@pytest.fixture()
def server(tmp_path):
    srv = create_server(tmp_path, workers=2, concurrency=2)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.manager.shutdown(wait=True)
    srv.server_close()
    thread.join(timeout=5)


def _base(server) -> str:
    host, port = server.server_address[0], server.server_address[1]
    return f"http://{host}:{port}"


def _get(url, **kwargs):
    with urllib.request.urlopen(url, timeout=30, **kwargs) as resp:
        return resp.status, resp.headers, resp.read()


def _get_json(url):
    status, _headers, body = _get(url)
    return status, json.loads(body)


def _post_json(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _read_sse(url, last_event_id=None):
    """Consume one SSE stream to its end; returns the decoded records."""
    headers = {}
    if last_event_id is not None:
        headers["Last-Event-ID"] = str(last_event_id)
    req = urllib.request.Request(url, headers=headers)
    records = []
    with urllib.request.urlopen(req, timeout=60) as resp:
        assert resp.headers["Content-Type"] == "text/event-stream"
        for raw in resp:
            line = raw.decode().rstrip("\n")
            if line.startswith("data: "):
                records.append(json.loads(line[len("data: "):]))
    return records


class TestRouting:
    def test_index_healthz_and_unknown(self, server):
        base = _base(server)
        status, doc = _get_json(base + "/")
        assert status == 200 and doc["service"] == "repro-serve"
        status, doc = _get_json(base + "/healthz")
        assert status == 200 and doc["ok"] is True
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base + "/no/such/thing")
        assert err.value.code == 404
        assert "error" in json.loads(err.value.read())

    def test_jobs_empty_and_unknown_job(self, server):
        base = _base(server)
        status, doc = _get_json(base + "/jobs")
        assert status == 200 and doc["jobs"] == []
        for suffix in ("/jobs/job-000042", "/jobs/job-000042/events",
                       "/jobs/job-000042/curves"):
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(base + suffix)
            assert err.value.code == 404

    @pytest.mark.parametrize("payload,code", [
        ({"workload": "vips", "bogus": 1}, 400),
        (["not", "an", "object"], 400),
        ({"workloads": []}, 400),
    ])
    def test_bad_submissions_are_400(self, server, payload, code):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post_json(_base(server) + "/jobs", payload)
        assert err.value.code == code

    def test_non_json_body_is_400(self, server):
        req = urllib.request.Request(
            _base(server) + "/jobs", data=b"\xff\xfenot json")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400

    def test_post_to_wrong_path_is_404(self, server):
        req = urllib.request.Request(
            _base(server) + "/healthz", data=b"{}")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 404

    def test_metrics_scrape_is_valid_when_idle(self, server):
        status, headers, body = _get(_base(server) + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        assert_valid_exposition(body.decode())


@needs_fork
class TestEndToEnd:
    def test_cold_job_then_warm_cache_hit_visible_in_metrics(self, server):
        base = _base(server)
        status, accepted = _post_json(base + "/jobs", _CELL)
        assert status == 202
        job_id = accepted["job"]
        assert accepted["events_url"] == f"/jobs/{job_id}/events"
        assert server.manager.wait(job_id, timeout=60)

        status, doc = _get_json(base + f"/jobs/{job_id}")
        assert doc["state"] == "done"
        assert doc["result"]["executed"] == 1
        assert doc["campaign"]["schema"] == "repro-campaign/1"

        records = _read_sse(base + accepted["events_url"])
        seqs = [r["seq"] for r in records]
        assert seqs == list(range(1, len(records) + 1))
        assert records[-1]["event"] == "completed"
        assert records[-1]["state"] == "done"

        # Warm resubmission: same body, zero execution.
        status, again = _post_json(base + "/jobs", _CELL)
        assert server.manager.wait(again["job"], timeout=60)
        status, doc = _get_json(base + "/jobs/" + again["job"])
        assert doc["result"] == dict(
            doc["result"], cached=1, executed=0, ok=True
        )

        _status, _headers, body = _get(base + "/metrics")
        text = body.decode()
        assert_valid_exposition(text)
        lines = text.splitlines()
        assert "repro_store_cache_hits_total 1" in lines
        assert "repro_store_cache_misses_total 1" in lines
        assert "repro_serve_jobs_submitted_total 2" in lines
        assert 'repro_serve_jobs_completed_total{status="done"} 2' in lines

    def test_curves_endpoint_serves_cached_windowed_curves(self, server):
        base = _base(server)
        body = {"workload": "blackscholes", "size": "simsmall",
                "tool": "sigil", "config": {"event_mode": True}}
        _status, accepted = _post_json(base + "/jobs", body)
        job_id = accepted["job"]
        assert server.manager.wait(job_id, timeout=120)

        status, doc = _get_json(base + f"/jobs/{job_id}/curves")
        assert status == 200
        assert doc["job"] == job_id and doc["state"] == "done"
        assert len(doc["cells"]) == 1
        (cell,) = doc["cells"].values()
        curves = cell["curves"]
        assert curves["schema"] == "repro-windowed/1"
        assert curves["n_windows"] == len(curves["ws_bytes"]) > 0
        assert curves["total_segments"] > 0

    def test_curves_null_for_cells_without_event_logs(self, server):
        base = _base(server)
        _status, accepted = _post_json(base + "/jobs", _CELL)  # native tool
        job_id = accepted["job"]
        assert server.manager.wait(job_id, timeout=60)
        status, doc = _get_json(base + f"/jobs/{job_id}/curves")
        assert status == 200
        (cell,) = doc["cells"].values()
        assert cell["curves"] is None
        assert cell["label"]

    def test_sse_resume_from_last_event_id(self, server):
        base = _base(server)
        _status, accepted = _post_json(base + "/jobs", _CELL)
        job_id = accepted["job"]
        assert server.manager.wait(job_id, timeout=60)
        full = _read_sse(base + f"/jobs/{job_id}/events")
        assert len(full) >= 4
        middle = full[len(full) // 2]["seq"]
        resumed = _read_sse(base + f"/jobs/{job_id}/events",
                            last_event_id=middle)
        assert [r["seq"] for r in resumed] == \
            [r["seq"] for r in full if r["seq"] > middle]
        # The ?after= query form behaves identically.
        via_query = _read_sse(base + f"/jobs/{job_id}/events?after={middle}")
        assert via_query == resumed

    def test_scrapes_stay_valid_while_jobs_run(self, server):
        base = _base(server)
        stop = threading.Event()
        failures = []

        def scraper():
            while not stop.is_set():
                try:
                    _status, _headers, body = _get(base + "/metrics")
                    assert_valid_exposition(body.decode())
                except Exception as exc:  # noqa: BLE001 - collect for assert
                    failures.append(exc)
                    return

        scrapers = [threading.Thread(target=scraper) for _ in range(3)]
        for t in scrapers:
            t.start()
        try:
            ids = []
            for workload in ("blackscholes", "streamcluster", "blackscholes"):
                _status, accepted = _post_json(
                    base + "/jobs", dict(_CELL, workload=workload))
                ids.append(accepted["job"])
            for job_id in ids:
                assert server.manager.wait(job_id, timeout=120)
        finally:
            stop.set()
            for t in scrapers:
                t.join(timeout=10)
        assert not failures
        for job_id in ids:
            _status, doc = _get_json(base + f"/jobs/{job_id}")
            assert doc["state"] == "done"
            records = _read_sse(base + f"/jobs/{job_id}/events")
            seqs = [r["seq"] for r in records]
            assert seqs == list(range(1, len(records) + 1))
