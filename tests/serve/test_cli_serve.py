"""CLI surface of the serve family: watch, submit validation, rendering."""

from __future__ import annotations

import json

import pytest

from repro.cli import _render_trace_record, build_parser, main
from repro.telemetry import append_jsonl


class TestParser:
    def test_serve_family_is_wired(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--port", "0", "--port-file", "p", "--store", "s",
             "-j", "2", "--concurrency", "3"])
        assert args.command == "serve" and args.jobs == 2
        args = parser.parse_args(["submit", "vips", "--tool", "native"])
        assert args.workload == "vips"
        args = parser.parse_args(["watch", "job-000001", "--after", "5"])
        assert args.job == "job-000001" and args.after == 5
        args = parser.parse_args(["metrics", "--url", "http://x:1"])
        assert args.url == "http://x:1"


class TestRenderTraceRecord:
    def test_done_shows_cached_or_seconds(self):
        line = _render_trace_record(
            {"seq": 5, "event": "done", "label": "vips/simsmall/native",
             "cached": True})
        assert "cached" in line and "vips/simsmall/native" in line
        line = _render_trace_record(
            {"seq": 5, "event": "done", "label": "x", "cached": False,
             "seconds": 1.234})
        assert "1.23s" in line

    def test_completed_summarises_counts(self):
        line = _render_trace_record(
            {"seq": 9, "event": "completed", "state": "done",
             "total": 2, "done": 2, "cached": 1, "executed": 1,
             "failed": 0, "timeout": 0})
        assert "done" in line and "cached=1" in line and "executed=1" in line

    def test_every_event_kind_renders_one_line(self):
        for rec in (
            {"seq": 1, "event": "submitted", "name": "adhoc", "cells": 1},
            {"seq": 2, "event": "resumed", "name": "adhoc", "cells": 1},
            {"seq": 3, "event": "heartbeat", "message": "1/2 done"},
            {"seq": 4, "event": "phases", "execute": 0.5, "setup": 0.1},
            {"seq": 5, "event": "failed", "error": "boom"},
            {"seq": 6, "event": "error", "state": "error", "message": "bad"},
        ):
            line = _render_trace_record(rec)
            assert "\n" not in line and rec["event"] in line


class TestWatchFileTail:
    def _trace(self, tmp_path, job="job-000001"):
        trace = tmp_path / "serve" / "jobs" / job / "trace.jsonl"
        trace.parent.mkdir(parents=True)
        return trace

    def test_watch_replays_to_terminal_and_exits_zero(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        for i, event in enumerate(("submitted", "running", "done"), start=1):
            append_jsonl(trace, {"seq": i, "event": event})
        append_jsonl(trace, {"seq": 4, "event": "completed", "state": "done"})
        code = main(["watch", "job-000001", "--store", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert [line.split()[1] for line in out.splitlines()] == \
            ["submitted", "running", "done", "completed"]

    def test_watch_exit_code_follows_job_state(self, tmp_path):
        trace = self._trace(tmp_path)
        append_jsonl(trace, {"seq": 1, "event": "completed",
                             "state": "failed"})
        assert main(["watch", "job-000001", "--store", str(tmp_path)]) == 1

    def test_watch_after_skips_replayed_events(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        for i in range(1, 4):
            append_jsonl(trace, {"seq": i, "event": "running"})
        append_jsonl(trace, {"seq": 4, "event": "completed", "state": "done"})
        assert main(["watch", "job-000001", "--store", str(tmp_path),
                     "--after", "2"]) == 0
        out = capsys.readouterr().out
        assert [int(line.split()[0][1:]) for line in out.splitlines()] == \
            [3, 4]

    def test_watch_unknown_job_is_an_error(self, tmp_path):
        assert main(["watch", "job-004242", "--store", str(tmp_path)]) == 2

    def test_watch_timeout_gives_up_on_a_stuck_job(self, tmp_path):
        trace = self._trace(tmp_path)
        append_jsonl(trace, {"seq": 1, "event": "running"})
        assert main(["watch", "job-000001", "--store", str(tmp_path),
                     "--timeout", "0.3"]) == 1


class TestSubmitValidation:
    def test_submit_needs_a_workload_or_body(self):
        assert main(["submit"]) == 2

    def test_submit_body_file_must_be_json(self, tmp_path):
        bad = tmp_path / "body.json"
        bad.write_text("not json")
        assert main(["submit", "--body", str(bad),
                     "--url", "http://127.0.0.1:9"]) == 1

    def test_submit_unreachable_daemon_is_one_error_line(self, tmp_path, capsys):
        body = tmp_path / "body.json"
        body.write_text(json.dumps({"workload": "vips"}))
        # Port 9 (discard) refuses; the CLI must fail with one stderr line.
        code = main(["submit", "--body", str(body),
                     "--url", "http://127.0.0.1:9"])
        assert code == 1
        err = capsys.readouterr().err
        assert "cannot reach" in err and "Traceback" not in err


class TestStatsHistogramRendering:
    def test_quantile_summaries_render_inline(self):
        from repro.cli import _fmt_metric_value

        rendered = _fmt_metric_value(
            {"count": 10, "sum": 5.0, "min": 0.1, "max": 2.0, "mean": 0.5,
             "p50": 0.4, "p90": 1.5, "p99": 1.9})
        assert rendered == "count=10 mean=0.5 p50=0.4 p90=1.5 p99=1.9"
        assert _fmt_metric_value({"count": 0}) == "count=0"
        assert _fmt_metric_value(42) == "42"
