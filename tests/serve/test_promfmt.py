"""Prometheus exposition: golden text, escaping, buckets, serve catalog."""

from __future__ import annotations

import math
import re

import pytest

from repro.campaign import ResultStore
from repro.serve.promfmt import JOB_SECONDS_BOUNDS, ServeMetrics
from repro.telemetry import MetricRegistry, render_prometheus
from repro.telemetry.prometheus import escape_label_value, sanitize_metric_name

# One sample line: name, optional {labels}, a space, a value.
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (-?\d+(\.\d+([eE][+-]?\d+)?)?|[+-]Inf|NaN)$"
)


def assert_valid_exposition(text: str) -> None:
    """Every line must be a comment or a well-formed sample."""
    assert text.endswith("\n")
    for line in text.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert _SAMPLE.match(line), f"malformed sample line: {line!r}"


class TestGoldenText:
    def test_full_document(self):
        reg = MetricRegistry()
        reg.counter("hits_total", help_text="Total hits.").inc(3)
        reg.counter("req_total", {"code": "200"}).inc(2)
        reg.counter("req_total", {"code": "500"}).inc(1)
        reg.gauge("temp").set(1.5)
        hist = reg.histogram("lat_seconds", (0.5, 2.0), help_text="Latency.")
        for v in (0.25, 0.5, 4.0):
            hist.observe(v)
        assert render_prometheus(reg) == (
            "# HELP hits_total Total hits.\n"
            "# TYPE hits_total counter\n"
            "hits_total 3\n"
            "# TYPE req_total counter\n"
            'req_total{code="200"} 2\n'
            'req_total{code="500"} 1\n'
            "# TYPE temp gauge\n"
            "temp 1.5\n"
            "# HELP lat_seconds Latency.\n"
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.5"} 2\n'
            'lat_seconds_bucket{le="2"} 2\n'
            'lat_seconds_bucket{le="+Inf"} 3\n'
            "lat_seconds_sum 4.75\n"
            "lat_seconds_count 3\n"
        )

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricRegistry()) == ""

    def test_histogram_buckets_are_cumulative_and_end_at_count(self):
        reg = MetricRegistry()
        hist = reg.histogram("h", (1, 2, 4))
        for v in (0.5, 1.5, 1.6, 3, 100):
            hist.observe(v)
        text = render_prometheus(reg)
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines() if line.startswith("h_bucket")
        ]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert counts == [1, 3, 4, 5]
        assert "h_count 5" in text.splitlines()


class TestEscaping:
    def test_label_values(self):
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("two\nlines") == "two\\nlines"

    def test_escaped_labels_survive_rendering(self):
        reg = MetricRegistry()
        reg.counter("c", {"path": 'a\\b"c"\nd'}).inc()
        text = render_prometheus(reg)
        assert 'c{path="a\\\\b\\"c\\"\\nd"} 1\n' in text
        assert_valid_exposition(text)

    def test_metric_name_sanitization(self):
        assert sanitize_metric_name("sigil.bytes.unique") == \
            "sigil_bytes_unique"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("ok_name:sub") == "ok_name:sub"
        reg = MetricRegistry()
        reg.counter("vm.ops/sec").inc()
        assert "vm_ops_sec 1" in render_prometheus(reg)

    def test_inf_and_nan_values(self):
        reg = MetricRegistry()
        reg.gauge("g_inf").set(math.inf)
        reg.gauge("g_nan").set(math.nan)
        text = render_prometheus(reg)
        assert "g_inf +Inf" in text and "g_nan NaN" in text
        assert_valid_exposition(text)


class TestServeMetrics:
    def test_catalog_is_scrapable_before_any_job(self):
        text = ServeMetrics().render()
        assert_valid_exposition(text)
        for family in (
            "repro_serve_jobs_submitted_total",
            "repro_serve_jobs_running",
            "repro_store_cache_hits_total",
            'repro_serve_jobs_completed_total{status="done"}',
            "repro_serve_sse_clients",
        ):
            assert family in text

    def test_activity_shows_up_in_the_scrape(self, tmp_path):
        metrics = ServeMetrics()
        metrics.jobs_submitted.inc()
        metrics.cache_hits.inc(2)
        metrics.job_completed("done")
        metrics.job_completed("failed")
        metrics.observe_cell_seconds("native", 0.02)
        metrics.observe_cell_seconds("sigil", 40.0)
        metrics.set_sse_clients(3)
        text = metrics.render(ResultStore(tmp_path))
        assert_valid_exposition(text)
        lines = text.splitlines()
        assert "repro_serve_jobs_submitted_total 1" in lines
        assert "repro_store_cache_hits_total 2" in lines
        assert 'repro_serve_jobs_completed_total{status="done"} 1' in lines
        assert 'repro_serve_jobs_completed_total{status="failed"} 1' in lines
        assert 'repro_serve_job_seconds_bucket{tool="native",le="0.05"} 1' \
            in lines
        assert 'repro_serve_job_seconds_count{tool="sigil"} 1' in lines
        assert "repro_serve_sse_clients 3" in lines
        assert "repro_store_objects 0" in lines

    def test_histogram_bounds_cover_the_plausible_range(self):
        assert JOB_SECONDS_BOUNDS == tuple(sorted(JOB_SECONDS_BOUNDS))
        assert JOB_SECONDS_BOUNDS[0] <= 0.01
        assert JOB_SECONDS_BOUNDS[-1] >= 1800

    def test_refresh_store_counts_objects(self, tmp_path):
        store = ResultStore(tmp_path)
        metrics = ServeMetrics()
        with pytest.raises(KeyError):
            _ = metrics.registry._counters[("nope", ())]  # sanity: no magic
        text = metrics.render(store)
        assert "repro_store_objects 0" in text
        assert "repro_store_campaigns 0" in text


class TestDistWorkerMetrics:
    def test_record_dist_worker_renders_labelled_families(self):
        metrics = ServeMetrics()
        metrics.record_dist_worker("w0", "hostA", jobs=4, failed=1,
                                   retries=1, steals=2, bytes_merged=4096)
        metrics.record_dist_worker("w1", "hostB", jobs=3)
        text = metrics.render()
        assert 'repro_dist_jobs_total{host="hostA",worker="w0"} 4' in text
        assert 'repro_dist_jobs_total{host="hostB",worker="w1"} 3' in text
        assert 'repro_dist_steals_total{host="hostA",worker="w0"} 2' in text
        assert ('repro_dist_bytes_merged_total{host="hostA",worker="w0"} '
                '4096') in text
        assert_valid_exposition(text)

    def test_counters_accumulate_across_jobs(self):
        metrics = ServeMetrics()
        metrics.record_dist_worker("w0", "hostA", jobs=2)
        metrics.record_dist_worker("w0", "hostA", jobs=3, steals=1)
        text = metrics.render()
        assert 'repro_dist_jobs_total{host="hostA",worker="w0"} 5' in text
        assert 'repro_dist_steals_total{host="hostA",worker="w0"} 1' in text
