"""Tests for the repro serve daemon: metrics exposition, SSE, jobs, HTTP."""
