"""Figure 10: data re-use lifetime distribution of "conv_gen" in vips.

Paper: "In 'conv_gen', the distribution has a long tail and a central peak.
The peak in 'conv_gen' signifies that there are plenty of data elements
that have large re-use lifetimes and hence bad temporal locality."
"""

from __future__ import annotations

from _support import full_run, save_artifact
from repro.analysis import lifetime_histogram, render_histogram


def _conv_gen_ctx(profile):
    return max(
        profile.tree.by_name("conv_gen"),
        key=lambda n: profile.reuse.per_fn[n.id].reused_windows,
    )


def test_fig10_conv_gen_histogram(benchmark):
    profile = full_run("vips").sigil
    ctx = _conv_gen_ctx(profile)
    benchmark.pedantic(
        lambda: lifetime_histogram(profile, ctx.id), rounds=5, iterations=1
    )

    hist = lifetime_histogram(profile, ctx.id)
    chart = render_histogram(
        hist,
        title="Figure 10: re-use lifetime distribution of conv_gen "
              "(bin size 1000, log count scale)",
    )
    save_artifact("fig10_conv_gen_hist.txt", chart)

    assert len(hist) >= 3, "expected a spread of lifetime bins"
    bins = dict(hist)
    peak_bin = max(bins, key=bins.get)
    last_bin = hist[-1][0]
    # Central peak: the mode sits beyond the first bin...
    assert peak_bin > 0
    # ...and a long tail stretches well past the peak.
    assert last_bin >= peak_bin + 2000
