"""Tooling throughput: primitive events per second, per configuration.

Not a paper artifact -- a performance baseline for the reproduction itself,
so regressions in the hot paths (shadow classification, cache simulation)
show up in ``--benchmark-compare`` runs.  The workload is a fixed synthetic
event stream (mixed scalar and block accesses across several functions),
replayed into each observer.
"""

from __future__ import annotations

import pytest

from repro.callgrind import CallgrindCollector
from repro.core import LineReuseProfiler, SigilConfig, SigilProfiler
from repro.trace.events import OpKind

N_ROUNDS = 400


def drive(observer) -> int:
    """A deterministic mixed stream; returns the number of primitives."""
    observer.on_run_begin()
    observer.on_fn_enter("main")
    events = 2
    for i in range(N_ROUNDS):
        observer.on_fn_enter("producer")
        observer.on_op(OpKind.INT, 20)
        observer.on_mem_write(0x1000 + (i % 64) * 8, 8)
        observer.on_mem_write(0x8000 + (i % 16) * 512, 512)
        observer.on_fn_exit("producer")
        observer.on_fn_enter("consumer")
        observer.on_mem_read(0x1000 + (i % 64) * 8, 8)
        observer.on_mem_read(0x8000 + (i % 16) * 512, 512)
        observer.on_op(OpKind.FLOAT, 30)
        observer.on_branch(i % 7, i % 3 == 0)
        observer.on_fn_exit("consumer")
        events += 11
    observer.on_fn_exit("main")
    observer.on_run_end()
    return events


@pytest.mark.parametrize(
    "make_observer",
    [
        pytest.param(lambda: SigilProfiler(SigilConfig()), id="sigil-baseline"),
        pytest.param(
            lambda: SigilProfiler(SigilConfig(reuse_mode=True)), id="sigil-reuse"
        ),
        pytest.param(
            lambda: SigilProfiler(SigilConfig(event_mode=True)), id="sigil-events"
        ),
        pytest.param(lambda: CallgrindCollector(), id="callgrind"),
        pytest.param(lambda: LineReuseProfiler(64), id="line-reuse"),
    ],
)
def test_observer_throughput(benchmark, make_observer):
    def once():
        return drive(make_observer())

    events = benchmark.pedantic(once, rounds=5, iterations=1)
    assert events > 4000
    benchmark.extra_info["primitives"] = events
