"""Tooling throughput: primitive events per second, per configuration.

Not a paper artifact -- a performance baseline for the reproduction itself,
so regressions in the hot paths (shadow classification, cache simulation,
trace transport) show up in ``--benchmark-compare`` runs.  The workload is a
deterministic streaming stream: each round a producer writes a contiguous
block element by element and a consumer reads it back, which is the shape
the batched transport exists for (long access runs between function
boundaries).

Run directly to publish machine-readable numbers::

    PYTHONPATH=src python benchmarks/bench_tool_throughput.py

writes ``BENCH_throughput.json`` at the repo root with per-configuration
events/sec for the scalar and batched transports.  ``--check CONFIG`` exits
non-zero if the batched transport's speedup falls below that
configuration's floor (the CI perf smoke): at least 1.0x everywhere --
batching must never be a regression -- and 5.0x for the two tools whose
batch kernels were rewritten to hit the ROADMAP target (``sigil-reuse``
and ``callgrind``), so the PR 4 regression cannot silently return.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import pytest

from repro.callgrind import CallgrindCollector
from repro.core import LineReuseProfiler, SigilConfig, SigilProfiler
from repro.trace.batch import DEFAULT_BATCH_SIZE, BatchingTransport
from repro.trace.events import OpKind

N_ROUNDS = 40
BLOCK = 256  # accesses per produced/consumed block


def drive(observer) -> int:
    """A deterministic streaming trace; returns the number of primitives.

    Each round: ``producer`` writes a ``BLOCK``-element block one 8-byte
    store at a time, ``consumer`` streams it back.  Function boundaries
    (and one branch per round) are the only transport flush points, so the
    batched path sees realistic long access runs rather than degenerate
    two-access batches.
    """
    observer.on_run_begin()
    observer.on_fn_enter("main")
    events = 2
    for i in range(N_ROUNDS):
        base = 0x1000 + (i % 8) * BLOCK * 8
        observer.on_fn_enter("producer")
        observer.on_op(OpKind.INT, 20)
        for j in range(BLOCK):
            observer.on_mem_write(base + j * 8, 8)
        observer.on_fn_exit("producer")
        observer.on_fn_enter("consumer")
        for j in range(BLOCK):
            observer.on_mem_read(base + j * 8, 8)
        observer.on_op(OpKind.FLOAT, 30)
        observer.on_branch(i % 7, i % 3 == 0)
        observer.on_fn_exit("consumer")
        events += 2 * BLOCK + 7
    observer.on_fn_exit("main")
    observer.on_run_end()
    return events


CONFIGS = {
    "sigil-baseline": lambda: SigilProfiler(SigilConfig()),
    "sigil-reuse": lambda: SigilProfiler(SigilConfig(reuse_mode=True)),
    "sigil-events": lambda: SigilProfiler(SigilConfig(event_mode=True)),
    "callgrind": lambda: CallgrindCollector(),
    "line-reuse": lambda: LineReuseProfiler(64),
}

#: ``--check`` speedup floors.  Every config must at least break even;
#: the two tools with dedicated grouped batch kernels (re-use shadow and
#: the cache-simulating Callgrind run) carry the ROADMAP's >= 5x target.
CHECK_FLOORS = {
    "sigil-reuse": 5.0,
    "callgrind": 5.0,
}
DEFAULT_CHECK_FLOOR = 1.0


def _observer(config: str, batch_size: int):
    tool = CONFIGS[config]()
    if batch_size:
        return BatchingTransport(tool, batch_size)
    return tool


@pytest.mark.parametrize("config", sorted(CONFIGS))
@pytest.mark.parametrize(
    "batch_size", [0, DEFAULT_BATCH_SIZE], ids=["scalar", "batched"]
)
def test_observer_throughput(benchmark, config, batch_size):
    def once():
        return drive(_observer(config, batch_size))

    events = benchmark.pedantic(once, rounds=5, iterations=1)
    assert events > 4000
    benchmark.extra_info["primitives"] = events
    benchmark.extra_info["batch_size"] = batch_size


# -- standalone publisher ----------------------------------------------------


def _events_per_sec(config: str, batch_size: int, repeats: int) -> float:
    best = float("inf")
    events = 0
    for _ in range(repeats):
        observer = _observer(config, batch_size)
        t0 = time.perf_counter()
        events = drive(observer)
        best = min(best, time.perf_counter() - t0)
    return events / best


def measure(repeats: int = 5, batch_size: int = DEFAULT_BATCH_SIZE) -> dict:
    """Best-of-``repeats`` events/sec for every config, both transports."""
    results = {}
    for config in sorted(CONFIGS):
        scalar = _events_per_sec(config, 0, repeats)
        batched = _events_per_sec(config, batch_size, repeats)
        results[config] = {
            "scalar_events_per_sec": round(scalar),
            "batched_events_per_sec": round(batched),
            "speedup": round(batched / scalar, 2),
        }
    return {
        "generated_by": "benchmarks/bench_tool_throughput.py",
        "workload": {
            "rounds": N_ROUNDS,
            "block": BLOCK,
            "events_per_run": drive(_observer("callgrind", 0)),
        },
        "batch_size": batch_size,
        "repeats": repeats,
        "configs": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="publish observer throughput (scalar vs batched transport)"
    )
    parser.add_argument(
        "-o", "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_throughput.json"),
        help="output JSON path (default: BENCH_throughput.json at repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per configuration (best-of)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="transport ring size for the batched runs",
    )
    parser.add_argument(
        "--check", metavar="CONFIG", action="append", default=[],
        help="exit non-zero unless CONFIG's batched speedup meets its "
             "floor (1.0x by default, 5.0x for sigil-reuse/callgrind; "
             "repeatable; the CI perf smoke)",
    )
    args = parser.parse_args(argv)

    report = measure(repeats=args.repeats, batch_size=args.batch_size)
    out = Path(args.out)
    if out.exists():  # keep sections published by sibling benches
        try:
            prior = json.loads(out.read_text())
        except (OSError, ValueError):
            prior = {}
        for key, value in prior.items():
            report.setdefault(key, value)
    out.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(c) for c in report["configs"])
    for config, row in report["configs"].items():
        print(
            f"{config:<{width}}  scalar {row['scalar_events_per_sec']:>10,}/s"
            f"  batched {row['batched_events_per_sec']:>10,}/s"
            f"  x{row['speedup']}"
        )
    print(f"wrote {args.out}")

    failed = False
    for config in args.check:
        if config not in report["configs"]:
            print(f"--check: unknown config {config!r}", file=sys.stderr)
            failed = True
            continue
        floor = CHECK_FLOORS.get(config, DEFAULT_CHECK_FLOOR)
        speedup = report["configs"][config]["speedup"]
        if speedup < floor:
            print(
                f"--check: batched transport speedup for {config} is "
                f"x{speedup}, below its x{floor} floor; the batch path "
                "has regressed",
                file=sys.stderr,
            )
            failed = True
        else:
            print(f"--check: {config} x{speedup} >= x{floor} floor OK")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
