"""Ablation: shadow-memory FIFO limit vs. footprint and accuracy.

Section III-A enables the memory limit only for dedup and reports the
"corresponding loss of accuracy to be negligible".  This ablation sweeps
the page budget and quantifies both sides of the trade: the live shadow
footprint shrinks with the budget, while the total unique-byte count (whose
producer attribution is what eviction destroys) drifts only slightly.
"""

from __future__ import annotations

from _support import save_artifact
from repro.analysis import render_table
from repro.core import SigilConfig, SigilProfiler
from repro.workloads import get_workload

BUDGETS = (None, 64, 32, 16, 8, 4)


def _run_dedup(max_pages):
    profiler = SigilProfiler(
        SigilConfig(reuse_mode=True, max_shadow_pages=max_pages)
    )
    get_workload("dedup", "simsmall").run(profiler)
    return profiler.profile()


def test_ablation_memory_limit(benchmark):
    benchmark.pedantic(lambda: _run_dedup(8), rounds=3, iterations=1)

    results = {budget: _run_dedup(budget) for budget in BUDGETS}
    baseline_unique = sum(
        e.unique_bytes for _, e in results[None].comm.items()
    )
    rows = []
    drifts = {}
    for budget, prof in results.items():
        unique = sum(e.unique_bytes for _, e in prof.comm.items())
        drift = abs(unique - baseline_unique) / baseline_unique
        drifts[budget] = drift
        rows.append((
            "unlimited" if budget is None else budget,
            prof.shadow_stats.live_pages,
            prof.shadow_stats.pages_evicted,
            prof.shadow_stats.shadow_bytes // 1024,
            unique,
            f"{drift:.2%}",
        ))
    table = render_table(
        ["page_budget", "live_pages", "evicted", "shadow_KB",
         "unique_bytes", "drift_vs_unlimited"],
        rows,
        title="Ablation: dedup under the shadow-memory FIFO limit",
    )
    save_artifact("ablation_memory_limit.txt", table)

    # Footprint is monotone in the budget; accuracy loss stays small until
    # the budget gets absurd.
    footprints = [
        results[b].shadow_stats.shadow_bytes for b in BUDGETS if b is not None
    ]
    assert footprints == sorted(footprints, reverse=True)
    assert drifts[64] < 0.02
    assert drifts[8] < 0.10
    assert results[8].shadow_stats.pages_evicted > 0
