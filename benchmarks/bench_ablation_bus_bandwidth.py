"""Ablation: SoC bus bandwidth vs. breakeven speedups.

The partitioning heuristic assumes "a fixed SoC bus bandwidth" (section
II-C1).  This ablation sweeps that bandwidth and regenerates the candidate
ranking: narrow buses inflate every breakeven (and push comm-heavy
candidates to infinity); wide buses drive all candidates toward 1, washing
out the signal.  The *relative order* of candidates should be stable.
"""

from __future__ import annotations

import math

from _support import full_run, save_artifact
from repro.analysis import render_table, trim_calltree
from repro.analysis.partition import BusModel, PartitionPolicy

BANDWIDTHS = (1.0, 4.0, 8.0, 32.0, 128.0)


def _reference_candidates(name: str):
    """Trim once at the default bandwidth to fix the node set under study."""
    run = full_run(name)
    trimmed = trim_calltree(run.sigil, run.callgrind)
    return run, trimmed.sorted_candidates()


def _breakeven_at(run, candidate, bandwidth: float) -> float:
    from repro.analysis.partition import PARTITION_CYCLE_MODEL, breakeven_speedup

    bus = BusModel(bytes_per_cycle=bandwidth)
    costs = candidate.costs
    t_sw = PARTITION_CYCLE_MODEL.estimate(
        costs.instructions, costs.branch_misses, costs.l1_misses, costs.ll_misses
    )
    return breakeven_speedup(
        t_sw,
        bus.offload_cycles(costs.unique_input_bytes, costs.calls),
        bus.offload_cycles(costs.unique_output_bytes, costs.calls),
    )


def test_ablation_bus_bandwidth(benchmark):
    benchmark.pedantic(lambda: _reference_candidates("canneal"), rounds=3, iterations=1)

    run, candidates = _reference_candidates("canneal")
    rows = []
    sweeps = {}
    for cand in candidates:
        values = [_breakeven_at(run, cand, bw) for bw in BANDWIDTHS]
        sweeps[cand.name] = values
        rows.append(
            [cand.name]
            + [f"{v:.3f}" if math.isfinite(v) else "inf" for v in values]
        )
    table = render_table(
        ["function"] + [f"{bw:g} B/cy" for bw in BANDWIDTHS],
        rows,
        title="Ablation: canneal breakeven speedups vs bus bandwidth "
              "(fixed candidate set)",
    )
    save_artifact("ablation_bus_bandwidth.txt", table)

    # Narrower bus -> larger (or equal) breakeven for every candidate.
    for name, values in sweeps.items():
        for narrow, wide in zip(values, values[1:]):
            assert narrow >= wide - 1e-12, name
    # At very wide buses every finite candidate approaches 1.
    assert all(
        values[-1] < 1.10
        for values in sweeps.values()
        if math.isfinite(values[-1])
    )
    # The ranking at the default bandwidth is preserved when narrowing to
    # 4 B/cy (same monotone transformation of the comm term).
    default_rank = [c.name for c in candidates]
    narrow_rank = sorted(sweeps, key=lambda n: sweeps[n][1])
    finite_default = [n for n in default_rank if math.isfinite(sweeps[n][1])]
    finite_narrow = [n for n in narrow_rank if math.isfinite(sweeps[n][1])]
    assert finite_default[0] == finite_narrow[0]
