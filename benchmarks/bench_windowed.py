"""Streaming windowed-analysis throughput and memory bound.

Not a paper artifact -- the performance gate for the out-of-core layer this
repo's observability surface is built on.  Writes the ``bench_event_io``
synthetic log (same shape: one order/call chain, periodic data edges) as a
v2 file, then measures one :func:`repro.analysis.windowed.windowed_curves`
pass over it: wall time, segments/s, and the :mod:`tracemalloc` peak of the
pass, compared against the bytes the materialised tables would occupy.

Run directly to publish machine-readable numbers::

    PYTHONPATH=src python benchmarks/bench_windowed.py

merges a ``windowed`` section into ``BENCH_throughput.json`` at the repo
root.  ``--check`` exits non-zero if the pass's peak traced memory is not
below the materialised table bytes (the CI bounded-memory smoke).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

from repro.analysis.windowed import windowed_curves
from repro.io import dump_events_bin

from bench_event_io import synth_log

N_SEGMENTS = 2_000_000


def measure(n_segments: int = N_SEGMENTS, workdir: Path = Path(".")) -> dict:
    """One windowed pass over a freshly written synthetic v2 log."""
    arrays = synth_log(n_segments)
    table_bytes = int(
        arrays.segs.nbytes + arrays.ordercall.nbytes + arrays.data.nbytes
    )
    path = workdir / "bench_windowed.v2.events"
    dump_events_bin(arrays, path)
    del arrays  # the pass must not lean on the in-memory copy

    tracemalloc.start()
    t0 = time.perf_counter()
    curves = windowed_curves(path)
    wall_s = time.perf_counter() - t0
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    report = {
        "n_segments": n_segments,
        "n_windows": curves.n_windows,
        "window_ops": curves.window,
        "seconds": round(wall_s, 3),
        "segments_per_sec": int(n_segments / wall_s),
        "curves_per_sec": round(curves.n_windows / wall_s, 1),
        "peak_traced_bytes": int(peak),
        "materialized_table_bytes": table_bytes,
        "memory_ratio": round(peak / table_bytes, 3),
        "peak_ws_bytes": curves.peak_ws_bytes,
        "total_comm_bytes": curves.total_comm_bytes,
        "file_bytes": path.stat().st_size,
    }
    path.unlink()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="publish streaming windowed-analysis throughput"
    )
    root = Path(__file__).resolve().parent.parent
    parser.add_argument(
        "-o", "--out",
        default=str(root / "BENCH_throughput.json"),
        help="JSON file to merge the windowed section into",
    )
    parser.add_argument(
        "--segments", type=int, default=N_SEGMENTS,
        help=f"log size in segments (default {N_SEGMENTS})",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the pass's peak memory stays below the "
             "materialised table bytes (the CI bounded-memory smoke)",
    )
    args = parser.parse_args(argv)

    out = Path(args.out)
    report = measure(args.segments, workdir=out.parent)

    merged = {}
    if out.exists():
        merged = json.loads(out.read_text())
    merged["windowed"] = dict(
        report, generated_by="benchmarks/bench_windowed.py"
    )
    out.write_text(json.dumps(merged, indent=2) + "\n")

    print(
        f"windowed  {report['n_segments']:,} segments in "
        f"{report['seconds']:.3f}s "
        f"({report['segments_per_sec']:,} segs/s, "
        f"{report['n_windows']} windows)"
    )
    print(
        f"memory    peak {report['peak_traced_bytes']:,} B vs "
        f"{report['materialized_table_bytes']:,} B materialised "
        f"(x{report['memory_ratio']})"
    )
    print(f"wrote {out}")

    if args.check and report["memory_ratio"] >= 1.0:
        print(
            f"--check: windowed pass peaked at x{report['memory_ratio']} of "
            f"the materialised tables (required < 1.0); the streaming path "
            f"has regressed",
            file=sys.stderr,
        )
        return 1
    if args.check:
        print(f"--check: peak memory x{report['memory_ratio']} < 1.0 OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
