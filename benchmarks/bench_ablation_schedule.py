"""Ablation: achievable scheduled speedup vs. the Figure 13 limit.

Section IV-C closes with the scheduling application: mapping dependency
chains onto a fixed number of cores.  This bench list-schedules the event
DAGs onto 1..32 cores and places the achievable curve under the theoretical
function-level parallelism limit for a high-limit benchmark (streamcluster)
and a serial one (fluidanimate).
"""

from __future__ import annotations

from _support import full_run, save_artifact
from repro.analysis import analyze_critical_path, render_table
from repro.analysis.schedule import speedup_curve

CORES = [1, 2, 4, 8, 16, 32]


def test_ablation_schedule(benchmark):
    events = full_run("streamcluster").sigil.events
    benchmark.pedantic(
        lambda: speedup_curve(events, [8]), rounds=3, iterations=1
    )

    sections = []
    for name in ("streamcluster", "fluidanimate", "libquantum"):
        run = full_run(name)
        ev = run.sigil.events
        limit = analyze_critical_path(ev).max_parallelism
        curve = speedup_curve(ev, CORES)
        rows = [
            (r.n_cores, f"{r.speedup:.2f}", f"{r.efficiency:.2f}",
             r.cross_core_bytes)
            for r in curve
        ]
        sections.append(render_table(
            ["cores", "speedup", "efficiency", "cross_core_B"],
            rows,
            title=f"-- {name} (theoretical limit {limit:.2f}) --",
        ))
        # The schedule approaches but never exceeds the limit.
        for r in curve:
            assert r.speedup <= limit + 1e-9
        # With many cores a high-limit benchmark beats a serial one.
        if name == "streamcluster":
            assert curve[-1].speedup > 4.0
        if name == "fluidanimate":
            assert curve[-1].speedup < 1.5

    save_artifact(
        "ablation_schedule.txt",
        "Ablation: list-scheduled speedup vs theoretical parallelism\n\n"
        + "\n\n".join(sections),
    )
