"""Ablation: shadow granularity vs. measured unique communication.

Sigil's default is byte-level shadowing; section IV-B3 adds a line-level
mode "configured with the cache line size".  Coarser granularity
over-approximates communication (a one-byte read charges the whole line),
so unique traffic inflates monotonically with the grain -- quantifying why
the paper calls line-level results "less architecture-independent".
"""

from __future__ import annotations

from _support import save_artifact
from repro.analysis import render_table
from repro.core import SigilConfig, SigilProfiler
from repro.workloads import get_workload

GRAINS = (1, 8, 64)


def _unique_traffic(name: str, line_size: int) -> int:
    profiler = SigilProfiler(SigilConfig(line_size=line_size))
    get_workload(name, "simsmall").run(profiler)
    profile = profiler.profile()
    return sum(e.unique_bytes for _, e in profile.comm.items())


def test_ablation_shadow_granularity(benchmark):
    benchmark.pedantic(
        lambda: _unique_traffic("freqmine", 64), rounds=3, iterations=1
    )

    workloads = ("freqmine", "canneal", "streamcluster")
    rows = []
    traffic = {}
    for name in workloads:
        per_grain = [_unique_traffic(name, g) for g in GRAINS]
        traffic[name] = per_grain
        rows.append(
            (name, *per_grain, f"{per_grain[-1] / per_grain[0]:.2f}x")
        )
    table = render_table(
        ["workload"] + [f"{g}B grain" for g in GRAINS] + ["64B/1B inflation"],
        rows,
        title="Ablation: unique communication vs shadow granularity",
    )
    save_artifact("ablation_line_size.txt", table)

    for name, per_grain in traffic.items():
        assert per_grain == sorted(per_grain), name  # monotone inflation
        assert per_grain[-1] > per_grain[0], name
    # Every workload shows measurable inflation at 64B grain, quantifying
    # the architecture-dependence the paper warns about for line mode.
    inflation = {n: t[-1] / t[0] for n, t in traffic.items()}
    assert all(v > 1.2 for v in inflation.values())
