"""Table II: breakeven speedup for the top 5 functions per benchmark.

Paper: "Table II shows the top functions picked by our proposed
max-coverage, min-communication heuristic from a few PARSEC-2.1 benchmarks.
These functions are listed ... in order of increasing breakeven-speedup.
... We find that the breakeven-speedup in most cases for the top few
functions are close to 1."
"""

from __future__ import annotations

import math

from _support import full_run, save_artifact
from repro.analysis import render_table, trim_calltree

BENCHMARKS = ("blackscholes", "bodytrack", "canneal", "dedup")


def _top5(name: str):
    run = full_run(name)
    trimmed = trim_calltree(run.sigil, run.callgrind)
    return trimmed.sorted_candidates()[:5]


def test_table2_breakeven_top(benchmark):
    benchmark.pedantic(lambda: [_top5(n) for n in BENCHMARKS], rounds=3, iterations=1)

    sections = []
    all_tops = {}
    for name in BENCHMARKS:
        top = _top5(name)
        all_tops[name] = top
        rows = [
            (c.name,
             f"{c.breakeven:.3f}" if math.isfinite(c.breakeven) else "inf",
             c.costs.ops,
             c.costs.unique_comm_bytes)
            for c in top
        ]
        sections.append(
            render_table(
                ["function", "S(breakeven)", "incl_ops", "unique_comm_B"],
                rows,
                title=f"-- {name} --",
            )
        )
    text = "Table II: breakeven speedup for top 5 functions (simsmall)\n\n"
    text += "\n\n".join(sections)
    save_artifact("table2_breakeven_top.txt", text)

    # Shape checks: top candidates are close to 1 and sorted ascending.
    for name, top in all_tops.items():
        values = [c.breakeven for c in top]
        assert values == sorted(values)
        assert values[0] < 1.5, f"{name}: best candidate should be near 1"
    # The compute-dense kernels the paper highlights rank at/near the top.
    assert any("sha1" in c.name for c in all_tops["dedup"][:3])
    assert all_tops["canneal"][0].name in {"mul", "netlist::swap_locations", "memchr"}
