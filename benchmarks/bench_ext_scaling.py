"""Extension: how work and communication scale with input size.

Uses the profile-diff machinery (the callgrind_diff analogue) to compare
simsmall against simmedium for several workloads: per-context operation
ratios should track the input scaling, and the paper's platform-independence
argument implies the *communication structure* (the set of call paths and
edges) stays fixed while only magnitudes grow.
"""

from __future__ import annotations

from _support import full_run, save_artifact
from repro.analysis import diff_profiles, render_table

WORKLOADS = ("blackscholes", "dedup", "vips")


def test_ext_size_scaling(benchmark):
    benchmark.pedantic(
        lambda: diff_profiles(
            full_run("vips", "simsmall").sigil, full_run("vips", "simmedium").sigil
        ),
        rounds=3,
        iterations=1,
    )

    rows = []
    for name in WORKLOADS:
        small = full_run(name, "simsmall").sigil
        medium = full_run(name, "simmedium").sigil
        diff = diff_profiles(small, medium)
        appeared = len(diff.appeared())
        gone = len(diff.disappeared())
        rows.append((
            name,
            f"{diff.ops_ratio:.2f}x",
            f"{diff.total_time[1] / diff.total_time[0]:.2f}x",
            appeared,
            gone,
        ))
        # Structure is size-invariant: the same call paths exist at both
        # scales, only magnitudes change.
        assert appeared == 0 and gone == 0, name
        assert 1.2 < diff.ops_ratio < 4.0, name
    table = render_table(
        ["workload", "ops_ratio", "time_ratio", "new_contexts", "lost_contexts"],
        rows,
        title="Extension: simsmall -> simmedium scaling "
              "(structure fixed, magnitudes grow)",
    )
    save_artifact("ext_scaling.txt", table)
