"""Figure 7: normalized coverage of the leaf nodes of the trimmed calltree.

Paper: "we see that many applications spend over 50% of their execution in
the leaf nodes of the trimmed call tree.  The exceptions are Canneal,
Ferret and Swaptions, whose candidate functions show low 'coverage' of the
overall application in terms of execution time.  Functions with low
coverage indicate fewer 'hot code' regions."
"""

from __future__ import annotations

from _support import OVERHEAD_SUITE, full_run, save_artifact
from repro.analysis import coverage_report, render_stacked_bars, trim_calltree


def _coverages():
    reports = {}
    for name in OVERHEAD_SUITE:
        run = full_run(name)
        trimmed = trim_calltree(run.sigil, run.callgrind)
        reports[name] = coverage_report(name, trimmed)
    return reports


def test_fig7_coverage(benchmark):
    def trim_blackscholes():
        run = full_run("blackscholes")
        return trim_calltree(run.sigil, run.callgrind)

    benchmark.pedantic(trim_blackscholes, rounds=5, iterations=1)

    reports = _coverages()
    bars = {
        name: {"candidates": rep.coverage, "rest": rep.uncovered}
        for name, rep in reports.items()
    }
    chart = render_stacked_bars(
        bars,
        title="Figure 7: normalized coverage of trimmed-calltree leaf nodes",
    )
    detail = "\n".join(
        f"{name}: coverage={rep.coverage:.2f} candidates={rep.n_candidates}"
        for name, rep in reports.items()
    )
    save_artifact("fig7_coverage.txt", chart + "\n\n" + detail)

    # Shape checks straight from the paper's text.
    low = {"canneal", "ferret", "swaptions"}
    for name in low:
        assert reports[name].coverage < 0.60, name
    over_half = [n for n, r in reports.items() if r.coverage > 0.5]
    assert len(over_half) >= 8, "many applications spend over 50% in leaves"
    for name in OVERHEAD_SUITE:
        if name not in low:
            assert reports[name].coverage > reports["canneal"].coverage
