"""Figure 13: maximum speedup based on function-level parallelism.

Paper: "The maximum theoretical function-level parallelism is the ratio of
overall serial length of the program to the critical path length. ... We
analyze the serial versions of a few PARSEC benchmarks and the libquantum
benchmark from SPEC to establish their limit."  Streamcluster (and
libquantum, "a similar situation") are characterised by many short paths
and a high limit; fluidanimate's path is one heavy ComputeForces chain and
its limit is near 1.
"""

from __future__ import annotations

from _support import PARALLELISM_SUITE, full_run, save_artifact
from repro.analysis import analyze_critical_path, render_barchart


def _parallelism(name: str):
    run = full_run(name)
    return analyze_critical_path(run.sigil.events), run.sigil.tree


def test_fig13_parallelism(benchmark):
    benchmark.pedantic(
        lambda: analyze_critical_path(full_run("streamcluster").sigil.events),
        rounds=5,
        iterations=1,
    )

    values = {}
    chains = {}
    for name in PARALLELISM_SUITE:
        result, tree = _parallelism(name)
        values[name] = result.max_parallelism
        chains[name] = " -> ".join(result.path_functions(tree))
    chart = render_barchart(
        values,
        title="Figure 13: maximum speedup from function-level parallelism",
        fmt="{:.1f}",
    )
    chain_lines = "\n".join(
        f"{name}: {chain}" for name, chain in chains.items()
    )
    save_artifact(
        "fig13_parallelism.txt",
        chart + "\n\ncritical-path chains (leaf -> main):\n" + chain_lines,
    )

    # Shape checks from section IV-C.
    assert values["fluidanimate"] < 2.0
    assert values["streamcluster"] > 5.0
    assert values["libquantum"] > 5.0
    assert all(v >= 1.0 for v in values.values())
    # streamcluster's chain threads the rand48 functions into pkmedian.
    assert "drand48_iterate" in chains["streamcluster"]
    assert "pkmedian" in chains["streamcluster"]
    # fluidanimate's chain is carried by ComputeForces.
    assert "ComputeForces" in chains["fluidanimate"]
