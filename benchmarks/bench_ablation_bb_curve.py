"""Ablation: BB-curves for the vips convolution (section IV-B2's pointer).

"The re-use data captured by Sigil shows how many data bytes need to stay in
an accelerator's local buffer after being consumed once. ... Cong et al use
the concept of BB-curves that indicate tradeoffs in increasing local buffer
area for an accelerated function against external bandwidth pressure."

Regenerates the buffer-area vs external-traffic trade for conv_gen (deep
re-use: buffers pay off) next to affine_gen (streaming: they barely do),
and shows how the breakeven speedup of Equation 1 relaxes as the buffer
absorbs re-fetches.
"""

from __future__ import annotations

import math

from _support import save_artifact
from repro.analysis import render_table
from repro.analysis.bbcurve import BBCurveProfiler
from repro.analysis.partition import BusModel
from repro.workloads import get_workload

CAPACITIES = [1, 4, 16, 64, 256, 1024, 4096]


def _profiled():
    profiler = BBCurveProfiler(["conv_gen", "affine_gen"], line_size=64)
    get_workload("vips", "simsmall").run(profiler)
    return profiler


def test_ablation_bb_curve(benchmark):
    profiler = benchmark.pedantic(_profiled, rounds=3, iterations=1)

    bus = BusModel(bytes_per_cycle=8.0)
    sections = []
    curves = {}
    for fn in ("conv_gen", "affine_gen"):
        curve = profiler.curve(fn, capacities=CAPACITIES)
        curves[fn] = curve
        rows = []
        for pt in curve.points:
            s_be = curve.breakeven_at(pt.buffer_lines, bus)
            rows.append((
                pt.buffer_lines,
                f"{pt.buffer_bytes // 1024}KB" if pt.buffer_bytes >= 1024
                else f"{pt.buffer_bytes}B",
                pt.external_bytes,
                f"{pt.external_fraction:.1%}",
                f"{s_be:.3f}" if math.isfinite(s_be) else "inf",
            ))
        sections.append(render_table(
            ["buffer_lines", "buffer_area", "external_B", "refetch%",
             "S(breakeven)"],
            rows,
            title=f"-- {fn} (total traffic {curve.total_bytes}B, "
                  f"{curve.ops} ops) --",
        ))
    save_artifact(
        "ablation_bb_curve.txt",
        "Ablation: BB-curves — buffer area vs external bandwidth\n\n"
        + "\n\n".join(sections),
    )

    conv, affine = curves["conv_gen"], curves["affine_gen"]
    # conv_gen's deep re-use: a modest buffer removes most external traffic.
    conv_saving = 1 - conv.external_bytes_at(1024) / conv.external_bytes_at(1)
    affine_saving = 1 - affine.external_bytes_at(1024) / affine.external_bytes_at(1)
    assert conv_saving > 0.5
    assert conv_saving > affine_saving
    # Breakeven monotonically relaxes (or stays) as the buffer grows.
    values = [conv.breakeven_at(c) for c in CAPACITIES]
    finite = [v for v in values if math.isfinite(v)]
    assert finite == sorted(finite, reverse=True)
