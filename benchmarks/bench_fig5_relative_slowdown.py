"""Figure 5: slowdown of Sigil relative to Callgrind (simsmall + simmedium).

Paper: "we observe an average slowdown of 8-9x and remains fairly
consistent given Sigil's ambitious goals.  dedup is an outlier which
incurred more slowdown as we enabled the memory limiting command line
option."

Both numerator and denominator are per-phase *execute* seconds from the
harness's ProfiledRun split, so the ratio compares pure tool event-path
cost, untainted by workload setup or aggregation time.
"""

from __future__ import annotations

from _support import OVERHEAD_SUITE, save_artifact, timed_callgrind, timed_sigil
from repro.analysis import render_barchart, render_table
from repro.core import SigilConfig, SigilProfiler
from repro.workloads import get_workload


def _ratio(name: str, size: str) -> float:
    sigil, _ = timed_sigil(name, size)
    callgrind = timed_callgrind(name, size)
    return sigil / callgrind


def test_fig5_relative_slowdown(benchmark):
    def sigil_simmedium():
        profiler = SigilProfiler(SigilConfig())
        get_workload("vips", "simmedium").run(profiler)

    benchmark.pedantic(sigil_simmedium, rounds=3, iterations=1)

    rows = []
    ratios_small = []
    ratios_medium = []
    for name in OVERHEAD_SUITE:
        small = _ratio(name, "simsmall")
        medium = _ratio(name, "simmedium")
        ratios_small.append(small)
        ratios_medium.append(medium)
        rows.append((name, f"{small:.2f}x", f"{medium:.2f}x"))
    rows.append(
        ("average",
         f"{sum(ratios_small) / len(ratios_small):.2f}x",
         f"{sum(ratios_medium) / len(ratios_medium):.2f}x")
    )
    table = render_table(
        ["benchmark", "simsmall", "simmedium"],
        rows,
        title="Figure 5: slowdown of Sigil relative to Callgrind",
    )
    chart = render_barchart(
        {name: r for name, r in zip(OVERHEAD_SUITE, ratios_small)},
        title="(simsmall ratios)",
        fmt="{:.2f}x",
    )
    save_artifact("fig5_relative_slowdown.txt", table + "\n\n" + chart)

    # Shape: Sigil is slower than Callgrind nearly everywhere (facesim's
    # block transfers are the documented exception), the average ratio is
    # clearly above 1, and the ratio stays broadly consistent across sizes
    # ("remains fairly consistent given Sigil's ambitious goals").
    assert sum(1 for r in ratios_small if r > 1.0) >= len(ratios_small) - 1
    assert sum(1 for r in ratios_medium if r > 1.0) >= len(ratios_medium) - 2
    assert sum(ratios_small) / len(ratios_small) > 1.3
    assert sum(ratios_medium) / len(ratios_medium) > 1.3
