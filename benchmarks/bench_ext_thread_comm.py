"""Extension: thread-to-thread communication matrix for parallel SPH.

The paper analyses serial workloads but frames threads as first-class
communicating entities; this bench runs the threaded fluidanimate variant
(grid partitions + ghost-zone exchange) and regenerates the thread
communication matrix a NoC designer would start from.  Ghost exchange is
nearest-neighbour, so the matrix must be ring-shaped: adjacent threads
dominate, non-adjacent pairs are (near) silent.
"""

from __future__ import annotations

from _support import save_artifact
from repro.analysis import render_table
from repro.analysis.threads import per_thread_ops, thread_comm_matrix
from repro.core import SigilConfig, SigilProfiler
from repro.workloads.fluidanimate_parallel import ParallelFluidanimate


def _run():
    profiler = SigilProfiler(SigilConfig(event_mode=True))
    ParallelFluidanimate("simsmall").run(profiler)
    return profiler.profile()


def test_ext_thread_comm_matrix(benchmark):
    profile = benchmark.pedantic(_run, rounds=3, iterations=1)

    summary = thread_comm_matrix(profile.events)
    workers = [t for t in summary.threads if t > 0]
    rows = []
    for src in workers:
        rows.append(
            [f"T{src}"]
            + [summary.matrix.get((src, dst), 0) for dst in workers]
        )
    table = render_table(
        ["from\\to"] + [f"T{t}" for t in workers],
        rows,
        title="Extension: thread communication matrix, parallel fluidanimate "
              "(unique bytes)",
    )
    loads = per_thread_ops(profile.events)
    balance = "\n".join(f"T{t}: {loads.get(t, 0)} ops" for t in workers)
    save_artifact(
        "ext_thread_comm.txt", table + "\n\nper-thread load:\n" + balance
    )

    n = len(workers)
    assert n == 4
    ring_bytes = 0
    far_bytes = 0
    for (src, dst), count in summary.matrix.items():
        if src == dst or 0 in (src, dst):
            continue
        distance = min((src - dst) % n, (dst - src) % n)
        if distance == 1:
            ring_bytes += count
        else:
            far_bytes += count
    assert ring_bytes > 0, "ghost exchange must cross thread boundaries"
    assert ring_bytes > 3 * far_bytes, "communication must be neighbour-dominated"
    # Static partitioning balances the load.
    ops = [loads.get(t, 0) for t in workers]
    assert max(ops) - min(ops) <= 0.05 * max(ops)
