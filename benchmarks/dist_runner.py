"""A sleep-bound tool runner for distributed-campaign benchmarks and smokes.

Importing this module registers the ``dist-sleep`` tool: each job sleeps
``REPRO_DIST_SLEEP_S`` seconds (default 0.05) and publishes a meta-only
store entry.  Sleeping instead of computing makes campaign throughput
scale with *worker count* rather than core count, which is what
``bench_dist.py`` and ``make dist-smoke`` need to demonstrate: the
coordinator/worker machinery itself -- sharding, merging, stealing --
not the host's parallel arithmetic.

Reached via ``--runner benchmarks.dist_runner`` (or ``dist_runner`` when
``benchmarks/`` is on ``sys.path``): the coordinator imports it for spec
validation, and every worker imports it before forking job children.
"""

from __future__ import annotations

import os
import time

from repro.campaign.executor import register_runner
from repro.harness import ProfiledRun
from repro.workloads.registry import get_workload

#: Tool name jobs must use to reach this runner.
TOOL = "dist-sleep"

#: Seconds each job sleeps; override to tune bench duration.
SLEEP_ENV = "REPRO_DIST_SLEEP_S"


def _sleep_seconds() -> float:
    try:
        return float(os.environ.get(SLEEP_ENV, "0.05"))
    except ValueError:
        return 0.05


def run_sleep_job(job, telemetry) -> ProfiledRun:
    """Sleep for the configured duration; publish a meta-only result."""
    seconds = _sleep_seconds()
    started = time.monotonic()
    time.sleep(seconds)
    return ProfiledRun(
        workload=get_workload(job.workload, job.size),
        sigil=None,
        callgrind=None,
        execute_seconds=time.monotonic() - started,
    )


register_runner(TOOL, run_sleep_job)
