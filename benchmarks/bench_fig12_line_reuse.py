"""Figure 12: breakdown of memory lines based on re-use counts.

Paper: "Sigil can also capture line-level re-use when configured with the
cache line size. ... Figure 12 shows the breakdown of lines in memory by
reuse count.  While almost all benchmarks have lines re-used more than
10,000 times, Dedup, Bodytrack and Streamcluster have a significant number
of lines that are re-used fewer times."
"""

from __future__ import annotations

from _support import OVERHEAD_SUITE, line_run, save_artifact
from repro.analysis import render_stacked_bars


def test_fig12_line_reuse(benchmark):
    benchmark.pedantic(lambda: line_run("dedup"), rounds=3, iterations=1)

    bars = {}
    for name in OVERHEAD_SUITE:
        profiler = line_run(name)
        breakdown = profiler.reuse_breakdown()
        total = sum(breakdown.values()) or 1
        bars[name] = {
            "<10": breakdown["0"] + breakdown["1-9"],
            "<100": breakdown["10-99"],
            "<1000": breakdown["100-999"],
            "<10000": breakdown["1000-9999"],
            ">10000": breakdown[">=10000"],
        }
    chart = render_stacked_bars(
        bars,
        title="Figure 12: breakdown of memory lines by re-use count "
              "(64B lines, simsmall)",
        width=40,
    )
    save_artifact("fig12_line_reuse.txt", chart)

    def low_share(b):
        total = sum(b.values()) or 1
        return (b["<10"] + b["<100"]) / total

    # Shape: dedup, bodytrack and streamcluster carry a significant share
    # of low-re-use lines relative to the heaviest re-users.
    lows = {name: low_share(b) for name, b in bars.items()}
    heavy = min(lows, key=lows.get)
    for name in ("dedup", "bodytrack", "streamcluster"):
        assert lows[name] > lows[heavy], name
    assert sum(1 for share in lows.values() if share > 0.2) >= 3


def test_fig12_line_size_sensitivity(benchmark):
    """Line granularity is architecture-dependent: larger lines fold more
    bytes together, so the line count drops monotonically."""
    sizes = (32, 64, 128)
    counts = benchmark.pedantic(
        lambda: [line_run("vips", line_size=s).n_lines for s in sizes],
        rounds=1, iterations=1,
    )
    assert counts[0] > counts[1] > counts[2]
