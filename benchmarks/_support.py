"""Shared machinery for the experiment benches.

Every bench regenerates one table or figure from the paper's evaluation:
it profiles the workloads it needs (cached across benches within one pytest
session), renders the paper-style table/series to stdout, and saves the
text artifact under ``benchmarks/results/``.  The pytest-benchmark fixture
times the operative tool step so ``--benchmark-only`` also yields a
performance baseline for the tooling itself.
"""

from __future__ import annotations

import functools
import time
from pathlib import Path
from typing import Dict, Tuple

from repro.callgrind import CallgrindCollector
from repro.core import LineReuseProfiler, SigilConfig, SigilProfiler
from repro.harness import ProfiledRun
from repro.trace import NullObserver, ObserverPipe
from repro.workloads import get_workload

RESULTS_DIR = Path(__file__).parent / "results"

#: Workloads the paper's overhead/reuse figures sweep (PARSEC subset used
#: throughout section III-A / IV-B).
OVERHEAD_SUITE = (
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "facesim",
    "ferret",
    "fluidanimate",
    "freqmine",
    "raytrace",
    "streamcluster",
    "swaptions",
    "vips",
    "x264",
)

#: Benchmarks analysed in the critical-path study (Figure 13): "a few
#: PARSEC benchmarks and the libquantum benchmark from SPEC".
PARALLELISM_SUITE = (
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "fluidanimate",
    "raytrace",
    "streamcluster",
    "swaptions",
    "x264",
    "libquantum",
)


@functools.lru_cache(maxsize=None)
def full_run(name: str, size: str = "simsmall") -> ProfiledRun:
    """Sigil (reuse+event) + Callgrind profile of one workload, cached."""
    workload = get_workload(name, size)
    sigil = SigilProfiler(SigilConfig(reuse_mode=True, event_mode=True))
    cg = CallgrindCollector()
    start = time.perf_counter()
    workload.run(ObserverPipe([sigil, cg]))
    wall = time.perf_counter() - start
    return ProfiledRun(workload, sigil.profile(), cg.profile, wall)


_TIMING_REPEATS = 3


def _best_of(run_once) -> float:
    """Minimum of a few repetitions: the least-noise wall-clock estimate."""
    return min(run_once() for _ in range(_TIMING_REPEATS))


@functools.lru_cache(maxsize=None)
def timed_native(name: str, size: str = "simsmall") -> float:
    def once() -> float:
        workload = get_workload(name, size)
        start = time.perf_counter()
        workload.run(NullObserver())
        return time.perf_counter() - start

    return _best_of(once)


@functools.lru_cache(maxsize=None)
def timed_callgrind(name: str, size: str = "simsmall") -> float:
    def once() -> float:
        workload = get_workload(name, size)
        start = time.perf_counter()
        workload.run(CallgrindCollector())
        return time.perf_counter() - start

    return _best_of(once)


@functools.lru_cache(maxsize=None)
def timed_sigil(
    name: str, size: str = "simsmall", reuse: bool = False
) -> Tuple[float, SigilProfiler]:
    best = None
    best_profiler = None
    for _ in range(_TIMING_REPEATS):
        workload = get_workload(name, size)
        profiler = SigilProfiler(SigilConfig(reuse_mode=reuse))
        start = time.perf_counter()
        workload.run(profiler)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            best_profiler = profiler
    return best, best_profiler


@functools.lru_cache(maxsize=None)
def line_run(name: str, size: str = "simsmall", line_size: int = 64) -> LineReuseProfiler:
    profiler = LineReuseProfiler(line_size)
    get_workload(name, size).run(profiler)
    return profiler


def save_artifact(filename: str, text: str) -> None:
    """Persist a rendered table/figure and echo it for the console."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n")
    print()
    print(text)
