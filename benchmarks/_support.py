"""Shared machinery for the experiment benches.

Every bench regenerates one table or figure from the paper's evaluation:
it profiles the workloads it needs (cached across benches within one pytest
session), renders the paper-style table/series to stdout, and saves the
text artifact under ``benchmarks/results/``.  The pytest-benchmark fixture
times the operative tool step so ``--benchmark-only`` also yields a
performance baseline for the tooling itself.

Timing now goes through :func:`repro.harness.profile_workload`'s per-phase
clock, so the overhead figures charge only the *execute* phase to the tool
(workload construction and profile aggregation are reported separately).
Every cached full profile and every best-of timing appends one JSON line to
``benchmarks/results/manifests.jsonl`` -- the longitudinal self-overhead
record that lets future PRs prove a hot-path change actually helped.

Full profiles are shared with the campaign engine: :func:`full_run` keys
each (workload, size) cell as a campaign :class:`~repro.campaign.Job` and
round-trips it through the :class:`~repro.campaign.ResultStore` under
``benchmarks/results/store``.  The first full-suite run (or any `repro
campaign run` against the same store) populates it; every later bench
session starts warm and recomputes nothing.  Timing measurements
(``timed_*``) are deliberately **never** served from the store -- a cached
wall-clock is a lie -- only the profiles are.
"""

from __future__ import annotations

import functools
import time
from pathlib import Path
from typing import Tuple

from repro.campaign import Job, ResultStore
from repro.core import LineReuseProfiler, SigilConfig
from repro.harness import ProfiledRun, native_run, profile_workload
from repro.telemetry import Telemetry, append_jsonl, git_rev
from repro.workloads import get_workload

RESULTS_DIR = Path(__file__).parent / "results"
MANIFESTS_LOG = RESULTS_DIR / "manifests.jsonl"

#: Shared profile cache; `repro campaign run --store benchmarks/results/store`
#: warms exactly the cells the benches read.
STORE = ResultStore(RESULTS_DIR / "store")

#: The Sigil configuration every figure bench profiles under.
FULL_CONFIG = {"reuse_mode": True, "event_mode": True}

#: Workloads the paper's overhead/reuse figures sweep (PARSEC subset used
#: throughout section III-A / IV-B).
OVERHEAD_SUITE = (
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "facesim",
    "ferret",
    "fluidanimate",
    "freqmine",
    "raytrace",
    "streamcluster",
    "swaptions",
    "vips",
    "x264",
)

#: Benchmarks analysed in the critical-path study (Figure 13): "a few
#: PARSEC benchmarks and the libquantum benchmark from SPEC".
PARALLELISM_SUITE = (
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "fluidanimate",
    "raytrace",
    "streamcluster",
    "swaptions",
    "x264",
    "libquantum",
)


def append_manifest_line(record: dict) -> None:
    """Append one JSON line to the perf-trajectory log (manifests.jsonl).

    Goes through the shared lock-guarded helper so parallel campaign
    workers and bench sessions can interleave whole lines, never bytes.
    """
    append_jsonl(MANIFESTS_LOG, record)


def _timing_record(tool: str, name: str, size: str, run: ProfiledRun) -> dict:
    """A compact one-line record of one best-of timing measurement."""
    return {
        "kind": "timing",
        "tool": tool,
        "workload": name,
        "size": size,
        "setup_seconds": run.setup_seconds,
        "execute_seconds": run.execute_seconds,
        "aggregate_seconds": run.aggregate_seconds,
        "git_rev": git_rev(),
        "created_unix": time.time(),
    }


def full_job(name: str, size: str = "simsmall") -> Job:
    """The campaign job describing one bench cell's full profile."""
    return Job(workload=name, size=size, tool="sigil+callgrind",
               config=dict(FULL_CONFIG))


@functools.lru_cache(maxsize=None)
def full_run(name: str, size: str = "simsmall") -> ProfiledRun:
    """Sigil (reuse+event) + Callgrind profile of one workload, cached.

    Served from the shared on-disk result store when a previous bench
    session or campaign already computed this cell; profiled live (and
    stored) otherwise.  The in-process ``lru_cache`` on top keeps repeat
    lookups within one pytest session free.
    """
    job = full_job(name, size)
    cached = STORE.get(job.key)
    if cached is not None:
        return cached.profiled_run()
    run = profile_workload(
        name,
        size,
        config=SigilConfig(**FULL_CONFIG),
        telemetry=Telemetry(),
    )
    STORE.put_run(job, run)
    if run.manifest is not None:
        append_manifest_line(run.manifest.to_dict())
    return run


_TIMING_REPEATS = 3


def _best_run(make_run) -> ProfiledRun:
    """Of a few repetitions, the run with the least-noise execute phase."""
    best = None
    for _ in range(_TIMING_REPEATS):
        run = make_run()
        if best is None or run.execute_seconds < best.execute_seconds:
            best = run
    return best


@functools.lru_cache(maxsize=None)
def timed_native(name: str, size: str = "simsmall") -> float:
    """Execute-phase seconds of the uninstrumented run (best of a few)."""
    run = _best_run(lambda: native_run(name, size))
    append_manifest_line(_timing_record("native", name, size, run))
    return run.execute_seconds


@functools.lru_cache(maxsize=None)
def timed_callgrind(name: str, size: str = "simsmall") -> float:
    """Execute-phase seconds under the Callgrind equivalent alone."""
    run = _best_run(
        lambda: profile_workload(name, size, with_sigil=False)
    )
    append_manifest_line(_timing_record("callgrind", name, size, run))
    return run.execute_seconds


@functools.lru_cache(maxsize=None)
def timed_sigil(
    name: str, size: str = "simsmall", reuse: bool = False
) -> Tuple[float, ProfiledRun]:
    """Execute-phase seconds under Sigil alone, plus the fastest run.

    Timing runs use null telemetry so the observer fan-out is exactly the
    tool under measurement -- no event counter rides in the pipe.
    """
    run = _best_run(
        lambda: profile_workload(
            name, size,
            config=SigilConfig(reuse_mode=reuse),
            with_callgrind=False,
        )
    )
    append_manifest_line(
        _timing_record("sigil-reuse" if reuse else "sigil", name, size, run)
    )
    return run.execute_seconds, run


@functools.lru_cache(maxsize=None)
def line_run(name: str, size: str = "simsmall", line_size: int = 64) -> LineReuseProfiler:
    profiler = LineReuseProfiler(line_size)
    get_workload(name, size).run(profiler)
    return profiler


def save_artifact(filename: str, text: str) -> None:
    """Persist a rendered table/figure and echo it for the console."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n")
    print()
    print(text)
