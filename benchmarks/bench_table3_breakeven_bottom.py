"""Table III: breakeven speedup for the worst 5 functions per benchmark.

Paper: "It can be seen that the functions are mostly utility functions such
as constructors (e.g. std::vector), destructors (e.g. free) and
initializers (e.g. std::string::assign).  These same functions also exhibit
less computational intensity."
"""

from __future__ import annotations

import math

from _support import full_run, save_artifact
from repro.analysis import render_table, trim_calltree

BENCHMARKS = ("blackscholes", "bodytrack", "canneal", "dedup")

#: Utility symbols the paper's Table III is populated with.
UTILITY_NAMES = {
    "free", "operator new", "std::vector", "std::basic_string",
    "std::string::assign", "std::locale::locale", "memcpy", "DMatrix",
    "_IO_file_xsgetn", "_IO_sputbackc", "dl_addr", "hashtable_search",
    "__mpn_lshift", "__mpn_rshift", "isnan", "memmove", "memchr",
    "std::string::compare",
}


def _bottom5(name: str):
    run = full_run(name)
    trimmed = trim_calltree(run.sigil, run.callgrind)
    return trimmed.sorted_candidates(worst_first=True)[:5]


def test_table3_breakeven_bottom(benchmark):
    benchmark.pedantic(lambda: [_bottom5(n) for n in BENCHMARKS], rounds=3, iterations=1)

    sections = []
    all_bottoms = {}
    for name in BENCHMARKS:
        bottom = _bottom5(name)
        all_bottoms[name] = bottom
        rows = [
            (c.name,
             f"{c.breakeven:.3f}" if math.isfinite(c.breakeven) else "inf",
             c.costs.ops,
             c.costs.unique_comm_bytes)
            for c in bottom
        ]
        sections.append(
            render_table(
                ["function", "S(breakeven)", "incl_ops", "unique_comm_B"],
                rows,
                title=f"-- {name} --",
            )
        )
    text = "Table III: breakeven speedup for worst 5 functions (simsmall)\n\n"
    text += "\n\n".join(sections)
    save_artifact("table3_breakeven_bottom.txt", text)

    # Shape checks: the worst candidates are mostly utility functions, and
    # clearly worse than each benchmark's best candidate.  dedup's trimmed
    # tree has few candidates (a narrow pipeline), so one utility suffices
    # there -- the paper's dedup rows are hashtable_search and stdio.
    min_utility = {"blackscholes": 2, "bodytrack": 2, "canneal": 2, "dedup": 1}
    for name, bottom in all_bottoms.items():
        run = full_run(name)
        trimmed = trim_calltree(run.sigil, run.callgrind)
        best = trimmed.sorted_candidates()[0].breakeven
        assert bottom[0].breakeven > best
        utility_hits = sum(1 for c in bottom if c.name in UTILITY_NAMES)
        assert utility_hits >= min_utility[name], (
            f"{name}: expected utility functions at the bottom, got "
            f"{[c.name for c in bottom]}"
        )
    assert any(c.name == "hashtable_search" for c in all_bottoms["dedup"])
