"""Ablation: per-transfer bus latency vs. candidate granularity.

The paper's offload model charges bandwidth only; real SoC buses also pay a
fixed latency per transfer.  Since a candidate pays that latency once per
*call*, latency punishes fine-grained candidates (thousands of tiny calls)
far more than coarse merged sub-trees -- quantifying why the merging model
of section II-C1 ("an accelerator ... should include all of the functions
in the sub-tree") matters beyond bandwidth alone.
"""

from __future__ import annotations

import math

from _support import full_run, save_artifact
from repro.analysis import render_table, trim_calltree
from repro.analysis.partition import (
    PARTITION_CYCLE_MODEL,
    BusModel,
    breakeven_speedup,
)

LATENCIES = (0.0, 20.0, 100.0)


def _breakeven(costs, latency: float) -> float:
    bus = BusModel(bytes_per_cycle=8.0, per_transfer_latency=latency)
    t_sw = PARTITION_CYCLE_MODEL.estimate(
        costs.instructions, costs.branch_misses, costs.l1_misses, costs.ll_misses
    )
    return breakeven_speedup(
        t_sw,
        bus.offload_cycles(costs.unique_input_bytes, costs.calls),
        bus.offload_cycles(costs.unique_output_bytes, costs.calls),
    )


def test_ablation_bus_latency(benchmark):
    run = full_run("blackscholes")
    benchmark.pedantic(
        lambda: trim_calltree(run.sigil, run.callgrind), rounds=3, iterations=1
    )

    trimmed = trim_calltree(run.sigil, run.callgrind)
    candidates = trimmed.sorted_candidates()
    rows = []
    sweeps = {}
    for cand in candidates:
        values = [_breakeven(cand.costs, lat) for lat in LATENCIES]
        sweeps[cand.name] = (cand.costs.calls, values)
        rows.append(
            [cand.name, cand.costs.calls]
            + [f"{v:.3f}" if math.isfinite(v) else "inf" for v in values]
        )
    table = render_table(
        ["function", "calls"] + [f"lat={lat:g}cy" for lat in LATENCIES],
        rows,
        title="Ablation: blackscholes breakeven vs per-transfer bus latency",
    )
    save_artifact("ablation_bus_latency.txt", table)

    # Latency never helps.
    for name, (_, values) in sweeps.items():
        finite = [v for v in values if math.isfinite(v)]
        assert finite == sorted(finite), name
    # Fine-grained candidates (many calls) degrade faster than coarse ones.
    # Compare growth from lat=0 to the first nonzero latency among
    # candidates that stay finite there.
    scored = [
        (calls, values[1] / values[0])
        for calls, values in sweeps.values()
        if math.isfinite(values[0]) and math.isfinite(values[1])
    ]
    assert len(scored) >= 2
    many_calls = max(scored, key=lambda cv: cv[0])
    few_calls = min(scored, key=lambda cv: cv[0])
    assert many_calls[0] > few_calls[0]
    assert many_calls[1] > few_calls[1]
