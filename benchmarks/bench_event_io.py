"""Event-log I/O throughput: text v1 vs binary columnar v2.

Not a paper artifact -- a performance baseline for the reproduction's own
load--analyze path.  The workload is a synthetic ≥1M-segment event log with
the shape the batched trace transport produces (a long order/call chain
with periodic data edges), measured end to end: serialise, load back, and
run the longest-path critical-path analysis on the loaded form.

Run directly to publish machine-readable numbers::

    PYTHONPATH=src python benchmarks/bench_event_io.py

merges an ``event_io`` section into ``BENCH_throughput.json`` at the repo
root (preserving the observer-throughput numbers published by
``bench_tool_throughput.py``).  ``--check`` exits non-zero if the binary
load+critical-path is not at least ``--min-speedup`` times faster than the
text path (the CI regression smoke; binary must never be slower).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis import analyze_critical_path
from repro.core.segments import (
    DATA_EDGE_DTYPE,
    OC_EDGE_DTYPE,
    SEG_DTYPE,
    EventArrays,
)
from repro.io import dump_events, dump_events_bin, load_event_arrays

N_SEGMENTS = 1_000_000
DATA_EDGE_STRIDE = 16  # one data edge per this many segments
DATA_EDGE_SPAN = 64  # producer runs this far behind its consumer


def synth_log(n_segments: int = N_SEGMENTS) -> EventArrays:
    """A deterministic event log shaped like a long profiled run.

    Segments form one order/call chain (alternating kinds, as interleaved
    fragments of nested calls produce), with a data edge every
    ``DATA_EDGE_STRIDE`` segments reaching ``DATA_EDGE_SPAN`` back -- enough
    edge variety that the critical-path DP sees realistic predecessor
    groups.
    """
    ids = np.arange(n_segments, dtype=np.int64)
    segs = np.empty(n_segments, dtype=SEG_DTYPE)
    segs["ctx"] = ids % 997
    segs["call"] = ids
    segs["start"] = ids * 3
    segs["ops"] = (ids * 7) % 100 + 1
    segs["thread"] = 0

    oc = np.empty(max(n_segments - 1, 0), dtype=OC_EDGE_DTYPE)
    oc["kind"] = (ids[1:] % 2).astype(np.int8)
    oc["src"] = ids[:-1]
    oc["dst"] = ids[1:]

    dst = np.arange(DATA_EDGE_SPAN, n_segments, DATA_EDGE_STRIDE, dtype=np.int64)
    data = np.empty(len(dst), dtype=DATA_EDGE_DTYPE)
    data["src"] = dst - DATA_EDGE_SPAN
    data["dst"] = dst
    data["bytes"] = (dst % 512) + 8

    return EventArrays(segs=segs, ordercall=oc, data=data)


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def measure(n_segments: int = N_SEGMENTS, workdir: Path = Path(".")) -> dict:
    """Dump/load/analyze timings for both formats on one synthetic log."""
    arrays = synth_log(n_segments)
    events = arrays.to_eventlog()  # object form, needed by the text writer
    text_path = workdir / "bench_events.v1.events"
    bin_path = workdir / "bench_events.v2.events"

    text_dump_s, _ = _timed(lambda: dump_events(events, text_path))
    bin_dump_s, _ = _timed(lambda: dump_events_bin(arrays, bin_path))

    def load_and_analyze(path):
        loaded = load_event_arrays(path)
        return analyze_critical_path(loaded)

    text_load_s, text_result = _timed(lambda: load_and_analyze(text_path))
    bin_load_s, bin_result = _timed(lambda: load_and_analyze(bin_path))
    if (
        text_result.critical_length != bin_result.critical_length
        or text_result.serial_length != bin_result.serial_length
    ):
        raise AssertionError(
            "text and binary forms analysed differently: "
            f"{text_result.critical_length}/{text_result.serial_length} vs "
            f"{bin_result.critical_length}/{bin_result.serial_length}"
        )

    report = {
        "n_segments": n_segments,
        "n_edges": int(len(arrays.ordercall) + len(arrays.data)),
        "text": {
            "dump_s": round(text_dump_s, 3),
            "load_critpath_s": round(text_load_s, 3),
            "file_bytes": text_path.stat().st_size,
        },
        "binary": {
            "dump_s": round(bin_dump_s, 3),
            "load_critpath_s": round(bin_load_s, 3),
            "file_bytes": bin_path.stat().st_size,
        },
        "load_critpath_speedup": round(text_load_s / bin_load_s, 2),
        "dump_speedup": round(text_dump_s / bin_dump_s, 2),
    }
    text_path.unlink()
    bin_path.unlink()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="publish event-log I/O throughput (text v1 vs binary v2)"
    )
    root = Path(__file__).resolve().parent.parent
    parser.add_argument(
        "-o", "--out",
        default=str(root / "BENCH_throughput.json"),
        help="JSON file to merge the event_io section into",
    )
    parser.add_argument(
        "--segments", type=int, default=N_SEGMENTS,
        help=f"log size in segments (default {N_SEGMENTS})",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless binary load+critical-path beats the "
             "text path by at least --min-speedup (the CI perf smoke)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.0,
        help="minimum binary-over-text load speedup for --check (default 1.0)",
    )
    args = parser.parse_args(argv)

    out = Path(args.out)
    report = measure(args.segments, workdir=out.parent)

    merged = {}
    if out.exists():
        merged = json.loads(out.read_text())
    merged["event_io"] = dict(
        report, generated_by="benchmarks/bench_event_io.py"
    )
    out.write_text(json.dumps(merged, indent=2) + "\n")

    for fmt in ("text", "binary"):
        row = report[fmt]
        print(
            f"{fmt:<6}  dump {row['dump_s']:>7.3f}s"
            f"  load+critpath {row['load_critpath_s']:>7.3f}s"
            f"  {row['file_bytes']:>12,} bytes"
        )
    print(
        f"binary over text: dump x{report['dump_speedup']}, "
        f"load+critpath x{report['load_critpath_speedup']}"
    )
    print(f"wrote {out}")

    if args.check and report["load_critpath_speedup"] < args.min_speedup:
        print(
            f"--check: binary load+critical-path is only "
            f"x{report['load_critpath_speedup']} vs text "
            f"(required >= x{args.min_speedup}); the binary path has "
            f"regressed",
            file=sys.stderr,
        )
        return 1
    if args.check:
        print(
            f"--check: binary >= x{args.min_speedup} over text "
            f"(x{report['load_critpath_speedup']}) OK"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
