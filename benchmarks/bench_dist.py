"""Distributed-campaign scaling: N local workers vs the single-host executor.

Not a paper artifact -- the performance gate for
:mod:`repro.campaign.dist`.  Expands a cold matrix of sleep-bound jobs
(:mod:`dist_runner`'s ``dist-sleep`` tool, so throughput scales with
worker count rather than this machine's core count), runs it once through
the single-host executor with one worker and once through the distributed
coordinator with N :class:`LocalBackend` workers, and reports wall times,
jobs/s and the speedup.  Both runs are cold (fresh stores) and end with a
``verify_all`` pass over the merged store, so the number also certifies
that N-way sharding plus merge-back loses and corrupts nothing.

Run directly to publish machine-readable numbers::

    PYTHONPATH=src:. python benchmarks/bench_dist.py

merges a ``dist`` section into ``BENCH_throughput.json`` at the repo
root.  ``--check`` exits non-zero unless the distributed run beats the
single-host baseline by ``MIN_SPEEDUP`` and the merged store verifies
clean (the CI scaling smoke).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

import dist_runner  # noqa: F401  -- import registers the dist-sleep tool

from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.campaign.dist import LocalBackend, run_distributed

N_JOBS = 200
N_WORKERS = 4
SLEEP_SECONDS = 0.15
MIN_SPEEDUP = 3.0


def _spec(n_jobs: int) -> CampaignSpec:
    """A cold ``n_jobs``-cell matrix: one sleep job per config variant."""
    return CampaignSpec.from_lists(
        name="bench-dist",
        workloads=["vips"],
        sizes=["simsmall"],
        tools=[dist_runner.TOOL],
        configs=[{"batch_size": 1024 + i} for i in range(n_jobs)],
    )


def measure(
    n_jobs: int = N_JOBS,
    n_workers: int = N_WORKERS,
    sleep_seconds: float = SLEEP_SECONDS,
) -> dict:
    """Cold single-host-1-worker vs cold distributed-N-workers wall time."""
    os.environ[dist_runner.SLEEP_ENV] = str(sleep_seconds)
    # Worker subprocesses resolve ``benchmarks.dist_runner`` through the
    # repo root, wherever this bench was invoked from.
    repo_root = str(Path(__file__).resolve().parent.parent)
    extra = os.environ.get("PYTHONPATH", "")
    if repo_root not in extra.split(os.pathsep):
        os.environ["PYTHONPATH"] = os.pathsep.join(
            p for p in (repo_root, extra) if p
        )
    jobs = _spec(n_jobs).jobs()
    workdir = Path(tempfile.mkdtemp(prefix="repro-bench-dist-"))
    try:
        baseline_store = ResultStore(workdir / "baseline")
        t0 = time.perf_counter()
        baseline = run_campaign(jobs, baseline_store, workers=1)
        baseline_s = time.perf_counter() - t0
        if not baseline.ok:
            raise RuntimeError(f"baseline run failed: {baseline.summary('')}")

        dist_store = ResultStore(workdir / "dist")
        t0 = time.perf_counter()
        dist = run_distributed(
            jobs,
            dist_store,
            backends=[LocalBackend() for _ in range(n_workers)],
            runner="benchmarks.dist_runner",
        )
        dist_s = time.perf_counter() - t0
        if not dist.ok:
            raise RuntimeError(f"distributed run failed: {dist.summary('')}")

        verify = dist_store.verify_all()
        return {
            "n_jobs": n_jobs,
            "n_workers": n_workers,
            "sleep_seconds": sleep_seconds,
            "single_host_seconds": round(baseline_s, 3),
            "single_host_jobs_per_sec": round(n_jobs / baseline_s, 2),
            "dist_seconds": round(dist_s, 3),
            "dist_jobs_per_sec": round(n_jobs / dist_s, 2),
            "speedup": round(baseline_s / dist_s, 2),
            "per_worker_jobs": {
                wid: stats.get("jobs", 0)
                for wid, stats in sorted(dist.workers.items())
            },
            "bytes_merged": dist.bytes_merged,
            "store_entries_verified": verify.checked,
            "store_corrupt": len(verify.corrupt),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="publish distributed-campaign scaling numbers"
    )
    root = Path(__file__).resolve().parent.parent
    parser.add_argument(
        "-o", "--out",
        default=str(root / "BENCH_throughput.json"),
        help="JSON file to merge the dist section into",
    )
    parser.add_argument(
        "--jobs", type=int, default=N_JOBS,
        help=f"matrix size in jobs (default {N_JOBS})",
    )
    parser.add_argument(
        "--workers", type=int, default=N_WORKERS,
        help=f"local workers for the distributed run (default {N_WORKERS})",
    )
    parser.add_argument(
        "--sleep", type=float, default=SLEEP_SECONDS,
        help=f"seconds each job sleeps (default {SLEEP_SECONDS})",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=f"exit non-zero unless speedup >= {MIN_SPEEDUP} and the "
             "merged store verifies clean (the CI scaling smoke)",
    )
    args = parser.parse_args(argv)

    out = Path(args.out)
    report = measure(args.jobs, args.workers, args.sleep)

    merged = {}
    if out.exists():
        merged = json.loads(out.read_text())
    merged["dist"] = dict(report, generated_by="benchmarks/bench_dist.py")
    out.write_text(json.dumps(merged, indent=2) + "\n")

    print(
        f"single    {report['n_jobs']} jobs in "
        f"{report['single_host_seconds']:.2f}s "
        f"({report['single_host_jobs_per_sec']:.1f} jobs/s, 1 worker)"
    )
    print(
        f"dist      {report['n_jobs']} jobs in {report['dist_seconds']:.2f}s "
        f"({report['dist_jobs_per_sec']:.1f} jobs/s, "
        f"{report['n_workers']} workers) -> x{report['speedup']}"
    )
    print(
        f"merge     {report['store_entries_verified']} entries verified, "
        f"{report['store_corrupt']} corrupt, "
        f"{report['bytes_merged']:,} B ingested"
    )
    print(f"wrote {out}")

    if args.check:
        failures = []
        if report["speedup"] < MIN_SPEEDUP:
            failures.append(
                f"speedup x{report['speedup']} < x{MIN_SPEEDUP} required"
            )
        if report["store_corrupt"]:
            failures.append(
                f"{report['store_corrupt']} corrupt entries after merge"
            )
        if report["store_entries_verified"] < report["n_jobs"]:
            failures.append(
                f"only {report['store_entries_verified']} of "
                f"{report['n_jobs']} results in the merged store"
            )
        if failures:
            print("--check: " + "; ".join(failures), file=sys.stderr)
            return 1
        print(
            f"--check: x{report['speedup']} >= x{MIN_SPEEDUP}, "
            f"{report['store_entries_verified']} entries clean OK"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
