"""Figure 4: slowdown of Sigil and Callgrind relative to native runs.

Paper: "Figure 4 shows the function-level profiling slowdown of Sigil and
Callgrind relative to native runs without any instrumentation of the serial
version of PARSEC workloads with the 'simsmall' input."  On the authors'
Xeon the averages were ~580x (Sigil) with Callgrind far cheaper; here
"native" is the substrate with no observer, so the ratios are much smaller
but the ordering (sigil >> callgrind >> native) and the cross-workload
consistency are the reproduced shape.

Timings are the harness's per-phase *execute* seconds (ProfiledRun's phase
split): workload construction and profile aggregation are excluded, so the
slowdown ratio isolates exactly the tool's event-path cost.
"""

from __future__ import annotations

from _support import OVERHEAD_SUITE, save_artifact, timed_callgrind, timed_native, timed_sigil
from repro.analysis import render_table
from repro.core import SigilConfig, SigilProfiler
from repro.workloads import get_workload


def _collect():
    rows = []
    sigil_slowdowns = []
    callgrind_slowdowns = []
    for name in OVERHEAD_SUITE:
        native = timed_native(name)
        callgrind = timed_callgrind(name)
        sigil, _ = timed_sigil(name)
        s_slow = sigil / native
        c_slow = callgrind / native
        sigil_slowdowns.append(s_slow)
        callgrind_slowdowns.append(c_slow)
        rows.append(
            (name, f"{native * 1e3:.1f}", f"{callgrind * 1e3:.1f}",
             f"{sigil * 1e3:.1f}", f"{c_slow:.1f}x", f"{s_slow:.1f}x")
        )
    rows.append(
        ("average", "", "", "",
         f"{sum(callgrind_slowdowns) / len(callgrind_slowdowns):.1f}x",
         f"{sum(sigil_slowdowns) / len(sigil_slowdowns):.1f}x")
    )
    return rows, sigil_slowdowns, callgrind_slowdowns


def test_fig4_slowdown_table(benchmark):
    def profile_once():
        # The operative cost Figure 4 characterises: a full Sigil pass.
        profiler = SigilProfiler(SigilConfig())
        get_workload("blackscholes", "simsmall").run(profiler)
        return profiler

    benchmark.pedantic(profile_once, rounds=3, iterations=1)

    rows, sigil_slow, cg_slow = _collect()
    table = render_table(
        ["benchmark", "native_ms", "callgrind_ms", "sigil_ms",
         "callgrind_slowdown", "sigil_slowdown"],
        rows,
        title="Figure 4: slowdown of Sigil and Callgrind relative to native "
              "(simsmall)",
    )
    save_artifact("fig4_slowdown.txt", table)

    # Shape checks: both tools always cost more than native, and Sigil costs
    # more than Callgrind almost everywhere.  facesim is the documented
    # exception: its traffic is huge block transfers, where the cache
    # simulator's per-line work rivals the vectorised shadow update (in the
    # paper's byte-at-a-time DBI setting Sigil dominates there too).
    assert all(c > 1.0 for c in cg_slow)
    assert all(s > 1.0 for s in sigil_slow)
    flipped = sum(1 for s, c in zip(sigil_slow, cg_slow) if s <= c)
    assert flipped <= 1, "at most the block-transfer outlier may flip"
    avg_sigil = sum(sigil_slow) / len(sigil_slow)
    avg_cg = sum(cg_slow) / len(cg_slow)
    assert avg_sigil > avg_cg
