"""Figure 11: data re-use lifetime distribution of "imb_XYZ2Lab" in vips.

Paper: "'imb_XYZ2Lab' has a peak at 0 re-use and a short tail ... The
'imb_XYZ2Lab' function reuses data at a higher frequency, which indicates
increased temporal locality."
"""

from __future__ import annotations

from _support import full_run, save_artifact
from repro.analysis import lifetime_histogram, render_histogram


def test_fig11_xyz2lab_histogram(benchmark):
    profile = full_run("vips").sigil
    ctx = profile.tree.by_name("imb_XYZ2Lab")[0]
    benchmark.pedantic(
        lambda: lifetime_histogram(profile, ctx.id), rounds=5, iterations=1
    )

    hist = lifetime_histogram(profile, ctx.id)
    chart = render_histogram(
        hist,
        title="Figure 11: re-use lifetime distribution of imb_XYZ2Lab "
              "(bin size 1000, log count scale)",
    )
    save_artifact("fig11_xyz2lab_hist.txt", chart)

    bins = dict(hist)
    assert bins, "imb_XYZ2Lab should show re-use (its LUT)"
    # Peak at the zero bin.
    assert max(bins, key=bins.get) == 0
    # Short tail: compare against conv_gen's spread.
    conv = max(
        profile.tree.by_name("conv_gen"),
        key=lambda n: profile.reuse.per_fn[n.id].reused_windows,
    )
    conv_hist = lifetime_histogram(profile, conv.id)
    assert hist[-1][0] < conv_hist[-1][0]
