"""Figure 9: average re-use lifetimes of the top vips functions.

Paper: "we sort the functions in vips based on their contribution to the
total amount of data re-use ... we look at the top list of functions and
examine the average lifetime of a re-used data byte ... In vips, the
'conv_gen(1)' function has the highest and 'imb_XYZ2Lab' has the smallest
average re-use lifetime."
"""

from __future__ import annotations

from _support import full_run, save_artifact
from repro.analysis import render_barchart, top_reuse_functions


def test_fig9_vips_lifetimes(benchmark):
    benchmark.pedantic(
        lambda: top_reuse_functions(full_run("vips").sigil, n=8),
        rounds=5,
        iterations=1,
    )

    profile = full_run("vips").sigil
    rankings = top_reuse_functions(profile, n=8)
    chart = render_barchart(
        {r.label: r.average_lifetime for r in rankings},
        title="Figure 9: average re-use lifetimes of top vips functions "
              "(instructions)",
        fmt="{:.0f}",
    )
    save_artifact("fig9_vips_lifetimes.txt", chart)

    # The paper compares the *top* re-users (sorted by contribution); weigh
    # only functions with a substantial share of the re-use.
    floor = max(r.reused_windows for r in rankings) * 0.01
    major = {r.label: r.average_lifetime for r in rankings if r.reused_windows >= floor}
    conv_lifetimes = [v for k, v in major.items() if k.startswith("conv_gen")]
    lab_lifetimes = [v for k, v in major.items() if k.startswith("imb_XYZ2Lab")]
    assert conv_lifetimes and lab_lifetimes
    # conv_gen highest, imb_XYZ2Lab smallest among the major re-users.
    assert max(major.values()) == max(conv_lifetimes)
    assert min(lab_lifetimes) == min(major.values())
