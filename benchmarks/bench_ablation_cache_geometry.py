"""Ablation: cache size vs. the re-use insight of section IV-B2.

The paper predicts from conv_gen's long re-use lifetimes that "the cache
size will heavily determine the performance of the function, and indeed, of
the program".  This ablation validates that platform-independent prediction
against the platform-dependent tool: sweeping the simulated D1 size, vips
(long lifetimes) recovers far more misses from extra cache than a
low-re-use workload does.
"""

from __future__ import annotations

from _support import save_artifact
from repro.analysis import render_table
from repro.callgrind import CacheConfig, CallgrindCollector
from repro.workloads import get_workload

D1_SIZES = (4 * 1024, 16 * 1024, 64 * 1024)


def _miss_rate(name: str, d1_size: int) -> float:
    collector = CallgrindCollector(
        d1=CacheConfig(size=d1_size, assoc=8, line_size=64)
    )
    get_workload(name, "simsmall").run(collector)
    total = collector.caches.d1
    return total.misses / total.accesses if total.accesses else 0.0


def test_ablation_cache_geometry(benchmark):
    benchmark.pedantic(lambda: _miss_rate("vips", 16 * 1024), rounds=3, iterations=1)

    workloads = ("vips", "blackscholes", "dedup")
    rows = []
    rates = {}
    for name in workloads:
        per_size = [_miss_rate(name, s) for s in D1_SIZES]
        rates[name] = per_size
        improvement = (per_size[0] - per_size[-1]) / per_size[0]
        rows.append(
            (name, *[f"{r:.3f}" for r in per_size], f"{improvement:.0%}")
        )
    table = render_table(
        ["workload"] + [f"D1={s // 1024}KB" for s in D1_SIZES] + ["recovered"],
        rows,
        title="Ablation: D1 miss rate vs cache size",
    )
    save_artifact("ablation_cache_geometry.txt", table)

    # Bigger caches never hurt.
    for name, per_size in rates.items():
        assert per_size == sorted(per_size, reverse=True), name
    # vips (long re-use lifetimes) gains more from cache capacity than
    # blackscholes (near-zero re-use) -- the section IV-B2 prediction.
    vips_gain = (rates["vips"][0] - rates["vips"][-1]) / rates["vips"][0]
    bs_gain = (
        (rates["blackscholes"][0] - rates["blackscholes"][-1])
        / rates["blackscholes"][0]
    )
    assert vips_gain > bs_gain
