"""Ablation: re-use distance analysis predicts cache behaviour.

Section IV-B3: per-line re-use "information can be used for re-use distance
analysis and to inform cache-replacement policies".  This bench computes
exact LRU stack-distance histograms (one platform-independent pass) and
validates their central use: the predicted miss-ratio curve matches a
simulated fully-associative LRU cache at every capacity, for real workloads.
"""

from __future__ import annotations

from _support import save_artifact
from repro.analysis import render_table
from repro.callgrind import Cache, CacheConfig
from repro.core import ReuseDistanceProfiler
from repro.trace.observer import BaseObserver
from repro.workloads import get_workload

CAPACITIES = (8, 64, 512, 4096)
LINE = 64


class _FullyAssocCacheObserver(BaseObserver):
    """Feeds every access through a fully-associative LRU cache."""

    def __init__(self, capacity_lines: int):
        self.cache = Cache(
            CacheConfig(size=capacity_lines * LINE, assoc=capacity_lines, line_size=LINE)
        )

    def _touch(self, addr: int, size: int) -> None:
        for line in self.cache.lines_of(addr, size):
            self.cache.access_line(line)

    def on_mem_read(self, addr: int, size: int) -> None:
        self._touch(addr, size)

    def on_mem_write(self, addr: int, size: int) -> None:
        self._touch(addr, size)


def _predicted(name: str) -> ReuseDistanceProfiler:
    profiler = ReuseDistanceProfiler(LINE)
    get_workload(name, "simsmall").run(profiler)
    return profiler


def _simulated_miss_ratio(name: str, capacity: int) -> float:
    observer = _FullyAssocCacheObserver(capacity)
    get_workload(name, "simsmall").run(observer)
    cache = observer.cache
    return cache.misses / cache.accesses if cache.accesses else 0.0


def test_ablation_reuse_distance(benchmark):
    benchmark.pedantic(lambda: _predicted("freqmine"), rounds=3, iterations=1)

    workloads = ("freqmine", "vips", "streamcluster")
    rows = []
    for name in workloads:
        profiler = _predicted(name)
        for capacity in CAPACITIES:
            predicted = profiler.miss_ratio(capacity)
            simulated = _simulated_miss_ratio(name, capacity)
            rows.append(
                (name, capacity, f"{predicted:.4f}", f"{simulated:.4f}")
            )
            # The defining equivalence: stack distance >= C iff LRU misses.
            assert predicted == simulated, (name, capacity)
    table = render_table(
        ["workload", "capacity_lines", "predicted_miss", "simulated_miss"],
        rows,
        title="Ablation: stack-distance MRC vs simulated fully-assoc LRU",
    )
    save_artifact("ablation_reuse_distance.txt", table)

    # MRC is monotone non-increasing in capacity.
    for name in workloads:
        profiler = _predicted(name)
        curve = [r for _, r in profiler.miss_ratio_curve(list(CAPACITIES))]
        assert curve == sorted(curve, reverse=True), name
