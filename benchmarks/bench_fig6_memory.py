"""Figure 6: memory usage for baseline function-level profiling.

Paper: "Figure 6 shows the memory usage of Sigil for workloads as we
increase the datasize.  The memory increase also remains consistent for
increased datasize.  facesim and raytrace are intensive benchmarks that use
larger amounts of memory."  We report the shadow-memory footprint (the
component Sigil adds over Callgrind) at simsmall and simmedium.
"""

from __future__ import annotations

from _support import OVERHEAD_SUITE, save_artifact, timed_sigil
from repro.analysis import render_table
from repro.core import SigilConfig, SigilProfiler
from repro.workloads import get_workload


def _shadow_kb(name: str, size: str) -> int:
    _, run = timed_sigil(name, size)
    return run.sigil.shadow_stats.shadow_bytes // 1024


def test_fig6_memory_usage(benchmark):
    def facesim_profile():
        profiler = SigilProfiler(SigilConfig())
        get_workload("facesim", "simsmall").run(profiler)
        return profiler.shadow.shadow_bytes

    benchmark.pedantic(facesim_profile, rounds=3, iterations=1)

    rows = []
    footprints = {}
    for name in OVERHEAD_SUITE:
        small = _shadow_kb(name, "simsmall")
        medium = _shadow_kb(name, "simmedium")
        footprints[name] = (small, medium)
        rows.append((name, small, medium, f"{medium / max(small, 1):.2f}x"))
    table = render_table(
        ["benchmark", "simsmall_KB", "simmedium_KB", "growth"],
        rows,
        title="Figure 6: Sigil shadow-memory footprint by input size",
    )
    save_artifact("fig6_memory.txt", table)

    # Shape checks: facesim and raytrace are the memory-intensive outliers,
    # and footprints grow (weakly) with input size.
    others = [
        footprints[n][0] for n in OVERHEAD_SUITE if n not in ("facesim", "raytrace")
    ]
    assert footprints["facesim"][0] > max(others)
    assert footprints["raytrace"][0] >= sorted(others)[len(others) // 2]
    for name, (small, medium) in footprints.items():
        assert medium >= small, name


def test_fig6_reuse_mode_overhead(benchmark):
    """Section III-A: 'With data-re-use monitoring enabled, Sigil's memory
    usage is up to 2 times larger'."""
    base = SigilProfiler(SigilConfig())
    get_workload("vips", "simsmall").run(base)

    def reuse_profile():
        profiler = SigilProfiler(SigilConfig(reuse_mode=True))
        get_workload("vips", "simsmall").run(profiler)
        return profiler

    reuse = benchmark.pedantic(reuse_profile, rounds=3, iterations=1)
    ratio = reuse.shadow.shadow_bytes / base.shadow.shadow_bytes
    assert 1.5 < ratio <= 2.5
