# Convenience targets for the Sigil reproduction.

.PHONY: install test property benches figures examples telemetry-smoke campaign-smoke serve-smoke timeline-smoke dist-smoke bench-throughput bench-event-io bench-windowed bench-dist regen-golden clean

install:
	pip install -e . || python setup.py develop

test: telemetry-smoke campaign-smoke serve-smoke timeline-smoke dist-smoke
	pytest tests/

# Prove the self-telemetry loop end to end: profile a small workload with a
# manifest, then render it back through `repro stats` (reading from stdin,
# the CI-log piping path).  The trap removes the scratch manifest whether
# the steps pass or fail.
telemetry-smoke:
	@set -e; \
	trap 'rm -f .telemetry-smoke.manifest.json' EXIT; \
	PYTHONPATH=src python -m repro profile blackscholes --size simsmall \
		--manifest-out .telemetry-smoke.manifest.json >/dev/null; \
	PYTHONPATH=src python -m repro stats - < .telemetry-smoke.manifest.json

# Prove the campaign engine end to end: a 2-worker mini-campaign over two
# small workloads, then the same campaign again -- the warm run must report
# every job as a cache hit (zero re-executions).  The trap drops the scratch
# store whether the steps pass or fail.
campaign-smoke:
	@set -e; \
	trap 'rm -rf .campaign-smoke' EXIT; \
	PYTHONPATH=src python -m repro campaign run --name smoke \
		--workloads blackscholes,streamcluster --sizes simsmall \
		--tools sigil -j 2 --store .campaign-smoke \
		| grep -q "2 done (0 cached, 2 executed, 0 failed, 0 timeout)"; \
	PYTHONPATH=src python -m repro campaign run --name smoke \
		--workloads blackscholes,streamcluster --sizes simsmall \
		--tools sigil -j 2 --store .campaign-smoke \
		| grep -q "2 done (2 cached, 0 executed, 0 failed, 0 timeout)"; \
	echo "campaign-smoke: warm re-run was 100% cache hits"

# Prove the serve daemon end to end: start it on an ephemeral port, submit
# a job over HTTP, watch its trace to completion, re-submit the same cell
# (must be a pure cache hit), then scrape /metrics and check the hit
# counter.  The trap kills the daemon and drops the scratch dir either way.
serve-smoke:
	@set -e; \
	trap 'kill $$SERVE_PID 2>/dev/null; rm -rf .serve-smoke' EXIT; \
	rm -rf .serve-smoke; mkdir -p .serve-smoke; \
	PYTHONPATH=src python -m repro serve --port 0 \
		--port-file .serve-smoke/port --store .serve-smoke/store \
		-j 2 >/dev/null 2>&1 & SERVE_PID=$$!; \
	for i in $$(seq 1 50); do \
		test -s .serve-smoke/port && break; sleep 0.1; done; \
	URL="http://$$(cat .serve-smoke/port)"; \
	JOB=$$(PYTHONPATH=src python -m repro submit blackscholes \
		--tool native --url "$$URL"); \
	PYTHONPATH=src python -m repro watch "$$JOB" --url "$$URL" \
		--timeout 60 | grep -q "completed"; \
	JOB2=$$(PYTHONPATH=src python -m repro submit blackscholes \
		--tool native --url "$$URL"); \
	PYTHONPATH=src python -m repro watch "$$JOB2" --url "$$URL" \
		--timeout 60 | grep -q "cached"; \
	PYTHONPATH=src python -m repro metrics --url "$$URL" \
		| grep -q "^repro_store_cache_hits_total 1$$"; \
	echo "serve-smoke: warm HTTP re-submit was a cache hit"

# Prove the time-resolved observability path end to end: synthesise a
# 1M-segment binary event log (written chunk-by-chunk), stream it through
# `repro timeline`, and validate that the output is a Chrome/Perfetto trace
# carrying the counter tracks.  The trap drops the scratch dir either way.
timeline-smoke:
	@set -e; \
	trap 'rm -rf .timeline-smoke' EXIT; \
	rm -rf .timeline-smoke; mkdir -p .timeline-smoke; \
	PYTHONPATH=src:benchmarks python -c "from bench_event_io import synth_log; \
		from repro.io import dump_events_bin; \
		dump_events_bin(synth_log(1_000_000), '.timeline-smoke/ev.bin')"; \
	PYTHONPATH=src python -m repro timeline .timeline-smoke/ev.bin \
		-o .timeline-smoke/ev.trace.json | grep -q "timeline written"; \
	PYTHONPATH=src python -c "import json; \
		t = json.load(open('.timeline-smoke/ev.trace.json')); \
		names = {e['name'] for e in t if e['ph'] == 'C'}; \
		assert {'WS(t) bytes', 'comm bytes/window', 'ops/window', \
			'mean reuse lifetime (ops)'} <= names, names; \
		assert all(e['ph'] in ('C', 'M') for e in t); \
		assert all(e['args'] is not None for e in t)"; \
	echo "timeline-smoke: 1M-segment log renders valid counter tracks"

# Prove the distributed executor end to end: a cold 8-job campaign sharded
# over 2 local workers with one worker killed mid-run -- the coordinator
# must detect the dead worker, steal its jobs, and still complete the whole
# matrix -- then a warm rerun (must be 100% cache hits, no workers
# launched) and a store integrity check.  Jobs are sleep-bound (the
# dist_runner bench module) so the smoke exercises sharding and stealing,
# not this machine's cores.  The trap drops the scratch store either way.
dist-smoke:
	@set -e; \
	trap 'rm -rf .dist-smoke .dist-smoke.summary' EXIT; \
	rm -rf .dist-smoke .dist-smoke.summary; \
	REPRO_DIST_SLEEP_S=0.5 PYTHONPATH=src python -m repro campaign run \
		--name dist-smoke --workloads vips,dedup \
		--sizes simsmall,simmedium --tools dist-sleep \
		--runner benchmarks.dist_runner \
		--config '{"batch_size": 1024}' --config '{"batch_size": 2048}' \
		--local-workers 2 --chaos-kill w0:1.0 --store .dist-smoke \
		2>/dev/null | tee .dist-smoke.summary \
		| grep -q "8 done (0 cached, 8 executed, 0 failed, 0 timeout)"; \
	grep -q "2 workers" .dist-smoke.summary; \
	! grep -q "0 stolen" .dist-smoke.summary; \
	REPRO_DIST_SLEEP_S=0.5 PYTHONPATH=src python -m repro campaign run \
		--name dist-smoke --workloads vips,dedup \
		--sizes simsmall,simmedium --tools dist-sleep \
		--runner benchmarks.dist_runner \
		--config '{"batch_size": 1024}' --config '{"batch_size": 2048}' \
		--local-workers 2 --store .dist-smoke 2>/dev/null \
		| grep -q "8 done (8 cached, 0 executed, 0 failed, 0 timeout)"; \
	PYTHONPATH=src python -m repro campaign verify --store .dist-smoke \
		| grep -q "all ok"; \
	echo "dist-smoke: worker kill was stolen, warm rerun 100% cached," \
		"merged store verified"

property:
	pytest tests/property/ -q

# Publish observer throughput (scalar vs batched trace transport) into
# BENCH_throughput.json at the repo root, and fail if any tool's batched
# speedup drops below its floor (>= 1x everywhere; >= 5x for the rewritten
# sigil-reuse and callgrind batch kernels).
bench-throughput:
	PYTHONPATH=src python benchmarks/bench_tool_throughput.py \
		--check sigil-baseline --check sigil-reuse --check sigil-events \
		--check callgrind --check line-reuse

# Publish event-log I/O throughput (text v1 vs binary v2 on a 1M-segment
# log) into the event_io section of BENCH_throughput.json, and fail if the
# binary load+critical-path path has regressed below the text path.
bench-event-io:
	PYTHONPATH=src python benchmarks/bench_event_io.py --check

# Publish streaming windowed-analysis throughput (segments/s and the
# tracemalloc peak of one pass over a 2M-segment log) into the windowed
# section of BENCH_throughput.json, and fail if the pass's peak memory is
# not below what materialising the tables would cost.
bench-windowed:
	PYTHONPATH=src python benchmarks/bench_windowed.py --check

# Publish distributed-campaign scaling (a cold 200-job sleep-bound matrix:
# 4 local workers vs the single-host executor) into the dist section of
# BENCH_throughput.json, and fail unless the sharded run is at least 3x
# faster and the merged store passes verification.
bench-dist:
	PYTHONPATH=src python benchmarks/bench_dist.py --check

# Rewrite the golden-profile fixtures in tests/golden/.  Run this ONLY when
# a change to the profiler's observable output is intentional, and commit
# the fixture diff with the change that caused it.  The golden tests print
# a unified diff and point here when pinned output diverges.
regen-golden:
	PYTHONPATH=src python -m tests.golden.regen

benches figures:
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/partitioning_study.py
	python examples/reuse_study.py
	python examples/critical_path_study.py
	python examples/custom_workload.py
	python examples/parallel_pipeline.py
	python -m repro run examples/toy_program.s
	python -m repro run examples/matmul.s

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks
	rm -rf .campaign-smoke .serve-smoke .repro-campaigns
	rm -rf .dist-smoke .dist-smoke.summary
	rm -f .telemetry-smoke.manifest.json *.trace.json *.collapsed
	find . -name __pycache__ -type d -exec rm -rf {} +
