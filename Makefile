# Convenience targets for the Sigil reproduction.

.PHONY: install test property benches figures examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

property:
	pytest tests/property/ -q

benches figures:
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/partitioning_study.py
	python examples/reuse_study.py
	python examples/critical_path_study.py
	python examples/custom_workload.py
	python examples/parallel_pipeline.py
	python -m repro run examples/toy_program.s
	python -m repro run examples/matmul.s

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
