#!/usr/bin/env python
"""Quickstart: profile a toy program and inspect everything Sigil sees.

Builds a small program on the mini-VM (the same shape as the paper's toy
example in Figures 1-3), runs it under the Sigil profiler alongside the
Callgrind-equivalent, and prints:

* the control data flow graph (calltree + weighted data-dependency edges),
* the per-context communication classification (unique/non-unique x
  input/output/local),
* merged sub-tree costs and breakeven speedups (Figure 2 / Equation 1),
* the dependency chains and critical path (Figure 3).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import (
    CDFG,
    analyze_critical_path,
    breakeven_speedup,
    compute_inclusive,
    render_table,
    trim_calltree,
)
from repro.callgrind import CallgrindCollector
from repro.core import SigilConfig, SigilProfiler
from repro.trace import ObserverPipe
from repro.vm import Machine, ProgramBuilder


def build_program():
    """main writes for A and C; A feeds C and D; C feeds D (Figure 1)."""
    pb = ProgramBuilder()

    main = pb.function("main")
    buf = main.const(0x1000)
    seed = main.const(21)
    main.store(seed, buf, offset=0, size=8)
    main.store(seed, buf, offset=8, size=8)
    main.call("A", args=[buf])
    main.call("C", args=[buf])
    result = main.load(buf, offset=40, size=8)
    main.ret(result)

    a = pb.function("A", n_params=1)
    v = a.load(a.param(0), offset=0, size=8)
    doubled = a.alui("mul", v, 2)
    a.store(doubled, a.param(0), offset=16, size=8)   # consumed by C
    a.store(doubled, a.param(0), offset=24, size=8)   # consumed by D
    a.call("D", args=[a.param(0)])
    a.ret()

    c = pb.function("C", n_params=1)
    x = c.load(c.param(0), offset=8, size=8)
    y = c.load(c.param(0), offset=16, size=8)
    s = c.alu("add", x, y)
    c.store(s, c.param(0), offset=32, size=8)
    c.call("D", args=[c.param(0)])
    c.ret()

    d = pb.function("D", n_params=1)
    p = d.load(d.param(0), offset=24, size=8)
    q = d.load(d.param(0), offset=32, size=8)
    total = d.alu("add", p, q)
    d.store(total, d.param(0), offset=40, size=8)
    d.ret()

    return pb.build()


def main() -> None:
    program = build_program()
    sigil = SigilProfiler(SigilConfig(reuse_mode=True, event_mode=True))
    callgrind = CallgrindCollector()
    result = Machine().run(program, ObserverPipe([sigil, callgrind]))
    profile = sigil.profile()

    print(f"program result: {result.value} "
          f"({result.instructions} instructions retired)\n")

    cdfg = CDFG(profile)
    print("=== Control data flow graph (Figure 1) ===")
    print("call edges (bold):")
    for edge in cdfg.call_edges():
        print(f"  {cdfg.label(edge.caller)} -> {cdfg.label(edge.callee)} "
              f"[{edge.calls} call(s)]")
    print("data edges (dashed, weighted by unique bytes):")
    for dedge in cdfg.data_edges():
        print(f"  {cdfg.label(dedge.writer)} --{dedge.unique_bytes}B--> "
              f"{cdfg.label(dedge.reader)}")

    print("\n=== Per-context communication ===")
    rows = []
    for node in profile.contexts():
        rows.append((
            cdfg.label(node.id),
            node.calls,
            profile.fn_comm(node.id).ops,
            profile.unique_input_bytes(node.id),
            profile.unique_output_bytes(node.id),
            profile.unique_local_bytes(node.id),
        ))
    print(render_table(
        ["context", "calls", "ops", "uniq_in_B", "uniq_out_B", "local_B"], rows
    ))

    print("\n=== Merged sub-tree costs (Figure 2) ===")
    a_node = profile.tree.find(("main", "A"))
    merged = compute_inclusive(profile, callgrind.profile, a_node)
    print(f"A merged with its sub-tree: ops={merged.ops}, "
          f"input={merged.unique_input_bytes}B, "
          f"output={merged.unique_output_bytes}B, "
          f"t_sw={merged.est_cycles:.0f} cycles")
    s_be = breakeven_speedup(
        merged.est_cycles,
        merged.unique_input_bytes / 8.0,
        merged.unique_output_bytes / 8.0,
    )
    print(f"breakeven speedup (Equation 1): {s_be:.3f}")

    trimmed = trim_calltree(profile, callgrind.profile)
    print("\naccelerator candidates (trimmed calltree leaves):")
    for cand in trimmed.sorted_candidates():
        print(f"  {cand.name}: S_be={cand.breakeven:.3f}")

    print("\n=== Dependency chains (Figure 3) ===")
    cp = analyze_critical_path(profile.events)
    print(f"serial length:   {cp.serial_length} ops")
    print(f"critical path:   {cp.critical_length} ops")
    print(f"max parallelism: {cp.max_parallelism:.2f}")
    chain = " -> ".join(cp.path_functions(profile.tree))
    print(f"critical chain (leaf to main): {chain}")


if __name__ == "__main__":
    main()
