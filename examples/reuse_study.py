#!/usr/bin/env python
"""Data re-use case study (paper section IV-B).

Reproduces the three levels of the paper's re-use drill-down:

1. suite-wide byte re-use breakdown (Figure 8),
2. the vips function ranking with average re-use lifetimes (Figure 9),
3. per-function lifetime histograms for conv_gen and imb_XYZ2Lab
   (Figures 10 and 11),
4. the architecture-dependent line-granularity view (Figure 12).

Run:  python examples/reuse_study.py
"""

from __future__ import annotations

from repro import SigilConfig, line_reuse_run, profile_workload
from repro.analysis import (
    byte_reuse_breakdown,
    lifetime_histogram,
    render_barchart,
    render_histogram,
    render_stacked_bars,
    top_reuse_functions,
    top_unique_contributors,
)

SUITE = ("blackscholes", "canneal", "dedup", "freqmine", "streamcluster",
         "swaptions", "vips", "x264")


def main() -> None:
    # -- Figure 8: byte-level re-use across the suite --------------------
    bars = {}
    for name in SUITE:
        run = profile_workload(
            name, "simsmall", config=SigilConfig(reuse_mode=True),
            with_callgrind=False,
        )
        bars[name] = byte_reuse_breakdown(run.sigil)
    print(render_stacked_bars(
        bars, title="Figure 8: breakdown of data bytes by re-use count"
    ))

    # -- Figures 9-11: drill into vips -------------------------------------
    vips = profile_workload(
        "vips", "simsmall", config=SigilConfig(reuse_mode=True),
        with_callgrind=False,
    ).sigil

    print("\nvips: top contributors to unique data bytes "
          "(the paper's ~10% trio):")
    for label, volume, share in top_unique_contributors(vips, n=6):
        print(f"  {label:20s} {volume:>8} B  ({share:.1%})")

    rankings = top_reuse_functions(vips, n=8)
    print()
    print(render_barchart(
        {r.label: r.average_lifetime for r in rankings},
        title="Figure 9: average re-use lifetimes of top vips functions",
        fmt="{:.0f}",
    ))

    conv = max(
        vips.tree.by_name("conv_gen"),
        key=lambda n: vips.reuse.per_fn[n.id].reused_windows,
    )
    lab = vips.tree.by_name("imb_XYZ2Lab")[0]
    print()
    print(render_histogram(
        lifetime_histogram(vips, conv.id),
        title="Figure 10: conv_gen re-use lifetime distribution "
              "(long tail, central peak)",
    ))
    print()
    print(render_histogram(
        lifetime_histogram(vips, lab.id),
        title="Figure 11: imb_XYZ2Lab re-use lifetime distribution "
              "(peak at 0, short tail)",
    ))

    # -- Figure 12: line granularity ------------------------------------------
    line_bars = {}
    for name in ("bodytrack", "dedup", "raytrace", "streamcluster", "vips"):
        profiler = line_reuse_run(name, "simsmall", line_size=64)
        line_bars[name] = {
            k: float(v) for k, v in profiler.reuse_breakdown().items()
        }
    print()
    print(render_stacked_bars(
        line_bars,
        title="Figure 12: breakdown of 64B memory lines by re-use count",
    ))


if __name__ == "__main__":
    main()
