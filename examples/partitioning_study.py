#!/usr/bin/env python
"""HW/SW partitioning case study (paper section IV-A).

Profiles PARSEC-like workloads with Sigil + the Callgrind-equivalent,
trims each control data flow graph with the max-coverage /
min-communication heuristic, and reports:

* Figure 7 -- coverage of the trimmed-calltree leaf nodes,
* Table II -- best acceleration candidates by breakeven speedup,
* Table III -- worst candidates (utility functions).

Run:  python examples/partitioning_study.py [workload ...]
"""

from __future__ import annotations

import math
import sys

from repro import SigilConfig, profile_workload
from repro.analysis import (
    coverage_report,
    render_stacked_bars,
    render_table,
    trim_calltree,
)

DEFAULT_WORKLOADS = ("blackscholes", "bodytrack", "canneal", "dedup",
                     "fluidanimate", "swaptions")


def fmt(value: float) -> str:
    return f"{value:.3f}" if math.isfinite(value) else "inf"


def main(argv) -> None:
    names = argv[1:] or list(DEFAULT_WORKLOADS)
    bars = {}
    for name in names:
        run = profile_workload(name, "simsmall", config=SigilConfig())
        trimmed = trim_calltree(run.sigil, run.callgrind)
        report = coverage_report(name, trimmed)
        bars[name] = {"candidates": report.coverage, "rest": report.uncovered}

        print(f"\n===== {name} ({report.n_candidates} candidates, "
              f"coverage {report.coverage:.0%}) =====")
        ranked = trimmed.sorted_candidates()
        top = [
            (c.name, fmt(c.breakeven), c.costs.ops, c.costs.unique_comm_bytes)
            for c in ranked[:5]
        ]
        print(render_table(
            ["function", "S(breakeven)", "incl_ops", "unique_comm_B"],
            top,
            title="best candidates (Table II rows)",
        ))
        bottom = [
            (c.name, fmt(c.breakeven), c.costs.ops, c.costs.unique_comm_bytes)
            for c in trimmed.sorted_candidates(worst_first=True)[:5]
        ]
        print(render_table(
            ["function", "S(breakeven)", "incl_ops", "unique_comm_B"],
            bottom,
            title="worst candidates (Table III rows)",
        ))

    print()
    print(render_stacked_bars(
        bars, title="Figure 7: normalized coverage of trimmed-calltree leaves"
    ))


if __name__ == "__main__":
    main(sys.argv)
