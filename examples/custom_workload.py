#!/usr/bin/env python
"""Bring your own workload: profile arbitrary traced code with Sigil.

The downstream-user story: you have an algorithm (here, a tiny two-stage
image pipeline with a histogram pass), you want to know which functions
communicate, how much of that traffic is *unique* (what an accelerator
would really have to move), and where the data re-use lives.

Run:  python examples/custom_workload.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import CDFG, render_table, top_reuse_functions
from repro.core import SigilConfig, SigilProfiler
from repro.runtime import TracedRuntime, traced


@traced("blur3")
def blur3(rt, src, dst, n):
    """3-tap blur: reads each interior element three times."""
    for i in range(1, n - 1):
        window = src.read_block(i - 1, 3)
        rt.flops(4)
        dst.write(i, float(window.mean()))
        rt.branch("blur.loop", i + 2 < n)


@traced("threshold")
def threshold(rt, src, dst, n, cutoff):
    data = src.read_block(0, n)
    rt.flops(n)
    dst.write_block((data > cutoff).astype(np.float64), 0)


@traced("histogram")
def histogram(rt, src, hist, n):
    data = src.read_block(0, n)
    rt.iops(2 * n)
    counts = np.bincount((data * 0.99 * hist.length).astype(int) % hist.length,
                         minlength=hist.length)
    hist.write_block(counts[: hist.length].astype(np.int64), 0)


def main() -> None:
    n = 256
    profiler = SigilProfiler(SigilConfig(reuse_mode=True))
    rt = TracedRuntime(profiler)

    with rt.run("main"):
        src = rt.arena.alloc_f64("image", n)
        blurred = rt.arena.alloc_f64("blurred", n)
        mask = rt.arena.alloc_f64("mask", n)
        hist = rt.arena.alloc_i64("hist", 16)

        # Stage input (file contents -> untracked pokes + a read syscall).
        src.poke_block(np.linspace(0.0, 1.0, n))
        rt.syscall("read", output_bytes=src.nbytes)

        blur3(rt, src, blurred, n)
        threshold(rt, blurred, mask, n, cutoff=0.5)
        histogram(rt, mask, hist, n)
        rt.syscall("write", input_bytes=hist.nbytes)

    profile = profiler.profile()
    cdfg = CDFG(profile)

    print("who talks to whom (unique bytes / total bytes):")
    for edge in cdfg.data_edges():
        total = edge.unique_bytes + edge.nonunique_bytes
        print(f"  {cdfg.label(edge.writer):12s} -> "
              f"{cdfg.label(edge.reader):12s} {edge.unique_bytes}/{total} B")

    rows = []
    for node in profile.contexts():
        comm = profile.fn_comm(node.id)
        rereads = sum(
            e.nonunique_bytes
            for (_, reader), e in profile.comm.items()
            if reader == node.id
        )
        rows.append((
            node.name,
            comm.ops,
            comm.read_bytes,
            profile.unique_input_bytes(node.id),
            rereads,
        ))
    print()
    print(render_table(
        ["function", "ops", "read_B", "unique_in_B", "re-read_B"],
        rows,
        title="per-function traffic: totals versus true (unique) inputs",
    ))

    print("\nre-use hot spots (the blur window):")
    for r in top_reuse_functions(profile, n=3):
        print(f"  {r.label}: {r.reuse_accesses} re-reads, "
              f"avg lifetime {r.average_lifetime:.0f} instructions")


if __name__ == "__main__":
    main()
