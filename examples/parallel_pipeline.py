#!/usr/bin/env python
"""Multi-threaded tracing: a parallel pipeline under Sigil.

The paper treats threads as first-class communicating entities but profiles
serial binaries; this example exercises the reproduction's thread support:
a three-stage pipeline (decode -> transform -> encode) whose stages run on
separate virtual threads and hand off frames through shared ring buffers.

Shows: per-thread call stacks, cross-thread producer-consumer edges, the
thread communication matrix, per-thread load balance, and how threading
shows up in the dependency-chain parallelism.

Run:  python examples/parallel_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    analyze_critical_path,
    per_thread_ops,
    render_table,
    thread_comm_matrix,
)
from repro.core import SigilConfig, SigilProfiler
from repro.runtime import TracedRuntime, run_interleaved, traced

FRAMES = 6
FRAME = 64  # elements per frame


@traced("decode")
def decode(rt, raw, ring_a, frame):
    data = raw.read_block(frame * FRAME, FRAME)
    rt.iops(4 * FRAME)
    ring_a.write_block(np.abs(data) + 1.0, (frame % 2) * FRAME)


@traced("transform")
def transform(rt, ring_a, ring_b, frame):
    data = ring_a.read_block((frame % 2) * FRAME, FRAME)
    rt.flops(8 * FRAME)
    ring_b.write_block(np.sqrt(data) * 16.0, (frame % 2) * FRAME)


@traced("encode")
def encode(rt, ring_b, out, frame):
    data = ring_b.read_block((frame % 2) * FRAME, FRAME)
    rt.iops(6 * FRAME)
    out.write_block((data % 251).astype(np.float64), frame * FRAME)


def main() -> None:
    profiler = SigilProfiler(SigilConfig(event_mode=True))
    rt = TracedRuntime(profiler)

    with rt.run("main"):
        raw = rt.arena.alloc_f64("raw", FRAMES * FRAME)
        ring_a = rt.arena.alloc_f64("ring_a", 2 * FRAME)
        ring_b = rt.arena.alloc_f64("ring_b", 2 * FRAME)
        out = rt.arena.alloc_f64("out", FRAMES * FRAME)
        raw.poke_block(np.linspace(-100, 100, FRAMES * FRAME))
        rt.syscall("read", output_bytes=raw.nbytes)

        # Stage workers: each yields after every frame (its scheduler
        # quantum); the ring buffers give a two-frame pipeline depth.
        def decoder():
            for f in range(FRAMES):
                decode(rt, raw, ring_a, f)
                yield

        def transformer():
            yield  # one-frame pipeline delay
            for f in range(FRAMES):
                transform(rt, ring_a, ring_b, f)
                yield

        def encoder():
            yield
            yield  # two-frame pipeline delay
            for f in range(FRAMES):
                encode(rt, ring_b, out, f)
                yield

        run_interleaved(rt, {1: decoder(), 2: transformer(), 3: encoder()})
        rt.syscall("write", input_bytes=out.nbytes)

    profile = profiler.profile()
    summary = thread_comm_matrix(profile.events)

    print("thread communication matrix (unique bytes):")
    threads = summary.threads
    rows = []
    for src in threads:
        rows.append(
            [f"T{src}"] + [summary.matrix.get((src, dst), 0) for dst in threads]
        )
    print(render_table(["from\\to"] + [f"T{t}" for t in threads], rows))
    print(f"\ncross-thread bytes: {summary.cross_thread_bytes} "
          f"({summary.sharing_fraction():.0%} of communicated bytes)")

    print("\nper-thread load (operations):")
    for tid, ops in sorted(per_thread_ops(profile.events).items()):
        print(f"  T{tid}: {ops}")

    cp = analyze_critical_path(profile.events)
    print(f"\nserial length {cp.serial_length} ops, "
          f"critical path {cp.critical_length} ops")
    print(f"function-level parallelism limit: {cp.max_parallelism:.2f}")
    print("(true dependencies only: one decode->transform->encode chain per "
          "frame; like the paper, write-after-read reuse of the ring slots "
          "is not a dependency, so the limit equals the frame count)")


if __name__ == "__main__":
    main()
