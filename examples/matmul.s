; Blocked 4x4 matrix multiply written for the mini-VM.
;
;   repro run examples/matmul.s --events
;
; Memory layout (f64, row-major):
;   A at 0x1000, B at 0x1080, C at 0x1100.
; main stages A and B, `matmul` drives `dot_row` per output row, and the
; result matrix is checksummed by `checksum`.  Under Sigil this shows:
;   - init -> dot_row unique edges (each input read once per row/column use,
;     re-reads classified non-unique),
;   - matmul -> checksum dataflow through C,
;   - a critical path threading dot_row calls through the C accumulator.

.func main
    const r0, 4096            ; A
    const r1, 4224            ; B
    const r2, 4352            ; C
    call  init, r0
    call  init, r1
    call  matmul, r0, r1, r2
    call  checksum, r2 -> r3
    syscall write, in=128
    ret   r3

; Fill a 4x4 matrix with i+1 in each slot (i = linear index).
.func init/1
    const r1, 0               ; i
loop:
    addi  r2, r1, 1           ; value = i + 1
    muli  r3, r1, 8
    add   r4, r0, r3
    store r2, [r4+0], 8
    addi  r1, r1, 1
    lti   r5, r1, 16
    br    r5, loop
    ret

; C = A x B, one dot_row call per (row, col) pair.
.func matmul/3
    const r3, 0               ; row
rows:
    const r4, 0               ; col
cols:
    call  dot_row, r0, r1, r3, r4 -> r5
    muli  r6, r3, 32          ; row * 4 * 8
    muli  r7, r4, 8
    add   r8, r2, r6
    add   r8, r8, r7
    store r5, [r8+0], 8
    addi  r4, r4, 1
    lti   r9, r4, 4
    br    r9, cols
    addi  r3, r3, 1
    lti   r9, r3, 4
    br    r9, rows
    ret

; dot product of A[row,*] and B[*,col]
.func dot_row/4
    const r4, 0               ; k
    const r5, 0               ; acc
dot:
    muli  r6, r2, 32          ; A index: row*4 + k
    muli  r7, r4, 8
    add   r8, r0, r6
    add   r8, r8, r7
    load  r9, [r8+0], 8
    muli  r10, r4, 32         ; B index: k*4 + col
    muli  r11, r3, 8
    add   r12, r1, r10
    add   r12, r12, r11
    load  r13, [r12+0], 8
    mul   r14, r9, r13
    add   r5, r5, r14
    addi  r4, r4, 1
    lti   r15, r4, 4
    br    r15, dot
    ret   r5

.func checksum/1
    const r1, 0
    const r2, 0
sum:
    muli  r3, r1, 8
    add   r4, r0, r3
    load  r5, [r4+0], 8
    add   r2, r2, r5
    addi  r1, r1, 1
    lti   r6, r1, 16
    br    r6, sum
    ret   r2
