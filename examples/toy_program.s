; Toy producer/consumer program for `repro run examples/toy_program.s`.
;
; main stages two values, the workers exchange results through memory, and
; the result is written out. Profile with:
;
;   repro run examples/toy_program.s --events -o toy.profile
.func main
    const r0, 4096          ; buffer base
    const r1, 21
    store r1, [r0+0], 8     ; input for produce
    call  produce, r0
    call  consume, r0 -> r2
    syscall write, in=8
    ret   r2

.func produce/1
    load  r1, [r0+0], 8     ; consume main's value (unique input)
    muli  r2, r1, 2
    store r2, [r0+8], 8     ; produce for consume
    ret

.func consume/1
    load  r1, [r0+8], 8     ; consume produce's value
    load  r3, [r0+8], 8     ; re-read: non-unique
    add   r2, r1, r3
    shri  r2, r2, 1
    ret   r2
