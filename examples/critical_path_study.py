#!/usr/bin/env python
"""Critical-path case study (paper section IV-C, Figure 13).

Profiles workloads in event mode, writes the event files to disk, then
post-processes them offline -- exactly the paper's split between collection
and analysis -- to report per-benchmark dependency chains and the maximum
theoretical function-level parallelism.

Run:  python examples/critical_path_study.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import SigilConfig, profile_workload
from repro.analysis import analyze_critical_path, render_barchart
from repro.io import dump_events, load_events

SUITE = ("blackscholes", "dedup", "fluidanimate", "libquantum",
         "raytrace", "streamcluster", "x264")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="sigil-events-"))
    print(f"writing event files to {workdir}\n")

    trees = {}
    for name in SUITE:
        run = profile_workload(
            name, "simsmall", config=SigilConfig(event_mode=True),
            with_callgrind=False,
        )
        dump_events(run.sigil.events, workdir / f"{name}.events")
        trees[name] = run.sigil.tree

    # Offline pass: load the event files back and analyze.
    parallelism = {}
    for name in SUITE:
        events = load_events(workdir / f"{name}.events")
        result = analyze_critical_path(events)
        parallelism[name] = result.max_parallelism
        chain = " -> ".join(result.path_functions(trees[name]))
        print(f"{name}:")
        print(f"  serial {result.serial_length} ops, "
              f"critical {result.critical_length} ops")
        print(f"  chain (leaf to main): {chain}\n")

    print(render_barchart(
        parallelism,
        title="Figure 13: maximum speedup from function-level parallelism",
        fmt="{:.1f}",
    ))


if __name__ == "__main__":
    main()
