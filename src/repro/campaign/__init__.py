"""Batch profiling campaigns: parallel, cached, resumable fleets of runs.

The paper's whole evaluation is a sweep -- PARSEC workloads x input sizes
x tool stacks x Sigil configurations -- and this package turns that sweep
from a serial loop into an engine:

* :class:`CampaignSpec` (:mod:`repro.campaign.spec`) declares the matrix
  and expands it into content-addressed :class:`Job` objects.
* :class:`ResultStore` (:mod:`repro.campaign.store`) caches every
  completed profile on disk under its job key, so nothing is ever
  recomputed -- across campaigns, benches, and future sessions.
* :func:`run_campaign` (:mod:`repro.campaign.executor`) fans jobs out over
  isolated worker processes with per-job timeouts, bounded retry with
  exponential backoff, and crash isolation.
* :class:`CampaignState` (:mod:`repro.campaign.state`) journals every job
  transition to JSONL, making interrupted campaigns resumable.
* :mod:`repro.campaign.report` aggregates per-job telemetry manifests into
  a campaign-level manifest and renders status tables.

Quick start::

    from repro.campaign import CampaignSpec, ResultStore, run_campaign

    spec = CampaignSpec(name="sweep", workloads=["vips", "dedup"],
                        sizes=["simsmall", "simmedium"], tools=["sigil"])
    store = ResultStore("results-store")
    result = run_campaign(spec.jobs(), store, workers=4)
    print(result.summary(spec.name))   # second call: 100% cached
"""

from repro.campaign.executor import (
    RUNNERS,
    CampaignResult,
    register_runner,
    run_campaign,
)
from repro.campaign.report import (
    CAMPAIGN_SCHEMA,
    build_campaign_manifest,
    render_status,
    write_campaign_manifest,
)
from repro.campaign.spec import CampaignSpec, Job, canonical_config
from repro.campaign.state import CampaignState, JobRecord
from repro.campaign.store import (
    DEFAULT_STORE_ENV,
    ResultStore,
    StoredResult,
    default_store_root,
)

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CampaignResult",
    "CampaignSpec",
    "CampaignState",
    "DEFAULT_STORE_ENV",
    "Job",
    "JobRecord",
    "RUNNERS",
    "ResultStore",
    "StoredResult",
    "build_campaign_manifest",
    "canonical_config",
    "default_store_root",
    "register_runner",
    "render_status",
    "run_campaign",
    "write_campaign_manifest",
]
