"""Batch profiling campaigns: parallel, cached, resumable fleets of runs.

The paper's whole evaluation is a sweep -- PARSEC workloads x input sizes
x tool stacks x Sigil configurations -- and this package turns that sweep
from a serial loop into an engine:

* :class:`CampaignSpec` (:mod:`repro.campaign.spec`) declares the matrix
  and expands it into content-addressed :class:`Job` objects.
* :class:`ResultStore` (:mod:`repro.campaign.store`) caches every
  completed profile on disk under its job key, so nothing is ever
  recomputed -- across campaigns, benches, and future sessions.
* :func:`run_campaign` (:mod:`repro.campaign.executor`) fans jobs out over
  isolated worker processes with per-job timeouts, bounded retry with
  exponential backoff, and crash isolation.
* :class:`CampaignState` (:mod:`repro.campaign.state`) journals every job
  transition to JSONL, making interrupted campaigns resumable.
* :mod:`repro.campaign.report` aggregates per-job telemetry manifests into
  a campaign-level manifest and renders status tables.
* :mod:`repro.campaign.dist` shards a campaign across many hosts: worker
  backends (local subprocesses, ssh), verified store merges, work
  stealing, and cross-host resume.

Quick start::

    from repro.campaign import CampaignSpec, ResultStore, run_campaign

    spec = CampaignSpec(name="sweep", workloads=["vips", "dedup"],
                        sizes=["simsmall", "simmedium"], tools=["sigil"])
    store = ResultStore("results-store")
    result = run_campaign(spec.jobs(), store, workers=4)
    print(result.summary(spec.name))   # second call: 100% cached
"""

from repro.campaign.executor import (
    DEFAULT_JITTER,
    RUNNERS,
    CampaignResult,
    register_runner,
    retry_delay,
    run_campaign,
)
from repro.campaign.report import (
    CAMPAIGN_SCHEMA,
    build_campaign_manifest,
    render_status,
    write_campaign_manifest,
)
from repro.campaign.spec import CampaignSpec, Job, canonical_config
from repro.campaign.state import CampaignState, JobRecord, fold_events
from repro.campaign.store import (
    DEFAULT_STORE_ENV,
    IngestReport,
    ResultStore,
    StoredResult,
    VerifyReport,
    default_store_root,
)

__all__ = [
    "CAMPAIGN_SCHEMA",
    "CampaignResult",
    "CampaignSpec",
    "CampaignState",
    "DEFAULT_JITTER",
    "DEFAULT_STORE_ENV",
    "IngestReport",
    "Job",
    "JobRecord",
    "RUNNERS",
    "ResultStore",
    "StoredResult",
    "VerifyReport",
    "build_campaign_manifest",
    "canonical_config",
    "default_store_root",
    "fold_events",
    "register_runner",
    "render_status",
    "retry_delay",
    "run_campaign",
    "write_campaign_manifest",
]
