"""The campaign executor: fan jobs out over isolated worker processes.

Each job runs in its **own** child process rather than a long-lived pooled
worker.  ``concurrent.futures.ProcessPoolExecutor`` was the obvious first
choice, but it cannot express two behaviours this engine guarantees: a
per-job timeout that actually *kills* the offending worker (a pool future's
``result(timeout=...)`` abandons the result but leaves the worker running),
and crash isolation (a segfaulting pooled worker raises
``BrokenProcessPool`` and poisons every sibling job).  A process per job
gives both for free -- a worker dying by signal, OOM-kill or ``os._exit``
marks exactly one job ``failed`` -- at a per-job spawn cost that is noise
next to an actual profiling run.  Concurrency stays bounded: at most
``workers`` children are alive at once.

Results never travel over pipes: a worker publishes its profile into the
shared :class:`~repro.campaign.store.ResultStore` (atomic rename) and its
exit code is the only signal the parent needs.  Failed jobs are retried
with exponential backoff up to ``retries`` times; every transition is
journaled through :class:`~repro.campaign.state.CampaignState`, so a
campaign killed mid-flight resumes exactly where it stopped.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import random
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.campaign.identity import identity_suffix
from repro.campaign.spec import Job
from repro.campaign.state import CampaignState, JobRecord
from repro.campaign.store import ResultStore
from repro.harness import TOOL_STACKS, ProfiledRun, run_tool
from repro.telemetry import Telemetry

__all__ = [
    "CampaignResult",
    "run_campaign",
    "register_runner",
    "retry_delay",
    "DEFAULT_JITTER",
    "RUNNERS",
]

log = logging.getLogger("repro.campaign.executor")

#: Seconds between scheduler polls; small enough that short jobs do not
#: serialise on the poll, large enough to stay invisible in `top`.
_POLL_SECONDS = 0.02

#: Default jitter fraction on retry backoff.  A failed shared resource (a
#: full disk, a saturated store host) fails many workers in the same
#: instant; pure exponential backoff would have them all retry in the same
#: instant too.  Each delay is therefore stretched by a uniform factor in
#: ``[1, 1 + jitter)`` so a fleet's retries decorrelate.
DEFAULT_JITTER = 0.5


def retry_delay(
    attempt: int,
    backoff: float,
    *,
    jitter: float = DEFAULT_JITTER,
    rng: Optional[random.Random] = None,
) -> float:
    """Seconds to wait before re-running attempt ``attempt + 1``.

    The base is exponential -- ``backoff * 2**(attempt-1)`` for the first,
    second, ... retry -- and the jitter multiplies it by a uniform draw
    from ``[1, 1 + jitter)``.  The result is therefore always bounded:
    ``base <= delay < base * (1 + jitter)``.
    """
    base = backoff * (2 ** (max(1, attempt) - 1))
    if jitter <= 0:
        return base
    draw = (rng if rng is not None else random).random()
    return base * (1.0 + jitter * draw)


def _stack_runner(job: Job, telemetry: Telemetry) -> ProfiledRun:
    """Default runner: execute the job's tool stack through the harness."""
    return run_tool(
        job.workload,
        job.size,
        job.tool,
        config=job.sigil_config(),
        telemetry=telemetry,
    )


#: tool name -> runner callable ``(job, telemetry) -> ProfiledRun``.
#: The standard stacks are pre-registered; tests and extensions may add
#: their own (the fork start method makes registrations visible to
#: workers).
RUNNERS: Dict[str, Callable[[Job, Telemetry], ProfiledRun]] = {
    tool: _stack_runner for tool in TOOL_STACKS
}


def register_runner(
    tool: str, fn: Callable[[Job, Telemetry], ProfiledRun]
) -> None:
    """Register (or replace) the runner used for jobs with ``tool``."""
    RUNNERS[tool] = fn


def _worker_main(job_dict: dict, store_root: str, error_path: str) -> None:
    """Child-process entry: run one job and publish it into the store.

    The exit code is the whole result protocol -- 0 means "the store now
    holds this key".  On failure a one-line reason is left at
    ``error_path`` for the parent's journal.
    """
    job = Job.from_dict(job_dict)
    try:
        runner = RUNNERS.get(job.tool)
        if runner is None:
            raise LookupError(
                f"no runner registered for tool {job.tool!r}; "
                f"available: {', '.join(sorted(RUNNERS))}"
            )
        run = runner(job, Telemetry())
        if not isinstance(run, ProfiledRun):
            raise TypeError(
                f"runner for {job.tool!r} returned {type(run).__name__}, "
                "expected ProfiledRun"
            )
        ResultStore(store_root).put_run(job, run)
    except BaseException as exc:  # the exit code carries the verdict
        try:
            Path(error_path).write_text(f"{type(exc).__name__}: {exc}\n")
        except OSError:  # pragma: no cover - error channel best-effort
            pass
        raise SystemExit(1)


def _mp_context():
    """Fork when available: cheap spawns and runner registrations inherit."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


@dataclass
class _Attempt:
    """One pending (re)try of a job."""

    job: Job
    attempt: int = 1
    not_before: float = 0.0  # monotonic seconds; backoff gate


@dataclass
class _Slot:
    """One live worker process."""

    proc: "multiprocessing.process.BaseProcess"
    attempt: _Attempt
    started: float
    error_path: str
    deadline: Optional[float]


@dataclass
class CampaignResult:
    """What one `run_campaign` call did, per job and in aggregate."""

    records: Dict[str, JobRecord] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def _count(self, state: str) -> int:
        return sum(1 for r in self.records.values() if r.state == state)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def done(self) -> int:
        return self._count("done")

    @property
    def cached(self) -> int:
        return sum(1 for r in self.records.values()
                   if r.state == "done" and r.cached)

    @property
    def executed(self) -> int:
        return sum(1 for r in self.records.values()
                   if r.state == "done" and not r.cached)

    @property
    def failed(self) -> int:
        return self._count("failed")

    @property
    def timed_out(self) -> int:
        return self._count("timeout")

    @property
    def ok(self) -> bool:
        return self.done == self.total

    def summary(self, name: str = "campaign") -> str:
        """The stable one-line summary (smoke tests grep this)."""
        return (
            f"campaign '{name}': {self.total} jobs -> {self.done} done "
            f"({self.cached} cached, {self.executed} executed, "
            f"{self.failed} failed, {self.timed_out} timeout) "
            f"in {self.wall_seconds:.2f}s"
        )


def _terminate(slot: _Slot) -> None:
    """Stop a worker hard: terminate, then kill if it lingers."""
    slot.proc.terminate()
    slot.proc.join(timeout=1.0)
    if slot.proc.is_alive():  # pragma: no cover - stubborn worker
        slot.proc.kill()
        slot.proc.join(timeout=1.0)


def _read_error(path: str, exitcode: Optional[int]) -> str:
    try:
        text = Path(path).read_text().strip()
        if text:
            return text.splitlines()[0]
    except OSError:
        pass
    if exitcode is not None and exitcode < 0:
        return f"worker killed by signal {-exitcode}"
    return f"worker exited with code {exitcode}"


def run_campaign(
    jobs: Sequence[Job],
    store: ResultStore,
    state: Optional[CampaignState] = None,
    *,
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.5,
    jitter: float = DEFAULT_JITTER,
    heartbeat_seconds: Optional[float] = None,
    heartbeat: Optional[Callable[[str], None]] = None,
    progress: Optional[Callable[[str], None]] = None,
    dry_run: bool = False,
    skip_keys: frozenset = frozenset(),
) -> CampaignResult:
    """Execute ``jobs`` against ``store`` with bounded parallelism.

    Jobs whose key is already in the store -- or in ``skip_keys``, the
    journal-derived completed set a resume passes in -- are marked ``done``
    with ``cached=True`` and never spawn a worker.  ``dry_run`` plans and
    classifies every job (cached vs. to-run) without executing anything.

    Periodic progress lines (gated by ``heartbeat_seconds``) go through the
    ``heartbeat`` callback; the default keeps the historical behaviour of a
    line on stderr, while a daemon embedding this executor captures the
    beats into its own per-job trace instead of losing them to the tty.
    """
    t0 = time.monotonic()
    notify = progress if progress is not None else (lambda line: None)
    beat = heartbeat if heartbeat is not None else (
        lambda line: print(line, file=sys.stderr)
    )
    result = CampaignResult()
    pending: List[_Attempt] = []
    duplicates = 0

    for job in jobs:
        key = job.key
        if key in result.records:
            duplicates += 1
            continue  # matrix expansions cannot repeat, but job lists can
        if state is not None:
            state.append("planned", job)
        if key in skip_keys or store.has(key):
            rec = JobRecord(key=key, label=job.label, state="done",
                            cached=True)
            result.records[key] = rec
            if state is not None:
                state.append("done", job, cached=True, seconds=0.0)
            notify(f"cached   {job.label}")
        else:
            result.records[key] = JobRecord(key=key, label=job.label,
                                            state="planned")
            pending.append(_Attempt(job))
            notify(f"planned  {job.label}")
    if duplicates:
        log.info("campaign: %d duplicate jobs collapsed", duplicates)

    if dry_run:
        result.wall_seconds = time.monotonic() - t0
        return result

    ctx = _mp_context()
    running: List[_Slot] = []
    last_beat = t0

    def _finish(slot: _Slot, state_name: str, **detail) -> None:
        rec = result.records[slot.attempt.job.key]
        rec.state = state_name
        rec.attempts = slot.attempt.attempt
        rec.seconds = time.monotonic() - slot.started
        rec.cached = False
        rec.error = str(detail.get("error", ""))
        if state is not None:
            state.append(state_name, slot.attempt.job,
                         attempt=slot.attempt.attempt,
                         seconds=rec.seconds, **detail)

    def _maybe_retry(slot: _Slot, kind: str, error: str) -> None:
        att = slot.attempt
        _finish(slot, kind, error=error)
        if att.attempt <= retries:
            delay = retry_delay(att.attempt, backoff, jitter=jitter)
            pending.append(
                _Attempt(att.job, att.attempt + 1,
                         time.monotonic() + delay)
            )
            result.records[att.job.key].state = "planned"
            notify(f"retry    {att.job.label} "
                   f"(attempt {att.attempt + 1}, in {delay:.2f}s): {error}")
        else:
            notify(f"{kind:8s} {att.job.label}: {error}")

    try:
        while pending or running:
            now = time.monotonic()

            # Launch every eligible attempt while worker slots are free.
            launched = True
            while launched and len(running) < max(1, workers):
                launched = False
                for i, att in enumerate(pending):
                    if att.not_before > now:
                        continue
                    pending.pop(i)
                    fd, error_path = tempfile.mkstemp(
                        prefix="repro-job-", suffix=".err"
                    )
                    os.close(fd)
                    proc = ctx.Process(
                        target=_worker_main,
                        args=(att.job.to_dict(), str(store.root), error_path),
                        daemon=True,
                    )
                    proc.start()
                    running.append(_Slot(
                        proc=proc,
                        attempt=att,
                        started=now,
                        error_path=error_path,
                        deadline=(now + timeout) if timeout else None,
                    ))
                    if state is not None:
                        state.append("started", att.job, attempt=att.attempt)
                    notify(f"start    {att.job.label} "
                           f"(attempt {att.attempt}, pid {proc.pid})")
                    launched = True
                    break

            # Reap finished and overdue workers.
            for slot in list(running):
                if slot.proc.is_alive():
                    if slot.deadline is not None and now > slot.deadline:
                        _terminate(slot)
                        running.remove(slot)
                        Path(slot.error_path).unlink(missing_ok=True)
                        _maybe_retry(
                            slot, "timeout",
                            f"exceeded {timeout:.1f}s timeout",
                        )
                    continue
                slot.proc.join()
                running.remove(slot)
                key = slot.attempt.job.key
                if slot.proc.exitcode == 0 and store.has(key):
                    _finish(slot, "done", cached=False)
                    notify(f"done     {slot.attempt.job.label} "
                           f"({result.records[key].seconds:.2f}s)")
                else:
                    error = _read_error(slot.error_path, slot.proc.exitcode)
                    _maybe_retry(slot, "failed", error)
                Path(slot.error_path).unlink(missing_ok=True)

            if heartbeat_seconds and now - last_beat >= heartbeat_seconds:
                last_beat = now
                done = result.done
                beat(
                    f"campaign{identity_suffix()}: "
                    f"{done}/{result.total} done "
                    f"({result.cached} cached) · {len(running)} running · "
                    f"{len(pending)} pending · {now - t0:.1f}s"
                )

            if pending or running:
                time.sleep(_POLL_SECONDS)
    except KeyboardInterrupt:
        for slot in running:
            _terminate(slot)
            Path(slot.error_path).unlink(missing_ok=True)
        if state is not None:
            state.append("interrupted",
                         pending=len(pending) + len(running))
        raise

    result.wall_seconds = time.monotonic() - t0
    return result
