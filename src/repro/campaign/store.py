"""The result store: a content-addressed, on-disk profile cache.

Layout (all under one root directory)::

    <root>/objects/<k1k2>/<key>/     one completed job, key = Job.key
        meta.json                    job descriptor, timings, digests
        profile.sigil                aggregate Sigil profile (when collected)
        events.sigil                 event log (when event mode was on)
        windowed.json                time-resolved curves (repro-windowed/1,
                                     cached alongside the event log)
        callgrind.out                Callgrind-equivalent profile (when run)
        manifest.json                the run's telemetry manifest (when on)
    <root>/tmp/                      staging area for in-flight writes
    <root>/campaigns/<name>/         campaign state (spec + journal)

Writes are atomic at the job granularity: a worker stages every artifact in
a private ``tmp`` directory and publishes it with one ``os.rename`` into
``objects/``.  Readers therefore never observe a half-written entry, and
two workers racing on the same key resolve harmlessly (first rename wins,
the loser discards its staging copy -- the content is identical by
construction).
"""

from __future__ import annotations

import json
import logging
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.campaign.spec import Job
from repro.harness import ProfiledRun
from repro.io.callgrindfile import dump_callgrind, load_callgrind
from repro.io.eventbin import dump_events_bin
from repro.io.eventfile import load_events
from repro.io.profilefile import dump_profile, load_profile, profile_digest
from repro.telemetry import Manifest
from repro.workloads import get_workload

__all__ = [
    "ResultStore",
    "StoredResult",
    "IngestReport",
    "VerifyReport",
    "DEFAULT_STORE_ENV",
    "default_store_root",
]

log = logging.getLogger("repro.campaign.store")

#: Environment variable overriding the default store location.
DEFAULT_STORE_ENV = "REPRO_CAMPAIGN_STORE"

_META = "meta.json"
_PROFILE = "profile.sigil"
_EVENTS = "events.sigil"
_CURVES = "windowed.json"
_CALLGRIND = "callgrind.out"
_MANIFEST = "manifest.json"


def default_store_root() -> Path:
    """The store root the CLI uses when ``--store`` is not given."""
    return Path(os.environ.get(DEFAULT_STORE_ENV, ".repro-campaigns"))


@dataclass
class StoredResult:
    """A handle on one completed job's artifacts in the store."""

    key: str
    path: Path
    meta: Dict[str, Any]

    @property
    def job(self) -> Job:
        return Job.from_dict(self.meta["job"])

    @property
    def label(self) -> str:
        return self.job.label

    def profile_path(self) -> Optional[Path]:
        p = self.path / _PROFILE
        return p if p.exists() else None

    def load_profile(self):
        """The Sigil profile, with its event log re-attached when present."""
        path = self.profile_path()
        if path is None:
            return None
        profile = load_profile(path)
        events_path = self.path / _EVENTS
        if events_path.exists():
            profile.events = load_events(events_path)
        return profile

    def load_callgrind(self):
        path = self.path / _CALLGRIND
        return load_callgrind(path) if path.exists() else None

    def load_manifest(self) -> Optional[Manifest]:
        path = self.path / _MANIFEST
        return Manifest.load(path) if path.exists() else None

    def curves_path(self) -> Optional[Path]:
        p = self.path / _CURVES
        return p if p.exists() else None

    def load_curves(self):
        """The cached time-resolved curves (``repro-windowed/1``), or None.

        Entries written before the windowed layer (or without event mode)
        have no curves file; callers can recompute from ``events.sigil``
        via :func:`repro.analysis.windowed.windowed_curves` when the log
        was stored.
        """
        from repro.analysis.windowed import WindowedCurves

        path = self.curves_path()
        if path is None:
            return None
        return WindowedCurves.from_dict(json.loads(path.read_text()))

    def profiled_run(self) -> ProfiledRun:
        """Rehydrate a :class:`ProfiledRun` equivalent to the original.

        The workload object is rebuilt from the registry (construction is
        cheap and deterministic); phase seconds come from the recorded meta,
        so overhead tables keyed on the original timings still agree.
        """
        job = self.job
        phases = self.meta.get("phases", {})
        return ProfiledRun(
            workload=get_workload(job.workload, job.size),
            sigil=self.load_profile(),
            callgrind=self.load_callgrind(),
            setup_seconds=float(phases.get("setup", 0.0)),
            execute_seconds=float(phases.get("execute", 0.0)),
            aggregate_seconds=float(phases.get("aggregate", 0.0)),
            manifest=self.load_manifest(),
        )

    def verify(self) -> bool:
        """Recompute the profile digest and compare with the recorded one."""
        recorded = self.meta.get("profile_sha256")
        path = self.profile_path()
        if recorded is None or path is None:
            return True  # nothing recorded to contradict
        import hashlib

        return hashlib.sha256(path.read_bytes()).hexdigest() == recorded


@dataclass
class IngestReport:
    """What one :meth:`ResultStore.ingest` call did."""

    examined: int = 0
    merged: int = 0
    skipped: int = 0  # already present (or lost a benign publish race)
    bytes_merged: int = 0
    corrupt: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.corrupt

    def merge(self, other: "IngestReport") -> None:
        """Accumulate another report into this one (fleet-wide totals)."""
        self.examined += other.examined
        self.merged += other.merged
        self.skipped += other.skipped
        self.bytes_merged += other.bytes_merged
        self.corrupt.extend(other.corrupt)


@dataclass
class VerifyReport:
    """Result of verifying every entry in a store."""

    checked: int = 0
    corrupt: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.corrupt


class ResultStore:
    """On-disk cache mapping job keys to completed profiling results."""

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_store_root()

    # -- paths ------------------------------------------------------------

    def object_dir(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / key

    def campaign_dir(self, name: str) -> Path:
        return self.root / "campaigns" / name

    # -- queries ----------------------------------------------------------

    def has(self, key: str) -> bool:
        """Whether a *complete* entry exists (meta published atomically)."""
        return (self.object_dir(key) / _META).exists()

    def get(self, key: str) -> Optional[StoredResult]:
        path = self.object_dir(key)
        meta_path = path / _META
        if not meta_path.exists():
            return None
        meta = json.loads(meta_path.read_text())
        return StoredResult(key=key, path=path, meta=meta)

    def keys(self) -> List[str]:
        objects = self.root / "objects"
        if not objects.exists():
            return []
        return sorted(
            entry.name
            for shard in objects.iterdir() if shard.is_dir()
            for entry in shard.iterdir()
            if (entry / _META).exists()
        )

    def size_bytes(self) -> int:
        objects = self.root / "objects"
        if not objects.exists():
            return 0
        return sum(
            f.stat().st_size for f in objects.rglob("*") if f.is_file()
        )

    def stats(self) -> Dict[str, int]:
        """Store-level bookkeeping for gauges: object count, bytes, campaigns.

        One filesystem walk feeds the serve daemon's ``repro_store_*``
        gauges; the numbers are point-in-time (concurrent publishes may land
        between the count and the byte walk, which is fine for monitoring).
        """
        campaigns_dir = self.root / "campaigns"
        n_campaigns = (
            sum(1 for p in campaigns_dir.iterdir() if p.is_dir())
            if campaigns_dir.exists() else 0
        )
        return {
            "objects": len(self.keys()),
            "bytes": self.size_bytes(),
            "campaigns": n_campaigns,
        }

    # -- writes -----------------------------------------------------------

    def put_run(self, job: Job, run: ProfiledRun) -> StoredResult:
        """Persist every artifact of ``run`` under ``job.key``, atomically."""
        key = job.key
        final = self.object_dir(key)
        if self.has(key):
            return self.get(key)  # type: ignore[return-value]
        staging = self.root / "tmp" / f"{key}.{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            meta: Dict[str, Any] = {
                "job": job.to_dict(),
                "key": key,
                "label": job.label,
                "phases": {
                    "setup": run.setup_seconds,
                    "execute": run.execute_seconds,
                    "aggregate": run.aggregate_seconds,
                },
                "created_unix": time.time(),
            }
            if run.sigil is not None:
                dump_profile(run.sigil, staging / _PROFILE)
                meta["profile_sha256"] = profile_digest(run.sigil)
                if run.sigil.events is not None:
                    # Binary v2: compact and loads without per-row objects.
                    # load_events sniffs, so stores with v1 entries written
                    # by older versions keep reading fine.
                    dump_events_bin(run.sigil.events, staging / _EVENTS)
                    # Cache the time-resolved curves next to the log, so
                    # watchers (and `repro serve`) plot WS(t) without
                    # re-streaming the events per request.
                    from repro.analysis.windowed import windowed_curves

                    curves = windowed_curves(run.sigil.events)
                    (staging / _CURVES).write_text(
                        json.dumps(curves.to_dict(), separators=(",", ":"))
                        + "\n"
                    )
            if run.callgrind is not None:
                dump_callgrind(run.callgrind, staging / _CALLGRIND)
            if run.manifest is not None:
                run.manifest.write(staging / _MANIFEST)
            # meta.json is written last inside staging, but visibility is
            # governed by the rename: the entry appears fully formed or not
            # at all.
            (staging / _META).write_text(
                json.dumps(meta, indent=2, sort_keys=True) + "\n"
            )
            final.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(staging, final)
            except OSError:
                if self.has(key):  # lost a benign publish race
                    log.debug("store: lost publish race for %s", key[:12])
                    shutil.rmtree(staging, ignore_errors=True)
                else:
                    raise
        finally:
            shutil.rmtree(staging, ignore_errors=True)
        return self.get(key)  # type: ignore[return-value]

    def ingest(
        self,
        other: "ResultStore",
        keys: Optional[Iterable[str]] = None,
        *,
        verify: bool = True,
    ) -> IngestReport:
        """Merge entries from ``other`` into this store, atomically.

        This is the coordinator side of a distributed campaign: each worker
        publishes into its own store, and the coordinator folds those
        stores back into the shared one.  Every entry is staged into this
        store's ``tmp`` area, verified (digest check, unless ``verify=False``)
        *before* publication, and published with the same atomic rename as
        a local ``put_run`` -- so a half-copied or corrupted worker entry
        can never become visible.  Entries already present are skipped (the
        content is identical by construction -- same key, same pipeline).
        """
        report = IngestReport()
        wanted = list(keys) if keys is not None else other.keys()
        for key in wanted:
            report.examined += 1
            if self.has(key):
                report.skipped += 1
                continue
            source = other.object_dir(key)
            if not (source / _META).exists():
                continue  # not (yet) published on the worker side
            staging = self.root / "tmp" / f"ingest-{key}.{os.getpid()}"
            if staging.exists():
                shutil.rmtree(staging)
            staging.parent.mkdir(parents=True, exist_ok=True)
            try:
                shutil.copytree(source, staging)
                entry_bytes = sum(
                    f.stat().st_size for f in staging.rglob("*") if f.is_file()
                )
                if verify:
                    try:
                        meta = json.loads((staging / _META).read_text())
                        staged = StoredResult(key=key, path=staging, meta=meta)
                        ok = staged.verify()
                    except (OSError, ValueError):
                        ok = False
                    if not ok:
                        report.corrupt.append(key)
                        log.warning(
                            "store: refusing to ingest corrupt entry %s "
                            "from %s", key[:12], other.root,
                        )
                        continue
                final = self.object_dir(key)
                final.parent.mkdir(parents=True, exist_ok=True)
                try:
                    os.rename(staging, final)
                except OSError:
                    if self.has(key):  # lost a benign publish race
                        report.skipped += 1
                        continue
                    raise
                report.merged += 1
                report.bytes_merged += entry_bytes
            finally:
                shutil.rmtree(staging, ignore_errors=True)
        return report

    def verify_all(self) -> VerifyReport:
        """Verify every entry's recorded digest; unreadable meta is corrupt.

        This is what ``repro campaign verify`` runs from CI and cron
        against merged stores: a non-empty ``corrupt`` list means an entry
        whose bytes no longer match what its producer recorded.
        """
        report = VerifyReport()
        for key in self.keys():
            report.checked += 1
            try:
                stored = self.get(key)
                ok = stored is not None and stored.verify()
            except (OSError, ValueError):
                ok = False
            if not ok:
                report.corrupt.append(key)
        return report

    # -- maintenance ------------------------------------------------------

    def drop(self, key: str) -> bool:
        """Remove one entry; True when something was deleted."""
        path = self.object_dir(key)
        if not path.exists():
            return False
        shutil.rmtree(path)
        return True

    def clear(self) -> int:
        """Remove every stored object (campaign state is kept); count removed."""
        removed = len(self.keys())
        shutil.rmtree(self.root / "objects", ignore_errors=True)
        shutil.rmtree(self.root / "tmp", ignore_errors=True)
        return removed
