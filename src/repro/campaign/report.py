"""Campaign-level reporting: aggregate manifests and the status table.

Each job's worker writes its own telemetry manifest into the result store;
this module folds those per-job manifests, the journal's replayed records
and the store's bookkeeping into one **campaign manifest** -- the
machine-readable record of an entire sweep (schema ``repro-campaign/1``),
written next to the journal as ``campaign.manifest.json``.  ``repro
campaign status`` renders the same data as a table for humans.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis import render_table
from repro.campaign.spec import Job
from repro.campaign.state import CampaignState, JobRecord
from repro.campaign.store import ResultStore

__all__ = [
    "CAMPAIGN_SCHEMA",
    "build_campaign_manifest",
    "write_campaign_manifest",
    "render_status",
]

#: Version tag embedded in every campaign manifest.
CAMPAIGN_SCHEMA = "repro-campaign/1"


def _job_entry(
    job: Job, record: Optional[JobRecord], store: ResultStore
) -> Dict[str, Any]:
    """One job's row in the campaign manifest."""
    entry: Dict[str, Any] = {
        "key": job.key,
        "label": job.label,
        "workload": job.workload,
        "size": job.size,
        "tool": job.tool,
        "state": record.state if record else "unplanned",
        "cached": record.cached if record else False,
        "attempts": record.attempts if record else 0,
        "seconds": record.seconds if record else 0.0,
        "error": record.error if record else "",
    }
    stored = store.get(job.key)
    if stored is not None:
        entry["stored"] = True
        # Per-phase timings and the publication time ride along so `status
        # --json` consumers (dashboards, `repro watch`, the serve daemon's
        # job endpoint) need no second store lookup.
        entry["phases"] = dict(stored.meta.get("phases", {}))
        if "created_unix" in stored.meta:
            entry["stored_unix"] = stored.meta["created_unix"]
        manifest = stored.load_manifest()
        if manifest is not None:
            entry["events_total"] = manifest.events_total
            entry["events_per_sec"] = manifest.events_per_sec
            entry["execute_seconds"] = manifest.phase_seconds("execute")
    else:
        entry["stored"] = False
    return entry


def build_campaign_manifest(
    name: str,
    jobs: Sequence[Job],
    records: Dict[str, JobRecord],
    store: ResultStore,
    *,
    wall_seconds: float = 0.0,
    workers: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Aggregate per-job manifests + journal state into one document.

    ``workers`` is the distributed coordinator's per-worker stat map
    (jobs/retries/steals/bytes merged, keyed by worker id); single-host
    campaigns leave it out and the manifest shape is unchanged.
    """
    import repro

    entries = [_job_entry(job, records.get(job.key), store) for job in jobs]
    states = [e["state"] for e in entries]
    manifest: Dict[str, Any] = {
        "schema": CAMPAIGN_SCHEMA,
        "name": name,
        "version": repro.__version__,
        "created_unix": time.time(),
        "wall_seconds": wall_seconds,
        "totals": {
            "jobs": len(entries),
            "done": states.count("done"),
            "cached": sum(1 for e in entries
                          if e["state"] == "done" and e["cached"]),
            "executed": sum(1 for e in entries
                            if e["state"] == "done" and not e["cached"]),
            "failed": states.count("failed"),
            "timeout": states.count("timeout"),
            "pending": sum(1 for s in states
                           if s in ("planned", "running", "unplanned")),
            "events_total": sum(e.get("events_total", 0) for e in entries),
            "store_bytes": store.size_bytes(),
        },
        "jobs": entries,
    }
    if workers:
        manifest["workers"] = {
            worker: dict(stats) for worker, stats in sorted(workers.items())
        }
    return manifest


def write_campaign_manifest(
    state: CampaignState,
    jobs: Sequence[Job],
    records: Dict[str, JobRecord],
    store: ResultStore,
    *,
    wall_seconds: float = 0.0,
    workers: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Path:
    """Build and write ``campaign.manifest.json`` next to the journal."""
    manifest = build_campaign_manifest(
        state.name, jobs, records, store,
        wall_seconds=wall_seconds, workers=workers,
    )
    target = state.directory / "campaign.manifest.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return target


def render_status(
    name: str,
    jobs: Sequence[Job],
    records: Dict[str, JobRecord],
    store: ResultStore,
    *,
    workers: Optional[Dict[str, Dict[str, Any]]] = None,
) -> str:
    """The human-facing status table for ``repro campaign status``."""
    rows: List[tuple] = []
    for job in jobs:
        rec = records.get(job.key)
        state_name = rec.state if rec else "unplanned"
        if rec and rec.state == "done" and rec.cached:
            state_name = "done (cached)"
        rows.append((
            job.label,
            job.key[:12],
            state_name,
            rec.attempts if rec else 0,
            f"{rec.seconds:.2f}" if rec and rec.seconds else "-",
            "yes" if store.has(job.key) else "no",
            (rec.error[:48] if rec else ""),
        ))
    manifest = build_campaign_manifest(name, jobs, records, store)
    totals = manifest["totals"]
    table = render_table(
        ["job", "key", "state", "tries", "seconds", "stored", "error"],
        rows,
        title=f"campaign '{name}': {totals['jobs']} jobs",
    )
    footer = (
        f"\ndone {totals['done']} ({totals['cached']} cached, "
        f"{totals['executed']} executed) · failed {totals['failed']} · "
        f"timeout {totals['timeout']} · pending {totals['pending']} · "
        f"store {totals['store_bytes'] // 1024} KB"
    )
    if workers:
        worker_rows = [
            (
                worker,
                stats.get("host", "?"),
                stats.get("jobs", 0),
                stats.get("failed", 0),
                stats.get("retries", 0),
                stats.get("steals", 0),
                f"{stats.get('bytes_merged', 0) // 1024}",
            )
            for worker, stats in sorted(workers.items())
        ]
        footer += "\n\n" + render_table(
            ["worker", "host", "jobs", "failed", "retries", "steals",
             "merged KB"],
            worker_rows,
            title=f"workers ({len(worker_rows)})",
        )
    return table + footer
