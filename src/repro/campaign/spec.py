"""Campaign specs: a declarative sweep matrix expanded into addressed jobs.

The paper's evaluation is a *campaign*: every figure and table sweeps the
PARSEC suite across tool stacks, input sizes and Sigil configurations.  A
:class:`CampaignSpec` states that sweep declaratively -- lists of
workloads, sizes, tools and config variants -- and :meth:`CampaignSpec.jobs`
expands the cross product into :class:`Job` objects.

Every job is **content-addressed**: its :attr:`Job.key` is the SHA-256 of
the canonical JSON of (workload, size, tool stack, full Sigil config,
``repro.__version__``).  Two jobs that would compute the same profile share
a key, so the result store can answer "have I already done this?" exactly;
bumping the package version invalidates every key, so stale profiles from
an older pipeline are never served.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.core.config import SigilConfig
from repro.harness import TOOL_STACKS
from repro.workloads import ALL_NAMES, InputSize

__all__ = ["Job", "CampaignSpec", "canonical_config"]


def canonical_config(config: Union[Mapping[str, Any], SigilConfig, None]) -> Dict[str, Any]:
    """The full, defaults-included dict form of a Sigil configuration.

    Keying jobs on the *complete* config (not just the keys a spec spelled
    out) makes ``{}`` and ``{"reuse_mode": False}`` hash identically, and
    makes adding a config field a key-visible change only when its value
    differs from the default.
    """
    if config is None:
        cfg = SigilConfig()
    elif isinstance(config, SigilConfig):
        cfg = config
    else:
        cfg = SigilConfig(**dict(config))
    return dataclasses.asdict(cfg)


def _registered_runner_tools() -> frozenset:
    """Tools with a registered custom runner (beyond the built-in stacks).

    A benchmark or test can register a runner (see
    :func:`repro.campaign.executor.register_runner`, or the worker CLI's
    ``--runner`` module hook) and then sweep it through a spec like any
    built-in stack.  Imported lazily: the executor imports this module.
    """
    try:
        from repro.campaign.executor import RUNNERS
    except ImportError:  # pragma: no cover - circular import during init
        return frozenset()
    return frozenset(RUNNERS)


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports harness, which must not pull
    # the campaign package back in at import time.
    import repro

    return repro.__version__


@dataclass
class Job:
    """One cell of the campaign matrix: a single profiling run to perform."""

    workload: str
    size: str = InputSize.SIMSMALL.value
    tool: str = "sigil+callgrind"
    config: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.size = InputSize(self.size).value
        self.config = canonical_config(self.config)

    @property
    def label(self) -> str:
        """Human-readable identity, e.g. ``vips/simsmall/sigil``."""
        return f"{self.workload}/{self.size}/{self.tool}"

    @property
    def key(self) -> str:
        """Content address of this job (64 hex chars, SHA-256)."""
        payload = {
            "workload": self.workload,
            "size": self.size,
            "tool": self.tool,
            "config": self.config,
            "version": _package_version(),
        }
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()

    def sigil_config(self) -> SigilConfig:
        """The :class:`SigilConfig` this job runs under."""
        return SigilConfig(**self.config)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "size": self.size,
            "tool": self.tool,
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        return cls(
            workload=str(data["workload"]),
            size=str(data.get("size", InputSize.SIMSMALL.value)),
            tool=str(data.get("tool", "sigil+callgrind")),
            config=dict(data.get("config", {})),
        )


@dataclass
class CampaignSpec:
    """A declarative batch of profiling jobs: the matrix before expansion.

    ``configs`` is a list of Sigil-config variants (dicts of
    :class:`SigilConfig` fields); the default single empty dict means "the
    default configuration".  Expansion is the full cross product
    ``workloads x sizes x tools x configs``, in deterministic order.
    """

    name: str = "campaign"
    workloads: List[str] = field(default_factory=list)
    sizes: List[str] = field(default_factory=lambda: [InputSize.SIMSMALL.value])
    tools: List[str] = field(default_factory=lambda: ["sigil+callgrind"])
    configs: List[Dict[str, Any]] = field(default_factory=lambda: [{}])

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Fail fast on anything the expansion would choke on later."""
        if not self.name or "/" in self.name:
            raise ValueError(f"invalid campaign name {self.name!r}")
        unknown = [w for w in self.workloads if w not in ALL_NAMES]
        if unknown:
            raise ValueError(
                f"unknown workloads: {', '.join(unknown)}; "
                f"available: {', '.join(ALL_NAMES)}"
            )
        for size in self.sizes:
            InputSize(size)  # raises ValueError on junk
        bad_tools = [t for t in self.tools if t not in TOOL_STACKS
                     and t not in _registered_runner_tools()]
        if bad_tools:
            raise ValueError(
                f"unknown tool stacks: {', '.join(bad_tools)}; "
                f"available: {', '.join(TOOL_STACKS)}"
            )
        for cfg in self.configs:
            canonical_config(cfg)  # raises on unknown fields / bad values

    def jobs(self) -> List[Job]:
        """Expand the matrix into content-addressed jobs."""
        expanded: List[Job] = []
        for workload in self.workloads:
            for size in self.sizes:
                for tool in self.tools:
                    for config in self.configs:
                        expanded.append(
                            Job(workload=workload, size=size, tool=tool,
                                config=dict(config))
                        )
        return expanded

    def __len__(self) -> int:
        return (len(self.workloads) * len(self.sizes) * len(self.tools)
                * len(self.configs))

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "workloads": list(self.workloads),
            "sizes": list(self.sizes),
            "tools": list(self.tools),
            "configs": [dict(c) for c in self.configs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown campaign spec keys: {', '.join(sorted(unknown))}"
            )
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("campaign spec JSON must be an object")
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n")
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        return cls.from_json(Path(path).read_text())

    # -- convenience constructors -----------------------------------------

    @classmethod
    def from_lists(
        cls,
        *,
        name: str = "campaign",
        workloads: Iterable[str],
        sizes: Optional[Iterable[str]] = None,
        tools: Optional[Iterable[str]] = None,
        configs: Optional[Iterable[Mapping[str, Any]]] = None,
    ) -> "CampaignSpec":
        """Build a spec from iterables, applying the documented defaults."""
        return cls(
            name=name,
            workloads=list(workloads),
            sizes=list(sizes) if sizes else [InputSize.SIMSMALL.value],
            tools=list(tools) if tools else ["sigil+callgrind"],
            configs=[dict(c) for c in configs] if configs else [{}],
        )
