"""Journaled campaign state: every job transition is one appended JSON line.

A campaign's ground truth lives in ``<store>/campaigns/<name>/``:

* ``spec.json``    -- the spec as submitted (so ``resume`` needs no flags)
* ``journal.jsonl``-- append-only job lifecycle events
* ``workers/``     -- one ``<worker>.jsonl`` journal per distributed worker

Journal records carry ``event`` (``planned`` / ``started`` / ``done`` /
``failed`` / ``timeout`` / ``stolen`` / ``interrupted``), the job ``key``
and ``label``, an ``attempt`` ordinal, event-specific detail (``cached`` on
done, ``error`` on failed), and the writer's identity (``host`` and
``worker``, see :mod:`repro.campaign.identity`) so multi-host journals stay
attributable.  Replaying the journal -- last event per key wins --
reconstructs exactly where an interrupted campaign stood, which is all
``repro campaign resume`` needs: jobs whose final state is ``done`` are
skipped, everything else is re-planned.

A **distributed** campaign has several journals: the coordinator's plus one
per worker (written on the worker's own host and synced back with its
store).  :meth:`CampaignState.replay_all` merges them all in timestamp
order before folding, so a killed coordinator resumes from the union of
what every worker durably recorded -- zero lost, zero duplicated work.

Appends go through :func:`repro.telemetry.append_jsonl`, whose exclusive
file lock keeps lines whole when several workers' completions are recorded
concurrently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.campaign.identity import hostname, worker_id
from repro.campaign.spec import CampaignSpec, Job
from repro.telemetry import append_jsonl, read_jsonl

__all__ = [
    "CampaignState",
    "JobRecord",
    "TERMINAL_STATES",
    "fold_events",
]

#: Job states that need no further work on resume.
TERMINAL_STATES = frozenset({"done"})


@dataclass
class JobRecord:
    """The replayed view of one job: its latest state plus counters."""

    key: str
    label: str = ""
    state: str = "planned"
    attempts: int = 0
    cached: bool = False
    seconds: float = 0.0
    error: str = ""
    host: str = ""
    worker: str = ""

    @property
    def is_done(self) -> bool:
        return self.state in TERMINAL_STATES


def fold_events(events: Iterable[Dict[str, Any]]) -> Dict[str, JobRecord]:
    """Fold journal records into per-job state (last event per key wins).

    Records from journals written before the identity fields existed fold
    identically (``host``/``worker`` default to empty strings), and unknown
    event kinds are skipped, so old and new journals replay through the
    same code.
    """
    records: Dict[str, JobRecord] = {}
    for event in events:
        key = event.get("key")
        if not key:
            continue  # campaign-level marker (e.g. interrupted)
        rec = records.setdefault(
            key, JobRecord(key=key, label=str(event.get("label", "")))
        )
        kind = event.get("event", "")
        if kind == "planned":
            # A re-plan of an unfinished job resets nothing; the record
            # already reflects history.
            rec.state = rec.state if rec.is_done else "planned"
        elif kind == "started":
            # Never downgrade done: in a multi-journal merge a worker's
            # `started` can carry a later clock than the coordinator's
            # authoritative `done` for the same attempt.
            if not rec.is_done:
                rec.state = "running"
                rec.host = str(event.get("host", rec.host))
                rec.worker = str(event.get("worker", rec.worker))
            rec.attempts = max(rec.attempts, int(event.get("attempt", 1)))
        elif kind == "stolen":
            # The assigned worker went silent and the job was reassigned;
            # it is in flight again unless some journal already has it done.
            if not rec.is_done:
                rec.state = "planned"
        elif kind in ("done", "failed", "timeout"):
            rec.state = kind
            rec.cached = bool(event.get("cached", False))
            rec.seconds = float(event.get("seconds", 0.0))
            rec.error = str(event.get("error", ""))
            rec.host = str(event.get("host", rec.host))
            rec.worker = str(event.get("worker", rec.worker))
    return records


class CampaignState:
    """One campaign's on-disk journal and spec, under a store directory."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.journal_path = self.directory / "journal.jsonl"
        self.spec_path = self.directory / "spec.json"

    @property
    def name(self) -> str:
        return self.directory.name

    def exists(self) -> bool:
        return self.spec_path.exists() or self.journal_path.exists()

    # -- spec -------------------------------------------------------------

    def save_spec(self, spec: CampaignSpec) -> None:
        spec.save(self.spec_path)

    def load_spec(self) -> CampaignSpec:
        if not self.spec_path.exists():
            raise FileNotFoundError(
                f"no campaign named {self.name!r} here "
                f"(missing {self.spec_path})"
            )
        return CampaignSpec.load(self.spec_path)

    # -- runner module ----------------------------------------------------

    @property
    def runner_path(self) -> Path:
        return self.directory / "runner.txt"

    def save_runner(self, module: str) -> None:
        """Persist the ``--runner`` module so later commands can reload it.

        A spec whose tools come from a runner module only validates after
        that module is imported; remembering it here lets ``resume``,
        ``status`` and ``verify`` work without the flag being repeated.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        self.runner_path.write_text(module + "\n")

    def runner_module(self) -> Optional[str]:
        """The persisted runner module name, or None."""
        if not self.runner_path.exists():
            return None
        return self.runner_path.read_text().strip() or None

    # -- journal ----------------------------------------------------------

    def append(self, event: str, job: Optional[Job] = None, **detail: Any) -> None:
        """Record one lifecycle event (lock-guarded, crash-safe).

        Every record is stamped with the writing process's ``host`` and
        ``worker`` identity so merged multi-host journals stay
        attributable; explicit ``host=``/``worker=`` detail (e.g. the
        coordinator recording *which worker* finished a job) wins over the
        writer's own identity.
        """
        record: Dict[str, Any] = {
            "event": event,
            "t": time.time(),
            "host": hostname(),
            "worker": worker_id(),
        }
        if job is not None:
            record["key"] = job.key
            record["label"] = job.label
        record.update(detail)
        append_jsonl(self.journal_path, record)

    def events(self) -> List[Dict[str, Any]]:
        """Every journal record, in append order."""
        return read_jsonl(self.journal_path)

    def replay(self) -> Dict[str, JobRecord]:
        """Fold this journal (only) into per-job records."""
        return fold_events(self.events())

    # -- worker journals (distributed campaigns) --------------------------

    @property
    def workers_dir(self) -> Path:
        """Where per-worker journals live: ``<campaign>/workers/``."""
        return self.directory / "workers"

    def worker_journal_path(self, worker: str) -> Path:
        return self.workers_dir / f"{worker}.jsonl"

    def journal_paths(self) -> List[Path]:
        """Every journal of this campaign: the coordinator's, then workers'."""
        paths: List[Path] = []
        if self.journal_path.exists():
            paths.append(self.journal_path)
        if self.workers_dir.exists():
            paths.extend(sorted(self.workers_dir.glob("*.jsonl")))
        return paths

    def all_events(self) -> List[Dict[str, Any]]:
        """Records from every journal, merged in timestamp order.

        The sort is stable, so same-timestamp records keep their journal
        order; cross-host clock skew cannot un-finish a job because
        :func:`fold_events` never downgrades ``done``.
        """
        merged: List[Dict[str, Any]] = []
        for path in self.journal_paths():
            merged.extend(read_jsonl(path))
        merged.sort(key=lambda record: float(record.get("t", 0.0)))
        return merged

    def replay_all(self) -> Dict[str, JobRecord]:
        """Fold the coordinator's and every worker's journal together."""
        return fold_events(self.all_events())

    def completed_keys(self) -> frozenset:
        """Keys whose final state -- across every journal -- is terminal.

        A job a worker durably published and journaled counts as complete
        even when the coordinator died before recording the merge; resume
        ingests the artifact from the worker's store instead of re-running.
        """
        return frozenset(
            key for key, rec in self.replay_all().items() if rec.is_done
        )

    def worker_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-worker telemetry from ``worker-stats`` events (last wins).

        The distributed coordinator appends one summary record per worker
        at the end of a run (jobs, failures, steals, retries, bytes
        merged); ``repro campaign status`` renders them as the workers
        table.  Single-host journals simply have none.
        """
        stats: Dict[str, Dict[str, Any]] = {}
        for event in self.events():
            if event.get("event") != "worker-stats":
                continue
            name = str(event.get("worker", ""))
            if not name:
                continue
            stats[name] = {
                k: v for k, v in event.items()
                if k not in ("event", "t")
            }
        return stats

    # -- maintenance ------------------------------------------------------

    def remove(self) -> bool:
        """Delete this campaign's directory; True when something was removed."""
        import shutil

        if not self.directory.exists():
            return False
        shutil.rmtree(self.directory)
        return True
