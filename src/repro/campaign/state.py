"""Journaled campaign state: every job transition is one appended JSON line.

A campaign's ground truth lives in ``<store>/campaigns/<name>/``:

* ``spec.json``    -- the spec as submitted (so ``resume`` needs no flags)
* ``journal.jsonl``-- append-only job lifecycle events

Journal records carry ``event`` (``planned`` / ``started`` / ``done`` /
``failed`` / ``timeout`` / ``interrupted``), the job ``key`` and ``label``,
an ``attempt`` ordinal, and event-specific detail (``cached`` on done,
``error`` on failed).  Replaying the journal -- last event per key wins --
reconstructs exactly where an interrupted campaign stood, which is all
``repro campaign resume`` needs: jobs whose final state is ``done`` are
skipped, everything else is re-planned.

Appends go through :func:`repro.telemetry.append_jsonl`, whose exclusive
file lock keeps lines whole when several workers' completions are recorded
concurrently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.campaign.spec import CampaignSpec, Job
from repro.telemetry import append_jsonl, read_jsonl

__all__ = ["CampaignState", "JobRecord", "TERMINAL_STATES"]

#: Job states that need no further work on resume.
TERMINAL_STATES = frozenset({"done"})


@dataclass
class JobRecord:
    """The replayed view of one job: its latest state plus counters."""

    key: str
    label: str = ""
    state: str = "planned"
    attempts: int = 0
    cached: bool = False
    seconds: float = 0.0
    error: str = ""

    @property
    def is_done(self) -> bool:
        return self.state in TERMINAL_STATES


class CampaignState:
    """One campaign's on-disk journal and spec, under a store directory."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.journal_path = self.directory / "journal.jsonl"
        self.spec_path = self.directory / "spec.json"

    @property
    def name(self) -> str:
        return self.directory.name

    def exists(self) -> bool:
        return self.spec_path.exists() or self.journal_path.exists()

    # -- spec -------------------------------------------------------------

    def save_spec(self, spec: CampaignSpec) -> None:
        spec.save(self.spec_path)

    def load_spec(self) -> CampaignSpec:
        if not self.spec_path.exists():
            raise FileNotFoundError(
                f"no campaign named {self.name!r} here "
                f"(missing {self.spec_path})"
            )
        return CampaignSpec.load(self.spec_path)

    # -- journal ----------------------------------------------------------

    def append(self, event: str, job: Optional[Job] = None, **detail: Any) -> None:
        """Record one lifecycle event (lock-guarded, crash-safe)."""
        record: Dict[str, Any] = {"event": event, "t": time.time()}
        if job is not None:
            record["key"] = job.key
            record["label"] = job.label
        record.update(detail)
        append_jsonl(self.journal_path, record)

    def events(self) -> List[Dict[str, Any]]:
        """Every journal record, in append order."""
        return read_jsonl(self.journal_path)

    def replay(self) -> Dict[str, JobRecord]:
        """Fold the journal into per-job records (last event wins)."""
        records: Dict[str, JobRecord] = {}
        for event in self.events():
            key = event.get("key")
            if not key:
                continue  # campaign-level marker (e.g. interrupted)
            rec = records.setdefault(
                key, JobRecord(key=key, label=str(event.get("label", "")))
            )
            kind = event.get("event", "")
            if kind == "planned":
                # A re-plan of an unfinished job resets nothing; the record
                # already reflects history.
                rec.state = rec.state if rec.is_done else "planned"
            elif kind == "started":
                rec.state = "running"
                rec.attempts = max(rec.attempts, int(event.get("attempt", 1)))
            elif kind in ("done", "failed", "timeout"):
                rec.state = kind
                rec.cached = bool(event.get("cached", False))
                rec.seconds = float(event.get("seconds", 0.0))
                rec.error = str(event.get("error", ""))
        return records

    def completed_keys(self) -> frozenset:
        """Keys whose final journal state needs no further work."""
        return frozenset(
            key for key, rec in self.replay().items() if rec.is_done
        )

    # -- maintenance ------------------------------------------------------

    def remove(self) -> bool:
        """Delete this campaign's directory; True when something was removed."""
        import shutil

        if not self.directory.exists():
            return False
        shutil.rmtree(self.directory)
        return True
