"""Who is writing this record: hostname + worker id for multi-host journals.

A single-host campaign has one writer and its journal needs no
attribution.  A distributed campaign has many -- the coordinator plus one
worker per backend, possibly on different machines -- and their journals
are merged on replay, so every record (and every stderr heartbeat) carries
``host`` and ``worker`` fields naming its writer.

The worker id comes from the :data:`WORKER_ID_ENV` environment variable,
which the distributed worker process sets from its ``--id`` flag before
doing anything else; outside a worker the id is ``"local"``.  Old journals
without the fields keep parsing (replay defaults them to empty strings),
and journals with the fields are ignored cleanly by older readers.
"""

from __future__ import annotations

import os
import socket

__all__ = ["WORKER_ID_ENV", "hostname", "worker_id", "identity_suffix"]

#: Environment variable naming the current process's campaign worker id.
WORKER_ID_ENV = "REPRO_WORKER_ID"

_HOSTNAME: str = ""


def hostname() -> str:
    """The local hostname, resolved once per process."""
    global _HOSTNAME
    if not _HOSTNAME:
        try:
            _HOSTNAME = socket.gethostname() or "unknown-host"
        except OSError:  # pragma: no cover - no hostname syscall
            _HOSTNAME = "unknown-host"
    return _HOSTNAME


def worker_id() -> str:
    """This process's campaign worker id (``"local"`` outside a worker)."""
    return os.environ.get(WORKER_ID_ENV) or "local"


def identity_suffix() -> str:
    """The ``[host/worker]`` tag stamped on stderr heartbeat lines."""
    return f"[{hostname()}/{worker_id()}]"
