"""Critical-path analysis over event files (sections II-C2 and IV-C).

"We can post-process these files to separate the dependent chains of events
in the program.  These dependent chains reveal the critical path of an
application and the theoretical limits of scheduling parallel tasks."

Nodes are function-call segments; a node's self-cost is the operations
performed in the fragment, its inclusive cost "the sum of the self-costs of
the longest chain from 'main' to that node" (Figure 3).  Functions are
modeled as non-blocking -- "calls to child functions can be non-blocking and
are only limited by their data dependencies" -- with conservative ordering
between fragments of the same call.

"The maximum theoretical function-level parallelism is the ratio of overall
serial length of the program to the critical path length." (Figure 13)

Every event-log form is accepted: the object :class:`EventLog`, the
columnar :class:`EventArrays`, and -- out of core -- a path or raw bytes of
a v2 binary file (or any :class:`~repro.analysis.streaming.ChunkSource`).
Materialised forms run the longest-path DP over edge arrays grouped by
destination (one stable sort, no per-edge Python objects); streamed forms
run the same DP one segment chunk at a time, merging the two edge tables by
destination through :class:`~repro.analysis.streaming.EdgeCursor`, keeping
only 16 bytes of persistent state per segment.  Results are identical on
all forms, including tie-breaking on the reported path.
"""

from __future__ import annotations

import contextlib
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.common.cct import ContextTree
from repro.core.segments import (
    EventArrays,
    EventLog,
    Segment,
    as_event_arrays,
)
from repro.analysis.streaming import (
    ChunkSource,
    EdgeCursor,
    EventSource,
    GrowingColumn,
    UnsortedEdges,
    as_chunk_source,
)

__all__ = ["CriticalPathResult", "analyze_critical_path", "events_to_dot"]


class CriticalPathResult:
    """Outcome of dependency-chain construction.

    ``serial_length`` is the sum of all segment self-costs (the program's
    serial length), ``critical_length`` the longest dependent chain in
    operations, ``inclusive`` the per-segment inclusive cost (longest chain
    from the start to it -- a list for materialised inputs, an int64 array
    for streamed ones), and ``path`` the segments on the critical path in
    execution order.  ``path`` is materialised lazily: on a
    million-segment log whose critical path covers most of the program,
    building one ``Segment`` object per path node costs more than the
    longest-path DP itself, and callers that only want the lengths (the
    parallelism limit, benchmark comparisons) never pay it.  Streamed
    results defer even the backtrack, holding only the best-predecessor
    array until ``path`` is first touched (which replays the segment chunks
    to gather the path's rows).
    """

    def __init__(
        self,
        serial_length: int,
        critical_length: int,
        path: Optional[List[Segment]],
        inclusive: Sequence[int],
    ):
        self.serial_length = serial_length
        self.critical_length = critical_length
        self.inclusive = inclusive
        self._path = path
        self._source: Union[EventLog, EventArrays, ChunkSource, None] = None
        self._path_ids: Optional[List[int]] = None
        self._best_pred: Optional[np.ndarray] = None
        self._end = -1

    @classmethod
    def _deferred(
        cls,
        serial_length: int,
        critical_length: int,
        inclusive: Sequence[int],
        source: Union[EventLog, EventArrays, ChunkSource],
        path_ids: Optional[List[int]] = None,
        best_pred: Optional[np.ndarray] = None,
        end: int = -1,
    ) -> "CriticalPathResult":
        result = cls(serial_length, critical_length, None, inclusive)
        result._source = source
        result._path_ids = path_ids
        result._best_pred = best_pred
        result._end = end
        return result

    @property
    def path(self) -> List[Segment]:
        """Segments on the critical path, in execution order."""
        if self._path is None:
            if self._path_ids is None:
                assert self._best_pred is not None
                self._path_ids = _backtrack(self._best_pred, self._end)
                self._best_pred = None
            assert self._source is not None
            self._path = _materialise_path(self._source, self._path_ids)
        return self._path

    @property
    def max_parallelism(self) -> float:
        """Figure 13's maximum speedup from function-level parallelism."""
        if self.critical_length <= 0:
            return 1.0
        return self.serial_length / self.critical_length

    def path_functions(self, tree: ContextTree) -> List[str]:
        """Distinct function names on the critical path, leaf to main order
        (the presentation used for streamcluster and fluidanimate in IV-C)."""
        names: List[str] = []
        seen = set()
        for seg in reversed(self.path):
            name = tree.node(seg.ctx_id).name
            if name != "<root>" and name not in seen:
                seen.add(name)
                names.append(name)
        return names


def _dot_escape(text: str) -> str:
    """Escape a string for use inside a double-quoted DOT label.

    Function names are arbitrary (demangled C++ carries ``<``, ``"`` and
    ``\\``; ``sys:`` pseudo-nodes carry whatever the syscall was called) --
    unescaped quotes or backslashes produce invalid Graphviz.
    """
    return text.replace("\\", "\\\\").replace('"', '\\"')


def events_to_dot(
    events: Union[EventLog, EventArrays],
    tree: Optional[ContextTree] = None,
    result: Optional[CriticalPathResult] = None,
    *,
    max_segments: int = 400,
) -> str:
    """Graphviz rendering of the dependency chains (Figure 3's picture).

    Nodes are function-call fragments labelled with self cost (and, when a
    :class:`CriticalPathResult` is supplied, the inclusive cost of the
    longest chain to them); the critical path is highlighted in bold/grey,
    matching the paper's presentation.  Large logs are truncated to the
    ``max_segments`` highest-cost segments plus everything on the path.
    """
    if isinstance(events, EventArrays):
        events = events.to_eventlog()
    result = result if result is not None else analyze_critical_path(events)
    on_path = {seg.seg_id for seg in result.path}
    keep = set(on_path)
    by_cost = sorted(events.segments, key=lambda s: s.ops, reverse=True)
    for seg in by_cost:
        if len(keep) >= max_segments:
            break
        keep.add(seg.seg_id)

    def label(seg: Segment) -> str:
        name = tree.node(seg.ctx_id).name if tree is not None else f"ctx{seg.ctx_id}"
        text = f"{_dot_escape(name)}\\nself: {seg.ops}"
        if len(result.inclusive):
            text += f"\\ncost = {result.inclusive[seg.seg_id]}"
        return text

    lines = ["digraph chains {", "  rankdir=TB;", "  node [shape=box];"]
    for seg in events.segments:
        if seg.seg_id not in keep:
            continue
        style = ' style=filled fillcolor="grey80"' if seg.seg_id in on_path else ""
        lines.append(f'  s{seg.seg_id} [label="{label(seg)}"{style}];')
    for edge in events.edges():
        if edge.src not in keep or edge.dst not in keep:
            continue
        attrs = []
        if edge.kind == "data":
            attrs.append(f'label="{edge.bytes}B"')
        if edge.kind == "order":
            attrs.append("style=dashed")
        if edge.src in on_path and edge.dst in on_path:
            attrs.append("penwidth=2.5")
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  s{edge.src} -> s{edge.dst}{attr_text};")
    lines.append("}")
    return "\n".join(lines)


def analyze_critical_path(
    events: EventSource,
    *,
    telemetry=None,
) -> CriticalPathResult:
    """Longest-path DP over the segment DAG.

    All edges point from an earlier segment to a later one (producers write
    before consumers read; calls and order edges follow time), so segments
    in id order are already topologically sorted.  Materialised inputs
    (:class:`EventLog`/:class:`EventArrays`) consume the columnar edge
    tables directly: edges are stable-sorted by destination once, then a
    single forward pass finalises each segment's inclusive cost from the
    already-final costs of its predecessors.

    Any other input (a v2 file path, raw bytes, a
    :class:`~repro.analysis.streaming.ChunkSource`) streams: three filtered
    cursors walk the segment, order/call and data chunks in lock-step, the
    DP advancing one segment chunk at a time, so the log never materialises
    and peak memory is bounded by the chunk size plus 16 bytes per segment
    of DP state.  The streamed DP needs each edge table in non-decreasing
    destination order -- true of every writer here, since an edge's
    destination is the newest segment -- and transparently falls back to
    the materialised analysis when a table violates it.
    """
    if not isinstance(events, (EventLog, EventArrays)):
        source = as_chunk_source(events)
        try:
            return _analyze_stream(source, telemetry=telemetry)
        except UnsortedEdges:
            return analyze_critical_path(
                source.to_event_arrays(), telemetry=telemetry
            )
    source = events
    arrays = as_event_arrays(events)
    n = arrays.n_segments
    if n == 0:
        return CriticalPathResult(0, 0, [], [])

    # Concatenation order (order/call edges, then data edges) matches
    # EventLog.edges(), so tie-breaking below reproduces the object path.
    src = np.concatenate((arrays.ordercall["src"], arrays.data["src"]))
    dst = np.concatenate((arrays.ordercall["dst"], arrays.data["dst"]))
    forward = src < dst
    if not bool(forward.all()):
        bad = int(np.argmax(~forward))
        raise ValueError(
            f"event log is not topologically ordered: "
            f"{int(src[bad])} -> {int(dst[bad])}"
        )
    by_dst = np.argsort(dst, kind="stable")
    src_sorted = src[by_dst].tolist()
    # Group size per destination; the sorted edge list is consumed as one
    # contiguous slice per node, so the pass never re-tests destinations.
    pred_counts = np.bincount(dst, minlength=n).tolist()
    ops = arrays.segs["ops"].tolist()

    inclusive = [0] * n
    best_pred = [-1] * n
    ei = 0
    for i, op in enumerate(ops):
        c = pred_counts[i]
        if c == 1:  # the overwhelmingly common case: one order/call pred
            chosen = src_sorted[ei]
            best = inclusive[chosen]
            ei += 1
        elif c:
            best = 0
            chosen = -1
            for p in src_sorted[ei:ei + c]:
                v = inclusive[p]
                # ">=" so zero-cost prefix fragments (e.g. main before
                # its first op) stay on the reported path.
                if v >= best:
                    best = v
                    chosen = p
            ei += c
        else:
            best = 0
            chosen = -1
        inclusive[i] = best + op
        best_pred[i] = chosen

    end = max(range(n), key=inclusive.__getitem__)
    path_ids: List[int] = []
    cursor = end
    while cursor != -1:
        path_ids.append(cursor)
        cursor = best_pred[cursor]
    path_ids.reverse()

    return CriticalPathResult._deferred(
        serial_length=arrays.total_ops(),
        critical_length=inclusive[end],
        inclusive=inclusive,
        source=source,
        path_ids=path_ids,
    )


def _analyze_stream(
    source: ChunkSource, *, telemetry=None
) -> CriticalPathResult:
    """Chunk-at-a-time longest-path DP (see :func:`analyze_critical_path`).

    Three concurrent passes over the source -- segments, order/call edges,
    data edges -- merge by destination.  For each segment chunk
    ``[done, done + m)``, both cursors surrender every remaining edge with
    ``dst`` in that window; within the window the DP is the same grouped
    loop as the materialised analysis, with the same ``>=`` tie-break and
    the same per-destination edge order (all order/call predecessors in
    table order, then all data predecessors), so results -- including the
    reported path -- are byte-identical.
    """
    phase = (
        telemetry.phase("critical_path")
        if telemetry is not None
        else contextlib.nullcontext()
    )
    gauge = (
        telemetry.gauge("analysis.stream.peak_chunk_bytes")
        if telemetry is not None
        else None
    )
    inclusive = GrowingColumn()
    best_pred = GrowingColumn()
    oced = EdgeCursor(source.chunks(tables=("oced",)), "oced")
    data = EdgeCursor(source.chunks(tables=("data",)), "data")
    serial = 0
    done = 0
    with phase:
        for _table, segs in source.chunks(tables=("segs",)):
            m = len(segs)
            if not m:
                continue
            if gauge is not None:
                gauge.set_max(int(segs.nbytes))
            ops_col = segs["ops"]
            if int(ops_col.min()) < 0:
                raise ValueError("segment ops must be non-negative")
            serial += int(ops_col.sum())
            hi = done + m
            o_src, o_dst = oced.take_below(hi)
            d_src, d_dst = data.take_below(hi)
            # Group sizes per in-window destination; each destination's
            # predecessors are one contiguous slice of the cursor output.
            o_counts = np.bincount(o_dst - done, minlength=m).tolist()
            d_counts = np.bincount(d_dst - done, minlength=m).tolist()
            o_list = o_src.tolist()
            d_list = d_src.tolist()
            ops = ops_col.tolist()
            inc_prev = inclusive.view()  # finalised costs of prior windows
            win_inc = [0] * m
            win_bp = [-1] * m
            oi = di = 0
            for j in range(m):
                best = 0
                chosen = -1
                c = o_counts[j]
                if c:
                    for p in o_list[oi : oi + c]:
                        v = (
                            win_inc[p - done]
                            if p >= done
                            else int(inc_prev[p])
                        )
                        # ">=" so zero-cost prefix fragments stay on the
                        # reported path (matches the materialised DP).
                        if v >= best:
                            best = v
                            chosen = p
                    oi += c
                c = d_counts[j]
                if c:
                    for p in d_list[di : di + c]:
                        v = (
                            win_inc[p - done]
                            if p >= done
                            else int(inc_prev[p])
                        )
                        if v >= best:
                            best = v
                            chosen = p
                    di += c
                win_inc[j] = best + ops[j]
                win_bp[j] = chosen
            inclusive.append(np.asarray(win_inc, dtype=np.int64))
            best_pred.append(np.asarray(win_bp, dtype=np.int64))
            done = hi
        oced.require_empty(done)
        data.require_empty(done)

    inc = inclusive.view()
    if not done:
        return CriticalPathResult(0, 0, [], np.empty(0, dtype=np.int64))
    end = int(np.argmax(inc))  # first maximum, like max() on a list
    return CriticalPathResult._deferred(
        serial_length=serial,
        critical_length=int(inc[end]),
        inclusive=inc.copy(),
        source=source,
        best_pred=best_pred.view().copy(),
        end=end,
    )


def _backtrack(best_pred: np.ndarray, end: int) -> List[int]:
    """Walk best-predecessor links from ``end`` back to a root."""
    path_ids: List[int] = []
    cursor = end
    while cursor != -1:
        path_ids.append(cursor)
        cursor = int(best_pred[cursor])
    path_ids.reverse()
    return path_ids


def _materialise_path(
    source: Union[EventLog, EventArrays, ChunkSource], path_ids: List[int]
) -> List[Segment]:
    if isinstance(source, ChunkSource):
        return _gather_path_stream(source, path_ids)
    if isinstance(source, EventLog):
        # Share the caller's Segment objects rather than copying them.
        return [source.segments[i] for i in path_ids]
    # Only path nodes are ever built as objects, gathered column-wise in
    # bulk (per-column tolist is much cheaper than converting structured
    # rows one tuple at a time).
    sel = np.asarray(path_ids, dtype=np.int64)
    segs = source.segs
    return list(
        map(
            Segment,
            path_ids,
            segs["ctx"][sel].tolist(),
            segs["call"][sel].tolist(),
            segs["start"][sel].tolist(),
            segs["ops"][sel].tolist(),
            segs["thread"][sel].tolist(),
        )
    )


def _gather_path_stream(
    source: ChunkSource, path_ids: List[int]
) -> List[Segment]:
    """Gather the path's segment rows in one more pass over the chunks.

    ``path_ids`` ascends (every best-predecessor link points backwards), so
    each segment chunk contributes one contiguous slice of the path,
    located with two binary searches -- the pass stays O(chunks) plus
    O(path) gathered rows.
    """
    if not path_ids:
        return []
    wanted = np.asarray(path_ids, dtype=np.int64)
    segments: List[Segment] = []
    done = 0
    for _table, segs in source.chunks(tables=("segs",)):
        m = len(segs)
        if not m:
            continue
        lo = int(np.searchsorted(wanted, done, side="left"))
        hi = int(np.searchsorted(wanted, done + m, side="left"))
        if hi > lo:
            sel = wanted[lo:hi] - done
            segments.extend(
                map(
                    Segment,
                    wanted[lo:hi].tolist(),
                    segs["ctx"][sel].tolist(),
                    segs["call"][sel].tolist(),
                    segs["start"][sel].tolist(),
                    segs["ops"][sel].tolist(),
                    segs["thread"][sel].tolist(),
                )
            )
        done += m
    if len(segments) != len(path_ids):
        raise ValueError("critical path refers to segments past the log end")
    return segments
