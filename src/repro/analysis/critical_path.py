"""Critical-path analysis over event files (sections II-C2 and IV-C).

"We can post-process these files to separate the dependent chains of events
in the program.  These dependent chains reveal the critical path of an
application and the theoretical limits of scheduling parallel tasks."

Nodes are function-call segments; a node's self-cost is the operations
performed in the fragment, its inclusive cost "the sum of the self-costs of
the longest chain from 'main' to that node" (Figure 3).  Functions are
modeled as non-blocking -- "calls to child functions can be non-blocking and
are only limited by their data dependencies" -- with conservative ordering
between fragments of the same call.

"The maximum theoretical function-level parallelism is the ratio of overall
serial length of the program to the critical path length." (Figure 13)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.cct import ContextTree
from repro.core.segments import EventLog, Segment

__all__ = ["CriticalPathResult", "analyze_critical_path", "events_to_dot"]


@dataclass
class CriticalPathResult:
    """Outcome of dependency-chain construction."""

    #: Sum of all segment self-costs: the program's serial length.
    serial_length: int
    #: Longest dependent chain, in operations.
    critical_length: int
    #: Segments on the critical path, in execution order.
    path: List[Segment]
    #: Per-segment inclusive cost (longest chain from the start to it).
    inclusive: List[int]

    @property
    def max_parallelism(self) -> float:
        """Figure 13's maximum speedup from function-level parallelism."""
        if self.critical_length <= 0:
            return 1.0
        return self.serial_length / self.critical_length

    def path_functions(self, tree: ContextTree) -> List[str]:
        """Distinct function names on the critical path, leaf to main order
        (the presentation used for streamcluster and fluidanimate in IV-C)."""
        names: List[str] = []
        seen = set()
        for seg in reversed(self.path):
            name = tree.node(seg.ctx_id).name
            if name != "<root>" and name not in seen:
                seen.add(name)
                names.append(name)
        return names


def events_to_dot(
    events: EventLog,
    tree: Optional[ContextTree] = None,
    result: Optional[CriticalPathResult] = None,
    *,
    max_segments: int = 400,
) -> str:
    """Graphviz rendering of the dependency chains (Figure 3's picture).

    Nodes are function-call fragments labelled with self cost (and, when a
    :class:`CriticalPathResult` is supplied, the inclusive cost of the
    longest chain to them); the critical path is highlighted in bold/grey,
    matching the paper's presentation.  Large logs are truncated to the
    ``max_segments`` highest-cost segments plus everything on the path.
    """
    result = result if result is not None else analyze_critical_path(events)
    on_path = {seg.seg_id for seg in result.path}
    keep = set(on_path)
    by_cost = sorted(events.segments, key=lambda s: s.ops, reverse=True)
    for seg in by_cost:
        if len(keep) >= max_segments:
            break
        keep.add(seg.seg_id)

    def label(seg: Segment) -> str:
        name = tree.node(seg.ctx_id).name if tree is not None else f"ctx{seg.ctx_id}"
        text = f"{name}\\nself: {seg.ops}"
        if result.inclusive:
            text += f"\\ncost = {result.inclusive[seg.seg_id]}"
        return text

    lines = ["digraph chains {", "  rankdir=TB;", "  node [shape=box];"]
    for seg in events.segments:
        if seg.seg_id not in keep:
            continue
        style = ' style=filled fillcolor="grey80"' if seg.seg_id in on_path else ""
        lines.append(f'  s{seg.seg_id} [label="{label(seg)}"{style}];')
    for edge in events.edges():
        if edge.src not in keep or edge.dst not in keep:
            continue
        attrs = []
        if edge.kind == "data":
            attrs.append(f'label="{edge.bytes}B"')
        if edge.kind == "order":
            attrs.append("style=dashed")
        if edge.src in on_path and edge.dst in on_path:
            attrs.append("penwidth=2.5")
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  s{edge.src} -> s{edge.dst}{attr_text};")
    lines.append("}")
    return "\n".join(lines)


def analyze_critical_path(events: EventLog) -> CriticalPathResult:
    """Longest-path DP over the segment DAG.

    All edges point from an earlier segment to a later one (producers write
    before consumers read; calls and order edges follow time), so segments
    in id order are already topologically sorted.
    """
    n = events.n_segments
    if n == 0:
        return CriticalPathResult(0, 0, [], [])

    preds: List[List[int]] = [[] for _ in range(n)]
    for edge in events.edges():
        if edge.src >= edge.dst:
            raise ValueError(
                f"event log is not topologically ordered: {edge.src} -> {edge.dst}"
            )
        preds[edge.dst].append(edge.src)

    inclusive = [0] * n
    best_pred = [-1] * n
    for seg in events.segments:
        i = seg.seg_id
        best = 0
        chosen = -1
        for p in preds[i]:
            # ">=" so zero-cost prefix fragments (e.g. main before its
            # first op) stay on the reported path.
            if inclusive[p] >= best:
                best = inclusive[p]
                chosen = p
        inclusive[i] = best + seg.ops
        best_pred[i] = chosen

    end = max(range(n), key=inclusive.__getitem__)
    path: List[Segment] = []
    cursor = end
    while cursor != -1:
        path.append(events.segments[cursor])
        cursor = best_pred[cursor]
    path.reverse()

    return CriticalPathResult(
        serial_length=events.total_ops(),
        critical_length=inclusive[end],
        path=path,
        inclusive=inclusive,
    )
