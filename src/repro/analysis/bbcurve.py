"""BB-curves: accelerator buffer size versus external bandwidth pressure.

Section IV-B2 connects Sigil's re-use data to accelerator buffer sizing:
"The re-use data captured by Sigil shows how many data bytes need to stay in
an accelerator's local buffer after being consumed once.  This will help
determine buffer sizes ... For example, Cong et al use the concept of
BB-curves that indicate tradeoffs in increasing local buffer area for an
accelerated function against external bandwidth pressure."

This module computes those curves: for selected functions, it records the
LRU stack distances of the function's *own* line accesses (everything the
accelerator's local buffer would see).  A local buffer of capacity ``C``
lines then has to fetch externally exactly the accesses whose distance is
>= C (plus cold fetches), so one profiling pass yields external traffic as
a function of buffer size -- and, combined with the bus model, breakeven
speedup as a function of buffer area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.partition import BusModel, breakeven_speedup
from repro.core.distance import ReuseDistanceProfiler
from repro.trace.events import OpKind
from repro.trace.observer import BaseObserver

__all__ = ["BBPoint", "BBCurve", "BBCurveProfiler"]


@dataclass(frozen=True)
class BBPoint:
    """One point of a BB-curve."""

    buffer_lines: int
    buffer_bytes: int
    external_bytes: int
    external_fraction: float


@dataclass
class BBCurve:
    """External-traffic curve of one function."""

    function: str
    line_size: int
    total_accesses: int
    total_bytes: int
    ops: int
    points: List[BBPoint]

    def external_bytes_at(self, buffer_lines: int) -> int:
        for point in self.points:
            if point.buffer_lines == buffer_lines:
                return point.external_bytes
        raise KeyError(f"no BB point for {buffer_lines} lines")

    def breakeven_at(
        self, buffer_lines: int, bus: Optional[BusModel] = None
    ) -> float:
        """Equation 1 with offload traffic taken from the curve.

        ``t_sw`` is approximated by the function's operation count (its
        instruction-side cost); the offload traffic is what a buffer of the
        given size cannot keep local.
        """
        bus = bus if bus is not None else BusModel()
        t_comm = bus.offload_cycles(self.external_bytes_at(buffer_lines))
        return breakeven_speedup(float(self.ops), t_comm, 0.0)


class BBCurveProfiler(BaseObserver):
    """Observer computing per-function stack-distance data for BB-curves.

    Only accesses made while one of ``targets`` is the innermost target
    function on the call stack are recorded, each into that function's own
    distance profiler -- the access stream an accelerator implementing the
    function (with its entire sub-tree, per the merging model) would see.
    """

    def __init__(self, targets: Sequence[str], *, line_size: int = 64):
        self.targets = set(targets)
        self.line_size = line_size
        self._stack: List[str] = []
        self._active: List[str] = []  # innermost-target stack
        self._profilers: Dict[str, ReuseDistanceProfiler] = {
            name: ReuseDistanceProfiler(line_size) for name in self.targets
        }
        self._ops: Dict[str, int] = {name: 0 for name in self.targets}

    # -- observer ----------------------------------------------------------

    def on_fn_enter(self, name: str) -> None:
        self._stack.append(name)
        if name in self.targets:
            self._active.append(name)

    def on_fn_exit(self, name: str) -> None:
        self._stack.pop()
        if name in self.targets and self._active and self._active[-1] == name:
            self._active.pop()

    def on_op(self, kind: OpKind, count: int) -> None:
        if self._active:
            self._ops[self._active[-1]] += count

    def on_mem_read(self, addr: int, size: int) -> None:
        if self._active:
            self._profilers[self._active[-1]]._access(addr, size)

    def on_mem_write(self, addr: int, size: int) -> None:
        if self._active:
            self._profilers[self._active[-1]]._access(addr, size)

    # -- results -------------------------------------------------------------

    def curve(
        self, function: str, capacities: Optional[Sequence[int]] = None
    ) -> BBCurve:
        """The BB-curve of one target function."""
        if function not in self.targets:
            raise KeyError(f"{function!r} was not a profiling target")
        profiler = self._profilers[function]
        if capacities is None:
            capacities = [2 ** k for k in range(0, 13)]
        total_bytes = profiler.accesses * self.line_size
        points = []
        for capacity in capacities:
            miss_ratio = profiler.miss_ratio(capacity) if profiler.accesses else 0.0
            external = round(miss_ratio * profiler.accesses) * self.line_size
            points.append(BBPoint(
                buffer_lines=capacity,
                buffer_bytes=capacity * self.line_size,
                external_bytes=external,
                external_fraction=miss_ratio,
            ))
        return BBCurve(
            function=function,
            line_size=self.line_size,
            total_accesses=profiler.accesses,
            total_bytes=total_bytes,
            ops=self._ops[function],
            points=points,
        )
