"""Annotated calltree rendering, in the spirit of ``callgrind_annotate``.

Callgrind's headline use is "a breakdown ... of parameters such as cache
misses and branch mispredictions" per function; this renderer gives the
equivalent view over our profiles: the calling-context tree with inclusive
and self operation counts, per-node shares, call counts, and (for Sigil
profiles) unique input/output bytes -- the quickest way to read a workload's
shape before drilling into a specific study.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.callgrind.collector import CallgrindProfile
from repro.common.cct import ContextNode
from repro.core.profiler import SigilProfile

__all__ = ["render_calltree"]


def _inclusive_ops(profile: SigilProfile, cache: Dict[int, int], node: ContextNode) -> int:
    cached = cache.get(node.id)
    if cached is not None:
        return cached
    # Post-order over an explicit stack: deep call chains exceed Python's
    # recursion limit long before they stress anything else here.
    stack = [(node, False)]
    while stack:
        current, children_done = stack.pop()
        if current.id in cache:
            continue
        if not children_done:
            stack.append((current, True))
            stack.extend(
                (child, False) for child in current.children.values()
            )
            continue
        cache[current.id] = profile.fn_comm(current.id).ops + sum(
            cache[child.id] for child in current.children.values()
        )
    return cache[node.id]


def render_calltree(
    profile: SigilProfile,
    *,
    max_depth: int = 6,
    min_share: float = 0.002,
    show_comm: bool = True,
) -> str:
    """Render the calling-context tree with cost annotations.

    ``min_share`` prunes nodes whose inclusive operations fall below that
    fraction of the program total (pruned subtrees are summarised so nothing
    disappears silently).
    """
    cache: Dict[int, int] = {}
    total = max(_inclusive_ops(profile, cache, profile.tree.root), 1)
    lines: List[str] = []
    header = "incl%   self%   calls      function"
    if show_comm:
        header += "  [uniq_in_B/uniq_out_B]"
    lines.append(header)
    lines.append("-" * len(header))

    def visit(node: ContextNode, depth: int, prefix: str) -> None:
        children = sorted(
            node.children.values(),
            key=lambda c: cache.get(c.id, _inclusive_ops(profile, cache, c)),
            reverse=True,
        )
        shown = [
            c for c in children
            if _inclusive_ops(profile, cache, c) / total >= min_share
        ]
        hidden = len(children) - len(shown)
        for i, child in enumerate(shown):
            last = i == len(shown) - 1 and not hidden
            branch = "`- " if last else "|- "
            incl = _inclusive_ops(profile, cache, child)
            self_ops = profile.fn_comm(child.id).ops
            line = (
                f"{100 * incl / total:5.1f}%  "
                f"{100 * self_ops / total:5.1f}%  "
                f"{child.calls:>8}   "
                f"{prefix}{branch}{child.name}"
            )
            if show_comm:
                line += (
                    f"  [{profile.unique_input_bytes(child.id)}"
                    f"/{profile.unique_output_bytes(child.id)}]"
                )
            lines.append(line)
            if depth + 1 < max_depth:
                visit(child, depth + 1, prefix + ("   " if last else "|  "))
            elif child.children:
                lines.append(f"{'':23}{prefix}   ... (depth limit)")
        if hidden:
            lines.append(
                f"{'':23}{prefix}`- ... {hidden} subtree(s) below "
                f"{min_share:.1%} of total"
            )

    visit(profile.tree.root, 0, "")
    return "\n".join(lines)
