"""HW/SW partitioning: breakeven-speedup and calltree trimming (section II-C1).

The paper's metric (Equation 1)::

                         t_sw
    S_breakeven = ------------------------------------
                   t_sw - (t_comm:ip:accel + t_comm:op:accel)

"the computational speedup that an accelerator for a particular function
would require in order to offset the data-offload costs".  Offload time is
"the time to communicate data to and from the accelerator assuming a fixed
SoC bus bandwidth"; the data volume is *unique* communication, because "a
well designed accelerator ... will include an internal buffer and will not
repeatedly fetch the same data from memory".

The trimming heuristic implements the paper's goal -- "minimize the
breakeven-speedup of all the leaf nodes of a trimmed call tree.  Each branch
of the trimmed calltree should have the least breakeven-speedup at the
bottom of the branch" -- as a recursive choice per node: merge the whole
sub-tree into one candidate when its merged breakeven is at least as good as
the best candidate that splitting would expose below; otherwise keep the
node interior and recurse.  Two structural rules keep candidates physically
meaningful: the entry function is never a candidate, and sub-trees
containing system calls cannot be merged (a fixed-function accelerator
cannot perform I/O; the non-preemptible model of section II-C1 requires all
input ready at call time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.callgrind.collector import CallgrindProfile
from repro.callgrind.cycles import CycleModel
from repro.common.cct import ContextNode
from repro.core.profiler import SigilProfile
from repro.analysis.merge import InclusiveCosts, compute_inclusive

__all__ = [
    "BusModel",
    "PartitionPolicy",
    "Candidate",
    "TrimmedTree",
    "breakeven_speedup",
    "trim_calltree",
]


@dataclass(frozen=True)
class BusModel:
    """Fixed-bandwidth SoC bus between host memory and accelerators."""

    bytes_per_cycle: float = 8.0
    per_transfer_latency: float = 0.0

    def offload_cycles(self, n_bytes: int, n_transfers: int = 1) -> float:
        """Cycles to move ``n_bytes`` over the bus."""
        if n_bytes <= 0:
            return 0.0
        return n_bytes / self.bytes_per_cycle + self.per_transfer_latency * n_transfers


def breakeven_speedup(
    t_sw: float, t_comm_input: float, t_comm_output: float
) -> float:
    """Equation 1.  Returns ``inf`` when offload cost swamps the software
    time (no computational speedup can ever break even)."""
    t_comm = t_comm_input + t_comm_output
    if t_sw <= 0 or t_sw <= t_comm:
        return math.inf
    return t_sw / (t_sw - t_comm)


#: Cycle model used for the paper's :math:`t_{sw}` in the breakeven metric.
#: The miniature workloads touch most data exactly once, so cold cache
#: misses dominate the full Callgrind estimate and would mask the
#: communication-versus-compute signal Equation 1 ranks by; the partitioning
#: study therefore weighs only the instruction and branch components.  The
#: coverage figure (Fig. 7) still uses the full estimate for time fractions.
PARTITION_CYCLE_MODEL = CycleModel(per_l1_miss=0.0, per_ll_miss=0.0)


@dataclass(frozen=True)
class PartitionPolicy:
    """Structural rules and models of the trimming heuristic."""

    bus: BusModel = field(default_factory=BusModel)
    #: Function names never merged into a candidate (entry point by default).
    never_merge: frozenset = frozenset({"main"})
    #: Sub-trees containing syscall pseudo-nodes stay interior.
    forbid_syscalls: bool = True
    #: Model turning Callgrind event counts into the t_sw of Equation 1.
    cycle_model: CycleModel = PARTITION_CYCLE_MODEL


@dataclass(frozen=True)
class Candidate:
    """A leaf of the trimmed calltree: a tentative acceleration target."""

    node: ContextNode
    costs: InclusiveCosts
    breakeven: float

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def path(self) -> Tuple[str, ...]:
        return self.node.path


@dataclass
class TrimmedTree:
    """Result of trimming: candidate leaves plus interior structure."""

    candidates: List[Candidate]
    interior: List[ContextNode]
    total_cycles: float

    def sorted_candidates(self, *, worst_first: bool = False) -> List[Candidate]:
        """Candidates by increasing breakeven (Table II) or decreasing
        (Table III)."""
        return sorted(
            self.candidates, key=lambda c: c.breakeven, reverse=worst_first
        )

    def coverage_cycles(self) -> float:
        """Estimated cycles spent inside candidate leaves."""
        return sum(c.costs.est_cycles for c in self.candidates)

    @property
    def coverage(self) -> float:
        """Fraction of the application's time covered by candidates (Fig 7)."""
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.coverage_cycles() / self.total_cycles)


def _candidate_for(
    sigil: SigilProfile,
    callgrind: Optional[CallgrindProfile],
    node: ContextNode,
    policy: PartitionPolicy,
) -> Candidate:
    costs = compute_inclusive(sigil, callgrind, node)
    t_in = policy.bus.offload_cycles(costs.unique_input_bytes, costs.calls)
    t_out = policy.bus.offload_cycles(costs.unique_output_bytes, costs.calls)
    t_sw = policy.cycle_model.estimate(
        costs.instructions, costs.branch_misses, costs.l1_misses, costs.ll_misses
    )
    s_be = breakeven_speedup(t_sw, t_in, t_out)
    return Candidate(node, costs, s_be)


def trim_calltree(
    sigil: SigilProfile,
    callgrind: Optional[CallgrindProfile],
    policy: Optional[PartitionPolicy] = None,
) -> TrimmedTree:
    """Trim the control data flow graph into accelerator candidates.

    Recursive rule at each node: compute the breakeven of the fully merged
    sub-tree; resolve children recursively; merge when allowed and when the
    merged breakeven is no worse than the best breakeven splitting would
    yield (ties merge, maximising coverage per Amdahl's-law goal).
    """
    policy = policy if policy is not None else PartitionPolicy()

    def resolve(
        root: ContextNode,
    ) -> Tuple[float, List[Candidate], List[ContextNode]]:
        """Bottom-up resolution of one sub-tree.

        Returns ``(best_breakeven, candidates, interior)`` for the best
        trimming of the sub-tree rooted at ``root``.  Iterative post-order
        with an explicit stack: real call chains routinely exceed Python's
        recursion limit (~1000 frames), and the trimming rule only needs
        each node's children resolved first.
        """
        # node id -> resolved (score, candidates, interior) of its sub-tree
        done: Dict[int, Tuple[float, List[Candidate], List[ContextNode]]] = {}
        # node id -> whether the sub-tree contains a syscall pseudo-node;
        # accumulated bottom-up so the check is O(tree) overall instead of
        # one full sub-tree walk per node.
        has_sys: Dict[int, bool] = {}
        stack: List[Tuple[ContextNode, bool]] = [(root, False)]
        while stack:
            node, children_resolved = stack.pop()
            if node.name.startswith("sys:"):
                done[node.id] = (math.inf, [], [])
                continue
            children = [
                c for c in node.children.values()
                if not c.name.startswith("sys:")
            ]
            if not children_resolved and children:
                stack.append((node, True))
                stack.extend((child, False) for child in reversed(children))
                continue
            child_flags = [has_sys.pop(child.id) for child in children]
            has_sys[node.id] = any(child_flags) or any(
                c.name.startswith("sys:") for c in node.children.values()
            )
            mergeable = node.name not in policy.never_merge and not (
                policy.forbid_syscalls and has_sys[node.id]
            )
            merged = (
                _candidate_for(sigil, callgrind, node, policy)
                if mergeable
                else None
            )
            if not children:
                if merged is not None:
                    done[node.id] = (merged.breakeven, [merged], [])
                else:
                    done[node.id] = (math.inf, [], [node])
                continue
            resolved = [done.pop(child.id) for child in children]
            best_split = min(
                (score for score, _, _ in resolved), default=math.inf
            )
            if merged is not None and merged.breakeven <= best_split:
                done[node.id] = (merged.breakeven, [merged], [])
            else:
                done[node.id] = (
                    best_split,
                    [c for _, cands, _ in resolved for c in cands],
                    [node] + [n for _, _, inter in resolved for n in inter],
                )
        return done[root.id]

    total = callgrind.total_cycles() if callgrind is not None else 0.0
    candidates: List[Candidate] = []
    interior: List[ContextNode] = [sigil.tree.root]
    for top in sigil.tree.root.children.values():
        _, cands, inter = resolve(top)
        candidates.extend(cands)
        interior.extend(inter)
    return TrimmedTree(candidates, interior, total)
