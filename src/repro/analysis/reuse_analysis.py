"""Data re-use post-processing (section IV-B, Figures 8-11).

Turns the raw re-use statistics of a reuse-mode Sigil profile into the
paper's reported shapes: the per-byte re-use breakdown, the ranking of
functions by re-use contribution with average lifetimes, and per-function
lifetime histograms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.cct import ContextNode
from repro.core.profiler import SigilProfile
from repro.core.reuse import REUSE_BUCKET_LABELS

__all__ = [
    "FIG8_LABELS",
    "byte_reuse_breakdown",
    "ReuseRanking",
    "top_reuse_functions",
    "lifetime_histogram",
    "top_unique_contributors",
]

#: Figure 8's three stacked sections.
FIG8_LABELS: Tuple[str, ...] = ("0", "1-9", ">9")


def _require_reuse(profile: SigilProfile) -> None:
    if profile.reuse is None:
        raise ValueError(
            "profile was not collected in reuse mode; "
            "rerun with SigilConfig(reuse_mode=True)"
        )


def byte_reuse_breakdown(
    profile: SigilProfile, *, normalised: bool = True
) -> Dict[str, float]:
    """Figure 8: fraction of data bytes by re-use count {0, 1-9, >9}."""
    _require_reuse(profile)
    raw = profile.reuse.byte_breakdown()
    merged = {
        "0": raw["0"],
        "1-9": raw["1-9"],
        ">9": raw["10-99"] + raw["100-999"] + raw["1000-9999"] + raw[">=10000"],
    }
    if not normalised:
        return {k: float(v) for k, v in merged.items()}
    total = sum(merged.values())
    if total == 0:
        return {k: 0.0 for k in merged}
    return {k: v / total for k, v in merged.items()}


@dataclass(frozen=True)
class ReuseRanking:
    """One context's standing in the re-use ranking (Figure 9 rows)."""

    node: ContextNode
    label: str
    reused_windows: int
    reuse_accesses: int
    average_lifetime: float
    unique_bytes_processed: int


def _context_label(profile: SigilProfile, node: ContextNode) -> str:
    """Function name, with ``(k)`` ordinal when several contexts share it
    ("some functions occur more than once in the figure and are
    distinguished by the number in parentheses")."""
    same = profile.tree.by_name(node.name)
    if len(same) <= 1:
        return node.name
    ordinal = sorted(n.id for n in same).index(node.id) + 1
    return f"{node.name}({ordinal})"


def top_reuse_functions(profile: SigilProfile, n: int = 10) -> List[ReuseRanking]:
    """Contexts sorted by their contribution to total data re-use.

    "We sort the functions ... based on their contribution to the total
    amount of data re-use.  Next ... we look at the top list of functions
    and examine the average lifetime of a re-used data byte (reused at least
    once) in those functions." (section IV-B1)
    """
    _require_reuse(profile)
    rankings: List[ReuseRanking] = []
    for ctx_id, stats in profile.reuse.per_fn.items():
        if stats.reused_windows == 0:
            continue
        node = profile.tree.node(ctx_id)
        rankings.append(
            ReuseRanking(
                node=node,
                label=_context_label(profile, node),
                reused_windows=stats.reused_windows,
                reuse_accesses=stats.reuse_accesses,
                average_lifetime=stats.average_lifetime,
                unique_bytes_processed=profile.unique_bytes_processed(ctx_id),
            )
        )
    rankings.sort(key=lambda r: r.reused_windows, reverse=True)
    return rankings[:n]


def lifetime_histogram(
    profile: SigilProfile, ctx_id: int
) -> List[Tuple[int, int]]:
    """Figures 10/11: (lifetime bin start, re-used byte count) pairs."""
    _require_reuse(profile)
    return profile.reuse.fn_histogram(ctx_id)


def top_unique_contributors(
    profile: SigilProfile, n: int = 10
) -> List[Tuple[str, int, float]]:
    """Contexts by share of the program's unique data bytes.

    Mirrors the vips drill-down: conv_gen, imb_XYZ2Lab and affine_gen "are
    the three biggest contributors to the total unique data bytes processed
    by the benchmark ... with each of their individual contributions being
    close to 10%".
    """
    totals = [
        (node, profile.unique_bytes_processed(node.id))
        for node in profile.contexts()
        if not node.name.startswith("sys:")  # syscalls are not functions
    ]
    grand_total = sum(v for _, v in totals)
    totals.sort(key=lambda item: item[1], reverse=True)
    out = []
    for node, volume in totals[:n]:
        share = volume / grand_total if grand_total else 0.0
        out.append((_context_label(profile, node), volume, share))
    return out
