"""Coverage of trimmed-calltree leaves (section IV-A, Figure 7).

"Figure 7 shows the breakdown of an application's native execution time by
fraction of candidate functions.  The coverage represented by the leaf nodes
of the trimmed call tree is the lower bar and the rest of the application is
the upper bar."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.partition import TrimmedTree

__all__ = ["CoverageReport", "coverage_report"]


@dataclass(frozen=True)
class CoverageReport:
    """Time split between candidate leaves and the rest of an application."""

    benchmark: str
    covered_cycles: float
    total_cycles: float
    n_candidates: int

    @property
    def coverage(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.covered_cycles / self.total_cycles)

    @property
    def uncovered(self) -> float:
        return 1.0 - self.coverage


def coverage_report(benchmark: str, trimmed: TrimmedTree) -> CoverageReport:
    """Summarise one benchmark's trimmed tree into a Figure 7 bar."""
    return CoverageReport(
        benchmark=benchmark,
        covered_cycles=trimmed.coverage_cycles(),
        total_cycles=trimmed.total_cycles,
        n_candidates=len(trimmed.candidates),
    )
