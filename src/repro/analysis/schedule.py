"""Schedule dependency chains onto a fixed number of cores.

The paper closes its critical-path study with the scheduling application:
"The functions in parallel paths in a program can be mapped onto multiple
cores such that dependencies are respected.  A software developer may have a
fixed number of scheduling slots based on the number of available cores.
The developer can map dependency chains onto these slots so as to minimize
communication between slots and balance the load among them." (section IV-C)

This module implements that mapping as a classic list scheduler over the
event-mode segment DAG: segments become ready when all predecessors have
finished; ready segments are dispatched to the earliest-free core, longest
critical-path-to-exit first (the standard HLFET heuristic).  The resulting
makespan interpolates between the serial length (1 core) and the critical
path (unbounded cores), giving the *achievable* speedup curve below
Figure 13's theoretical limit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.segments import EventArrays, EventLog, as_event_arrays

__all__ = ["ScheduleResult", "schedule_events", "speedup_curve"]


@dataclass
class ScheduleResult:
    """Outcome of list-scheduling an event log onto ``n_cores`` slots."""

    n_cores: int
    makespan: int
    serial_length: int
    #: segment id -> (core, start_time)
    placement: Dict[int, Tuple[int, int]]
    #: Bytes moved between segments placed on different cores.
    cross_core_bytes: int

    @property
    def speedup(self) -> float:
        if self.makespan <= 0:
            return 1.0
        return self.serial_length / self.makespan

    @property
    def efficiency(self) -> float:
        """Speedup per core (1.0 = perfectly balanced, no idling)."""
        return self.speedup / self.n_cores if self.n_cores else 0.0


def _bottom_levels(ops: List[int], succs: List[List[int]]) -> List[int]:
    """Critical-path-to-exit length per segment (the HLFET priority)."""
    n = len(ops)
    levels = [0] * n
    for i in range(n - 1, -1, -1):
        tail = max((levels[s] for s in succs[i]), default=0)
        levels[i] = ops[i] + tail
    return levels


def schedule_events(
    events: Union[EventLog, EventArrays], n_cores: int
) -> ScheduleResult:
    """List-schedule the segment DAG onto ``n_cores`` identical cores.

    Accepts either event-log form; the dependency structure is pulled
    straight out of the columnar edge tables (one bulk ``tolist`` per
    column, no per-edge objects) and results are identical on both.
    """
    if n_cores <= 0:
        raise ValueError("n_cores must be positive")
    arrays = as_event_arrays(events)
    n = arrays.n_segments
    if n == 0:
        return ScheduleResult(n_cores, 0, 0, {}, 0)

    ops = arrays.segs["ops"].tolist()
    preds: List[List[int]] = [[] for _ in range(n)]
    succs: List[List[int]] = [[] for _ in range(n)]
    for src, dst in zip(
        arrays.ordercall["src"].tolist(), arrays.ordercall["dst"].tolist()
    ):
        preds[dst].append(src)
        succs[src].append(dst)
    data_edges: List[Tuple[int, int, int]] = [
        tuple(row) for row in arrays.data.tolist()
    ]
    for src, dst, _ in data_edges:
        preds[dst].append(src)
        succs[src].append(dst)

    priority = _bottom_levels(ops, succs)
    in_degree = [len(p) for p in preds]
    finish = [0] * n
    placement: Dict[int, Tuple[int, int]] = {}
    core_free = [0] * n_cores

    # Ready heap: (-priority, seg_id); earliest data-ready time per segment.
    ready: List[Tuple[int, int]] = []
    data_ready = [0] * n
    for i in range(n):
        if in_degree[i] == 0:
            heapq.heappush(ready, (-priority[i], i))

    scheduled = 0
    while ready:
        _, i = heapq.heappop(ready)
        # Pick the core that lets the segment start earliest.
        core = min(range(n_cores), key=core_free.__getitem__)
        start = max(core_free[core], data_ready[i])
        end = start + ops[i]
        core_free[core] = end
        finish[i] = end
        placement[i] = (core, start)
        scheduled += 1
        for s in succs[i]:
            data_ready[s] = max(data_ready[s], end)
            in_degree[s] -= 1
            if in_degree[s] == 0:
                heapq.heappush(ready, (-priority[s], s))

    if scheduled != n:  # pragma: no cover - defensive (DAG guaranteed)
        raise ValueError("event log contains a dependency cycle")

    cross = sum(
        nbytes
        for src, dst, nbytes in data_edges
        if placement[src][0] != placement[dst][0]
    )
    return ScheduleResult(
        n_cores=n_cores,
        makespan=max(finish),
        serial_length=arrays.total_ops(),
        placement=placement,
        cross_core_bytes=cross,
    )


def speedup_curve(
    events: Union[EventLog, EventArrays], cores: Optional[List[int]] = None
) -> List[ScheduleResult]:
    """Schedule for a range of core counts (default 1, 2, 4, ... 32)."""
    if cores is None:
        cores = [1, 2, 4, 8, 16, 32]
    arrays = as_event_arrays(events)
    return [schedule_events(arrays, k) for k in cores]
