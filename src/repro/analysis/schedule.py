"""Schedule dependency chains onto a fixed number of cores.

The paper closes its critical-path study with the scheduling application:
"The functions in parallel paths in a program can be mapped onto multiple
cores such that dependencies are respected.  A software developer may have a
fixed number of scheduling slots based on the number of available cores.
The developer can map dependency chains onto these slots so as to minimize
communication between slots and balance the load among them." (section IV-C)

This module implements that mapping as a classic list scheduler over the
event-mode segment DAG: segments become ready when all predecessors have
finished; ready segments are dispatched to the earliest-free core, longest
critical-path-to-exit first (the standard HLFET heuristic).  The resulting
makespan interpolates between the serial length (1 core) and the critical
path (unbounded cores), giving the *achievable* speedup curve below
Figure 13's theoretical limit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.segments import EventArrays, EventLog, as_event_arrays
from repro.analysis.streaming import (
    EventSource,
    SegmentColumns,
    as_chunk_source,
    stream_resolved,
)

__all__ = ["ScheduleResult", "schedule_events", "speedup_curve"]


@dataclass
class ScheduleResult:
    """Outcome of list-scheduling an event log onto ``n_cores`` slots."""

    n_cores: int
    makespan: int
    serial_length: int
    #: segment id -> (core, start_time)
    placement: Dict[int, Tuple[int, int]]
    #: Bytes moved between segments placed on different cores.
    cross_core_bytes: int

    @property
    def speedup(self) -> float:
        if self.makespan <= 0:
            return 1.0
        return self.serial_length / self.makespan

    @property
    def efficiency(self) -> float:
        """Speedup per core (1.0 = perfectly balanced, no idling)."""
        return self.speedup / self.n_cores if self.n_cores else 0.0


def _bottom_levels(ops: List[int], succs: List[List[int]]) -> List[int]:
    """Critical-path-to-exit length per segment (the HLFET priority)."""
    n = len(ops)
    levels = [0] * n
    for i in range(n - 1, -1, -1):
        tail = max((levels[s] for s in succs[i]), default=0)
        levels[i] = ops[i] + tail
    return levels


class _SegmentDag:
    """Python-list DAG (ops, adjacency, data edges) ready for scheduling.

    The list scheduler is inherently O(n + E) in Python state (adjacency
    lists, a heap); what streaming sources avoid is materialising the
    *columnar tables* on top of that -- chunks are converted straight into
    the scheduler's working form.
    """

    __slots__ = ("ops", "preds", "succs", "data_edges", "serial_length")

    def __init__(self) -> None:
        self.ops: List[int] = []
        self.preds: List[List[int]] = []
        self.succs: List[List[int]] = []
        self.data_edges: List[Tuple[int, int, int]] = []
        self.serial_length = 0


def _build_dag(events: EventSource) -> _SegmentDag:
    dag = _SegmentDag()
    if isinstance(events, (EventLog, EventArrays)):
        arrays = as_event_arrays(events)
        n = arrays.n_segments
        dag.ops = arrays.segs["ops"].tolist()
        dag.serial_length = arrays.total_ops()
        dag.preds = [[] for _ in range(n)]
        dag.succs = [[] for _ in range(n)]
        for src, dst in zip(
            arrays.ordercall["src"].tolist(), arrays.ordercall["dst"].tolist()
        ):
            dag.preds[dst].append(src)
            dag.succs[src].append(dst)
        dag.data_edges = [tuple(row) for row in arrays.data.tolist()]
        for src, dst, _ in dag.data_edges:
            dag.preds[dst].append(src)
            dag.succs[src].append(dst)
        return dag
    source = as_chunk_source(events)
    cols = SegmentColumns(())
    for table, rows in stream_resolved(source, cols):
        if table == "segs":
            chunk_ops = rows["ops"].tolist()
            dag.ops.extend(chunk_ops)
            dag.serial_length += int(rows["ops"].sum())
            dag.preds.extend([] for _ in range(len(chunk_ops)))
            dag.succs.extend([] for _ in range(len(chunk_ops)))
        elif table == "oced":
            for src, dst in zip(rows["src"].tolist(), rows["dst"].tolist()):
                dag.preds[dst].append(src)
                dag.succs[src].append(dst)
        else:
            edges = [tuple(row) for row in rows.tolist()]
            dag.data_edges.extend(edges)
            for src, dst, _ in edges:
                dag.preds[dst].append(src)
                dag.succs[src].append(dst)
    return dag


def schedule_events(events: EventSource, n_cores: int) -> ScheduleResult:
    """List-schedule the segment DAG onto ``n_cores`` identical cores.

    Accepts every event-log form -- v2 file paths and raw bytes stream
    chunk-at-a-time into the scheduler's adjacency lists without
    materialising the columnar tables first; in-memory forms pull the
    dependency structure straight out of the edge tables (one bulk
    ``tolist`` per column, no per-edge objects).  Results are identical on
    all forms: the ready heap orders by (priority, segment id), a total
    order, so edge arrival order cannot change the schedule.
    """
    return _schedule_dag(_build_dag(events), n_cores)


def _schedule_dag(dag: _SegmentDag, n_cores: int) -> ScheduleResult:
    if n_cores <= 0:
        raise ValueError("n_cores must be positive")
    n = len(dag.ops)
    if n == 0:
        return ScheduleResult(n_cores, 0, 0, {}, 0)

    ops = dag.ops
    preds = dag.preds
    succs = dag.succs
    data_edges = dag.data_edges

    priority = _bottom_levels(ops, succs)
    in_degree = [len(p) for p in preds]
    finish = [0] * n
    placement: Dict[int, Tuple[int, int]] = {}
    core_free = [0] * n_cores

    # Ready heap: (-priority, seg_id); earliest data-ready time per segment.
    ready: List[Tuple[int, int]] = []
    data_ready = [0] * n
    for i in range(n):
        if in_degree[i] == 0:
            heapq.heappush(ready, (-priority[i], i))

    scheduled = 0
    while ready:
        _, i = heapq.heappop(ready)
        # Pick the core that lets the segment start earliest.
        core = min(range(n_cores), key=core_free.__getitem__)
        start = max(core_free[core], data_ready[i])
        end = start + ops[i]
        core_free[core] = end
        finish[i] = end
        placement[i] = (core, start)
        scheduled += 1
        for s in succs[i]:
            data_ready[s] = max(data_ready[s], end)
            in_degree[s] -= 1
            if in_degree[s] == 0:
                heapq.heappush(ready, (-priority[s], s))

    if scheduled != n:  # pragma: no cover - defensive (DAG guaranteed)
        raise ValueError("event log contains a dependency cycle")

    cross = sum(
        nbytes
        for src, dst, nbytes in data_edges
        if placement[src][0] != placement[dst][0]
    )
    return ScheduleResult(
        n_cores=n_cores,
        makespan=max(finish),
        serial_length=dag.serial_length,
        placement=placement,
        cross_core_bytes=cross,
    )


def speedup_curve(
    events: EventSource, cores: Optional[List[int]] = None
) -> List[ScheduleResult]:
    """Schedule for a range of core counts (default 1, 2, 4, ... 32).

    The DAG is built once (streamed once for file sources) and rescheduled
    per core count.
    """
    if cores is None:
        cores = [1, 2, 4, 8, 16, 32]
    dag = _build_dag(events)
    return [_schedule_dag(dag, k) for k in cores]
