"""Post-processing of Sigil profiles: CDFGs, partitioning, reuse, critical path."""

from repro.analysis.bbcurve import BBCurve, BBCurveProfiler, BBPoint
from repro.analysis.calltree import render_calltree
from repro.analysis.cdfg import (
    CDFG,
    CallEdge,
    DataEdge,
    ctx_comm_from_events,
    data_edges_from_events,
)
from repro.analysis.streaming import (
    ChunkSource,
    EdgeCursor,
    GrowingColumn,
    SegmentColumns,
    UnsortedEdges,
    as_chunk_source,
    stream_resolved,
)
from repro.analysis.windowed import (
    DEFAULT_WINDOW_OPS,
    WINDOWED_SCHEMA,
    WindowedCurves,
    windowed_curves,
)
from repro.analysis.coverage import CoverageReport, coverage_report
from repro.analysis.diff import ContextDelta, ProfileDiff, diff_profiles
from repro.analysis.critical_path import (
    CriticalPathResult,
    analyze_critical_path,
    events_to_dot,
)
from repro.analysis.merge import (
    InclusiveCosts,
    MergedNode,
    compute_inclusive,
    inclusive_cost_table,
    subtree_has_syscall,
)
from repro.analysis.partition import (
    BusModel,
    Candidate,
    PartitionPolicy,
    TrimmedTree,
    breakeven_speedup,
    trim_calltree,
)
from repro.analysis.report import (
    format_si,
    render_barchart,
    render_histogram,
    render_stacked_bars,
    render_table,
)
from repro.analysis.schedule import ScheduleResult, schedule_events, speedup_curve
from repro.analysis.threads import (
    ThreadCommSummary,
    per_thread_ops,
    thread_comm_matrix,
)
from repro.analysis.reuse_analysis import (
    FIG8_LABELS,
    ReuseRanking,
    byte_reuse_breakdown,
    lifetime_histogram,
    top_reuse_functions,
    top_unique_contributors,
)

__all__ = [
    "BBCurve",
    "BBCurveProfiler",
    "BBPoint",
    "render_calltree",
    "CDFG",
    "CallEdge",
    "DataEdge",
    "ctx_comm_from_events",
    "data_edges_from_events",
    "ChunkSource",
    "EdgeCursor",
    "GrowingColumn",
    "SegmentColumns",
    "UnsortedEdges",
    "as_chunk_source",
    "stream_resolved",
    "DEFAULT_WINDOW_OPS",
    "WINDOWED_SCHEMA",
    "WindowedCurves",
    "windowed_curves",
    "CoverageReport",
    "coverage_report",
    "ContextDelta",
    "ProfileDiff",
    "diff_profiles",
    "CriticalPathResult",
    "analyze_critical_path",
    "events_to_dot",
    "InclusiveCosts",
    "MergedNode",
    "compute_inclusive",
    "inclusive_cost_table",
    "subtree_has_syscall",
    "BusModel",
    "Candidate",
    "PartitionPolicy",
    "TrimmedTree",
    "breakeven_speedup",
    "trim_calltree",
    "format_si",
    "render_barchart",
    "render_histogram",
    "render_stacked_bars",
    "render_table",
    "ScheduleResult",
    "schedule_events",
    "speedup_curve",
    "ThreadCommSummary",
    "per_thread_ops",
    "thread_comm_matrix",
    "FIG8_LABELS",
    "ReuseRanking",
    "byte_reuse_breakdown",
    "lifetime_histogram",
    "top_reuse_functions",
    "top_unique_contributors",
]
