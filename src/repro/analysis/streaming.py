"""Chunk-at-a-time consumption of event logs (out-of-core analyses).

The v2 binary format (:mod:`repro.io.eventbin`) streams to disk in
length-prefixed chunks; this module is the reading counterpart the analyses
build on, so a 100M-segment log is analysed without ever materialising its
full :class:`~repro.core.segments.EventArrays` tables.  Three pieces:

* :class:`ChunkSource` -- one re-iterable handle over an event log in *any*
  form (path, raw bytes, ``EventArrays``, ``EventLog``).  File and byte
  sources stream through :func:`~repro.io.eventbin.iter_event_chunks`
  (optionally filtered by table, skipping the decode of unwanted chunks);
  in-memory forms are sliced into synthetic chunks so the same analysis
  code path -- and the same chunk-size-invariance property tests -- cover
  both.
* :class:`SegmentColumns` -- growing per-segment scalar columns (a few
  bytes per segment: ``start``, ``thread``, ...), the only state an
  analysis keeps that grows with the log.  Everything else is bounded by
  the chunk size.
* :func:`stream_resolved` -- yields chunks with edge rows *held back* until
  the segment rows their endpoints reference have arrived (a streaming
  writer may flush an edge chunk before the segment chunk it points into),
  validating the structural invariants the materialised loader enforces.

For analyses that need edges merged in destination order (the critical-path
DP), :class:`EdgeCursor` consumes one table's chunks as a sorted run;
every writer in this codebase emits edges with non-decreasing ``dst``
(an edge's destination is always the newest segment), and a cursor that
observes a violation raises :class:`UnsortedEdges` so the caller can fall
back to the materialised path rather than compute a wrong answer.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.segments import (
    EventArrays,
    EventLog,
    as_event_arrays,
)
from repro.io.eventbin import (
    DEFAULT_CHUNK_ROWS,
    is_binary_events,
    iter_event_chunks,
)

__all__ = [
    "ChunkSource",
    "EdgeCursor",
    "GrowingColumn",
    "SegmentColumns",
    "UnsortedEdges",
    "as_chunk_source",
    "stream_resolved",
]

#: Sources every streaming analysis accepts.
EventSource = Union[
    "ChunkSource", EventLog, EventArrays, str, Path, bytes, bytearray
]


class UnsortedEdges(ValueError):
    """An edge table was not in non-decreasing destination order.

    Every writer in this codebase produces dst-sorted tables (an edge's
    destination is the newest segment when the edge is recorded), but the
    format does not *require* it; a cursor that detects a violation raises
    this so callers can fall back to the materialised analysis.
    """


class ChunkSource:
    """A re-iterable source of ``(table, rows)`` chunks over an event log.

    Wraps any event-log form behind one interface; :meth:`chunks` starts a
    fresh pass each call, which is what lets multi-cursor analyses (the
    critical-path merge) run several bounded-memory passes over one file
    instead of loading it.
    """

    def __init__(
        self,
        source: EventSource,
        *,
        chunk_rows: Optional[int] = None,
    ):
        self.chunk_rows = int(chunk_rows or DEFAULT_CHUNK_ROWS)
        if self.chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        self._arrays: Optional[EventArrays] = None
        self._bytes: Optional[bytes] = None
        self._path: Optional[Path] = None
        if isinstance(source, ChunkSource):
            self._arrays = source._arrays
            self._bytes = source._bytes
            self._path = source._path
        elif isinstance(source, (EventLog, EventArrays)):
            self._arrays = as_event_arrays(source)
        elif isinstance(source, (bytes, bytearray)):
            self._bytes = bytes(source)
            if not is_binary_events(self._bytes[:32]):
                # v1 text bytes: parse once, then serve synthetic chunks.
                from repro.io.eventfile import loads_events

                self._arrays = as_event_arrays(
                    loads_events(self._bytes.decode())
                )
                self._bytes = None
        elif hasattr(source, "read"):
            # A one-shot stream cannot be re-iterated; buffer it.
            self._bytes = source.read()  # type: ignore[union-attr]
        else:
            self._path = Path(source)
            with open(self._path, "rb") as fh:
                head = fh.read(32)
            if not is_binary_events(head):
                # v1 text file: parse once, then serve synthetic chunks.
                from repro.io.eventfile import load_event_arrays

                self._arrays = load_event_arrays(self._path)
                self._path = None

    def chunks(
        self, tables: Optional[Tuple[str, ...]] = None
    ) -> Iterator[Tuple[str, np.ndarray]]:
        """One fresh pass of ``(table, rows)`` chunks (optionally filtered)."""
        if self._arrays is not None:
            return self._array_chunks(tables)
        if self._bytes is not None:
            return iter_event_chunks(io.BytesIO(self._bytes), tables=tables)
        assert self._path is not None
        return iter_event_chunks(self._path, tables=tables)

    def _array_chunks(
        self, tables: Optional[Tuple[str, ...]]
    ) -> Iterator[Tuple[str, np.ndarray]]:
        arrays = self._arrays
        assert arrays is not None
        for name, table in (
            ("segs", arrays.segs),
            ("oced", arrays.ordercall),
            ("data", arrays.data),
        ):
            if tables is not None and name not in tables:
                continue
            for start in range(0, len(table), self.chunk_rows):
                yield name, table[start : start + self.chunk_rows]

    def to_event_arrays(self) -> EventArrays:
        """Materialise the full columnar tables (the fallback path)."""
        if self._arrays is not None:
            return self._arrays
        from repro.core.segments import (
            DATA_EDGE_DTYPE,
            OC_EDGE_DTYPE,
            SEG_DTYPE,
        )

        blocks: Dict[str, List[np.ndarray]] = {
            "segs": [], "oced": [], "data": []
        }
        for table, rows in self.chunks():
            blocks[table].append(rows)

        def cat(name: str, dtype) -> np.ndarray:
            parts = blocks[name]
            if not parts:
                return np.empty(0, dtype=dtype)
            return parts[0] if len(parts) == 1 else np.concatenate(parts)

        arrays = EventArrays(
            segs=cat("segs", SEG_DTYPE),
            ordercall=cat("oced", OC_EDGE_DTYPE),
            data=cat("data", DATA_EDGE_DTYPE),
        )
        arrays.validate()
        return arrays


def as_chunk_source(
    source: EventSource, *, chunk_rows: Optional[int] = None
) -> ChunkSource:
    """Coerce any event-log form to a :class:`ChunkSource` (idempotent)."""
    if isinstance(source, ChunkSource) and chunk_rows is None:
        return source
    return ChunkSource(source, chunk_rows=chunk_rows)


# ---------------------------------------------------------------------------
# growing per-segment state
# ---------------------------------------------------------------------------


class GrowingColumn:
    """An append-only NumPy array with amortised doubling growth.

    The per-segment scalar state of a streaming analysis (8 bytes per
    segment per column) -- deliberately *not* a Python list, whose boxed
    ints cost ~10x the memory at log scale.
    """

    __slots__ = ("_buf", "n")

    def __init__(self, dtype=np.int64, capacity: int = 1024):
        self._buf = np.empty(capacity, dtype=dtype)
        self.n = 0

    def append(self, values: np.ndarray) -> None:
        m = len(values)
        need = self.n + m
        if need > len(self._buf):
            grown = np.empty(
                max(need, 2 * len(self._buf)), dtype=self._buf.dtype
            )
            grown[: self.n] = self._buf[: self.n]
            self._buf = grown
        self._buf[self.n : need] = values
        self.n = need

    def view(self) -> np.ndarray:
        """The filled prefix (a view; do not append while holding it)."""
        return self._buf[: self.n]


class SegmentColumns:
    """Growing scalar columns over the segments seen so far.

    ``fields`` selects which :data:`~repro.core.segments.SEG_DTYPE` columns
    to keep (only what the analysis needs -- memory is ``8 * n_fields``
    bytes per segment); the pseudo-field ``"end"`` stores
    ``start + ops`` (a producer segment's completion time).
    """

    def __init__(self, fields: Sequence[str] = ()):
        self.fields = tuple(fields)
        self._cols = {name: GrowingColumn() for name in self.fields}
        self.n = 0

    def append(self, segs: np.ndarray) -> None:
        for name, col in self._cols.items():
            if name == "end":
                col.append(segs["start"] + segs["ops"])
            else:
                col.append(segs[name])
        self.n += len(segs)

    def col(self, name: str) -> np.ndarray:
        return self._cols[name].view()


# ---------------------------------------------------------------------------
# resolved chunk stream
# ---------------------------------------------------------------------------


def _validate_edges(
    table: str, rows: np.ndarray, *, require_forward: bool = False
) -> None:
    """Structural edge checks shared by the streaming consumers.

    ``require_forward`` additionally enforces ``src < dst`` -- the
    topological-order invariant only the critical-path DP depends on.
    In-memory logs from threaded runs legitimately carry *backward* data
    edges (a long-lived segment consumes bytes produced by a younger one),
    and the communication analyses handle those fine, so the default
    mirrors what they always accepted.
    """
    label = "order/call" if table == "oced" else "data"
    src, dst = rows["src"], rows["dst"]
    if int(src.min()) < 0 or int(dst.min()) < 0:
        raise ValueError(f"{label} edge endpoints out of range")
    if require_forward and not bool((src < dst).all()):
        bad = int(np.argmax(~(src < dst)))
        raise ValueError(
            "event log is not topologically ordered: "
            f"{int(src[bad])} -> {int(dst[bad])}"
        )
    if table == "data" and int(rows["bytes"].min()) < 0:
        raise ValueError("data edge byte counts must be non-negative")


def _validate_segs(rows: np.ndarray) -> None:
    if int(rows["ops"].min()) < 0:
        raise ValueError("segment ops must be non-negative")
    if int(rows["thread"].min()) < 0:
        raise ValueError("segment thread ids must be non-negative")


def stream_resolved(
    source: ChunkSource,
    cols: SegmentColumns,
    *,
    tables: Optional[Tuple[str, ...]] = None,
    telemetry=None,
) -> Iterator[Tuple[str, np.ndarray]]:
    """One validated pass with edge rows resolved against ``cols``.

    Yields ``("segs", rows)`` after appending the rows to ``cols`` and
    ``("oced"/"data", rows)`` only once *both* endpoints of those edges
    have a segment row in ``cols`` (``max(src, dst) < cols.n`` -- backward
    data edges, which threaded logs produce, resolve once the younger
    endpoint arrives).  A streaming writer can flush an edge chunk up to
    one chunk ahead of the segment chunk it references, so the holding
    buffer is bounded by the writer's chunk size.  Structural validation
    mirrors :meth:`~repro.core.segments.EventArrays.validate` minus the
    topological-order check, which only the critical path needs (see
    :class:`EdgeCursor`).

    With ``telemetry``, the ``analysis.stream.peak_chunk_bytes`` gauge
    tracks the largest decoded chunk seen (the working-set bound of the
    pass).
    """
    gauge = (
        telemetry.gauge("analysis.stream.peak_chunk_bytes")
        if telemetry is not None
        else None
    )
    pending: Dict[str, List[np.ndarray]] = {"oced": [], "data": []}

    def split_ready(table: str, rows: np.ndarray):
        """Yield the resolvable prefix of ``rows``; buffer the rest."""
        mask = np.maximum(rows["src"], rows["dst"]) < cols.n
        if bool(mask.all()):
            return rows, None
        if not bool(mask.any()):
            return None, rows
        return rows[mask], rows[~mask]

    for table, rows in source.chunks(tables):
        if gauge is not None:
            gauge.set_max(int(rows.nbytes))
        if not len(rows):
            continue
        if table == "segs":
            _validate_segs(rows)
            cols.append(rows)
            yield "segs", rows
            for name in ("oced", "data"):
                held, pending[name] = pending[name], []
                for block in held:
                    ready, hold = split_ready(name, block)
                    if ready is not None and len(ready):
                        yield name, ready
                    if hold is not None and len(hold):
                        pending[name].append(hold)
        else:
            _validate_edges(table, rows)
            ready, hold = split_ready(table, rows)
            if ready is not None and len(ready):
                yield table, ready
            if hold is not None and len(hold):
                pending[table].append(hold)
    for name in ("oced", "data"):
        if pending[name]:
            label = "order/call" if name == "oced" else "data"
            raise ValueError(f"{label} edge endpoints out of range")


# ---------------------------------------------------------------------------
# dst-ordered edge cursors (critical-path merge)
# ---------------------------------------------------------------------------


class EdgeCursor:
    """Consume one edge table's chunks as a run sorted by destination.

    ``take_below(hi)`` hands back every remaining edge with ``dst < hi``
    in table order; successive calls with non-decreasing ``hi`` walk the
    table once in bounded memory.  Raises :class:`UnsortedEdges` when the
    table violates the non-decreasing-``dst`` invariant (the caller then
    falls back to the materialised analysis).
    """

    def __init__(self, chunks: Iterator[Tuple[str, np.ndarray]], table: str):
        self._chunks = chunks
        self._table = table
        self._src = np.empty(0, dtype=np.int64)
        self._dst = np.empty(0, dtype=np.int64)
        self._pos = 0
        self._last_dst = -1  # max dst of fully loaded chunks
        self._exhausted = False

    def _advance(self) -> bool:
        """Load the next non-empty chunk; False at end of table."""
        if self._exhausted:
            return False
        for _table, rows in self._chunks:
            if not len(rows):
                continue
            _validate_edges(self._table, rows, require_forward=True)
            dst = np.ascontiguousarray(rows["dst"])
            if int(dst[0]) < self._last_dst or (
                len(dst) > 1 and bool((np.diff(dst) < 0).any())
            ):
                raise UnsortedEdges(
                    f"{self._table} edges are not sorted by destination"
                )
            self._src = np.ascontiguousarray(rows["src"])
            self._dst = dst
            self._pos = 0
            self._last_dst = int(dst[-1])
            return True
        self._exhausted = True
        return False

    def take_below(self, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        """All remaining ``(src, dst)`` with ``dst < hi``, in table order."""
        out_src: List[np.ndarray] = []
        out_dst: List[np.ndarray] = []
        while True:
            if self._pos >= len(self._dst):
                if not self._advance():
                    break
            cut = int(
                np.searchsorted(self._dst[self._pos :], hi, side="left")
            ) + self._pos
            if cut > self._pos:
                out_src.append(self._src[self._pos : cut])
                out_dst.append(self._dst[self._pos : cut])
                self._pos = cut
            if cut < len(self._dst):
                break  # the rest of this chunk is >= hi
        if not out_src:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if len(out_src) == 1:
            return out_src[0], out_dst[0]
        return np.concatenate(out_src), np.concatenate(out_dst)

    def require_empty(self, n_segments: int) -> None:
        """Assert no edges remain (any leftover points past the last segment)."""
        if self._pos < len(self._dst) or self._advance():
            label = "order/call" if self._table == "oced" else "data"
            raise ValueError(f"{label} edge endpoints out of range")
        del n_segments
