"""ASCII renderers for the paper's tables and figures.

The benchmark harness regenerates every evaluation artifact as text: plain
tables for Tables II/III, horizontal bar charts for the slowdown/coverage
figures, and stacked percentage bars for the re-use breakdowns.  Keeping the
renderers in one place makes benches and examples read alike.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "render_table",
    "render_barchart",
    "render_stacked_bars",
    "render_histogram",
    "format_si",
]


def format_si(value: float) -> str:
    """Compact human format: 1234567 -> '1.23M'."""
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.2f}{suffix}"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3g}"
    return str(int(value))


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Fixed-width table with a header rule."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_barchart(
    data: Mapping[str, float],
    *,
    title: Optional[str] = None,
    width: int = 50,
    fmt: str = "{:.2f}",
) -> str:
    """Horizontal bar chart, one row per key."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not data:
        lines.append("(no data)")
        return "\n".join(lines)
    label_w = max(len(k) for k in data)
    peak = max(data.values()) or 1.0
    for key, value in data.items():
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{key.ljust(label_w)} |{bar} {fmt.format(value)}")
    return "\n".join(lines)


def render_stacked_bars(
    data: Mapping[str, Mapping[str, float]],
    *,
    title: Optional[str] = None,
    width: int = 40,
    segment_chars: str = "#=+*o.",
) -> str:
    """Stacked 100% bars (Figures 8 and 12): one row per benchmark.

    Each inner mapping is segment-label -> fraction; fractions are
    normalised per row.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    if not data:
        lines.append("(no data)")
        return "\n".join(lines)
    segments = list(next(iter(data.values())).keys())
    legend = "  ".join(
        f"{segment_chars[i % len(segment_chars)]}={label}"
        for i, label in enumerate(segments)
    )
    lines.append(f"legend: {legend}")
    label_w = max(len(k) for k in data)
    for key, parts in data.items():
        total = sum(parts.values()) or 1.0
        bar = ""
        for i, label in enumerate(segments):
            n = round(width * parts.get(label, 0.0) / total)
            bar += segment_chars[i % len(segment_chars)] * n
        pct = "  ".join(
            f"{label}:{100.0 * parts.get(label, 0.0) / total:.1f}%"
            for label in segments
        )
        lines.append(f"{key.ljust(label_w)} |{bar[:width].ljust(width)}| {pct}")
    return "\n".join(lines)


def render_histogram(
    bins: Sequence[Tuple[int, int]],
    *,
    title: Optional[str] = None,
    width: int = 50,
    log_scale: bool = True,
) -> str:
    """Histogram of (bin_start, count) pairs, optionally log-scaled counts
    (Figures 10/11 use a logarithmic y-axis)."""
    import math

    lines: List[str] = []
    if title:
        lines.append(title)
    if not bins:
        lines.append("(no data)")
        return "\n".join(lines)
    label_w = max(len(str(start)) for start, _ in bins)

    def scale(count: int) -> float:
        return math.log10(count + 1) if log_scale else float(count)

    peak = max(scale(c) for _, c in bins) or 1.0
    for start, count in bins:
        bar = "#" * max(0, round(width * scale(count) / peak))
        lines.append(f"{str(start).rjust(label_w)} |{bar} {count}")
    return "\n".join(lines)
