"""Time-resolved curves over an event log (working set, communication, reuse).

Whole-run aggregates hide *when* a workload communicates.  This module
computes the temporal view in one streaming pass over the v2 chunks, in the
spirit of Becker & Chakraborty's Valgrind working-set tool: the run's
operation timeline is cut into fixed-width windows (``window`` ops each)
and every curve is one value per window.

* ``ops`` -- operations retired per window (each segment's self cost lands
  in the window where the segment starts).
* ``comm_bytes`` -- unique communicated bytes consumed per window (a data
  edge lands in the window where its *reader* segment starts).
* ``ws_bytes`` -- the communication working set WS(t): bytes that have been
  produced but not yet consumed during window ``t``.  Each data edge
  contributes its bytes to every window from the producer's completion to
  the consumer's start -- accumulated as a difference array (+b at the
  birth window, -b after the death window) and integrated with one cumsum,
  so the pass stays O(edges + windows) regardless of lifetime length.
* ``lifetime_sum`` / ``lifetime_edges`` -- per-window totals for the reuse
  lifetime (consumer start minus producer end, in ops; clamped at zero for
  overlapping segments), from which :attr:`WindowedCurves.mean_lifetime`
  derives the mean-reuse-lifetime-over-time curve.
* ``lifetime_hist`` -- a whole-run exponentially binned lifetime histogram
  (Becker-style): bin 0 counts zero-lifetime edges, bin ``k`` counts
  lifetimes in ``[2^(k-1), 2^k)``.

Memory is bounded by the chunk size plus 16 bytes per segment (each
segment's start and end op-counts, needed to place edges whose producer
lives arbitrarily far in the past) plus the curves themselves.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.streaming import (
    EventSource,
    SegmentColumns,
    as_chunk_source,
    stream_resolved,
)

__all__ = [
    "DEFAULT_WINDOW_OPS",
    "WINDOWED_SCHEMA",
    "WindowedCurves",
    "windowed_curves",
]

#: Default window width, in operations.
DEFAULT_WINDOW_OPS = 4096

#: Schema tag of the JSON artifact (:meth:`WindowedCurves.to_dict`).
WINDOWED_SCHEMA = "repro-windowed/1"


class _WindowAccumulator:
    """A zero-initialised int64 accumulator indexed by window, auto-growing."""

    __slots__ = ("_buf", "n")

    def __init__(self) -> None:
        self._buf = np.zeros(64, dtype=np.int64)
        self.n = 0

    def add_at(self, idx: np.ndarray, values) -> None:
        if not len(idx):
            return
        top = int(idx.max()) + 1
        if top > len(self._buf):
            grown = np.zeros(max(top, 2 * len(self._buf)), dtype=np.int64)
            grown[: self.n] = self._buf[: self.n]
            self._buf = grown
        self.n = max(self.n, top)
        np.add.at(self._buf, idx, values)

    def array(self, n: int) -> np.ndarray:
        """The accumulator as exactly ``n`` windows (zero padded)."""
        out = np.zeros(n, dtype=np.int64)
        out[: min(self.n, n)] = self._buf[: min(self.n, n)]
        return out


@dataclass
class WindowedCurves:
    """The time-resolved curves of one run (see module docstring).

    All per-window arrays share one length ``n_windows``; window ``k``
    covers operations ``[k * window, (k + 1) * window)``.
    """

    window: int
    ops: np.ndarray
    comm_bytes: np.ndarray
    ws_bytes: np.ndarray
    lifetime_sum: np.ndarray
    lifetime_edges: np.ndarray
    lifetime_hist: np.ndarray
    total_segments: int = 0
    total_edges: int = 0

    @property
    def n_windows(self) -> int:
        return len(self.ops)

    @property
    def mean_lifetime(self) -> np.ndarray:
        """Mean reuse lifetime (ops) of the edges consumed in each window."""
        denom = np.maximum(self.lifetime_edges, 1)
        return self.lifetime_sum / denom

    @property
    def peak_ws_bytes(self) -> int:
        return int(self.ws_bytes.max()) if len(self.ws_bytes) else 0

    @property
    def total_comm_bytes(self) -> int:
        return int(self.comm_bytes.sum())

    def to_dict(self) -> Dict:
        """The ``repro-windowed/1`` JSON artifact."""
        return {
            "schema": WINDOWED_SCHEMA,
            "window": self.window,
            "n_windows": self.n_windows,
            "total_segments": self.total_segments,
            "total_edges": self.total_edges,
            "ops": self.ops.tolist(),
            "comm_bytes": self.comm_bytes.tolist(),
            "ws_bytes": self.ws_bytes.tolist(),
            "lifetime_sum": self.lifetime_sum.tolist(),
            "lifetime_edges": self.lifetime_edges.tolist(),
            "lifetime_hist": self.lifetime_hist.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "WindowedCurves":
        schema = payload.get("schema")
        if schema != WINDOWED_SCHEMA:
            raise ValueError(f"unsupported windowed-curves schema {schema!r}")

        def arr(key: str) -> np.ndarray:
            return np.asarray(payload.get(key, []), dtype=np.int64)

        return cls(
            window=int(payload["window"]),
            ops=arr("ops"),
            comm_bytes=arr("comm_bytes"),
            ws_bytes=arr("ws_bytes"),
            lifetime_sum=arr("lifetime_sum"),
            lifetime_edges=arr("lifetime_edges"),
            lifetime_hist=arr("lifetime_hist"),
            total_segments=int(payload.get("total_segments", 0)),
            total_edges=int(payload.get("total_edges", 0)),
        )


def windowed_curves(
    source: EventSource,
    *,
    window: int = DEFAULT_WINDOW_OPS,
    chunk_rows: Optional[int] = None,
    telemetry=None,
) -> WindowedCurves:
    """Compute all curves in one streaming pass.

    Order/call chunks are skipped without decoding (the curves only need
    segments and data edges).  Accepts every event-log form a
    :class:`~repro.analysis.streaming.ChunkSource` does; results are
    independent of the source's chunking.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    src = as_chunk_source(source, chunk_rows=chunk_rows)
    cols = SegmentColumns(("start", "end"))
    ops_acc = _WindowAccumulator()
    comm_acc = _WindowAccumulator()
    ws_diff = _WindowAccumulator()
    life_sum = _WindowAccumulator()
    life_cnt = _WindowAccumulator()
    hist = _WindowAccumulator()
    total_segments = 0
    total_edges = 0
    phase = (
        telemetry.phase("windowed")
        if telemetry is not None
        else contextlib.nullcontext()
    )
    with phase:
        stream = stream_resolved(
            src, cols, tables=("segs", "data"), telemetry=telemetry
        )
        for table, rows in stream:
            if table == "segs":
                total_segments += len(rows)
                ops_acc.add_at(rows["start"] // window, rows["ops"])
            else:
                total_edges += len(rows)
                starts = cols.col("start")
                ends = cols.col("end")
                born = ends[rows["src"]]  # producer completion time
                used = starts[rows["dst"]]  # consumer start time
                weight = rows["bytes"]
                k_used = used // window
                comm_acc.add_at(k_used, weight)
                lifetime = np.maximum(used - born, 0)
                life_sum.add_at(k_used, lifetime)
                life_cnt.add_at(k_used, 1)
                # Live interval [birth window, consume window]: difference
                # array, integrated once at the end.
                k_born = np.minimum(born, used) // window
                ws_diff.add_at(k_born, weight)
                ws_diff.add_at(k_used + 1, -weight)
                # Exponential lifetime bins: 0, [1,2), [2,4), [4,8), ...
                bins = np.zeros(len(lifetime), dtype=np.int64)
                live = lifetime > 0
                if bool(live.any()):
                    bins[live] = (
                        np.floor(np.log2(lifetime[live])).astype(np.int64) + 1
                    )
                hist.add_at(bins, 1)

    n_windows = max(ops_acc.n, comm_acc.n, life_sum.n)
    ws = np.cumsum(ws_diff.array(n_windows + 1))[:n_windows]
    return WindowedCurves(
        window=window,
        ops=ops_acc.array(n_windows),
        comm_bytes=comm_acc.array(n_windows),
        ws_bytes=ws,
        lifetime_sum=life_sum.array(n_windows),
        lifetime_edges=life_cnt.array(n_windows),
        lifetime_hist=hist.array(hist.n),
        total_segments=total_segments,
        total_edges=total_edges,
    )
