"""Thread-level communication analysis (beyond the paper's serial scope).

The paper names threads among the "self contained fragment[s] of code [that]
can be a producer or consumer" (section II-A) but evaluates serial binaries
only.  With the trace layer's thread support, event-mode profiles carry the
thread of every segment, and the data edges between segments of different
threads *are* the thread-to-thread communication — this module aggregates
them into the matrix a NoC or shared-cache designer would start from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.core.segments import EventArrays, EventLog, as_event_arrays

__all__ = ["ThreadCommSummary", "thread_comm_matrix", "per_thread_ops"]


@dataclass
class ThreadCommSummary:
    """Cross-thread traffic extracted from an event log."""

    #: (producer thread, consumer thread) -> unique bytes moved.
    matrix: Dict[Tuple[int, int], int]
    #: thread -> operations retired on it.
    ops: Dict[int, int]

    @property
    def threads(self) -> List[int]:
        tids = set(self.ops)
        for src, dst in self.matrix:
            tids.add(src)
            tids.add(dst)
        return sorted(tids)

    @property
    def cross_thread_bytes(self) -> int:
        return sum(
            count for (src, dst), count in self.matrix.items() if src != dst
        )

    @property
    def intra_thread_bytes(self) -> int:
        return sum(
            count for (src, dst), count in self.matrix.items() if src == dst
        )

    def sharing_fraction(self) -> float:
        """Fraction of communicated bytes that crossed a thread boundary."""
        total = self.cross_thread_bytes + self.intra_thread_bytes
        return self.cross_thread_bytes / total if total else 0.0


def thread_comm_matrix(
    events: Union[EventLog, EventArrays],
) -> ThreadCommSummary:
    """Aggregate data-edge bytes by the producing/consuming threads.

    Accepts either event-log form; the aggregation is a grouped reduction
    over the columnar data-edge table (sort producer/consumer thread
    pairs, sum byte runs), so million-edge logs reduce without touching
    per-edge Python objects.
    """
    arrays = as_event_arrays(events)
    matrix: Dict[Tuple[int, int], int] = {}
    if len(arrays.data):
        threads = arrays.segs["thread"]
        pairs = np.stack(
            (threads[arrays.data["src"]], threads[arrays.data["dst"]]), axis=1
        )
        uniq, inverse = np.unique(pairs, axis=0, return_inverse=True)
        totals = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(totals, inverse, arrays.data["bytes"])
        matrix = {
            (int(src), int(dst)): int(count)
            for (src, dst), count in zip(uniq.tolist(), totals.tolist())
        }
    return ThreadCommSummary(matrix=matrix, ops=per_thread_ops(arrays))


def per_thread_ops(events: Union[EventLog, EventArrays]) -> Dict[int, int]:
    """Operations retired per thread (load balance view)."""
    arrays = as_event_arrays(events)
    if not len(arrays.segs):
        return {}
    tids, inverse = np.unique(arrays.segs["thread"], return_inverse=True)
    totals = np.zeros(len(tids), dtype=np.int64)
    np.add.at(totals, inverse, arrays.segs["ops"])
    return {
        int(tid): int(total) for tid, total in zip(tids.tolist(), totals.tolist())
    }
