"""Thread-level communication analysis (beyond the paper's serial scope).

The paper names threads among the "self contained fragment[s] of code [that]
can be a producer or consumer" (section II-A) but evaluates serial binaries
only.  With the trace layer's thread support, event-mode profiles carry the
thread of every segment, and the data edges between segments of different
threads *are* the thread-to-thread communication — this module aggregates
them into the matrix a NoC or shared-cache designer would start from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.streaming import (
    EventSource,
    SegmentColumns,
    as_chunk_source,
    stream_resolved,
)

__all__ = ["ThreadCommSummary", "thread_comm_matrix", "per_thread_ops"]


@dataclass
class ThreadCommSummary:
    """Cross-thread traffic extracted from an event log."""

    #: (producer thread, consumer thread) -> unique bytes moved.
    matrix: Dict[Tuple[int, int], int]
    #: thread -> operations retired on it.
    ops: Dict[int, int]

    @property
    def threads(self) -> List[int]:
        tids = set(self.ops)
        for src, dst in self.matrix:
            tids.add(src)
            tids.add(dst)
        return sorted(tids)

    @property
    def cross_thread_bytes(self) -> int:
        return sum(
            count for (src, dst), count in self.matrix.items() if src != dst
        )

    @property
    def intra_thread_bytes(self) -> int:
        return sum(
            count for (src, dst), count in self.matrix.items() if src == dst
        )

    def sharing_fraction(self) -> float:
        """Fraction of communicated bytes that crossed a thread boundary."""
        total = self.cross_thread_bytes + self.intra_thread_bytes
        return self.cross_thread_bytes / total if total else 0.0


def thread_comm_matrix(events: EventSource) -> ThreadCommSummary:
    """Aggregate data-edge bytes by the producing/consuming threads.

    Accepts every event-log form (including a v2 file path or raw bytes,
    which stream chunk-at-a-time); the aggregation is a grouped reduction
    per chunk of the columnar data-edge table (sort producer/consumer
    thread pairs, sum byte runs), so million-edge logs reduce without ever
    materialising per-edge Python objects -- or, for file sources, the
    tables themselves.
    """
    source = as_chunk_source(events)
    cols = SegmentColumns(("thread",))
    matrix: Dict[Tuple[int, int], int] = {}
    ops: Dict[int, int] = {}
    for table, rows in stream_resolved(source, cols, tables=("segs", "data")):
        if table == "segs":
            _accumulate_groups(ops, rows["thread"], rows["ops"])
        else:
            threads = cols.col("thread")
            pairs = np.stack(
                (threads[rows["src"]], threads[rows["dst"]]), axis=1
            )
            uniq, inverse = np.unique(pairs, axis=0, return_inverse=True)
            totals = np.zeros(len(uniq), dtype=np.int64)
            np.add.at(totals, inverse, rows["bytes"])
            for (src, dst), count in zip(uniq.tolist(), totals.tolist()):
                key = (int(src), int(dst))
                matrix[key] = matrix.get(key, 0) + int(count)
    return ThreadCommSummary(matrix=matrix, ops=ops)


def per_thread_ops(events: EventSource) -> Dict[int, int]:
    """Operations retired per thread (load balance view)."""
    source = as_chunk_source(events)
    ops: Dict[int, int] = {}
    for _table, rows in source.chunks(tables=("segs",)):
        if len(rows):
            _accumulate_groups(ops, rows["thread"], rows["ops"])
    return ops


def _accumulate_groups(
    into: Dict[int, int], keys: np.ndarray, values: np.ndarray
) -> None:
    """Add per-key sums of one chunk into a running dict."""
    uniq, inverse = np.unique(keys, return_inverse=True)
    totals = np.zeros(len(uniq), dtype=np.int64)
    np.add.at(totals, inverse, values)
    for key, total in zip(uniq.tolist(), totals.tolist()):
        into[int(key)] = into.get(int(key), 0) + int(total)
