"""Thread-level communication analysis (beyond the paper's serial scope).

The paper names threads among the "self contained fragment[s] of code [that]
can be a producer or consumer" (section II-A) but evaluates serial binaries
only.  With the trace layer's thread support, event-mode profiles carry the
thread of every segment, and the data edges between segments of different
threads *are* the thread-to-thread communication — this module aggregates
them into the matrix a NoC or shared-cache designer would start from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.segments import EDGE_DATA, EventLog

__all__ = ["ThreadCommSummary", "thread_comm_matrix", "per_thread_ops"]


@dataclass
class ThreadCommSummary:
    """Cross-thread traffic extracted from an event log."""

    #: (producer thread, consumer thread) -> unique bytes moved.
    matrix: Dict[Tuple[int, int], int]
    #: thread -> operations retired on it.
    ops: Dict[int, int]

    @property
    def threads(self) -> List[int]:
        tids = set(self.ops)
        for src, dst in self.matrix:
            tids.add(src)
            tids.add(dst)
        return sorted(tids)

    @property
    def cross_thread_bytes(self) -> int:
        return sum(
            count for (src, dst), count in self.matrix.items() if src != dst
        )

    @property
    def intra_thread_bytes(self) -> int:
        return sum(
            count for (src, dst), count in self.matrix.items() if src == dst
        )

    def sharing_fraction(self) -> float:
        """Fraction of communicated bytes that crossed a thread boundary."""
        total = self.cross_thread_bytes + self.intra_thread_bytes
        return self.cross_thread_bytes / total if total else 0.0


def thread_comm_matrix(events: EventLog) -> ThreadCommSummary:
    """Aggregate data-edge bytes by the producing/consuming threads."""
    matrix: Dict[Tuple[int, int], int] = {}
    segments = events.segments
    for edge in events.edges():
        if edge.kind != EDGE_DATA:
            continue
        key = (segments[edge.src].thread, segments[edge.dst].thread)
        matrix[key] = matrix.get(key, 0) + edge.bytes
    return ThreadCommSummary(matrix=matrix, ops=per_thread_ops(events))


def per_thread_ops(events: EventLog) -> Dict[int, int]:
    """Operations retired per thread (load balance view)."""
    ops: Dict[int, int] = {}
    for seg in events.segments:
        ops[seg.thread] = ops.get(seg.thread, 0) + seg.ops
    return ops
