"""Sub-tree merging and inclusive costs (Figure 2).

"An accelerator designed for a function node in the call tree should include
all of the functions in the sub-tree to absorb the cost of communication. ...
We draw boxes around a node and its entire sub-tree.  Any dashed edges within
the box are then discarded and edges flowing in/out of the box are
accumulated into the communication cost of the parent node.  We sum
measurements such as computing operations and CPU memory traffic to provide
the software and platform-independent costs for the node.  We call the
accumulated costs for a node the inclusive cost of communication and
computation for the entire sub-tree." (section II-C1)

Timing (the paper's :math:`t_{sw}`) comes from the Callgrind-equivalent
profile; the two profiles observe the same run, so contexts are aligned by
their call paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.callgrind.collector import CallgrindProfile
from repro.common.cct import ContextNode
from repro.core.profiler import SigilProfile

__all__ = ["InclusiveCosts", "MergedNode", "compute_inclusive", "subtree_has_syscall"]


@dataclass(frozen=True)
class InclusiveCosts:
    """Costs of a node with its entire sub-tree merged into one box."""

    ops: int
    iops: int
    flops: int
    unique_input_bytes: int
    unique_output_bytes: int
    #: Full Callgrind cycle estimate (instructions + miss/branch penalties).
    est_cycles: float
    calls: int
    #: Raw Callgrind event counts, so downstream models can re-weigh them.
    instructions: int = 0
    branch_misses: int = 0
    l1_misses: int = 0
    ll_misses: int = 0

    @property
    def unique_comm_bytes(self) -> int:
        return self.unique_input_bytes + self.unique_output_bytes


@dataclass(frozen=True)
class MergedNode:
    """A calltree node considered at merged (sub-tree) granularity."""

    node: ContextNode
    costs: InclusiveCosts

    @property
    def name(self) -> str:
        return self.node.name


def _align_context(
    callgrind: CallgrindProfile, node: ContextNode
) -> Optional[ContextNode]:
    """Find the Callgrind context matching a Sigil context by call path."""
    return callgrind.tree.find(node.path)


def compute_inclusive(
    sigil: SigilProfile,
    callgrind: Optional[CallgrindProfile],
    node: ContextNode,
) -> InclusiveCosts:
    """Merge ``node``'s entire sub-tree and return its inclusive costs.

    Data edges internal to the sub-tree are discarded; unique bytes crossing
    the boundary become the merged node's input/output communication.
    """
    subtree: Set[int] = sigil.comm.subtree_ids(node)
    iops = 0
    flops = 0
    for ctx_id in subtree:
        comm = sigil.functions.get(ctx_id)
        if comm is not None:
            iops += comm.iops
            flops += comm.flops
    inp, out = sigil.comm.boundary_bytes(subtree)

    est_cycles = 0.0
    instructions = branch_misses = l1_misses = ll_misses = 0
    if callgrind is not None:
        cg_node = _align_context(callgrind, node)
        if cg_node is not None:
            cg_costs = callgrind.inclusive_costs(cg_node)
            instructions = cg_costs.instructions
            branch_misses = cg_costs.branch_misses
            l1_misses = cg_costs.l1_misses
            ll_misses = cg_costs.ll_misses
            est_cycles = callgrind.cycle_model.estimate(
                instructions, branch_misses, l1_misses, ll_misses
            )
    return InclusiveCosts(
        ops=iops + flops,
        iops=iops,
        flops=flops,
        unique_input_bytes=inp,
        unique_output_bytes=out,
        est_cycles=est_cycles,
        calls=node.calls,
        instructions=instructions,
        branch_misses=branch_misses,
        l1_misses=l1_misses,
        ll_misses=ll_misses,
    )


def subtree_has_syscall(node: ContextNode) -> bool:
    """True if any context in the sub-tree is a system-call pseudo-node."""
    return any(sub.name.startswith("sys:") for sub in node.walk())


def inclusive_cost_table(
    sigil: SigilProfile, callgrind: Optional[CallgrindProfile]
) -> Dict[int, InclusiveCosts]:
    """Inclusive costs for every context (convenience for reports)."""
    return {
        node.id: compute_inclusive(sigil, callgrind, node)
        for node in sigil.contexts()
    }
