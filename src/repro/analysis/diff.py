"""Profile diffing: compare two Sigil profiles context by context.

The ``callgrind_diff`` analogue for communication profiles.  Two profiles of
the same program at different input sizes show how work and communication
*scale*; two profiles of different program versions show what an
optimisation did to the dataflow (did re-reads drop? did a function's unique
input shrink?).  Contexts are matched by call path, so the comparison is
stable across runs even though context ids are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.profiler import SigilProfile

__all__ = ["ContextDelta", "ProfileDiff", "diff_profiles"]


@dataclass(frozen=True)
class ContextDelta:
    """Per-context change between a baseline and a subject profile."""

    path: Tuple[str, ...]
    calls: Tuple[int, int]
    ops: Tuple[int, int]
    unique_input: Tuple[int, int]
    unique_output: Tuple[int, int]
    nonunique_input: Tuple[int, int]

    @property
    def name(self) -> str:
        return self.path[-1] if self.path else "<root>"

    @property
    def ops_delta(self) -> int:
        return self.ops[1] - self.ops[0]

    @property
    def ops_ratio(self) -> float:
        return self.ops[1] / self.ops[0] if self.ops[0] else float("inf")

    @property
    def unique_input_delta(self) -> int:
        return self.unique_input[1] - self.unique_input[0]

    @property
    def only_in_baseline(self) -> bool:
        return self.calls[1] == 0 and self.calls[0] > 0

    @property
    def only_in_subject(self) -> bool:
        return self.calls[0] == 0 and self.calls[1] > 0


@dataclass
class ProfileDiff:
    """All per-context deltas plus program-level totals."""

    deltas: List[ContextDelta]
    total_ops: Tuple[int, int]
    total_time: Tuple[int, int]

    def by_ops_change(self, n: Optional[int] = None) -> List[ContextDelta]:
        ranked = sorted(self.deltas, key=lambda d: abs(d.ops_delta), reverse=True)
        return ranked[:n] if n is not None else ranked

    def appeared(self) -> List[ContextDelta]:
        return [d for d in self.deltas if d.only_in_subject]

    def disappeared(self) -> List[ContextDelta]:
        return [d for d in self.deltas if d.only_in_baseline]

    @property
    def ops_ratio(self) -> float:
        return (
            self.total_ops[1] / self.total_ops[0]
            if self.total_ops[0]
            else float("inf")
        )


def _nonunique_input(profile: SigilProfile, ctx_id: int) -> int:
    return sum(
        e.nonunique_bytes for e in profile.comm.input_edges(ctx_id).values()
    )


def diff_profiles(baseline: SigilProfile, subject: SigilProfile) -> ProfileDiff:
    """Match contexts by call path and compute per-context deltas."""
    paths: Dict[Tuple[str, ...], List[Optional[int]]] = {}
    for node in baseline.contexts():
        paths.setdefault(node.path, [None, None])[0] = node.id
    for node in subject.contexts():
        paths.setdefault(node.path, [None, None])[1] = node.id

    deltas: List[ContextDelta] = []
    for path in sorted(paths):
        base_id, subj_id = paths[path]

        def stats(profile: Optional[SigilProfile], ctx: Optional[int]):
            if profile is None or ctx is None:
                return 0, 0, 0, 0, 0
            node = profile.tree.node(ctx)
            return (
                node.calls,
                profile.fn_comm(ctx).ops,
                profile.unique_input_bytes(ctx),
                profile.unique_output_bytes(ctx),
                _nonunique_input(profile, ctx),
            )

        b = stats(baseline, base_id)
        s = stats(subject, subj_id)
        deltas.append(ContextDelta(
            path=path,
            calls=(b[0], s[0]),
            ops=(b[1], s[1]),
            unique_input=(b[2], s[2]),
            unique_output=(b[3], s[3]),
            nonunique_input=(b[4], s[4]),
        ))

    return ProfileDiff(
        deltas=deltas,
        total_ops=(baseline.total_ops(), subject.total_ops()),
        total_time=(baseline.total_time, subject.total_time),
    )
