"""Control data flow graphs: call trees annotated with data dependencies.

"Figure 1 shows a sample control data flow graph for a toy program generated
using Sigil's profiling data.  This graph is essentially a calltree with
edges representing dependencies and the graph nodes represent functions. ...
Call edges are represented by the bold edges and data dependencies are
represented by the dashed edges.  The directed data dependency edges are
weighted by the number of bytes needed by the receiving function."
(section II-C1)

The CDFG is a *view* over a :class:`~repro.core.profiler.SigilProfile`: call
edges come from the calling-context tree, data edges from the unique-byte
communication matrix.  For runs where only the event log survives (e.g. a
cached v2 file in a campaign store), :func:`ctx_comm_from_events` and
:func:`data_edges_from_events` rebuild the dashed edges of Figure 1
directly from the log, chunk-at-a-time, without materialising the columnar
tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.analysis.streaming import (
    EventSource,
    SegmentColumns,
    as_chunk_source,
    stream_resolved,
)
from repro.common.cct import INVALID_CTX, ContextNode
from repro.core.profiler import SigilProfile

__all__ = [
    "CallEdge",
    "DataEdge",
    "CDFG",
    "ctx_comm_from_events",
    "data_edges_from_events",
]


@dataclass(frozen=True)
class CallEdge:
    """A bold edge of Figure 1: ``caller`` invokes ``callee`` ``calls`` times."""

    caller: int
    callee: int
    calls: int


@dataclass(frozen=True)
class DataEdge:
    """A dashed edge of Figure 1, weighted by unique bytes consumed.

    ``writer`` may be :data:`~repro.common.cct.INVALID_CTX` for program
    input (bytes with no recorded producer).
    """

    writer: int
    reader: int
    unique_bytes: int
    nonunique_bytes: int


class CDFG:
    """Calltree-with-dependencies view of a Sigil profile."""

    def __init__(self, profile: SigilProfile):
        self.profile = profile
        self.tree = profile.tree

    # -- nodes -------------------------------------------------------------

    def nodes(self) -> List[ContextNode]:
        return self.profile.contexts()

    def node(self, ctx_id: int) -> ContextNode:
        return self.tree.node(ctx_id)

    def label(self, ctx_id: int) -> str:
        """Human-readable context label; repeated names get ordinal suffixes.

        The paper distinguishes contexts of the same function as D1/D2
        (Figure 2) or ``conv_gen(1)`` (Figure 9).
        """
        if ctx_id == INVALID_CTX:
            return "<input>"
        node = self.tree.node(ctx_id)
        same_name = [n for n in self.tree.by_name(node.name)]
        if len(same_name) <= 1:
            return node.name
        ordinal = sorted(n.id for n in same_name).index(node.id) + 1
        return f"{node.name}({ordinal})"

    # -- edges ---------------------------------------------------------------

    def call_edges(self) -> List[CallEdge]:
        edges = []
        for node in self.nodes():
            assert node.parent is not None
            edges.append(CallEdge(node.parent.id, node.id, node.calls))
        return edges

    def data_edges(self, *, include_local: bool = False) -> List[DataEdge]:
        edges = []
        for (writer, reader), edge in self.profile.comm.items():
            if writer == reader and not include_local:
                continue
            edges.append(
                DataEdge(writer, reader, edge.unique_bytes, edge.nonunique_bytes)
            )
        return edges

    def data_edges_into(self, ctx_id: int) -> List[DataEdge]:
        return [e for e in self.data_edges() if e.reader == ctx_id]

    def data_edges_from(self, ctx_id: int) -> List[DataEdge]:
        return [e for e in self.data_edges() if e.writer == ctx_id]

    # -- export -----------------------------------------------------------------

    def to_dot(self, *, max_nodes: Optional[int] = None) -> str:
        """Graphviz rendering: bold call edges, dashed weighted data edges."""
        from repro.analysis.critical_path import _dot_escape

        nodes = self.nodes()
        if max_nodes is not None:
            nodes = sorted(
                nodes,
                key=lambda n: self.profile.fn_comm(n.id).ops,
                reverse=True,
            )[:max_nodes]
        keep = {n.id for n in nodes}
        lines = ["digraph cdfg {", "  node [shape=ellipse];"]
        for node in nodes:
            ops = self.profile.fn_comm(node.id).ops
            label = _dot_escape(self.label(node.id))
            lines.append(
                f'  n{node.id} [label="{label}\\nops={ops}"];'
            )
        for edge in self.call_edges():
            if edge.caller in keep and edge.callee in keep:
                lines.append(
                    f"  n{edge.caller} -> n{edge.callee} "
                    f'[style=bold, label="{edge.calls}"];'
                )
        for dedge in self.data_edges():
            if dedge.writer in keep and dedge.reader in keep:
                lines.append(
                    f"  n{dedge.writer} -> n{dedge.reader} "
                    f'[style=dashed, label="{dedge.unique_bytes}B"];'
                )
        lines.append("}")
        return "\n".join(lines)


def ctx_comm_from_events(
    events: EventSource,
) -> Dict[Tuple[int, int], int]:
    """(writer context, reader context) -> bytes, streamed from an event log.

    The event log's data edges connect *segments*; this folds them onto the
    contexts the segments execute in -- the weights of Figure 1's dashed
    edges as recoverable from the log alone.  (Unlike the profile's
    communication matrix, a log has no ``<input>`` writer: bytes read from
    program input never produced a data edge.)  Accepts every event-log
    form and streams file sources chunk-at-a-time, keeping 8 bytes per
    segment (its context) plus one chunk in memory.
    """
    source = as_chunk_source(events)
    cols = SegmentColumns(("ctx",))
    comm: Dict[Tuple[int, int], int] = {}
    for table, rows in stream_resolved(source, cols, tables=("segs", "data")):
        if table != "data":
            continue
        ctx = cols.col("ctx")
        pairs = np.stack((ctx[rows["src"]], ctx[rows["dst"]]), axis=1)
        uniq, inverse = np.unique(pairs, axis=0, return_inverse=True)
        totals = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(totals, inverse, rows["bytes"])
        for (writer, reader), count in zip(uniq.tolist(), totals.tolist()):
            key = (int(writer), int(reader))
            comm[key] = comm.get(key, 0) + int(count)
    return comm


def data_edges_from_events(
    events: EventSource, *, include_local: bool = False
) -> List[DataEdge]:
    """:class:`DataEdge` list rebuilt from an event log (see above).

    Event logs record unique (first-touch) communication only, so
    ``nonunique_bytes`` is always zero here.
    """
    return [
        DataEdge(writer, reader, count, 0)
        for (writer, reader), count in sorted(
            ctx_comm_from_events(events).items()
        )
        if include_local or writer != reader
    ]
