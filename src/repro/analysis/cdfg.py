"""Control data flow graphs: call trees annotated with data dependencies.

"Figure 1 shows a sample control data flow graph for a toy program generated
using Sigil's profiling data.  This graph is essentially a calltree with
edges representing dependencies and the graph nodes represent functions. ...
Call edges are represented by the bold edges and data dependencies are
represented by the dashed edges.  The directed data dependency edges are
weighted by the number of bytes needed by the receiving function."
(section II-C1)

The CDFG is a *view* over a :class:`~repro.core.profiler.SigilProfile`: call
edges come from the calling-context tree, data edges from the unique-byte
communication matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.cct import INVALID_CTX, ContextNode
from repro.core.profiler import SigilProfile

__all__ = ["CallEdge", "DataEdge", "CDFG"]


@dataclass(frozen=True)
class CallEdge:
    """A bold edge of Figure 1: ``caller`` invokes ``callee`` ``calls`` times."""

    caller: int
    callee: int
    calls: int


@dataclass(frozen=True)
class DataEdge:
    """A dashed edge of Figure 1, weighted by unique bytes consumed.

    ``writer`` may be :data:`~repro.common.cct.INVALID_CTX` for program
    input (bytes with no recorded producer).
    """

    writer: int
    reader: int
    unique_bytes: int
    nonunique_bytes: int


class CDFG:
    """Calltree-with-dependencies view of a Sigil profile."""

    def __init__(self, profile: SigilProfile):
        self.profile = profile
        self.tree = profile.tree

    # -- nodes -------------------------------------------------------------

    def nodes(self) -> List[ContextNode]:
        return self.profile.contexts()

    def node(self, ctx_id: int) -> ContextNode:
        return self.tree.node(ctx_id)

    def label(self, ctx_id: int) -> str:
        """Human-readable context label; repeated names get ordinal suffixes.

        The paper distinguishes contexts of the same function as D1/D2
        (Figure 2) or ``conv_gen(1)`` (Figure 9).
        """
        if ctx_id == INVALID_CTX:
            return "<input>"
        node = self.tree.node(ctx_id)
        same_name = [n for n in self.tree.by_name(node.name)]
        if len(same_name) <= 1:
            return node.name
        ordinal = sorted(n.id for n in same_name).index(node.id) + 1
        return f"{node.name}({ordinal})"

    # -- edges ---------------------------------------------------------------

    def call_edges(self) -> List[CallEdge]:
        edges = []
        for node in self.nodes():
            assert node.parent is not None
            edges.append(CallEdge(node.parent.id, node.id, node.calls))
        return edges

    def data_edges(self, *, include_local: bool = False) -> List[DataEdge]:
        edges = []
        for (writer, reader), edge in self.profile.comm.items():
            if writer == reader and not include_local:
                continue
            edges.append(
                DataEdge(writer, reader, edge.unique_bytes, edge.nonunique_bytes)
            )
        return edges

    def data_edges_into(self, ctx_id: int) -> List[DataEdge]:
        return [e for e in self.data_edges() if e.reader == ctx_id]

    def data_edges_from(self, ctx_id: int) -> List[DataEdge]:
        return [e for e in self.data_edges() if e.writer == ctx_id]

    # -- export -----------------------------------------------------------------

    def to_dot(self, *, max_nodes: Optional[int] = None) -> str:
        """Graphviz rendering: bold call edges, dashed weighted data edges."""
        from repro.analysis.critical_path import _dot_escape

        nodes = self.nodes()
        if max_nodes is not None:
            nodes = sorted(
                nodes,
                key=lambda n: self.profile.fn_comm(n.id).ops,
                reverse=True,
            )[:max_nodes]
        keep = {n.id for n in nodes}
        lines = ["digraph cdfg {", "  node [shape=ellipse];"]
        for node in nodes:
            ops = self.profile.fn_comm(node.id).ops
            label = _dot_escape(self.label(node.id))
            lines.append(
                f'  n{node.id} [label="{label}\\nops={ops}"];'
            )
        for edge in self.call_edges():
            if edge.caller in keep and edge.callee in keep:
                lines.append(
                    f"  n{edge.caller} -> n{edge.callee} "
                    f'[style=bold, label="{edge.calls}"];'
                )
        for dedge in self.data_edges():
            if dedge.writer in keep and dedge.reader in keep:
                lines.append(
                    f"  n{dedge.writer} -> n{dedge.reader} "
                    f'[style=dashed, label="{dedge.unique_bytes}B"];'
                )
        lines.append("}")
        return "\n".join(lines)
