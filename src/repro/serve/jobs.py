"""Serve-job lifecycle: accept, execute, trace, and resume profiling jobs.

A **serve job** is one HTTP submission -- either a CampaignSpec-style body
(``{"workloads": [...], "sizes": [...], ...}``) or a single-cell shorthand
(``{"workload": "vips", "size": "simsmall", "tool": "sigil"}``) -- expanded
into content-addressed campaign cells and executed through
:func:`repro.campaign.executor.run_campaign` against the shared
:class:`~repro.campaign.store.ResultStore`.  Warm submissions never spawn a
worker: every cell resolves as a cache hit and the job completes in the
time it takes to write its trace.

Each job owns a directory under ``<store>/serve/jobs/<id>/``::

    request.json      the submitted body, verbatim, plus submit time
    trace.jsonl       sequence-numbered observability events (SSE source)
    campaign/         the campaign journal -- spec.json + journal.jsonl

The campaign journal is the **durability layer**: a daemon killed mid-job
leaves ``journal.jsonl`` behind, and the next start re-queues every job
whose trace lacks a terminal event, passing the journal's completed keys as
``skip_keys`` so finished cells are never re-executed.  The trace file is
the **observability layer**: every journal transition, executor heartbeat,
retry and phase timing lands there with a monotonic ``seq``, which is what
``repro watch`` tails and ``GET /jobs/<id>/events`` streams.
"""

from __future__ import annotations

import json
import logging
import queue
import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.campaign.executor import run_campaign
from repro.campaign.report import build_campaign_manifest
from repro.campaign.spec import CampaignSpec, Job
from repro.campaign.state import CampaignState
from repro.campaign.store import ResultStore
from repro.serve.promfmt import ServeMetrics
from repro.serve.sse import EventBroker, JobChannel

__all__ = ["JobManager", "ServeJob", "TERMINAL_EVENTS", "spec_from_body"]

log = logging.getLogger("repro.serve.jobs")

#: Trace events that end a job's stream; SSE connections close after one.
TERMINAL_EVENTS = frozenset({"completed", "error"})

_ID_RE = re.compile(r"^job-(\d{6,})$")

#: Campaign-spec keys accepted in a batch-style submission body.
#: ``local_workers`` is execution placement, not matrix shape: it selects
#: the distributed executor with that many local worker subprocesses.
_SPEC_KEYS = frozenset({"name", "workloads", "sizes", "tools", "configs",
                        "local_workers"})
#: Keys accepted in a single-cell submission body.
_CELL_KEYS = frozenset({"workload", "size", "tool", "config"})


def local_workers_from_body(body: Mapping[str, Any]) -> int:
    """The submission's ``local_workers`` count (0 = single-host executor)."""
    try:
        count = int(body.get("local_workers", 0) or 0)
    except (TypeError, ValueError):
        raise ValueError("'local_workers' must be a non-negative integer")
    if count < 0:
        raise ValueError("'local_workers' must be a non-negative integer")
    return count


def spec_from_body(body: Mapping[str, Any]) -> CampaignSpec:
    """Parse a submission body into a validated :class:`CampaignSpec`.

    Accepts the campaign form (``workloads`` plural, same keys as a spec
    file) or the single-cell form (``workload`` singular); anything else --
    unknown keys, both forms at once, junk values -- raises ``ValueError``,
    which the HTTP layer maps to a 400.
    """
    if not isinstance(body, Mapping):
        raise ValueError("job body must be a JSON object")
    keys = set(body)
    if "workload" in keys and "workloads" in keys:
        raise ValueError("give either 'workload' (one cell) or 'workloads' "
                         "(a matrix), not both")
    if "workload" in keys:
        unknown = keys - _CELL_KEYS
        if unknown:
            raise ValueError(
                f"unknown job keys: {', '.join(sorted(unknown))}; "
                f"single-cell jobs accept {', '.join(sorted(_CELL_KEYS))}"
            )
        cell = Job(
            workload=str(body["workload"]),
            size=str(body.get("size", "simsmall")),
            tool=str(body.get("tool", "sigil+callgrind")),
            config=dict(body.get("config") or {}),
        )
        return CampaignSpec.from_lists(
            name="adhoc",
            workloads=[cell.workload],
            sizes=[cell.size],
            tools=[cell.tool],
            configs=[cell.config],
        )
    if "workloads" in keys:
        unknown = keys - _SPEC_KEYS
        if unknown:
            raise ValueError(
                f"unknown campaign keys: {', '.join(sorted(unknown))}; "
                f"accepted: {', '.join(sorted(_SPEC_KEYS))}"
            )
        local_workers_from_body(body)  # validate early: the 400 path
        spec = CampaignSpec.from_dict(
            {k: v for k, v in body.items() if k != "local_workers"}
        )
        if not len(spec):
            raise ValueError("job expands to zero cells")
        return spec
    raise ValueError("job body needs 'workload' or 'workloads'")


@dataclass
class ServeJob:
    """One HTTP submission and its current standing."""

    id: str
    spec: CampaignSpec
    body: Dict[str, Any]
    state: str = "queued"  # queued | running | done | failed | error
    submitted_unix: float = field(default_factory=time.time)
    n_cells: int = 0
    local_workers: int = 0  # >0: distributed executor, N local workers
    result: Optional[Dict[str, Any]] = None
    error: str = ""
    finished: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def is_terminal(self) -> bool:
        """Whether the job has reached a final state."""
        return self.state in ("done", "failed", "error")

    def to_dict(self) -> Dict[str, Any]:
        """The JSON shape ``GET /jobs`` lists."""
        entry: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "submitted_unix": self.submitted_unix,
            "cells": self.n_cells,
            "name": self.spec.name,
        }
        if self.local_workers:
            entry["local_workers"] = self.local_workers
        if self.result is not None:
            entry["result"] = self.result
        if self.error:
            entry["error"] = self.error
        return entry


class _TracingState(CampaignState):
    """A campaign journal that mirrors every transition into a job channel.

    The journal append (durability) happens first; the channel emit
    (observability) follows with the same payload, so the SSE stream and
    ``repro watch`` see exactly the lifecycle the journal records --
    planned, started, done (with the cache-hit flag), failed, timeout.
    """

    def __init__(self, directory, channel: JobChannel, job_id: str):
        super().__init__(directory)
        self._channel = channel
        self._job_id = job_id

    def append(self, event: str, job: Optional[Job] = None, **detail: Any) -> None:
        super().append(event, job, **detail)
        fields: Dict[str, Any] = {"job": self._job_id}
        if job is not None:
            fields["key"] = job.key
            fields["label"] = job.label
        fields.update(detail)
        self._channel.emit(event, **fields)


class JobManager:
    """Owns the serve-job registry, worker threads, and restart resume."""

    def __init__(
        self,
        store: ResultStore,
        *,
        workers: int = 1,
        concurrency: int = 1,
        timeout: Optional[float] = None,
        retries: int = 1,
        heartbeat_seconds: Optional[float] = 5.0,
        metrics: Optional[ServeMetrics] = None,
        resume: bool = True,
    ):
        self.store = store
        self.workers = max(1, workers)
        self.timeout = timeout
        self.retries = retries
        self.heartbeat_seconds = heartbeat_seconds
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.broker = EventBroker()
        self._jobs: Dict[str, ServeJob] = {}
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._next_index = self._scan_next_index()
        if resume:
            self._resume_incomplete()
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-serve-worker-{i}")
            for i in range(max(1, concurrency))
        ]
        for thread in self._threads:
            thread.start()

    # -- paths -------------------------------------------------------------

    @property
    def serve_root(self) -> Path:
        """Where serve jobs live: ``<store>/serve/jobs``."""
        return self.store.root / "serve" / "jobs"

    def job_dir(self, job_id: str) -> Path:
        return self.serve_root / job_id

    def trace_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "trace.jsonl"

    # -- registry ----------------------------------------------------------

    def get(self, job_id: str) -> Optional[ServeJob]:
        """The in-memory job record, or None for unknown ids."""
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> List[ServeJob]:
        """Every known job, oldest first."""
        with self._lock:
            return [self._jobs[k] for k in sorted(self._jobs)]

    def wait(self, job_id: str, timeout: Optional[float] = None) -> bool:
        """Block until ``job_id`` reaches a terminal state (True) or timeout."""
        job = self.get(job_id)
        if job is None:
            raise KeyError(job_id)
        return job.finished.wait(timeout)

    def detail(self, job_id: str) -> Dict[str, Any]:
        """The job's full document: serve state + campaign manifest.

        The per-cell section is the same ``repro-campaign/1`` schema that
        ``repro campaign status --json`` emits, so one dashboard consumer
        handles both surfaces.
        """
        job = self.get(job_id)
        if job is None:
            raise KeyError(job_id)
        state = CampaignState(self.job_dir(job_id) / "campaign")
        manifest = build_campaign_manifest(
            job_id, job.spec.jobs(), state.replay_all(), self.store,
            workers=state.worker_stats() or None,
        )
        doc = job.to_dict()
        doc["campaign"] = manifest
        doc["last_seq"] = self.broker.channel(
            job_id, self.trace_path(job_id)
        ).last_seq
        return doc

    def curves(self, job_id: str) -> Dict[str, Any]:
        """Per-cell time-resolved curves of a job's cached results.

        One entry per campaign cell, keyed by the cell's content-addressed
        key: the cell's label plus the ``repro-windowed/1`` curves document
        the store cached at publish time, or ``None`` when the cell has no
        result yet (still running/failed) or its entry carries no curves
        (non-event tools, or a store written before the windowed layer).
        A watcher can therefore plot WS(t) for any finished cell without
        downloading or re-streaming the event log.
        """
        job = self.get(job_id)
        if job is None:
            raise KeyError(job_id)
        cells: Dict[str, Any] = {}
        for cell in job.spec.jobs():
            stored = self.store.get(cell.key)
            payload = None
            if stored is not None:
                path = stored.curves_path()
                if path is not None:
                    payload = json.loads(path.read_text())
            cells[cell.key] = {"label": cell.label, "curves": payload}
        return {"job": job_id, "state": job.state, "cells": cells}

    # -- submission --------------------------------------------------------

    def _scan_next_index(self) -> int:
        if not self.serve_root.exists():
            return 1
        highest = 0
        for entry in self.serve_root.iterdir():
            match = _ID_RE.match(entry.name)
            if match:
                highest = max(highest, int(match.group(1)))
        return highest + 1

    def submit(self, body: Mapping[str, Any]) -> ServeJob:
        """Accept one job body; returns the queued :class:`ServeJob`.

        Raises ``ValueError`` on a malformed body (the HTTP layer's 400).
        """
        spec = spec_from_body(body)
        with self._lock:
            job_id = f"job-{self._next_index:06d}"
            self._next_index += 1
        job = ServeJob(id=job_id, spec=spec, body=dict(body),
                       n_cells=len(spec),
                       local_workers=local_workers_from_body(body))
        job_dir = self.job_dir(job_id)
        job_dir.mkdir(parents=True, exist_ok=True)
        (job_dir / "request.json").write_text(json.dumps(
            {"body": dict(body), "submitted_unix": job.submitted_unix},
            indent=2, sort_keys=True, default=str,
        ) + "\n")
        channel = self.broker.channel(job_id, self.trace_path(job_id))
        with self._lock:
            self._jobs[job_id] = job
        channel.emit("submitted", job=job_id, name=spec.name,
                     cells=job.n_cells,
                     labels=[j.label for j in spec.jobs()])
        self.metrics.jobs_submitted.inc()
        self._queue.put(job_id)
        return job

    # -- restart resume ----------------------------------------------------

    def _resume_incomplete(self) -> None:
        """Re-queue jobs whose trace never reached a terminal event.

        Terminal jobs are loaded read-only (so ``GET /jobs`` still lists
        them); unfinished ones emit ``resumed`` and run again with the
        campaign journal's completed cells skipped.
        """
        if not self.serve_root.exists():
            return
        for entry in sorted(self.serve_root.iterdir()):
            if not _ID_RE.match(entry.name) or \
                    not (entry / "request.json").exists():
                continue
            job_id = entry.name
            try:
                request = json.loads((entry / "request.json").read_text())
                body = request.get("body", {})
                spec = spec_from_body(body)
            except (OSError, ValueError) as exc:
                log.warning("serve: cannot resume %s: %s", job_id, exc)
                continue
            channel = self.broker.channel(job_id, self.trace_path(job_id))
            job = ServeJob(
                id=job_id, spec=spec, body=dict(body), n_cells=len(spec),
                submitted_unix=float(request.get("submitted_unix", 0.0)),
                local_workers=local_workers_from_body(body),
            )
            terminal = [r for r in channel.events()
                        if r.get("event") in TERMINAL_EVENTS]
            if terminal:
                last = terminal[-1]
                job.state = str(last.get("state", "done"))
                job.result = {
                    k: last[k] for k in
                    ("total", "done", "cached", "executed", "failed",
                     "timeout", "wall_seconds", "ok")
                    if k in last
                }
                job.error = str(last.get("message", ""))
                job.finished.set()
                with self._lock:
                    self._jobs[job_id] = job
                continue
            with self._lock:
                self._jobs[job_id] = job
            channel.emit("resumed", job=job_id, name=spec.name,
                         cells=job.n_cells)
            self.metrics.jobs_resumed.inc()
            self._queue.put(job_id)
            log.info("serve: resuming %s (%d cells)", job_id, job.n_cells)

    # -- execution ---------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self.get(job_id)
            if job is None:  # pragma: no cover - registry/queue mismatch
                continue
            try:
                self._run(job)
            except BaseException as exc:  # keep the worker thread alive
                log.exception("serve: job %s died", job_id)
                self._finish(job, "error", error=f"{type(exc).__name__}: {exc}")

    def _run(self, job: ServeJob) -> None:
        channel = self.broker.channel(job.id, self.trace_path(job.id))
        job.state = "running"
        self.metrics.jobs_running.set(
            sum(1 for j in self.list() if j.state == "running")
        )
        channel.emit("running", job=job.id)
        state = _TracingState(self.job_dir(job.id) / "campaign", channel,
                              job.id)
        state.save_spec(job.spec)
        skip = state.completed_keys()
        beat = lambda line: channel.emit(  # noqa: E731
            "heartbeat", job=job.id, message=line
        )
        if job.local_workers > 0:
            from repro.campaign.dist import LocalBackend, run_distributed

            result = run_distributed(
                job.spec.jobs(),
                self.store,
                state,
                backends=[LocalBackend() for _ in range(job.local_workers)],
                timeout=self.timeout,
                retries=self.retries,
                heartbeat_seconds=self.heartbeat_seconds or 2.0,
                heartbeat=beat,
                skip_keys=skip,
            )
            for wid, stats in result.workers.items():
                self.metrics.record_dist_worker(
                    wid, str(stats.get("host", "?")),
                    jobs=int(stats.get("jobs", 0)),
                    failed=int(stats.get("failed", 0)),
                    retries=int(stats.get("retries", 0)),
                    steals=int(stats.get("steals", 0)),
                    bytes_merged=int(stats.get("bytes_merged", 0)),
                )
        else:
            result = run_campaign(
                job.spec.jobs(),
                self.store,
                state,
                workers=self.workers,
                timeout=self.timeout,
                retries=self.retries,
                heartbeat_seconds=self.heartbeat_seconds,
                heartbeat=beat,
                skip_keys=skip,
            )
        # Executed cells carry fresh phase timings in their stored meta;
        # surface them on the stream so watchers see where the time went.
        for key, rec in result.records.items():
            if rec.state != "done" or rec.cached:
                continue
            stored = self.store.get(key)
            if stored is not None:
                channel.emit("phases", job=job.id, key=key, label=rec.label,
                             **dict(stored.meta.get("phases", {})))
            self.metrics.observe_cell_seconds(
                Job.from_dict(stored.meta["job"]).tool if stored else "?",
                rec.seconds,
            )
        self.metrics.cache_hits.inc(result.cached)
        self.metrics.cache_misses.inc(result.executed)
        summary = {
            "total": result.total,
            "done": result.done,
            "cached": result.cached,
            "executed": result.executed,
            "failed": result.failed,
            "timeout": result.timed_out,
            "wall_seconds": result.wall_seconds,
            "ok": result.ok,
        }
        if job.local_workers > 0:
            summary["workers"] = len(getattr(result, "workers", {}) or {})
            summary["steals"] = getattr(result, "steals", 0)
        self._finish(job, "done" if result.ok else "failed", result=summary)

    def _finish(
        self,
        job: ServeJob,
        state: str,
        *,
        result: Optional[Dict[str, Any]] = None,
        error: str = "",
    ) -> None:
        job.state = state
        job.result = result
        job.error = error
        self.metrics.jobs_running.set(
            sum(1 for j in self.list() if j.state == "running")
        )
        self.metrics.job_completed(state)
        channel = self.broker.channel(job.id, self.trace_path(job.id))
        event = "error" if state == "error" else "completed"
        fields: Dict[str, Any] = {"job": job.id, "state": state}
        if result:
            fields.update(result)
        if error:
            fields["message"] = error
        channel.emit(event, **fields)
        job.finished.set()

    # -- shutdown ----------------------------------------------------------

    def shutdown(self, wait: bool = False, timeout: float = 5.0) -> None:
        """Stop the worker threads (queued jobs stay journaled for resume)."""
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout)
