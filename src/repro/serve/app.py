"""Wiring the serve daemon together: server object, factory, run loop.

:class:`ReproServer` is a ``ThreadingHTTPServer`` that carries the two
objects every request needs -- the :class:`~repro.serve.jobs.JobManager`
and the :class:`~repro.serve.promfmt.ServeMetrics` -- so handler threads
reach them via ``self.server``.  :func:`create_server` builds the whole
stack from a store root, and :func:`serve_forever` is the blocking entry
point the CLI calls: it optionally writes the bound port to a file (the
``--port 0`` + ``--port-file`` handshake the smoke test uses), then serves
until interrupted, draining workers on the way out.
"""

from __future__ import annotations

import logging
from http.server import ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union

from repro.campaign.store import ResultStore
from repro.serve.jobs import JobManager
from repro.serve.promfmt import ServeMetrics
from repro.serve.routes import ServeHandler

__all__ = ["ReproServer", "create_server", "serve_forever"]

log = logging.getLogger("repro.serve.app")


class ReproServer(ThreadingHTTPServer):
    """HTTP server that owns a job manager and a metrics registry.

    ``daemon_threads`` keeps lingering SSE connections from blocking
    shutdown; ``allow_reuse_address`` makes quick restarts painless.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, manager: JobManager, metrics: ServeMetrics):
        self.manager = manager
        self.metrics = metrics
        super().__init__(address, ServeHandler)

    def shutdown_jobs(self, wait: bool = False, timeout: float = 5.0) -> None:
        """Stop the manager's workers (journals keep queued work resumable)."""
        self.manager.shutdown(wait=wait, timeout=timeout)


def create_server(
    store: Union[str, Path, ResultStore],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 1,
    concurrency: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    heartbeat_seconds: Optional[float] = 5.0,
    resume: bool = True,
) -> ReproServer:
    """Build a ready-to-serve daemon bound to ``host:port``.

    ``port=0`` binds an ephemeral port; read the real one from
    ``server.server_address``.  ``workers`` is processes *per campaign*,
    ``concurrency`` is how many jobs execute at once.  Restart resume is on
    by default and re-queues any journaled job without a terminal event.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    metrics = ServeMetrics()
    manager = JobManager(
        store,
        workers=workers,
        concurrency=concurrency,
        timeout=timeout,
        retries=retries,
        heartbeat_seconds=heartbeat_seconds,
        metrics=metrics,
        resume=resume,
    )
    return ReproServer((host, port), manager, metrics)


def serve_forever(
    server: ReproServer,
    *,
    port_file: Optional[Union[str, Path]] = None,
) -> None:
    """Serve until KeyboardInterrupt, then drain workers and close.

    When ``port_file`` is given the bound ``host:port`` is written there
    after the socket is listening -- scripts that started the daemon with
    ``--port 0`` poll that file instead of parsing log output.
    """
    host, port = server.server_address[0], server.server_address[1]
    if port_file is not None:
        Path(port_file).write_text(f"{host}:{port}\n")
    log.info("serve: listening on http://%s:%d", host, port)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        log.info("serve: interrupted, shutting down")
    finally:
        server.shutdown_jobs(wait=True, timeout=5.0)
        server.server_close()
