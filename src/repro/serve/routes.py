"""HTTP surface of the serve daemon: routing, JSON bodies, SSE streaming.

One handler class serves every endpoint; the :class:`ThreadingHTTPServer`
it mounts on gives each connection its own thread, so a slow SSE consumer
never blocks a ``/metrics`` scrape or a job submission.

============================  =============================================
``POST /jobs``                submit a job body; 202 + ``{"job": id, ...}``
``GET /jobs``                 list every serve job and its state
``GET /jobs/<id>``            job detail + the ``repro-campaign/1`` manifest
``GET /jobs/<id>/events``     live SSE stream (``Last-Event-ID`` resumes)
``GET /jobs/<id>/curves``     per-cell time-resolved curves (WS(t) et al.)
``GET /metrics``              Prometheus text exposition (format 0.0.4)
``GET /healthz``              liveness probe
============================  =============================================

SSE responses are ``Connection: close`` streams: frames are flushed per
event, a comment ping goes out during idle gaps so dead clients surface as
broken pipes, and the stream ends once the job's terminal event (``completed``
or ``error``) has been delivered.
"""

from __future__ import annotations

import json
import logging
import queue as queue_mod
import re
from http.server import BaseHTTPRequestHandler
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.serve.jobs import TERMINAL_EVENTS
from repro.serve.sse import format_sse

__all__ = ["ServeHandler", "SSE_PING_SECONDS"]

log = logging.getLogger("repro.serve.http")

#: Idle seconds between ``: ping`` comments on an SSE stream.
SSE_PING_SECONDS = 10.0

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)$")
_EVENTS_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)/events$")
_CURVES_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)/curves$")

#: Maximum accepted request body; a campaign spec is a few hundred bytes.
_MAX_BODY = 1 << 20


class ServeHandler(BaseHTTPRequestHandler):
    """Routes one HTTP connection against the server's JobManager."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def manager(self):
        """The serving JobManager (attached to the server object)."""
        return self.server.manager

    @property
    def metrics(self):
        """The serving ServeMetrics (attached to the server object)."""
        return self.server.metrics

    def log_message(self, format: str, *args: Any) -> None:
        """Route access logs into the ``repro.*`` logger tree, not stderr."""
        log.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, code: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True,
                          default=str).encode() + b"\n"
        self.send_response(code)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _split_path(self) -> Tuple[str, Dict[str, str]]:
        parts = urlsplit(self.path)
        query = {
            k: v[-1] for k, v in parse_qs(parts.query).items()
        }
        return parts.path.rstrip("/") or "/", query

    # -- GET ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Dispatch GET endpoints; unknown paths 404 with a JSON error."""
        path, query = self._split_path()
        if path == "/" :
            self._send_json(200, {
                "service": "repro-serve",
                "endpoints": [
                    "POST /jobs", "GET /jobs", "GET /jobs/<id>",
                    "GET /jobs/<id>/events", "GET /jobs/<id>/curves",
                    "GET /metrics", "GET /healthz",
                ],
            })
            return
        if path == "/healthz":
            self._send_json(200, {"ok": True})
            return
        if path == "/metrics":
            self._do_metrics()
            return
        if path == "/jobs":
            self._send_json(200, {
                "jobs": [job.to_dict() for job in self.manager.list()],
            })
            return
        match = _JOB_PATH.match(path)
        if match:
            self._do_job_detail(match.group(1))
            return
        match = _EVENTS_PATH.match(path)
        if match:
            self._do_events(match.group(1), query)
            return
        match = _CURVES_PATH.match(path)
        if match:
            self._do_curves(match.group(1))
            return
        self._send_error_json(404, f"no such endpoint: {path}")

    def _do_metrics(self) -> None:
        self.metrics.set_sse_clients(self.manager.broker.n_subscribers())
        text = self.metrics.render(self.manager.store).encode()
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(text)))
        self.end_headers()
        self.wfile.write(text)

    def _do_job_detail(self, job_id: str) -> None:
        try:
            self._send_json(200, self.manager.detail(job_id))
        except KeyError:
            self._send_error_json(404, f"no such job: {job_id}")

    def _do_curves(self, job_id: str) -> None:
        """Per-cell windowed curves of a job's cached results.

        Cells whose result has no cached curves (no event mode, or a store
        entry predating the windowed layer) report ``"curves": null`` so a
        watcher can tell "not computed" from "empty run".
        """
        try:
            self._send_json(200, self.manager.curves(job_id))
        except KeyError:
            self._send_error_json(404, f"no such job: {job_id}")

    def _resume_seq(self, query: Dict[str, str]) -> int:
        """Where to resume the stream: ``Last-Event-ID`` beats ``?after=``."""
        raw = self.headers.get("Last-Event-ID") or query.get("after") or "0"
        try:
            return max(0, int(raw))
        except ValueError:
            return 0

    def _do_events(self, job_id: str, query: Dict[str, str]) -> None:
        if self.manager.get(job_id) is None:
            self._send_error_json(404, f"no such job: {job_id}")
            return
        channel = self.manager.broker.channel(
            job_id, self.manager.trace_path(job_id)
        )
        after = self._resume_seq(query)
        backlog, live = channel.subscribe(after)
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.close_connection = True
            self.end_headers()
            self.wfile.write(b"retry: 2000\n\n")
            last_sent = after
            for record in backlog:
                last_sent = self._send_event(record, last_sent)
                if record.get("event") in TERMINAL_EVENTS:
                    return
            while True:
                try:
                    record = live.get(timeout=SSE_PING_SECONDS)
                except queue_mod.Empty:
                    self.wfile.write(b": ping\n\n")
                    self.wfile.flush()
                    continue
                last_sent = self._send_event(record, last_sent)
                if record.get("event") in TERMINAL_EVENTS:
                    return
        except (BrokenPipeError, ConnectionResetError):
            log.debug("serve: SSE client for %s went away", job_id)
        finally:
            channel.unsubscribe(live)

    def _send_event(self, record: Dict[str, Any], last_sent: int) -> int:
        """Write one frame, skipping anything at or below ``last_sent``.

        The subscribe handshake already guarantees no gaps; the seq guard
        here makes duplicates impossible even if a record straddles the
        backlog/live boundary.
        """
        seq = int(record.get("seq", 0))
        if seq <= last_sent:
            return last_sent
        self.wfile.write(format_sse(record).encode())
        self.wfile.flush()
        return seq

    # -- POST --------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Dispatch POST endpoints (only ``/jobs`` accepts bodies)."""
        path, _query = self._split_path()
        if path != "/jobs":
            self._send_error_json(404, f"no such endpoint: {path}")
            return
        body = self._read_body()
        if body is None:
            return  # error already sent
        try:
            job = self.manager.submit(body)
        except ValueError as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(202, {
            "job": job.id,
            "cells": job.n_cells,
            "state": job.state,
            "url": f"/jobs/{job.id}",
            "events_url": f"/jobs/{job.id}/events",
        })

    def _read_body(self) -> Optional[Dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length <= 0:
            self._send_error_json(400, "a JSON body is required")
            return None
        if length > _MAX_BODY:
            self._send_error_json(413, "body too large")
            return None
        raw = self.rfile.read(length)
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, f"invalid JSON body: {exc}")
            return None
        if not isinstance(parsed, dict):
            self._send_error_json(400, "job body must be a JSON object")
            return None
        return parsed
