"""Profiling-as-a-service: the ``repro serve`` daemon.

This package turns the campaign engine into a long-running shared service:
jobs arrive over HTTP (``POST /jobs`` with a CampaignSpec-style body), run
through :func:`repro.campaign.run_campaign` against the content-addressed
:class:`~repro.campaign.store.ResultStore` (warm requests are pure cache
hits), and every lifecycle transition is observable three ways:

* a per-job, sequence-numbered JSONL **trace file** that ``repro watch``
  tails (:mod:`repro.serve.sse` owns the channel, the campaign journal
  stays the durability layer);
* a live **SSE stream** per job (``GET /jobs/<id>/events``) with
  resume-from-``Last-Event-ID``;
* a **Prometheus** text-exposition ``GET /metrics`` endpoint fed by
  :class:`~repro.telemetry.MetricRegistry` (:mod:`repro.serve.promfmt`).

Everything is standard library: ``http.server`` threads, ``queue`` fan-out,
and the lock-guarded JSONL appends the campaign engine already uses.
"""

from repro.serve.app import ReproServer, create_server, serve_forever
from repro.serve.jobs import JobManager, ServeJob, TERMINAL_EVENTS
from repro.serve.promfmt import ServeMetrics, render_prometheus
from repro.serve.sse import EventBroker, JobChannel, format_sse

__all__ = [
    "ReproServer",
    "create_server",
    "serve_forever",
    "JobManager",
    "ServeJob",
    "TERMINAL_EVENTS",
    "ServeMetrics",
    "render_prometheus",
    "EventBroker",
    "JobChannel",
    "format_sse",
]
