"""The serve daemon's metrics catalog and its Prometheus rendering.

The daemon keeps one process-wide :class:`~repro.telemetry.MetricRegistry`;
this module names every series it exports (the catalog below is mirrored in
``docs/serve.md``) and renders the registry through
:func:`repro.telemetry.render_prometheus` on each ``GET /metrics`` scrape.

Catalog:

* ``repro_serve_jobs_submitted_total`` -- jobs accepted over HTTP
* ``repro_serve_jobs_resumed_total`` -- jobs re-queued after a restart
* ``repro_serve_jobs_running`` -- serve jobs currently executing
* ``repro_serve_jobs_completed_total{status=...}`` -- terminal outcomes
  (``done`` / ``failed`` / ``error``)
* ``repro_store_cache_hits_total`` / ``repro_store_cache_misses_total`` --
  campaign cells answered from the store vs. executed
* ``repro_serve_job_seconds{tool=...}`` -- histogram of per-cell execution
  seconds for cells that actually ran, labelled by tool stack
* ``repro_store_objects`` / ``repro_store_bytes`` /
  ``repro_store_campaigns`` -- store gauges refreshed at scrape time
* ``repro_serve_sse_clients`` -- live SSE subscriber queues
* ``repro_dist_jobs_total{worker=,host=}`` /
  ``repro_dist_failures_total`` / ``repro_dist_retries_total`` /
  ``repro_dist_steals_total`` / ``repro_dist_bytes_merged_total`` --
  distributed-campaign per-worker telemetry (jobs merged back, failed
  attempts observed, coordinator-scheduled retries, jobs stolen from the
  worker, artifact bytes ingested from its store)
"""

from __future__ import annotations

from typing import Optional

from repro.campaign.store import ResultStore
from repro.telemetry import MetricRegistry, render_prometheus

__all__ = ["ServeMetrics", "render_prometheus", "JOB_SECONDS_BOUNDS"]

#: Duration buckets for per-cell execution time: sub-10ms cache-adjacent
#: work up through half-hour monster cells.
JOB_SECONDS_BOUNDS = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0, 600.0, 1800.0)


class ServeMetrics:
    """Every metric the daemon exports, as attributes with stable names."""

    def __init__(self, registry: Optional[MetricRegistry] = None):
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        self.jobs_submitted = reg.counter(
            "repro_serve_jobs_submitted_total",
            help_text="Profiling jobs accepted over HTTP.")
        self.jobs_resumed = reg.counter(
            "repro_serve_jobs_resumed_total",
            help_text="In-flight jobs re-queued after a daemon restart.")
        self.jobs_running = reg.gauge(
            "repro_serve_jobs_running",
            help_text="Serve jobs currently executing.")
        self.cache_hits = reg.counter(
            "repro_store_cache_hits_total",
            help_text="Campaign cells answered from the result store.")
        self.cache_misses = reg.counter(
            "repro_store_cache_misses_total",
            help_text="Campaign cells that had to execute.")
        # Declare the families so a scrape before the first terminal event
        # still exposes the series names dashboards alert on.
        reg.counter(
            "repro_serve_jobs_completed_total", {"status": "done"},
            help_text="Serve jobs that reached a terminal state, by outcome.")
        reg.gauge("repro_store_objects",
                  help_text="Completed entries in the result store.")
        reg.gauge("repro_store_bytes",
                  help_text="Bytes of artifacts in the result store.")
        reg.gauge("repro_store_campaigns",
                  help_text="Campaign journals under the store root.")
        reg.gauge("repro_serve_sse_clients",
                  help_text="Live SSE subscriber connections.")

    def record_dist_worker(
        self,
        worker: str,
        host: str,
        *,
        jobs: int = 0,
        failed: int = 0,
        retries: int = 0,
        steals: int = 0,
        bytes_merged: int = 0,
    ) -> None:
        """Fold one distributed worker's end-of-run stats into the counters.

        Called once per worker when a distributed serve job finishes, with
        the coordinator's :class:`~repro.campaign.dist.DistResult` per-worker
        stat block; counters accumulate across jobs, labelled by worker id
        and host.
        """
        labels = {"worker": worker, "host": host}
        reg = self.registry
        reg.counter(
            "repro_dist_jobs_total", labels,
            help_text="Jobs executed by distributed workers and merged "
                      "back, by worker.").inc(jobs)
        reg.counter(
            "repro_dist_failures_total", labels,
            help_text="Failed/timed-out attempts observed per distributed "
                      "worker.").inc(failed)
        reg.counter(
            "repro_dist_retries_total", labels,
            help_text="Attempts the coordinator re-scheduled after a "
                      "failure on this worker.").inc(retries)
        reg.counter(
            "repro_dist_steals_total", labels,
            help_text="Jobs stolen from this worker after it went "
                      "silent.").inc(steals)
        reg.counter(
            "repro_dist_bytes_merged_total", labels,
            help_text="Artifact bytes ingested from this worker's "
                      "store.").inc(bytes_merged)

    def job_completed(self, status: str) -> None:
        """Count one terminal serve-job outcome (``done``/``failed``/``error``)."""
        self.registry.counter(
            "repro_serve_jobs_completed_total", {"status": status}
        ).inc()

    def observe_cell_seconds(self, tool: str, seconds: float) -> None:
        """Record one executed campaign cell's wall seconds under its tool."""
        self.registry.histogram(
            "repro_serve_job_seconds", JOB_SECONDS_BOUNDS, {"tool": tool},
            help_text="Execution seconds of campaign cells that ran "
                      "(cache hits excluded).",
        ).observe(seconds)

    def refresh_store(self, store: ResultStore) -> None:
        """Update the store gauges from a fresh filesystem walk."""
        stats = store.stats()
        self.registry.gauge("repro_store_objects").set(stats["objects"])
        self.registry.gauge("repro_store_bytes").set(stats["bytes"])
        self.registry.gauge("repro_store_campaigns").set(stats["campaigns"])

    def set_sse_clients(self, count: int) -> None:
        """Update the live-subscriber gauge (sampled at scrape time)."""
        self.registry.gauge("repro_serve_sse_clients").set(count)

    def render(self, store: Optional[ResultStore] = None) -> str:
        """Prometheus exposition text, refreshing store gauges when given."""
        if store is not None:
            self.refresh_store(store)
        return render_prometheus(self.registry)
