"""The serve daemon's metrics catalog and its Prometheus rendering.

The daemon keeps one process-wide :class:`~repro.telemetry.MetricRegistry`;
this module names every series it exports (the catalog below is mirrored in
``docs/serve.md``) and renders the registry through
:func:`repro.telemetry.render_prometheus` on each ``GET /metrics`` scrape.

Catalog:

* ``repro_serve_jobs_submitted_total`` -- jobs accepted over HTTP
* ``repro_serve_jobs_resumed_total`` -- jobs re-queued after a restart
* ``repro_serve_jobs_running`` -- serve jobs currently executing
* ``repro_serve_jobs_completed_total{status=...}`` -- terminal outcomes
  (``done`` / ``failed`` / ``error``)
* ``repro_store_cache_hits_total`` / ``repro_store_cache_misses_total`` --
  campaign cells answered from the store vs. executed
* ``repro_serve_job_seconds{tool=...}`` -- histogram of per-cell execution
  seconds for cells that actually ran, labelled by tool stack
* ``repro_store_objects`` / ``repro_store_bytes`` /
  ``repro_store_campaigns`` -- store gauges refreshed at scrape time
* ``repro_serve_sse_clients`` -- live SSE subscriber queues
"""

from __future__ import annotations

from typing import Optional

from repro.campaign.store import ResultStore
from repro.telemetry import MetricRegistry, render_prometheus

__all__ = ["ServeMetrics", "render_prometheus", "JOB_SECONDS_BOUNDS"]

#: Duration buckets for per-cell execution time: sub-10ms cache-adjacent
#: work up through half-hour monster cells.
JOB_SECONDS_BOUNDS = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0, 600.0, 1800.0)


class ServeMetrics:
    """Every metric the daemon exports, as attributes with stable names."""

    def __init__(self, registry: Optional[MetricRegistry] = None):
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        self.jobs_submitted = reg.counter(
            "repro_serve_jobs_submitted_total",
            help_text="Profiling jobs accepted over HTTP.")
        self.jobs_resumed = reg.counter(
            "repro_serve_jobs_resumed_total",
            help_text="In-flight jobs re-queued after a daemon restart.")
        self.jobs_running = reg.gauge(
            "repro_serve_jobs_running",
            help_text="Serve jobs currently executing.")
        self.cache_hits = reg.counter(
            "repro_store_cache_hits_total",
            help_text="Campaign cells answered from the result store.")
        self.cache_misses = reg.counter(
            "repro_store_cache_misses_total",
            help_text="Campaign cells that had to execute.")
        # Declare the families so a scrape before the first terminal event
        # still exposes the series names dashboards alert on.
        reg.counter(
            "repro_serve_jobs_completed_total", {"status": "done"},
            help_text="Serve jobs that reached a terminal state, by outcome.")
        reg.gauge("repro_store_objects",
                  help_text="Completed entries in the result store.")
        reg.gauge("repro_store_bytes",
                  help_text="Bytes of artifacts in the result store.")
        reg.gauge("repro_store_campaigns",
                  help_text="Campaign journals under the store root.")
        reg.gauge("repro_serve_sse_clients",
                  help_text="Live SSE subscriber connections.")

    def job_completed(self, status: str) -> None:
        """Count one terminal serve-job outcome (``done``/``failed``/``error``)."""
        self.registry.counter(
            "repro_serve_jobs_completed_total", {"status": status}
        ).inc()

    def observe_cell_seconds(self, tool: str, seconds: float) -> None:
        """Record one executed campaign cell's wall seconds under its tool."""
        self.registry.histogram(
            "repro_serve_job_seconds", JOB_SECONDS_BOUNDS, {"tool": tool},
            help_text="Execution seconds of campaign cells that ran "
                      "(cache hits excluded).",
        ).observe(seconds)

    def refresh_store(self, store: ResultStore) -> None:
        """Update the store gauges from a fresh filesystem walk."""
        stats = store.stats()
        self.registry.gauge("repro_store_objects").set(stats["objects"])
        self.registry.gauge("repro_store_bytes").set(stats["bytes"])
        self.registry.gauge("repro_store_campaigns").set(stats["campaigns"])

    def set_sse_clients(self, count: int) -> None:
        """Update the live-subscriber gauge (sampled at scrape time)."""
        self.registry.gauge("repro_serve_sse_clients").set(count)

    def render(self, store: Optional[ResultStore] = None) -> str:
        """Prometheus exposition text, refreshing store gauges when given."""
        if store is not None:
            self.refresh_store(store)
        return render_prometheus(self.registry)
