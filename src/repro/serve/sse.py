"""Ordered event channels: the JSONL trace file plus live SSE fan-out.

Each serve job owns one :class:`JobChannel` -- an append-only JSONL trace on
disk and a set of in-memory subscriber queues.  A single lock orders both:
``emit`` assigns the next sequence number, appends the record to the trace
(through the lock-guarded :func:`repro.telemetry.append_jsonl`, so external
tailers never see torn lines) and fans it out to every live queue *before*
the lock drops.  ``subscribe`` reads the backlog and registers its queue
under the same lock.  Together that yields the contract SSE resume needs: a
subscriber that asks for "everything after seq N" receives seq N+1, N+2,
... with no gap and no duplicate, no matter how emitters race.

The trace file is the source of truth; queues are a latency optimisation.
A daemon restart rebuilds a channel from the file (``_seq`` resumes from
the last record), which is also how ``Last-Event-ID`` reconnects replay
history that predates the current process.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.telemetry import append_jsonl, read_jsonl

__all__ = ["JobChannel", "EventBroker", "format_sse"]


def format_sse(record: Dict[str, Any]) -> str:
    """Render one trace record as a Server-Sent-Events frame.

    The frame carries the sequence number as the SSE ``id`` (what a
    reconnecting client echoes back via ``Last-Event-ID``), the event kind
    as the SSE ``event`` name, and the whole record as JSON ``data``.
    """
    data = json.dumps(record, sort_keys=True, default=str)
    event = str(record.get("event", "message"))
    seq = record.get("seq", "")
    return f"id: {seq}\nevent: {event}\ndata: {data}\n\n"


class JobChannel:
    """One job's ordered event stream: trace file + live subscribers."""

    def __init__(self, trace_path: Union[str, Path]):
        self.trace_path = Path(trace_path)
        self._lock = threading.Lock()
        self._subscribers: List["queue.SimpleQueue[Dict[str, Any]]"] = []
        existing = read_jsonl(self.trace_path)
        self._seq = max((int(r.get("seq", 0)) for r in existing), default=0)

    @property
    def last_seq(self) -> int:
        """The sequence number of the most recently emitted event."""
        return self._seq

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event (next seq, wall time) and fan it out live."""
        with self._lock:
            self._seq += 1
            record: Dict[str, Any] = {
                "seq": self._seq, "event": event, "t": time.time(),
            }
            record.update(fields)
            append_jsonl(self.trace_path, record)
            for q in self._subscribers:
                q.put(record)
        return record

    def events(self, after: int = 0) -> List[Dict[str, Any]]:
        """Every trace record with ``seq > after``, in order."""
        return [
            r for r in read_jsonl(self.trace_path)
            if int(r.get("seq", 0)) > after
        ]

    def subscribe(
        self, after: int = 0
    ) -> Tuple[List[Dict[str, Any]], "queue.SimpleQueue[Dict[str, Any]]"]:
        """Join the stream: ``(backlog after seq, live queue)``, atomically.

        Reading the backlog and registering the queue happen under the emit
        lock, so no event can fall between the two (gap) or appear in both
        (duplicate).  Callers must :meth:`unsubscribe` the queue when done.
        """
        with self._lock:
            backlog = self.events(after)
            q: "queue.SimpleQueue[Dict[str, Any]]" = queue.SimpleQueue()
            self._subscribers.append(q)
        return backlog, q

    def unsubscribe(self, q: "queue.SimpleQueue[Dict[str, Any]]") -> None:
        """Detach a subscriber queue (idempotent)."""
        with self._lock:
            try:
                self._subscribers.remove(q)
            except ValueError:
                pass

    @property
    def n_subscribers(self) -> int:
        """How many live queues are attached (for the SSE client gauge)."""
        with self._lock:
            return len(self._subscribers)


class EventBroker:
    """Registry of job channels, keyed by serve-job id."""

    def __init__(self) -> None:
        self._channels: Dict[str, JobChannel] = {}
        self._lock = threading.Lock()

    def channel(
        self, job_id: str, trace_path: Optional[Union[str, Path]] = None
    ) -> JobChannel:
        """The channel for ``job_id``; created on first use.

        Creation needs ``trace_path`` (the manager supplies it); later
        lookups may omit it.  Looking up an unknown channel without a path
        raises ``KeyError`` so HTTP handlers can 404 cleanly.
        """
        with self._lock:
            chan = self._channels.get(job_id)
            if chan is None:
                if trace_path is None:
                    raise KeyError(job_id)
                chan = self._channels[job_id] = JobChannel(trace_path)
            return chan

    def has(self, job_id: str) -> bool:
        """Whether a channel exists for ``job_id``."""
        with self._lock:
            return job_id in self._channels

    def n_subscribers(self) -> int:
        """Total live subscriber queues across every channel."""
        with self._lock:
            channels = list(self._channels.values())
        return sum(c.n_subscribers for c in channels)
