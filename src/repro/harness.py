"""One-call orchestration: run a workload under the chosen tool stack.

Mirrors how the paper collects data: a *native* run (no tool), a *Callgrind*
run (calltree costs + cache/branch simulation), and a *Sigil* run (shadow
memory, optionally alongside Callgrind so partitioning studies can join
communication with timing).  Wall-clock seconds are measured around the
substrate so the Figure 4-6 overhead characterisation can be regenerated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.callgrind.collector import CallgrindCollector, CallgrindProfile
from repro.core.config import SigilConfig
from repro.core.linegrain import LineReuseProfiler
from repro.core.profiler import SigilProfile, SigilProfiler
from repro.trace.observer import NullObserver, ObserverPipe
from repro.workloads.base import InputSize, Workload
from repro.workloads.registry import get_workload

__all__ = ["ProfiledRun", "profile_workload", "native_seconds", "line_reuse_run"]


@dataclass
class ProfiledRun:
    """Results of one instrumented workload execution."""

    workload: Workload
    sigil: Optional[SigilProfile]
    callgrind: Optional[CallgrindProfile]
    wall_seconds: float

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def size(self) -> InputSize:
        return self.workload.size


def profile_workload(
    name: str,
    size: InputSize | str = InputSize.SIMSMALL,
    *,
    config: Optional[SigilConfig] = None,
    with_sigil: bool = True,
    with_callgrind: bool = True,
) -> ProfiledRun:
    """Run workload ``name`` at ``size`` under the requested observers."""
    workload = get_workload(name, size)
    sigil = SigilProfiler(config) if with_sigil else None
    callgrind = CallgrindCollector() if with_callgrind else None
    observers = [obs for obs in (sigil, callgrind) if obs is not None]
    if not observers:
        observer = NullObserver()
    elif len(observers) == 1:
        observer = observers[0]
    else:
        observer = ObserverPipe(observers)

    start = time.perf_counter()
    workload.run(observer)
    wall = time.perf_counter() - start

    return ProfiledRun(
        workload=workload,
        sigil=sigil.profile() if sigil is not None else None,
        callgrind=callgrind.profile if callgrind is not None else None,
        wall_seconds=wall,
    )


def native_seconds(name: str, size: InputSize | str = InputSize.SIMSMALL) -> float:
    """Wall-clock of an uninstrumented run (the Figure 4 baseline)."""
    workload = get_workload(name, size)
    start = time.perf_counter()
    workload.run(NullObserver())
    return time.perf_counter() - start


def line_reuse_run(
    name: str,
    size: InputSize | str = InputSize.SIMSMALL,
    *,
    line_size: int = 64,
) -> LineReuseProfiler:
    """Run a workload under the line-granularity re-use mode (Figure 12)."""
    profiler = LineReuseProfiler(line_size)
    get_workload(name, size).run(profiler)
    return profiler
