"""One-call orchestration: run a workload under the chosen tool stack.

Mirrors how the paper collects data: a *native* run (no tool), a *Callgrind*
run (calltree costs + cache/branch simulation), and a *Sigil* run (shadow
memory, optionally alongside Callgrind so partitioning studies can join
communication with timing).  Wall-clock is measured per pipeline phase --
workload *setup*, substrate *execute*, profile *aggregate* -- so the Figure
4-6 overhead characterisation charges only tool time to the tool, and every
telemetry-enabled run yields a structured :class:`~repro.telemetry.Manifest`
describing its own cost (per-phase seconds, events/sec, shadow footprint).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.callgrind.collector import CallgrindCollector, CallgrindProfile
from repro.core.config import SigilConfig
from repro.core.linegrain import LineReuseProfiler
from repro.core.profiler import SigilProfile, SigilProfiler
from repro.telemetry import (
    NULL_TELEMETRY,
    EventCounter,
    Manifest,
    Telemetry,
    build_manifest,
)
from repro.trace.batch import DEFAULT_BATCH_SIZE, BatchingTransport
from repro.trace.observer import NullObserver, ObserverPipe, TraceObserver
from repro.workloads.base import InputSize, Workload
from repro.workloads.registry import get_workload

__all__ = [
    "ProfiledRun",
    "TOOL_STACKS",
    "profile_workload",
    "run_tool",
    "native_run",
    "native_seconds",
    "line_reuse_run",
]

log = logging.getLogger("repro.harness")


@dataclass
class ProfiledRun:
    """Results of one instrumented workload execution.

    Wall time is split by pipeline phase; the historical ``wall_seconds``
    total survives as a property so existing callers keep working.
    """

    workload: Workload
    sigil: Optional[SigilProfile]
    callgrind: Optional[CallgrindProfile]
    setup_seconds: float = 0.0
    execute_seconds: float = 0.0
    aggregate_seconds: float = 0.0
    manifest: Optional[Manifest] = field(default=None, repr=False)

    @property
    def wall_seconds(self) -> float:
        """Total wall time across all phases (the pre-split single number)."""
        return self.setup_seconds + self.execute_seconds + self.aggregate_seconds

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def size(self) -> InputSize:
        return self.workload.size

    # -- trace export -----------------------------------------------------

    def chrome_trace(self) -> list:
        """This run as Chrome trace events: workload timeline + pipeline.

        The workload's segments/data-flows appear when the run collected an
        event log, together with the time-resolved WS(t)/communication
        counter tracks (:mod:`repro.analysis.windowed`); the pipeline's
        setup/execute/aggregate spans come from the manifest when telemetry
        ran, else from the measured phase seconds laid out back to back.
        One Perfetto view then shows the reproduction's own phases
        alongside the profiled execution.
        """
        from repro.analysis.windowed import windowed_curves
        from repro.io.tracefmt import (
            curves_to_chrome,
            events_to_chrome,
            manifest_to_chrome,
            spans_to_chrome,
        )

        trace: list = []
        if self.sigil is not None and self.sigil.events is not None:
            trace.extend(events_to_chrome(self.sigil.events, self.sigil.tree))
            # The cumulative tracks already ride along with the event view;
            # the windowed tracks add the time-resolved ones.
            trace.extend(
                curves_to_chrome(
                    windowed_curves(self.sigil.events),
                    include_cumulative=False,
                    process_name=None,
                )
            )
        if self.manifest is not None:
            trace.extend(manifest_to_chrome(self.manifest))
        else:
            cursor = 0.0
            spans = []
            for phase, seconds in (
                ("setup", self.setup_seconds),
                ("execute", self.execute_seconds),
                ("aggregate", self.aggregate_seconds),
            ):
                spans.append((phase, cursor, cursor + seconds))
                cursor += seconds
            label = f"repro pipeline ({self.name}/{self.size.value})"
            trace.extend(spans_to_chrome(spans, process_name=label))
        return trace

    def write_trace(self, path: Union[str, Path]) -> Path:
        """Write :meth:`chrome_trace` as JSON; returns the path written."""
        from repro.io.tracefmt import dump_chrome

        dump_chrome(self.chrome_trace(), path)
        return Path(path)


def _assemble_observer(
    tools: List[TraceObserver],
    telemetry: Telemetry,
    label: str,
) -> tuple:
    """Build the observer fan-out for a run.

    Returns ``(observer, counter)``.  With null telemetry the composition is
    byte-for-byte what the seed code built -- a lone tool is attached
    directly, several share one pipe -- so a telemetry-less run dispatches
    zero additional Python-level calls per event.  With telemetry enabled,
    an :class:`EventCounter` (and, if configured, a heartbeat) joins the
    pipe.
    """
    counter = None
    observers: List[TraceObserver] = list(tools)
    if telemetry.enabled:
        counter = EventCounter()
        observers.append(counter)
        heartbeat = telemetry.make_heartbeat(label)
        if heartbeat is not None:
            observers.append(heartbeat)
    if not observers:
        return NullObserver(), counter
    if len(observers) == 1:
        return observers[0], counter
    return ObserverPipe(observers), counter


def profile_workload(
    name: str,
    size: InputSize | str = InputSize.SIMSMALL,
    *,
    config: Optional[SigilConfig] = None,
    with_sigil: bool = True,
    with_callgrind: bool = True,
    telemetry: Optional[Telemetry] = None,
) -> ProfiledRun:
    """Run workload ``name`` at ``size`` under the requested observers.

    Pass a :class:`~repro.telemetry.Telemetry` to measure the run itself:
    phase timings, dispatch counts and profiler footprints are collected and
    distilled into ``ProfiledRun.manifest``.  The default null telemetry
    reproduces the uninstrumented pipeline exactly.
    """
    tel = telemetry if telemetry is not None else NULL_TELEMETRY

    t0 = time.perf_counter()
    workload = get_workload(name, size)
    cfg = config if config is not None else SigilConfig()
    sigil = SigilProfiler(cfg) if with_sigil else None
    callgrind = CallgrindCollector() if with_callgrind else None
    tools = [obs for obs in (sigil, callgrind) if obs is not None]
    observer, counter = _assemble_observer(
        tools, tel, f"{workload.name}/{workload.size.value}"
    )
    # Batched transport (default on): accumulate memory accesses (and, for
    # lenient tools, branches) and hand the tools whole batches.
    # batch_size=0 keeps the legacy one-call-per-access path; profiles are
    # identical either way.  Skipped when no attached tool has a vectorised
    # batch kernel (e.g. a Sigil run under the FIFO shadow-page cap, whose
    # batches replay scalar) -- buffering would be pure overhead there.
    transport = None
    if (
        tools
        and cfg.batch_size > 0
        and getattr(observer, "batch_beneficial", True)
    ):
        transport = BatchingTransport(observer, cfg.batch_size)
        observer = transport
    t1 = time.perf_counter()

    workload.run(observer)
    t2 = time.perf_counter()

    sigil_profile = sigil.profile() if sigil is not None else None
    callgrind_profile = callgrind.profile if callgrind is not None else None
    t3 = time.perf_counter()

    run = ProfiledRun(
        workload=workload,
        sigil=sigil_profile,
        callgrind=callgrind_profile,
        setup_seconds=t1 - t0,
        execute_seconds=t2 - t1,
        aggregate_seconds=t3 - t2,
    )
    if tel.enabled:
        tel.timers.record("setup", run.setup_seconds)
        tel.timers.record("execute", run.execute_seconds)
        tel.timers.record("aggregate", run.aggregate_seconds)
        if sigil is not None:
            sigil.record_telemetry(tel)
        if callgrind is not None:
            callgrind.record_telemetry(tel)
        if transport is not None:
            transport.record_telemetry(tel)
        if counter is not None:
            counter.publish(tel)
        tel.record_process_stats()
        run.manifest = build_manifest(
            workload=workload.name,
            size=workload.size.value,
            config=cfg,
            phases=tel.timers.snapshot(),
            spans=tel.timers.spans(),
            metrics=tel.metrics.snapshot(),
            events_total=counter.total if counter is not None else 0,
            execute_seconds=run.execute_seconds,
        )
        log.info(
            "%s/%s: setup %.3fs, execute %.3fs, aggregate %.3fs, %s events",
            workload.name,
            workload.size.value,
            run.setup_seconds,
            run.execute_seconds,
            run.aggregate_seconds,
            f"{counter.total:,}" if counter is not None else "?",
        )
    return run


#: Named tool stacks, mirroring how the paper labels its runs: the
#: uninstrumented baseline, the Callgrind substrate alone, Sigil alone, and
#: the paired run used for the partitioning studies.  Campaign specs and the
#: figure benches key their jobs on these names.
TOOL_STACKS = ("native", "callgrind", "sigil", "sigil+callgrind")


def run_tool(
    name: str,
    size: InputSize | str = InputSize.SIMSMALL,
    tool: str = "sigil+callgrind",
    *,
    config: Optional[SigilConfig] = None,
    telemetry: Optional[Telemetry] = None,
) -> ProfiledRun:
    """Run ``name`` under the named tool stack (see :data:`TOOL_STACKS`).

    This is the single dispatch point between declarative job descriptions
    (campaign specs, bench tables) and the observer combinations
    :func:`profile_workload` assembles.
    """
    if tool not in TOOL_STACKS:
        raise ValueError(
            f"unknown tool stack {tool!r}; available: {', '.join(TOOL_STACKS)}"
        )
    return profile_workload(
        name,
        size,
        config=config,
        with_sigil="sigil" in tool,
        with_callgrind="callgrind" in tool,
        telemetry=telemetry,
    )


def native_run(
    name: str,
    size: InputSize | str = InputSize.SIMSMALL,
    *,
    telemetry: Optional[Telemetry] = None,
) -> ProfiledRun:
    """An uninstrumented run with per-phase timing (the Figure 4 baseline)."""
    return profile_workload(
        name, size, with_sigil=False, with_callgrind=False, telemetry=telemetry
    )


def native_seconds(name: str, size: InputSize | str = InputSize.SIMSMALL) -> float:
    """Execute-phase wall-clock of an uninstrumented run."""
    return native_run(name, size).execute_seconds


def line_reuse_run(
    name: str,
    size: InputSize | str = InputSize.SIMSMALL,
    *,
    line_size: int = 64,
    batch_size: int = DEFAULT_BATCH_SIZE,
    telemetry: Optional[Telemetry] = None,
) -> LineReuseProfiler:
    """Run a workload under the line-granularity re-use mode (Figure 12).

    ``batch_size`` selects the batched trace transport (0 = scalar calls);
    the per-line records are identical either way.
    """
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    with tel.phase("setup"):
        workload = get_workload(name, size)
        profiler = LineReuseProfiler(line_size)
        observer: TraceObserver = profiler
        if batch_size > 0:
            observer = BatchingTransport(profiler, batch_size)
    with tel.phase("execute"):
        workload.run(observer)
    if tel.enabled:
        profiler.record_telemetry(tel)
        tel.record_process_stats()
    return profiler
