"""Lock-guarded JSONL appends: the one write path for shared log files.

Several writers share append-only JSONL files: the benchmark harness logs
every timing to ``benchmarks/results/manifests.jsonl``, and parallel
campaign workers journal job lifecycle events (see
:mod:`repro.campaign.state`).  A bare ``open(path, "a").write(...)`` from
concurrent processes can interleave partial lines on some filesystems and
buffers; this module funnels every append through one helper that takes an
exclusive ``flock`` for the duration of a single full-line write, so a
reader never sees a torn record.

``fcntl`` is POSIX-only; on platforms without it the helper degrades to an
unlocked append (single-writer behaviour is unchanged either way).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX host
    fcntl = None  # type: ignore[assignment]

__all__ = ["append_jsonl", "read_jsonl"]


def append_jsonl(path: Union[str, Path], record: Dict[str, Any]) -> None:
    """Append ``record`` as one JSON line to ``path``, atomically.

    The record is serialised first (so an unserialisable record cannot leave
    a half-written line), then written as a single ``write`` call under an
    exclusive file lock.
    """
    line = json.dumps(record, sort_keys=True, default=str) + "\n"
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a") as fh:
        if fcntl is not None:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        try:
            fh.write(line)
            fh.flush()
        finally:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL file into a list of records (missing file -> empty).

    Raises ``ValueError`` naming the offending line when a record does not
    parse -- torn lines are exactly what :func:`append_jsonl` exists to
    prevent, so a parse failure should be loud.
    """
    target = Path(path)
    if not target.exists():
        return []
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(target.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{target}:{lineno}: corrupt JSONL line: {line[:80]!r}"
            ) from exc
    return records
