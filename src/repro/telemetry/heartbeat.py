"""Progress heartbeats: a long profiling run is no longer a silent box.

An opt-in observer that writes a one-line progress report to stderr every N
events and/or every T seconds.  The event path costs one integer increment
plus one modulo test per primitive; the wall clock is consulted only every
:data:`CLOCK_CHECK_INTERVAL` events so time-based beats stay cheap.  A final
beat is emitted at ``on_run_end`` so even short runs report their totals.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO

from repro.trace.events import OpKind
from repro.trace.observer import BaseObserver

__all__ = ["HeartbeatObserver", "CLOCK_CHECK_INTERVAL"]

#: How many events pass between wall-clock checks for time-based beats.
CLOCK_CHECK_INTERVAL = 1024


class HeartbeatObserver(BaseObserver):
    """Emits ``[repro] label: N events, T s, R ev/s`` lines while running."""

    def __init__(
        self,
        label: str,
        *,
        every_events: Optional[int] = None,
        every_seconds: Optional[float] = None,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if every_events is not None and every_events <= 0:
            raise ValueError("every_events must be positive")
        if every_seconds is not None and every_seconds <= 0:
            raise ValueError("every_seconds must be positive")
        self.label = label
        self.every_events = every_events
        self.every_seconds = every_seconds
        self.events = 0
        self.beats = 0
        self._stream = stream
        self._clock = clock
        self._start = clock()
        self._last_beat = self._start

    # -- plumbing ---------------------------------------------------------

    def _out(self) -> TextIO:
        # Resolved lazily so redirected/captured stderr is honoured.
        return self._stream if self._stream is not None else sys.stderr

    def _beat(self, *, final: bool = False) -> None:
        now = self._clock()
        elapsed = now - self._start
        rate = self.events / elapsed if elapsed > 0 else 0.0
        tag = " (done)" if final else ""
        print(
            f"[repro] {self.label}: {self.events:,} events, "
            f"{elapsed:.1f}s, {rate:,.0f} ev/s{tag}",
            file=self._out(),
        )
        self.beats += 1
        self._last_beat = now

    def _tick(self) -> None:
        self.events += 1
        if self.every_events is not None and self.events % self.every_events == 0:
            self._beat()
            return
        if (
            self.every_seconds is not None
            and self.events % CLOCK_CHECK_INTERVAL == 0
            and self._clock() - self._last_beat >= self.every_seconds
        ):
            self._beat()

    # -- observer interface ------------------------------------------------

    def on_fn_enter(self, name: str) -> None:
        self._tick()

    def on_fn_exit(self, name: str) -> None:
        self._tick()

    def on_mem_read(self, addr: int, size: int) -> None:
        self._tick()

    def on_mem_write(self, addr: int, size: int) -> None:
        self._tick()

    def on_op(self, kind: OpKind, count: int) -> None:
        self._tick()

    def on_branch(self, site: int, taken: bool) -> None:
        self._tick()

    def on_syscall_enter(self, name: str, input_bytes: int) -> None:
        self._tick()

    def on_syscall_exit(self, name: str, output_bytes: int) -> None:
        self._tick()

    def on_thread_switch(self, tid: int) -> None:
        self._tick()

    def on_run_end(self) -> None:
        self._beat(final=True)
