"""The telemetry session facade: `Telemetry` and its zero-cost null twin.

A :class:`Telemetry` object owns one run's metric registry, phase timers and
heartbeat configuration; instrumented layers receive it and publish what
they already know (pull-based -- see :mod:`repro.telemetry.metrics`).  The
:class:`NullTelemetry` singleton implements the same surface as shared
no-ops: passing it (the default everywhere) adds **zero Python-level calls
per traced event** and no per-call allocation, because its accessors hand
back process-wide singletons and nothing telemetry-related is ever placed on
the observer fan-out path.
"""

from __future__ import annotations

import logging
import sys
from typing import Dict, Optional, TextIO

from repro.telemetry.heartbeat import HeartbeatObserver
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.telemetry.timers import PhaseTimer

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY"]

log = logging.getLogger("repro.telemetry")


class Telemetry:
    """One run's self-observation: metrics + phase timers + heartbeat knobs."""

    enabled = True

    def __init__(
        self,
        *,
        heartbeat_events: Optional[int] = None,
        heartbeat_seconds: Optional[float] = None,
        heartbeat_stream: Optional[TextIO] = None,
    ):
        self.metrics = MetricRegistry()
        self.timers = PhaseTimer()
        self.heartbeat_events = heartbeat_events
        self.heartbeat_seconds = heartbeat_seconds
        self.heartbeat_stream = heartbeat_stream

    # -- metric accessors --------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The run counter named ``name``."""
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        """The run gauge named ``name``."""
        return self.metrics.gauge(name)

    def histogram(self, name: str) -> Histogram:
        """The run histogram named ``name``."""
        return self.metrics.histogram(name)

    # -- phases ------------------------------------------------------------

    def phase(self, name: str):
        """Context manager timing a named (nestable) pipeline phase."""
        return self.timers.phase(name)

    def spans(self):
        """Completed phase spans ``(path, start, end)`` for trace export."""
        return self.timers.spans()

    # -- heartbeat ---------------------------------------------------------

    def make_heartbeat(self, label: str) -> Optional[HeartbeatObserver]:
        """A heartbeat observer for this run, or None when not configured."""
        if self.heartbeat_events is None and self.heartbeat_seconds is None:
            return None
        return HeartbeatObserver(
            label,
            every_events=self.heartbeat_events,
            every_seconds=self.heartbeat_seconds,
            stream=self.heartbeat_stream,
        )

    # -- process stats -----------------------------------------------------

    def record_process_stats(self) -> None:
        """Snapshot host-process memory gauges (peak RSS, tracemalloc peak).

        ``resource`` is POSIX-only and ``tracemalloc`` reports only when the
        caller enabled tracing; both are gated so the method degrades to a
        no-op on platforms without them.
        """
        try:
            import resource
        except ImportError:  # pragma: no cover - non-POSIX host
            resource = None
        if resource is not None:
            usage = resource.getrusage(resource.RUSAGE_SELF)
            # ru_maxrss is KiB on Linux, bytes on macOS; normalise to bytes.
            scale = 1 if sys.platform == "darwin" else 1024
            self.gauge("process.peak_rss_bytes").set_max(usage.ru_maxrss * scale)
        import tracemalloc

        if tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            self.gauge("process.tracemalloc_current_bytes").set_max(current)
            self.gauge("process.tracemalloc_peak_bytes").set_max(peak)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Everything collected so far: ``{"phases": ..., "metrics": ...}``."""
        return {
            "phases": self.timers.snapshot(),
            "metrics": self.metrics.snapshot(),
        }


class _NullMetric:
    """Shared do-nothing stand-in for Counter/Gauge/Histogram."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    total = 0
    min = None
    max = None
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def set_max(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def summary(self) -> Dict[str, object]:
        return {}


class _NullPhase:
    """Shared no-op context manager returned by ``NullTelemetry.phase``."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_METRIC = _NullMetric()
_NULL_PHASE = _NullPhase()


class NullTelemetry:
    """Telemetry that measures nothing, allocates nothing, costs nothing.

    Every accessor returns a process-wide singleton, so even a caller that
    *does* invoke telemetry methods pays only the call itself -- and the
    instrumented pipelines never place telemetry observers on the event
    fan-out when handed this object (``enabled`` is False).
    """

    enabled = False

    def counter(self, name: str) -> _NullMetric:
        """The shared null metric (ignores all increments)."""
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        """The shared null metric (ignores all readings)."""
        return _NULL_METRIC

    def histogram(self, name: str) -> _NullMetric:
        """The shared null metric (ignores all observations)."""
        return _NULL_METRIC

    def phase(self, name: str) -> _NullPhase:
        """The shared no-op phase context manager."""
        return _NULL_PHASE

    def spans(self) -> list:
        """No spans: a disabled run keeps no timeline."""
        return []

    def make_heartbeat(self, label: str) -> None:
        """Never a heartbeat: a disabled run stays silent and unobserved."""
        return None

    def record_process_stats(self) -> None:
        """No-op: process stats are only sampled when telemetry is on."""

    def snapshot(self) -> Dict[str, object]:
        """An empty snapshot: nothing was collected."""
        return {"phases": {}, "metrics": {}}


#: Process-wide default used wherever no telemetry was requested.
NULL_TELEMETRY = NullTelemetry()
