"""Phase timers: nested wall-clock accounting for pipeline stages.

``profile_workload`` runs in three phases (workload *setup*, substrate
*execute*, profile *aggregate*); the Figure 4-6 overhead studies need those
separated because workload construction is not tool overhead.  A
:class:`PhaseTimer` records each phase by its nesting path
(``"execute/replay"`` for a phase opened inside ``"execute"``), so nested
timings stay attributable and re-entered phases accumulate.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Tuple

__all__ = ["PhaseTimer"]


class PhaseTimer:
    """Accumulates wall seconds per (possibly nested) named phase.

    Besides per-path totals, every completed phase leaves a *span* --
    ``(path, start, end)`` offsets in seconds from the timer's first
    reading -- so trace exporters can lay the pipeline out on a real
    timeline instead of reconstructing one from totals.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._stack: List[str] = []
        self._seconds: Dict[str, float] = {}
        self._spans: List[Tuple[str, float, float]] = []
        # Origin of the span timeline; set at the first clock reading so
        # constructing a timer consumes no clock tick.
        self._origin: float = -1.0

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (joined to open phases)."""
        if "/" in name:
            raise ValueError(f"phase name may not contain '/': {name!r}")
        self._stack.append(name)
        path = "/".join(self._stack)
        # Register at entry so snapshot order follows entry order, outer first.
        self._seconds.setdefault(path, 0.0)
        start = self._clock()
        if self._origin < 0:
            self._origin = start
        try:
            yield
        finally:
            end = self._clock()
            self._seconds[path] += end - start
            self._spans.append((path, start - self._origin, end - self._origin))
            self._stack.pop()

    def record(self, name: str, seconds: float) -> None:
        """Account ``seconds`` to ``name`` directly (pre-measured phases).

        The span lands at the current end of the timeline: pre-measured
        phases (the harness times its pipeline with raw ``perf_counter``
        reads) are assumed to have run back to back.
        """
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        start = max((end for _, _, end in self._spans), default=0.0)
        self._spans.append((name, start, start + seconds))

    def seconds(self, path: str) -> float:
        """Accumulated wall seconds of the phase at ``path`` (0.0 if unseen)."""
        return self._seconds.get(path, 0.0)

    @property
    def depth(self) -> int:
        """How many phases are currently open."""
        return len(self._stack)

    def snapshot(self) -> Dict[str, float]:
        """Phase path -> accumulated seconds, in entry order."""
        return dict(self._seconds)

    def spans(self) -> List[Tuple[str, float, float]]:
        """Completed phase spans as ``(path, start, end)`` second offsets.

        Spans are appended at phase *exit*, so nested phases precede their
        parents; consumers that need entry order should sort by start.
        """
        return list(self._spans)
