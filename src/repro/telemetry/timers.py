"""Phase timers: nested wall-clock accounting for pipeline stages.

``profile_workload`` runs in three phases (workload *setup*, substrate
*execute*, profile *aggregate*); the Figure 4-6 overhead studies need those
separated because workload construction is not tool overhead.  A
:class:`PhaseTimer` records each phase by its nesting path
(``"execute/replay"`` for a phase opened inside ``"execute"``), so nested
timings stay attributable and re-entered phases accumulate.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List

__all__ = ["PhaseTimer"]


class PhaseTimer:
    """Accumulates wall seconds per (possibly nested) named phase."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._stack: List[str] = []
        self._seconds: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (joined to open phases)."""
        if "/" in name:
            raise ValueError(f"phase name may not contain '/': {name!r}")
        self._stack.append(name)
        path = "/".join(self._stack)
        # Register at entry so snapshot order follows entry order, outer first.
        self._seconds.setdefault(path, 0.0)
        start = self._clock()
        try:
            yield
        finally:
            self._seconds[path] += self._clock() - start
            self._stack.pop()

    def record(self, name: str, seconds: float) -> None:
        """Account ``seconds`` to ``name`` directly (pre-measured phases)."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def seconds(self, path: str) -> float:
        """Accumulated wall seconds of the phase at ``path`` (0.0 if unseen)."""
        return self._seconds.get(path, 0.0)

    @property
    def depth(self) -> int:
        """How many phases are currently open."""
        return len(self._stack)

    def snapshot(self) -> Dict[str, float]:
        """Phase path -> accumulated seconds, in entry order."""
        return dict(self._seconds)
