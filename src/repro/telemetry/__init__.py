"""Self-telemetry for the Sigil pipeline: the profiler measuring itself.

The paper's evaluation (Figures 4-6) is an overhead/throughput study of the
tool, not of the workloads; this package gives the reproduction the same
self-awareness.  It provides metric primitives (counters, gauges,
histograms), nested phase timers, an opt-in stderr progress heartbeat, a
per-kind event-dispatch counter, and structured JSON run manifests -- all
behind a :class:`~repro.telemetry.session.Telemetry` facade whose
:data:`~repro.telemetry.session.NULL_TELEMETRY` default is a true no-op on
the observer hot path.

Quick start::

    from repro import Telemetry, profile_workload
    tel = Telemetry(heartbeat_events=1_000_000)
    run = profile_workload("vips", "simsmall", telemetry=tel)
    run.manifest.write("vips.manifest.json")
"""

from repro.telemetry.counting import EventCounter
from repro.telemetry.heartbeat import CLOCK_CHECK_INTERVAL, HeartbeatObserver
from repro.telemetry.jsonl import append_jsonl, read_jsonl
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    Manifest,
    build_manifest,
    config_hash,
    git_rev,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.telemetry.prometheus import render_prometheus
from repro.telemetry.session import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.telemetry.timers import PhaseTimer

__all__ = [
    "EventCounter",
    "append_jsonl",
    "read_jsonl",
    "CLOCK_CHECK_INTERVAL",
    "HeartbeatObserver",
    "MANIFEST_SCHEMA",
    "Manifest",
    "build_manifest",
    "config_hash",
    "git_rev",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "render_prometheus",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "PhaseTimer",
]
