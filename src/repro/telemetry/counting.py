"""Event accounting observer: how many primitives the fan-out dispatched.

The :class:`EventCounter` rides in the :class:`~repro.trace.observer.
ObserverPipe` *only when telemetry is enabled*, so a run without telemetry
dispatches exactly the same Python-level calls per event as the seed code
did -- the zero-cost guarantee the overhead figures depend on.  Each
``on_*`` method is a single integer increment; the per-kind totals are
published into the metric registry once, after the run.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.trace.events import OpKind
from repro.trace.observer import MEM_READ, BaseObserver

__all__ = ["EventCounter"]


class EventCounter(BaseObserver):
    """Counts dispatched trace primitives by kind (one int add per event)."""

    __slots__ = (
        "fn_enters",
        "fn_exits",
        "mem_reads",
        "mem_writes",
        "ops",
        "op_units",
        "branches",
        "syscalls",
        "thread_switches",
    )

    def __init__(self) -> None:
        self.fn_enters = 0
        self.fn_exits = 0
        self.mem_reads = 0
        self.mem_writes = 0
        self.ops = 0
        self.op_units = 0
        self.branches = 0
        self.syscalls = 0
        self.thread_switches = 0

    def on_fn_enter(self, name: str) -> None:
        self.fn_enters += 1

    def on_fn_exit(self, name: str) -> None:
        self.fn_exits += 1

    def on_mem_read(self, addr: int, size: int) -> None:
        self.mem_reads += 1

    def on_mem_write(self, addr: int, size: int) -> None:
        self.mem_writes += 1

    def on_mem_batch(self, addrs, sizes, kinds) -> None:
        # Batches count as their scalar equivalent, so events_total (and
        # events/sec) stay comparable between transport modes.
        reads = int(np.count_nonzero(np.asarray(kinds) == MEM_READ))
        self.mem_reads += reads
        self.mem_writes += len(kinds) - reads

    def on_op(self, kind: OpKind, count: int) -> None:
        self.ops += 1
        self.op_units += count

    def on_branch(self, site: int, taken: bool) -> None:
        self.branches += 1

    def on_branch_batch(self, sites, takens) -> None:
        # As with memory batches: count the scalar equivalent.
        self.branches += len(sites)

    def on_syscall_enter(self, name: str, input_bytes: int) -> None:
        self.syscalls += 1

    def on_thread_switch(self, tid: int) -> None:
        self.thread_switches += 1

    @property
    def total(self) -> int:
        """Total primitives dispatched (syscall enter+exit counted once)."""
        return (
            self.fn_enters
            + self.fn_exits
            + self.mem_reads
            + self.mem_writes
            + self.ops
            + self.branches
            + self.syscalls
            + self.thread_switches
        )

    def by_kind(self) -> Dict[str, int]:
        """Per-kind dispatch counts, JSON-ready."""
        return {
            "fn_enter": self.fn_enters,
            "fn_exit": self.fn_exits,
            "mem_read": self.mem_reads,
            "mem_write": self.mem_writes,
            "op": self.ops,
            "op_units": self.op_units,
            "branch": self.branches,
            "syscall": self.syscalls,
            "thread_switch": self.thread_switches,
        }

    def publish(self, telemetry) -> None:
        """Push the final per-kind totals into ``telemetry``'s registry."""
        for kind, count in self.by_kind().items():
            telemetry.counter(f"events.{kind}").inc(count)
        telemetry.counter("events.total").inc(self.total)
