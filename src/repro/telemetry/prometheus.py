"""Prometheus text exposition (format 0.0.4) for a :class:`MetricRegistry`.

The serve daemon's ``GET /metrics`` endpoint hands a scraper the daemon's
whole registry in the `Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ -- plain
text, one sample per line, ``# HELP``/``# TYPE`` comments per family --
with **zero new dependencies**: the format is line-oriented and this module
is the whole implementation.

Three translations happen on the way out:

* **names** are sanitised to the Prometheus charset ``[a-zA-Z0-9_:]``
  (dotted telemetry paths like ``sigil.bytes.unique`` become
  ``sigil_bytes_unique``);
* **label values** are escaped per the spec (backslash, double-quote and
  newline);
* **histograms** are re-expressed as cumulative ``_bucket`` series with
  ``le`` labels (upper bounds inclusive, final ``+Inf``) plus ``_sum`` and
  ``_count`` samples, which is exactly what ``histogram_quantile()`` wants.
"""

from __future__ import annotations

import math
import re
from typing import List, Mapping, Union

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricRegistry

__all__ = ["render_prometheus", "sanitize_metric_name", "escape_label_value"]

_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Map an arbitrary metric name onto the Prometheus name charset.

    Invalid characters become underscores and a leading digit is prefixed
    with one, so any telemetry path renders as a scrapable series name.
    """
    cleaned = _NAME_BAD_CHARS.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition spec (``\\``, ``"``, ``\\n``)."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_value(value: Union[int, float]) -> str:
    """Render a sample value: integers bare, floats via repr, inf/nan named."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def _format_labels(labels: Mapping[str, str], extra: str = "") -> str:
    """The ``{k="v",...}`` suffix for a sample line ('' when unlabelled)."""
    parts = [
        f'{sanitize_metric_name(k)}="{escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _bound_text(bound: Union[int, float]) -> str:
    """An ``le`` bound rendered without a spurious trailing ``.0``."""
    if isinstance(bound, float) and bound.is_integer():
        return str(int(bound))
    return str(bound)


def _render_simple(lines: List[str], name: str, metric) -> None:
    lines.append(f"{name}{_format_labels(metric.labels)} "
                 f"{_format_value(metric.value)}")


def _render_histogram(lines: List[str], name: str, hist: Histogram) -> None:
    cumulative = 0
    for bound, bucket_count in zip(hist.bounds, hist.bucket_counts):
        cumulative += bucket_count
        le = f'le="{escape_label_value(_bound_text(bound))}"'
        lines.append(f"{name}_bucket{_format_labels(hist.labels, le)} "
                     f"{cumulative}")
    cumulative += hist.bucket_counts[-1]
    inf_label = 'le="+Inf"'
    lines.append(f"{name}_bucket{_format_labels(hist.labels, inf_label)} "
                 f"{cumulative}")
    lines.append(f"{name}_sum{_format_labels(hist.labels)} "
                 f"{_format_value(hist.total)}")
    lines.append(f"{name}_count{_format_labels(hist.labels)} {hist.count}")


def render_prometheus(registry: MetricRegistry) -> str:
    """Render every metric in ``registry`` as Prometheus exposition text.

    Families appear with their ``# TYPE`` line (and ``# HELP`` when help
    text was registered), counters and gauges as one sample per labelset,
    histograms as cumulative ``_bucket``/``_sum``/``_count`` series.  The
    output is deterministic: families sort by name, children by labels.
    """
    lines: List[str] = []
    for kind, family, metrics in registry.collect():
        name = sanitize_metric_name(family)
        help_text = registry.help_text(family)
        if help_text:
            escaped = help_text.replace("\\", r"\\").replace("\n", r"\n")
            lines.append(f"# HELP {name} {escaped}")
        lines.append(f"# TYPE {name} {kind}")
        for metric in metrics:
            if isinstance(metric, Histogram):
                _render_histogram(lines, name, metric)
            elif isinstance(metric, (Counter, Gauge)):
                _render_simple(lines, name, metric)
    return "\n".join(lines) + "\n" if lines else ""
