"""Structured run manifests: the machine-readable record of one run.

Every telemetry-enabled profiling run emits a JSON manifest next to its
profile output.  The manifest is the self-overhead counterpart of the
profile itself: what ran (workload, size, config hash, git revision), how
long each pipeline phase took, the metric snapshot (shadow footprint,
classification totals, per-kind event counts), and the achieved events/sec
throughput.  ``repro stats`` renders and compares these files, and the
benchmark harness appends one line per run to
``benchmarks/results/manifests.jsonl`` -- the longitudinal performance
trajectory future optimisation PRs measure themselves against.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

__all__ = ["MANIFEST_SCHEMA", "Manifest", "build_manifest", "config_hash", "git_rev"]

#: Version tag embedded in every manifest; bump on incompatible change.
MANIFEST_SCHEMA = "repro-manifest/1"


def config_hash(config: Union[Mapping[str, Any], Any, None]) -> str:
    """Stable short hash of a configuration mapping or dataclass.

    The hash keys the manifest to the exact tool configuration, so two
    manifests compare apples-to-apples only when their hashes agree.
    """
    if config is None:
        payload: Any = {}
    elif dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    else:
        payload = dict(config)
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()
    return digest[:12]


def git_rev(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """Short git revision of ``cwd`` (or this checkout); None if unavailable."""
    where = Path(cwd) if cwd is not None else Path(__file__).resolve().parent
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=where,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


@dataclass
class Manifest:
    """One run's structured self-telemetry record (JSON round-trippable)."""

    workload: str
    size: str
    command: str = ""
    config: Dict[str, Any] = field(default_factory=dict)
    config_hash: str = ""
    git_rev: Optional[str] = None
    phases: Dict[str, float] = field(default_factory=dict)
    #: Completed phase spans ``[path, start, end]`` (second offsets from the
    #: first timer reading); empty in pre-span manifests.
    spans: list = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    events_total: int = 0
    events_per_sec: float = 0.0
    created_unix: float = 0.0
    schema: str = MANIFEST_SCHEMA

    # -- conversion -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form, suitable for ``json.dumps``."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Manifest":
        """Rebuild from a dict, ignoring unknown keys (forward compat)."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        """Parse a manifest from its JSON form."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("manifest JSON must be an object")
        return cls.from_dict(data)

    # -- files ------------------------------------------------------------

    def write(self, path: Union[str, Path]) -> Path:
        """Write the manifest to ``path`` and return it."""
        target = Path(path)
        target.write_text(self.to_json() + "\n")
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Manifest":
        """Load a manifest written by :meth:`write`."""
        return cls.from_json(Path(path).read_text())

    # -- convenience lookups ----------------------------------------------

    def metric(self, name: str, default: Any = 0) -> Any:
        """A metric value by dotted name, with a default for absent keys."""
        return self.metrics.get(name, default)

    def phase_seconds(self, name: str) -> float:
        """Wall seconds of one phase (0.0 when the phase never ran)."""
        return float(self.phases.get(name, 0.0))

    def phase_spans(self) -> list:
        """Recorded spans as ``(path, start, end)`` tuples (may be empty)."""
        return [
            (str(path), float(start), float(end))
            for path, start, end in self.spans
        ]


def build_manifest(
    *,
    workload: str,
    size: str,
    command: str = "",
    config: Union[Mapping[str, Any], Any, None] = None,
    phases: Optional[Mapping[str, float]] = None,
    spans: Optional[list] = None,
    metrics: Optional[Mapping[str, Any]] = None,
    events_total: int = 0,
    execute_seconds: float = 0.0,
) -> Manifest:
    """Assemble a :class:`Manifest` with derived fields filled in.

    ``events_per_sec`` is events over the *execute* phase only -- setup and
    aggregation are pipeline overhead, not dispatch throughput.
    """
    if config is None:
        cfg_dict: Dict[str, Any] = {}
    elif dataclasses.is_dataclass(config) and not isinstance(config, type):
        cfg_dict = dataclasses.asdict(config)
    else:
        cfg_dict = dict(config)
    return Manifest(
        workload=workload,
        size=size,
        command=command,
        config=cfg_dict,
        config_hash=config_hash(cfg_dict),
        git_rev=git_rev(),
        phases=dict(phases or {}),
        spans=[list(span) for span in (spans or [])],
        metrics=dict(metrics or {}),
        events_total=events_total,
        events_per_sec=events_total / execute_seconds if execute_seconds > 0 else 0.0,
        created_unix=time.time(),
    )
