"""Metric primitives: counters, gauges, histograms, and their registry.

The reproduction's self-telemetry follows the convention of tools like
Scaler and the Valgrind working-set profiler: a profiler is only credible at
scale when its own cost (events/sec, shadow footprint, per-phase time) is
measured with the same rigour as its results.  These primitives are the
vocabulary for that self-observation.  They are deliberately *pull-based*:
instrumented components expose their internal counts once (at phase
boundaries or run end) instead of paying a metric update per traced event,
so the observer hot path stays exactly as fast as before telemetry existed.

All metrics are named with dotted lowercase paths (``sigil.bytes.unique``,
``vm.instructions_retired``); :meth:`MetricRegistry.snapshot` flattens them
into a JSON-ready mapping for the run manifest.

Metrics optionally carry **labels** -- a small mapping of dimension names to
values (``{"tool": "sigil"}``) -- so one logical metric family can be split
per tool, per workload, or per job state.  Two calls with the same name but
different labels return *different* child metrics; the registry keys on the
``(name, sorted label items)`` pair.  Labelled metrics exist for the serve
daemon's Prometheus endpoint (:mod:`repro.telemetry.prometheus`); the
pre-existing unlabelled call sites are the ``labels=None`` special case and
behave exactly as before.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry"]

#: Default histogram bucket upper bounds (powers of four: wide dynamic range
#: with few buckets, suiting byte counts and event counts alike).
_DEFAULT_BOUNDS = tuple(4 ** k for k in range(1, 13))

#: A frozen, sorted (key, value) form of a label mapping; the registry key.
LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Optional[Mapping[str, str]]) -> LabelItems:
    """Normalise a label mapping into a hashable, deterministic key."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (events seen, bytes classified)."""

    __slots__ = ("name", "value", "labels")

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.value = 0
        self.labels: Dict[str, str] = dict(_label_items(labels))

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A point-in-time measurement (live shadow pages, peak RSS)."""

    __slots__ = ("name", "value", "labels")

    def __init__(self, name: str, labels: Optional[Mapping[str, str]] = None):
        self.name = name
        self.value: Union[int, float] = 0
        self.labels: Dict[str, str] = dict(_label_items(labels))

    def set(self, value: Union[int, float]) -> None:
        """Record the current value, replacing any previous one."""
        self.value = value

    def set_max(self, value: Union[int, float]) -> None:
        """Record ``value`` only if it exceeds the current reading."""
        if value > self.value:
            self.value = value


class Histogram:
    """A distribution summary: count, sum, min/max, and bucketed counts.

    Buckets are cumulative-free (each observation lands in exactly one
    bucket whose upper bound is the first ``>= value``); the final implicit
    bucket is unbounded.  :meth:`quantile` estimates order statistics from
    the buckets by linear interpolation, so summaries can report p50/p90/p99
    without retaining raw observations.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min",
                 "max", "labels")

    def __init__(
        self,
        name: str,
        bounds: Sequence[Union[int, float]] = _DEFAULT_BOUNDS,
        labels: Optional[Mapping[str, str]] = None,
    ):
        self.name = name
        self.bounds: List[Union[int, float]] = sorted(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total: Union[int, float] = 0
        self.min: Optional[Union[int, float]] = None
        self.max: Optional[Union[int, float]] = None
        self.labels: Dict[str, str] = dict(_label_items(labels))

    def observe(self, value: Union[int, float]) -> None:
        """Add one observation to the distribution."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (0 < q <= 1) from the buckets.

        Observations are assumed uniform within their bucket; the estimate
        interpolates linearly between the bucket's bounds, clamped to the
        observed min/max so a wide first or last bucket cannot report a
        value the histogram never saw.  Returns None when empty.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0.0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                fraction = (rank - cumulative) / bucket_count
                if i < len(self.bounds):
                    lower = self.bounds[i - 1] if i > 0 else (
                        self.min if self.min is not None else 0.0
                    )
                    upper = self.bounds[i]
                else:  # unbounded overflow bucket: interpolate to the max
                    lower = self.bounds[-1] if self.bounds else 0.0
                    upper = self.max if self.max is not None else lower
                estimate = lower + fraction * (upper - lower)
                if self.min is not None:
                    estimate = max(estimate, float(self.min))
                if self.max is not None:
                    estimate = min(estimate, float(self.max))
                return estimate
            cumulative += bucket_count
        return float(self.max) if self.max is not None else None

    def summary(self) -> Dict[str, Union[int, float, None]]:
        """JSON-ready summary of the distribution, quantiles included."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


def _snapshot_key(name: str, labels: Mapping[str, str]) -> str:
    """The flattened snapshot key: ``name`` or ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class MetricRegistry:
    """Get-or-create home for every metric a run produces.

    Metrics are addressed by ``(name, labels)``; the common unlabelled call
    ``registry.counter("x")`` is the ``labels=None`` case.  ``help_text``
    given at first creation is kept per *family* (name) for the Prometheus
    exposition; later calls may omit it.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}
        self._help: Dict[str, str] = {}

    def _remember_help(self, name: str, help_text: Optional[str]) -> None:
        if help_text and name not in self._help:
            self._help[name] = help_text

    def help_text(self, name: str) -> Optional[str]:
        """The family help string registered for ``name`` (None if absent)."""
        return self._help.get(name)

    def counter(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        *,
        help_text: Optional[str] = None,
    ) -> Counter:
        """The counter named ``name`` (with ``labels``), created on first use."""
        key = (name, _label_items(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(name, labels)
        self._remember_help(name, help_text)
        return metric

    def gauge(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        *,
        help_text: Optional[str] = None,
    ) -> Gauge:
        """The gauge named ``name`` (with ``labels``), created on first use."""
        key = (name, _label_items(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(name, labels)
        self._remember_help(name, help_text)
        return metric

    def histogram(
        self,
        name: str,
        bounds: Sequence[Union[int, float]] = _DEFAULT_BOUNDS,
        labels: Optional[Mapping[str, str]] = None,
        *,
        help_text: Optional[str] = None,
    ) -> Histogram:
        """The histogram named ``name`` (with ``labels``), created on first use."""
        key = (name, _label_items(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(name, bounds, labels)
        self._remember_help(name, help_text)
        return metric

    def collect(self) -> Iterator[Tuple[str, str, List[object]]]:
        """Yield ``(kind, family name, [metrics])`` for exposition.

        Families are yielded in sorted-name order within each kind
        (counters, then gauges, then histograms); each family's children are
        sorted by label items, so the output is deterministic.
        """
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            families: Dict[str, List[object]] = {}
            for (name, _items), metric in sorted(table.items()):
                families.setdefault(name, []).append(metric)
            for name in sorted(families):
                yield kind, name, families[name]

    def snapshot(self) -> Dict[str, object]:
        """Flatten every metric into a JSON-serialisable name -> value map.

        Labelled metrics appear under ``name{k=v,...}`` keys; the unlabelled
        common case keeps its bare name, so existing manifests are
        unchanged.
        """
        out: Dict[str, object] = {}
        for (name, _items), counter in self._counters.items():
            out[_snapshot_key(name, counter.labels)] = counter.value
        for (name, _items), gauge in self._gauges.items():
            out[_snapshot_key(name, gauge.labels)] = gauge.value
        for (name, _items), hist in self._histograms.items():
            out[_snapshot_key(name, hist.labels)] = hist.summary()
        return dict(sorted(out.items()))
