"""Metric primitives: counters, gauges, histograms, and their registry.

The reproduction's self-telemetry follows the convention of tools like
Scaler and the Valgrind working-set profiler: a profiler is only credible at
scale when its own cost (events/sec, shadow footprint, per-phase time) is
measured with the same rigour as its results.  These primitives are the
vocabulary for that self-observation.  They are deliberately *pull-based*:
instrumented components expose their internal counts once (at phase
boundaries or run end) instead of paying a metric update per traced event,
so the observer hot path stays exactly as fast as before telemetry existed.

All metrics are named with dotted lowercase paths (``sigil.bytes.unique``,
``vm.instructions_retired``); :meth:`MetricRegistry.snapshot` flattens them
into a JSON-ready mapping for the run manifest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry"]

#: Default histogram bucket upper bounds (powers of four: wide dynamic range
#: with few buckets, suiting byte counts and event counts alike).
_DEFAULT_BOUNDS = tuple(4 ** k for k in range(1, 13))


class Counter:
    """A monotonically increasing count (events seen, bytes classified)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A point-in-time measurement (live shadow pages, peak RSS)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        """Record the current value, replacing any previous one."""
        self.value = value

    def set_max(self, value: Union[int, float]) -> None:
        """Record ``value`` only if it exceeds the current reading."""
        if value > self.value:
            self.value = value


class Histogram:
    """A distribution summary: count, sum, min/max, and bucketed counts.

    Buckets are cumulative-free (each observation lands in exactly one
    bucket whose upper bound is the first ``>= value``); the final implicit
    bucket is unbounded.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[Union[int, float]] = _DEFAULT_BOUNDS):
        self.name = name
        self.bounds: List[Union[int, float]] = sorted(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total: Union[int, float] = 0
        self.min: Optional[Union[int, float]] = None
        self.max: Optional[Union[int, float]] = None

    def observe(self, value: Union[int, float]) -> None:
        """Add one observation to the distribution."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, Union[int, float, None]]:
        """JSON-ready summary of the distribution."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricRegistry:
    """Get-or-create home for every metric a run produces."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, bounds: Sequence[Union[int, float]] = _DEFAULT_BOUNDS
    ) -> Histogram:
        """The histogram named ``name``, created on first use."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    def snapshot(self) -> Dict[str, object]:
        """Flatten every metric into a JSON-serialisable name -> value map."""
        out: Dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, hist in self._histograms.items():
            out[name] = hist.summary()
        return dict(sorted(out.items()))
