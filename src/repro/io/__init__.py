"""Profile and event-file persistence."""

from repro.io.callgrindfile import (
    dump_callgrind,
    dumps_callgrind,
    load_callgrind,
    loads_callgrind,
)
from repro.io.eventbin import (
    BinaryEventWriter,
    dump_events_bin,
    dumps_events_bin,
    iter_event_chunks,
    load_event_arrays_bin,
    load_events_bin,
)
from repro.io.eventfile import (
    dump_events,
    dumps_events,
    load_event_arrays,
    load_events,
    loads_events,
)
from repro.io.kcachegrind import export_callgrind, export_sigil
from repro.io.profilefile import (
    dump_profile,
    dumps_profile,
    load_profile,
    loads_profile,
)
from repro.io.tracefmt import (
    curves_to_chrome,
    dump_chrome,
    dump_collapsed,
    dumps_chrome,
    dumps_collapsed,
    events_to_chrome,
    manifest_to_chrome,
    profile_to_collapsed,
    spans_to_chrome,
)

__all__ = [
    "dump_callgrind",
    "dumps_callgrind",
    "load_callgrind",
    "loads_callgrind",
    "BinaryEventWriter",
    "dump_events",
    "dump_events_bin",
    "dumps_events",
    "dumps_events_bin",
    "export_callgrind",
    "export_sigil",
    "iter_event_chunks",
    "load_event_arrays",
    "load_event_arrays_bin",
    "load_events",
    "load_events_bin",
    "loads_events",
    "dump_profile",
    "dumps_profile",
    "load_profile",
    "loads_profile",
    "curves_to_chrome",
    "dump_chrome",
    "dump_collapsed",
    "dumps_chrome",
    "dumps_collapsed",
    "events_to_chrome",
    "manifest_to_chrome",
    "profile_to_collapsed",
    "spans_to_chrome",
]
