"""Profile and event-file persistence."""

from repro.io.callgrindfile import (
    dump_callgrind,
    dumps_callgrind,
    load_callgrind,
    loads_callgrind,
)
from repro.io.eventfile import dump_events, dumps_events, load_events, loads_events
from repro.io.kcachegrind import export_callgrind, export_sigil
from repro.io.profilefile import (
    dump_profile,
    dumps_profile,
    load_profile,
    loads_profile,
)
from repro.io.tracefmt import (
    dump_chrome,
    dump_collapsed,
    dumps_chrome,
    dumps_collapsed,
    events_to_chrome,
    manifest_to_chrome,
    profile_to_collapsed,
    spans_to_chrome,
)

__all__ = [
    "dump_callgrind",
    "dumps_callgrind",
    "load_callgrind",
    "loads_callgrind",
    "dump_events",
    "dumps_events",
    "export_callgrind",
    "export_sigil",
    "load_events",
    "loads_events",
    "dump_profile",
    "dumps_profile",
    "load_profile",
    "loads_profile",
    "dump_chrome",
    "dump_collapsed",
    "dumps_chrome",
    "dumps_collapsed",
    "events_to_chrome",
    "manifest_to_chrome",
    "profile_to_collapsed",
    "spans_to_chrome",
]
