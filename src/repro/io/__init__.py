"""Profile and event-file persistence."""

from repro.io.callgrindfile import (
    dump_callgrind,
    dumps_callgrind,
    load_callgrind,
    loads_callgrind,
)
from repro.io.eventfile import dump_events, dumps_events, load_events, loads_events
from repro.io.kcachegrind import export_callgrind, export_sigil
from repro.io.profilefile import (
    dump_profile,
    dumps_profile,
    load_profile,
    loads_profile,
)

__all__ = [
    "dump_callgrind",
    "dumps_callgrind",
    "load_callgrind",
    "loads_callgrind",
    "dump_events",
    "dumps_events",
    "export_callgrind",
    "export_sigil",
    "load_events",
    "loads_events",
    "dump_profile",
    "dumps_profile",
    "load_profile",
    "loads_profile",
]
