"""Persistence of Callgrind-equivalent profiles.

The partitioning case study joins Sigil's communication data with
Callgrind's timing data; storing both makes the whole study runnable
offline, matching the paper's release model.  Format
(``# callgrind-equiv 1``)::

    model <per_instruction> <per_branch_miss> <per_l1_miss> <per_ll_miss>
    ctx <id> <parent_id> <calls> <name>
    cost <ctx> <ir> <iops> <flops> <reads> <read_B> <writes> <write_B>
         <l1m> <llm> <br> <brm> <sys>
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from repro.callgrind.collector import CallgrindCosts, CallgrindProfile
from repro.callgrind.cycles import CycleModel
from repro.common.cct import ContextTree

__all__ = [
    "dump_callgrind",
    "dumps_callgrind",
    "load_callgrind",
    "loads_callgrind",
]

_MAGIC = "# callgrind-equiv 1"


def dumps_callgrind(profile: CallgrindProfile) -> str:
    """Serialise a Callgrind-equivalent profile to text."""
    lines: List[str] = [_MAGIC]
    m = profile.cycle_model
    lines.append(
        f"model {m.per_instruction} {m.per_branch_miss} "
        f"{m.per_l1_miss} {m.per_ll_miss}"
    )
    for node in profile.tree.nodes:
        if node.parent is None:
            continue
        if "\n" in node.name:
            raise ValueError(f"function name contains newline: {node.name!r}")
        lines.append(f"ctx {node.id} {node.parent.id} {node.calls} {node.name}")
    for ctx_id, c in sorted(profile.self_costs.items()):
        lines.append(
            f"cost {ctx_id} {c.instructions} {c.iops} {c.flops} {c.reads} "
            f"{c.read_bytes} {c.writes} {c.write_bytes} {c.l1_misses} "
            f"{c.ll_misses} {c.branches} {c.branch_misses} {c.syscalls}"
        )
    return "\n".join(lines) + "\n"


def dump_callgrind(profile: CallgrindProfile, path: Union[str, Path]) -> None:
    """Write a Callgrind-equivalent profile to ``path``."""
    Path(path).write_text(dumps_callgrind(profile))


def loads_callgrind(text: str) -> CallgrindProfile:
    """Parse a Callgrind-equivalent profile from text."""
    lines = text.splitlines()
    if not lines or lines[0] != _MAGIC:
        raise ValueError("not a callgrind-equivalent profile (bad magic)")
    tree = ContextTree()
    profile = CallgrindProfile(tree)
    id_map: Dict[int, int] = {0: 0}
    for line in lines[1:]:
        if not line or line.startswith("#"):
            continue
        kind, _, rest = line.partition(" ")
        if kind == "model":
            parts = [float(x) for x in rest.split()]
            profile.cycle_model = CycleModel(*parts)
        elif kind == "ctx":
            fields = rest.split(" ", 3)
            file_id, parent_id, calls = int(fields[0]), int(fields[1]), int(fields[2])
            node = tree.child(tree.node(id_map[parent_id]), fields[3])
            node.calls = calls
            id_map[file_id] = node.id
        elif kind == "cost":
            parts = [int(x) for x in rest.split()]
            profile.self_costs[id_map[parts[0]]] = CallgrindCosts(
                instructions=parts[1],
                iops=parts[2],
                flops=parts[3],
                reads=parts[4],
                read_bytes=parts[5],
                writes=parts[6],
                write_bytes=parts[7],
                l1_misses=parts[8],
                ll_misses=parts[9],
                branches=parts[10],
                branch_misses=parts[11],
                syscalls=parts[12],
            )
        else:
            raise ValueError(f"unknown callgrind line kind: {kind!r}")
    return profile


def load_callgrind(path: Union[str, Path]) -> CallgrindProfile:
    """Read a profile previously written by :func:`dump_callgrind`."""
    return loads_callgrind(Path(path).read_text())
