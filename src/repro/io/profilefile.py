"""Persistence of aggregate profiles (Sigil's first output representation).

A line-oriented text format in the spirit of callgrind-format files.  The
paper promises released "profile data for many commonly used benchmarks ...
researchers can use the data without running Sigil"; this module is that
interchange path: :func:`dump_profile` / :func:`load_profile` round-trip
everything except the raw event log (see :mod:`repro.io.eventfile`).

Format (``# sigil-profile 1``)::

    config reuse=<0|1> event=<0|1> line=<n>
    time <retired>
    shadow <live> <peak> <evicted> <bytes> <peak_bytes>
    ctx <id> <parent_id> <calls> <name>
    fn <ctx> <iops> <flops> <reads> <read_bytes> <writes> <write_bytes> <sys_in> <sys_out>
    edge <writer> <reader> <unique> <nonunique>
    reuse-fn <ctx> <windows> <lifetime_sum> <accesses>
    reuse-hist <ctx> <bin>:<count> ...
    reuse-buckets <c0> <c1> <c2> <c3> <c4> <c5>

Function names are the final whitespace-delimited field and may themselves
contain spaces only after escaping; we forbid newlines and rely on names
being the last token group on ``ctx`` lines.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, TextIO, Union

import numpy as np

from repro.common.cct import ContextTree
from repro.core.aggregate import CommMatrix, FnComm
from repro.core.config import SigilConfig
from repro.core.profiler import ShadowStats, SigilProfile
from repro.core.reuse import ReuseStats

__all__ = [
    "dump_profile",
    "load_profile",
    "dumps_profile",
    "loads_profile",
    "profile_digest",
]

_MAGIC = "# sigil-profile 1"


def profile_digest(profile: SigilProfile) -> str:
    """SHA-256 of the canonical serialised form of ``profile``.

    :func:`dumps_profile` emits context, function, and edge lines in sorted
    deterministic order, so equal profiles serialise to equal bytes; the
    campaign result store records this digest so cache hits can be verified
    byte-for-byte against what was originally computed.
    """
    import hashlib

    return hashlib.sha256(dumps_profile(profile).encode()).hexdigest()


def dumps_profile(profile: SigilProfile) -> str:
    """Serialise a profile to text."""
    lines: List[str] = [_MAGIC]
    cfg = profile.config
    lines.append(
        f"config reuse={int(cfg.reuse_mode)} event={int(cfg.event_mode)} "
        f"line={cfg.line_size}"
    )
    lines.append(f"time {profile.total_time}")
    st = profile.shadow_stats
    lines.append(
        f"shadow {st.live_pages} {st.peak_pages} {st.pages_evicted} "
        f"{st.shadow_bytes} {st.peak_shadow_bytes}"
    )
    for node in profile.tree.nodes:
        if node.parent is None:
            continue
        if "\n" in node.name:
            raise ValueError(f"function name contains newline: {node.name!r}")
        lines.append(f"ctx {node.id} {node.parent.id} {node.calls} {node.name}")
    for ctx_id, fc in sorted(profile.functions.items()):
        lines.append(
            f"fn {ctx_id} {fc.iops} {fc.flops} {fc.reads} {fc.read_bytes} "
            f"{fc.writes} {fc.write_bytes} {fc.syscall_input_bytes} "
            f"{fc.syscall_output_bytes}"
        )
    for (writer, reader), edge in sorted(profile.comm.items()):
        lines.append(
            f"edge {writer} {reader} {edge.unique_bytes} {edge.nonunique_bytes}"
        )
    if profile.reuse is not None:
        for ctx_id, stats in sorted(profile.reuse.per_fn.items()):
            lines.append(
                f"reuse-fn {ctx_id} {stats.reused_windows} {stats.lifetime_sum} "
                f"{stats.reuse_accesses}"
            )
            if stats.histogram:
                pairs = " ".join(
                    f"{b}:{c}" for b, c in sorted(stats.histogram.items())
                )
                lines.append(f"reuse-hist {ctx_id} {pairs}")
        buckets = " ".join(str(int(b)) for b in profile.reuse.byte_buckets)
        lines.append(f"reuse-buckets {buckets}")
    return "\n".join(lines) + "\n"


def dump_profile(profile: SigilProfile, path: Union[str, Path]) -> None:
    """Write a profile to ``path`` in the sigil-profile text format."""
    Path(path).write_text(dumps_profile(profile))


def loads_profile(text: str) -> SigilProfile:
    """Parse a profile previously produced by :func:`dumps_profile`."""
    lines = text.splitlines()
    if not lines or lines[0] != _MAGIC:
        raise ValueError("not a sigil profile file (bad magic)")

    tree = ContextTree()
    functions: Dict[int, FnComm] = {}
    comm = CommMatrix()
    reuse: ReuseStats | None = None
    config = SigilConfig()
    total_time = 0
    shadow = ShadowStats(0, 0, 0, 0, 0)
    id_map: Dict[int, int] = {0: 0}  # file ctx id -> rebuilt ctx id

    for line in lines[1:]:
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        kind, _, rest = line.partition(" ")
        if kind == "config":
            kv = dict(item.split("=", 1) for item in rest.split())
            config = SigilConfig(
                reuse_mode=bool(int(kv["reuse"])),
                event_mode=bool(int(kv["event"])),
                line_size=int(kv["line"]),
            )
            if config.reuse_mode:
                reuse = ReuseStats()
        elif kind == "time":
            total_time = int(rest)
        elif kind == "shadow":
            parts = [int(x) for x in rest.split()]
            shadow = ShadowStats(*parts)
        elif kind == "ctx":
            fields = rest.split(" ", 3)
            file_id, parent_id, calls = int(fields[0]), int(fields[1]), int(fields[2])
            name = fields[3]
            parent = tree.node(id_map[parent_id])
            node = tree.child(parent, name)
            node.calls = calls
            id_map[file_id] = node.id
        elif kind == "fn":
            parts = [int(x) for x in rest.split()]
            functions[id_map[parts[0]]] = FnComm(
                iops=parts[1],
                flops=parts[2],
                reads=parts[3],
                read_bytes=parts[4],
                writes=parts[5],
                write_bytes=parts[6],
                syscall_input_bytes=parts[7],
                syscall_output_bytes=parts[8],
            )
        elif kind == "edge":
            parts = [int(x) for x in rest.split()]
            writer = id_map[parts[0]] if parts[0] >= 0 else parts[0]
            comm.add(writer, id_map[parts[1]], unique=parts[2], nonunique=parts[3])
        elif kind == "reuse-fn":
            if reuse is None:
                raise ValueError("reuse-fn line in non-reuse profile")
            parts = [int(x) for x in rest.split()]
            stats = reuse.fn(id_map[parts[0]])
            stats.reused_windows = parts[1]
            stats.lifetime_sum = parts[2]
            stats.reuse_accesses = parts[3]
        elif kind == "reuse-hist":
            if reuse is None:
                raise ValueError("reuse-hist line in non-reuse profile")
            ctx_str, _, pairs = rest.partition(" ")
            stats = reuse.fn(id_map[int(ctx_str)])
            for pair in pairs.split():
                b, _, c = pair.partition(":")
                stats.histogram[int(b)] = int(c)
        elif kind == "reuse-buckets":
            if reuse is None:
                raise ValueError("reuse-buckets line in non-reuse profile")
            reuse.byte_buckets = np.array([int(x) for x in rest.split()], dtype=np.int64)
        else:
            raise ValueError(f"unknown profile line kind: {kind!r}")

    return SigilProfile(
        config, tree, functions, comm, reuse, None, shadow, total_time
    )


def load_profile(path: Union[str, Path]) -> SigilProfile:
    """Read a profile previously written by :func:`dump_profile`."""
    return loads_profile(Path(path).read_text())
