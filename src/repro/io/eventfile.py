"""Persistence of event logs (Sigil's second output representation).

"[Sigil] can ... list the execution as a sequence of dependent 'events'.
The latter representation allows a system designer to view a workload as a
list of function calls connected by data transfer edges." (section I)

Text format (``# sigil-events 1``)::

    seg <id> <ctx> <call> <start_time> <ops> <thread>
    edge <kind> <src> <dst> [<bytes>]

``seg`` records carry six fields; five-field records from pre-thread files
are still accepted (``thread`` defaults to 0).  ``ops``, ``thread`` and
data-edge ``bytes`` must be non-negative.  Segment lines appear in id
order; the loader validates monotonicity so that downstream longest-path
passes can rely on topological order.

:func:`load_events` sniffs the version magic, so callers transparently
read both this text format and the binary columnar ``# sigil-events 2``
(:mod:`repro.io.eventbin`); :func:`load_event_arrays` does the same but
returns the columnar :class:`~repro.core.segments.EventArrays` form, which
the analysis passes consume without building per-row objects.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.core.segments import (
    EDGE_CALL,
    EDGE_DATA,
    EDGE_ORDER,
    EventArrays,
    EventLog,
    SegmentEdge,
)

__all__ = [
    "dump_events",
    "load_events",
    "load_event_arrays",
    "dumps_events",
    "loads_events",
]

_MAGIC = "# sigil-events 1"
_KINDS = {EDGE_ORDER, EDGE_CALL, EDGE_DATA}


def dumps_events(events: EventLog) -> str:
    """Serialise an event log to the sigil-events text format."""
    lines: List[str] = [_MAGIC]
    for seg in events.segments:
        lines.append(
            f"seg {seg.seg_id} {seg.ctx_id} {seg.call_id} {seg.start_time} "
            f"{seg.ops} {seg.thread}"
        )
    for edge in events.edges():
        if edge.kind == EDGE_DATA:
            lines.append(f"edge {edge.kind} {edge.src} {edge.dst} {edge.bytes}")
        else:
            lines.append(f"edge {edge.kind} {edge.src} {edge.dst}")
    return "\n".join(lines) + "\n"


def dump_events(events: EventLog, path: Union[str, Path]) -> None:
    """Write an event log to ``path``."""
    Path(path).write_text(dumps_events(events))


def loads_events(text: str) -> EventLog:
    """Parse an event log from sigil-events text (validates ordering).

    Validation errors carry the offending line number and text, so a bad
    record deep inside a multi-megabyte event file is findable.
    """
    lines = text.splitlines()
    if not lines or lines[0] != _MAGIC:
        raise ValueError("not a sigil event file (bad magic)")
    events = EventLog()
    for lineno, line in enumerate(lines[1:], start=2):
        if not line or line.startswith("#"):
            continue

        def fail(message: str) -> ValueError:
            return ValueError(f"{message} (line {lineno}: {line!r})")

        kind, _, rest = line.partition(" ")
        if kind == "seg":
            try:
                parts = [int(x) for x in rest.split()]
            except ValueError:
                raise fail("malformed segment record") from None
            if len(parts) == 5:  # pre-thread files
                parts.append(0)
            if len(parts) != 6:
                raise fail(
                    f"segment records take 5 or 6 fields, got {len(parts)}"
                )
            seg_id, ctx_id, call_id, start, ops, thread = parts
            if seg_id != events.n_segments:
                raise fail(
                    f"segment ids must be dense and ordered; got {seg_id}, "
                    f"expected {events.n_segments}"
                )
            if ops < 0:
                raise fail(f"segment ops must be non-negative, got {ops}")
            if thread < 0:
                raise fail(
                    f"segment thread must be non-negative, got {thread}"
                )
            seg = events.new_segment(ctx_id, call_id, start, thread=thread)
            seg.ops = ops
        elif kind == "edge":
            fields = rest.split()
            if not fields:
                raise fail("empty edge record")
            edge_kind = fields[0]
            if edge_kind not in _KINDS:
                raise fail(f"unknown edge kind {edge_kind!r}")
            n_expected = 4 if edge_kind == EDGE_DATA else 3
            if len(fields) != n_expected:
                raise fail(
                    f"{edge_kind} edges take {n_expected - 1} operands, "
                    f"got {len(fields) - 1}"
                )
            try:
                operands = [int(x) for x in fields[1:]]
            except ValueError:
                raise fail("malformed edge record") from None
            src, dst = operands[0], operands[1]
            if edge_kind == EDGE_DATA:
                if operands[2] < 0:
                    raise fail(
                        f"data edge bytes must be non-negative, "
                        f"got {operands[2]}"
                    )
                events.add_data_bytes(src, dst, operands[2])
            elif edge_kind == EDGE_CALL:
                events.add_call_edge(src, dst)
            else:
                events.add_order_edge(src, dst)
        else:
            raise fail(f"unknown event line kind: {kind!r}")
    return events


def _is_binary_file(path: Path) -> bool:
    from repro.io.eventbin import MAGIC_V2

    with open(path, "rb") as fh:
        return fh.read(len(MAGIC_V2)) == MAGIC_V2


def load_events(path: Union[str, Path]) -> EventLog:
    """Read an event log, sniffing text v1 vs binary v2 by magic."""
    path = Path(path)
    if _is_binary_file(path):
        from repro.io.eventbin import load_events_bin

        return load_events_bin(path)
    return loads_events(path.read_text())


def load_event_arrays(path: Union[str, Path]) -> EventArrays:
    """Read an event log into the columnar form, sniffing v1 vs v2.

    Binary v2 files load straight into arrays; text v1 files are parsed
    through the object loader and converted, so callers get one fast-path
    type either way.
    """
    path = Path(path)
    if _is_binary_file(path):
        from repro.io.eventbin import load_event_arrays_bin

        return load_event_arrays_bin(path)
    return EventArrays.from_eventlog(loads_events(path.read_text()))
