"""Binary columnar event logs (``# sigil-events 2``).

The v1 text format (:mod:`repro.io.eventfile`) parses every record through
Python string handling and builds one object per segment -- fine for the
paper's toy graphs, hopeless for the million-segment logs the batched trace
transport now produces.  Version 2 stores the same information as NumPy
structured arrays in length-prefixed chunks, so logs stream to disk while
they are collected and stream back as whole arrays, never touching a
per-row Python object.

Layout::

    # sigil-events 2\\n                       ASCII magic line
    <chunk> <chunk> ... <chunk>              length-prefixed chunks

Every chunk is ``tag[4] codec[4] length[u64-le] payload[length]``:

========  =====================================================
``head``  JSON header: format version, chunk row target, codec
``segs``  rows of :data:`~repro.core.segments.SEG_DTYPE`
          (ctx, call, start, ops, thread; seg id = row index)
``oced``  rows of :data:`~repro.core.segments.OC_EDGE_DTYPE`
          (kind 0=order/1=call, src, dst; insertion order kept)
``data``  rows of :data:`~repro.core.segments.DATA_EDGE_DTYPE`
          (src, dst, unique bytes)
``end.``  JSON trailer: total row counts, for truncation checks
========  =====================================================

Codecs are ``raw.`` (verbatim), ``gzip`` (zlib) and ``zstd`` (only when the
optional :mod:`zstandard` package is installed; never required).  A table
may span any number of chunks -- the streaming writer emits a chunk
whenever its buffer fills, so serialisation needs O(chunk) memory, and the
streaming reader (:func:`iter_event_chunks`) hands back one decoded array
per chunk without materialising the file.

The format is lossless: text-v1 -> binary-v2 -> text-v1 round-trips
byte-identically (segment order, the interleaving of order/call edges, and
aggregated data-edge order are all preserved).
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Iterator, Optional, Tuple, Union

import numpy as np

from repro.core.segments import (
    DATA_EDGE_DTYPE,
    OC_EDGE_DTYPE,
    SEG_DTYPE,
    EventArrays,
    EventLog,
    as_event_arrays,
)

__all__ = [
    "MAGIC_V2",
    "BinaryEventWriter",
    "dump_events_bin",
    "dumps_events_bin",
    "load_events_bin",
    "load_event_arrays_bin",
    "iter_event_chunks",
    "is_binary_events",
    "zstd_available",
    "TABLE_NAMES",
]

MAGIC_V2 = b"# sigil-events 2\n"

_TAG_HEAD = b"head"
_TAG_SEGS = b"segs"
_TAG_OCED = b"oced"
_TAG_DATA = b"data"
_TAG_END = b"end."

_CODEC_RAW = b"raw."
_CODEC_GZIP = b"gzip"
_CODEC_ZSTD = b"zstd"

_CHUNK_HEADER = struct.Struct("<4s4sQ")

#: Rows per chunk before the streaming writer flushes (per table).
DEFAULT_CHUNK_ROWS = 1 << 18

_DTYPES = {
    _TAG_SEGS: SEG_DTYPE,
    _TAG_OCED: OC_EDGE_DTYPE,
    _TAG_DATA: DATA_EDGE_DTYPE,
}


def zstd_available() -> bool:
    """Whether the optional zstandard codec can be used on this machine."""
    try:
        import zstandard  # noqa: F401
    except ImportError:
        return False
    return True


def _encode(payload: bytes, codec: bytes) -> bytes:
    if codec == _CODEC_RAW:
        return payload
    if codec == _CODEC_GZIP:
        return zlib.compress(payload, 6)
    if codec == _CODEC_ZSTD:
        import zstandard

        return zstandard.ZstdCompressor().compress(payload)
    raise ValueError(f"unknown event-chunk codec {codec!r}")


def _decode(payload: bytes, codec: bytes) -> bytes:
    if codec == _CODEC_RAW:
        return payload
    if codec == _CODEC_GZIP:
        return zlib.decompress(payload)
    if codec == _CODEC_ZSTD:
        try:
            import zstandard
        except ImportError:
            raise ValueError(
                "event file uses zstd chunks but the zstandard package "
                "is not installed"
            ) from None
        return zstandard.ZstdDecompressor().decompress(payload)
    raise ValueError(f"unknown event-chunk codec {codec!r}")


def _codec_for(compression: Optional[str]) -> bytes:
    if compression in (None, "none", "raw"):
        return _CODEC_RAW
    if compression == "gzip":
        return _CODEC_GZIP
    if compression == "zstd":
        if not zstd_available():
            raise ValueError(
                "zstd compression requested but zstandard is not installed"
            )
        return _CODEC_ZSTD
    raise ValueError(f"unknown compression {compression!r}")


class BinaryEventWriter:
    """Streaming chunk writer for ``# sigil-events 2``.

    Collectors append rows as they happen (:meth:`add_segment`,
    :meth:`add_order_edge`, ...) or in bulk (:meth:`write_segments`, ...);
    a chunk goes to disk whenever a table's buffer reaches ``chunk_rows``,
    so the log never has to be fully materialised to serialise.  Usable as
    a context manager; :meth:`close` seals the file with the trailer chunk.
    """

    def __init__(
        self,
        sink: Union[str, Path, BinaryIO],
        *,
        compression: Optional[str] = "gzip",
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ):
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        self._codec = _codec_for(compression)
        self._chunk_rows = chunk_rows
        if hasattr(sink, "write"):
            self._fh: BinaryIO = sink  # type: ignore[assignment]
            self._owns_fh = False
        else:
            self._fh = open(sink, "wb")
            self._owns_fh = True
        self._counts = {_TAG_SEGS: 0, _TAG_OCED: 0, _TAG_DATA: 0}
        self._buffers = {tag: [] for tag in self._counts}
        self._buffered = {tag: 0 for tag in self._counts}
        self._closed = False
        self._fh.write(MAGIC_V2)
        self._write_chunk(
            _TAG_HEAD,
            json.dumps(
                {
                    "version": 2,
                    "chunk_rows": chunk_rows,
                    "codec": self._codec.decode().rstrip("."),
                }
            ).encode(),
            codec=_CODEC_RAW,
        )

    # -- low level ---------------------------------------------------------

    def _write_chunk(self, tag: bytes, payload: bytes, *, codec: bytes) -> None:
        encoded = _encode(payload, codec)
        self._fh.write(_CHUNK_HEADER.pack(tag, codec, len(encoded)))
        self._fh.write(encoded)

    def _append(self, tag: bytes, rows: np.ndarray) -> None:
        if self._closed:
            raise ValueError("writer is closed")
        rows = np.ascontiguousarray(rows, dtype=_DTYPES[tag])
        if not len(rows):
            return
        self._counts[tag] += len(rows)
        self._buffers[tag].append(rows)
        self._buffered[tag] += len(rows)
        if self._buffered[tag] >= self._chunk_rows:
            self._flush_table(tag)

    def _flush_table(self, tag: bytes) -> None:
        if not self._buffered[tag]:
            return
        block = (
            self._buffers[tag][0]
            if len(self._buffers[tag]) == 1
            else np.concatenate(self._buffers[tag])
        )
        for start in range(0, len(block), self._chunk_rows):
            rows = block[start : start + self._chunk_rows]
            self._write_chunk(tag, rows.tobytes(), codec=self._codec)
        self._buffers[tag] = []
        self._buffered[tag] = 0

    # -- bulk appends ------------------------------------------------------

    def write_segments(self, segs: np.ndarray) -> None:
        """Append rows of :data:`SEG_DTYPE` (seg ids = arrival order)."""
        self._append(_TAG_SEGS, segs)

    def write_order_call_edges(self, edges: np.ndarray) -> None:
        """Append rows of :data:`OC_EDGE_DTYPE` in insertion order."""
        self._append(_TAG_OCED, edges)

    def write_data_edges(self, edges: np.ndarray) -> None:
        """Append rows of :data:`DATA_EDGE_DTYPE` (aggregated per pair)."""
        self._append(_TAG_DATA, edges)

    # -- scalar appends (collector-facing) ---------------------------------

    def add_segment(
        self, ctx: int, call: int, start: int, ops: int, thread: int = 0
    ) -> int:
        """Append one segment; returns the segment id it received."""
        seg_id = self._counts[_TAG_SEGS]
        row = np.array([(ctx, call, start, ops, thread)], dtype=SEG_DTYPE)
        self._append(_TAG_SEGS, row)
        return seg_id

    def add_order_edge(self, src: int, dst: int) -> None:
        self._append(_TAG_OCED, np.array([(0, src, dst)], dtype=OC_EDGE_DTYPE))

    def add_call_edge(self, src: int, dst: int) -> None:
        self._append(_TAG_OCED, np.array([(1, src, dst)], dtype=OC_EDGE_DTYPE))

    def add_data_edge(self, src: int, dst: int, count: int) -> None:
        self._append(
            _TAG_DATA, np.array([(src, dst, count)], dtype=DATA_EDGE_DTYPE)
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Flush buffered rows and seal the file with the trailer chunk."""
        if self._closed:
            return
        for tag in (_TAG_SEGS, _TAG_OCED, _TAG_DATA):
            self._flush_table(tag)
        self._write_chunk(
            _TAG_END,
            json.dumps(
                {
                    "segments": self._counts[_TAG_SEGS],
                    "order_call_edges": self._counts[_TAG_OCED],
                    "data_edges": self._counts[_TAG_DATA],
                }
            ).encode(),
            codec=_CODEC_RAW,
        )
        self._closed = True
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "BinaryEventWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# whole-log serialisation
# ---------------------------------------------------------------------------


def dump_events_bin(
    events: Union[EventLog, EventArrays],
    sink: Union[str, Path, BinaryIO],
    *,
    compression: Optional[str] = "gzip",
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> None:
    """Write an event log (either form) as ``# sigil-events 2``."""
    arrays = as_event_arrays(events)
    with BinaryEventWriter(
        sink, compression=compression, chunk_rows=chunk_rows
    ) as writer:
        writer.write_segments(arrays.segs)
        writer.write_order_call_edges(arrays.ordercall)
        writer.write_data_edges(arrays.data)


def dumps_events_bin(
    events: Union[EventLog, EventArrays],
    *,
    compression: Optional[str] = "gzip",
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> bytes:
    """Serialise an event log to ``# sigil-events 2`` bytes."""
    buf = io.BytesIO()
    dump_events_bin(
        events, buf, compression=compression, chunk_rows=chunk_rows
    )
    return buf.getvalue()


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------


def is_binary_events(header: bytes) -> bool:
    """Sniff: does ``header`` (the first bytes of a file) start v2 data?"""
    return header.startswith(MAGIC_V2) or MAGIC_V2.startswith(header)


def _read_exact(fh: BinaryIO, n: int, what: str) -> bytes:
    block = fh.read(n)
    if len(block) != n:
        raise ValueError(f"truncated event file: short read in {what}")
    return block


#: Table names accepted by ``iter_event_chunks(..., tables=...)``.
TABLE_NAMES = ("segs", "oced", "data")

_TAG_BY_NAME = {
    "segs": _TAG_SEGS,
    "oced": _TAG_OCED,
    "data": _TAG_DATA,
}


def iter_event_chunks(
    source: Union[str, Path, BinaryIO],
    *,
    tables: Optional[Tuple[str, ...]] = None,
) -> Iterator[Tuple[str, np.ndarray]]:
    """Stream decoded chunks of a v2 file as ``(table, rows)`` pairs.

    ``table`` is ``"segs"``, ``"oced"`` or ``"data"``; ``rows`` is one
    structured array per on-disk chunk.  Constant memory in the file size:
    one chunk is decoded at a time, which is what lets analyses run
    out-of-core over logs larger than RAM.  ``tables`` restricts the yield
    to a subset of tables; chunks of other tables are skipped without
    decoding their payloads (their trailer counts are then not verified,
    since counting rows would require the decode being skipped).

    Raises :class:`ValueError` on a bad magic, an unknown chunk tag, or a
    truncated file (no trailer or a row-count mismatch); truncation and
    corruption errors name the chunk index and the byte offset at which the
    bad chunk starts, so a damaged log can be inspected with ``dd``/``xxd``
    directly.
    """
    if tables is not None:
        unknown = set(tables) - set(TABLE_NAMES)
        if unknown:
            raise ValueError(f"unknown event tables {sorted(unknown)!r}")
    wanted = (
        None if tables is None else {_TAG_BY_NAME[name] for name in tables}
    )
    fh: BinaryIO
    if hasattr(source, "read"):
        fh = source  # type: ignore[assignment]
        owns = False
    else:
        fh = open(source, "rb")
        owns = True
    try:
        magic = fh.read(len(MAGIC_V2))
        if magic != MAGIC_V2:
            raise ValueError("not a binary sigil event file (bad magic)")
        counts = {_TAG_SEGS: 0, _TAG_OCED: 0, _TAG_DATA: 0}
        sealed = False
        # Chunk index and byte offset of the chunk being read, tracked
        # manually so error messages work on unseekable streams too.
        index = 0
        offset = len(MAGIC_V2)
        while True:
            header = fh.read(_CHUNK_HEADER.size)
            if not header:
                break
            where = f"chunk {index} at byte {offset}"
            if len(header) != _CHUNK_HEADER.size:
                raise ValueError(
                    f"truncated event file: partial chunk header ({where})"
                )
            tag, codec, length = _CHUNK_HEADER.unpack(header)
            skip = (
                wanted is not None
                and tag not in (_TAG_HEAD, _TAG_END)
                and tag not in wanted
            )
            if skip:
                # Advance past the payload without decoding it.
                _read_exact(
                    fh, length, f"{tag!r} payload ({where})"
                )
                payload = b""
            else:
                payload = _decode(
                    _read_exact(fh, length, f"{tag!r} payload ({where})"),
                    codec,
                )
            index += 1
            offset += _CHUNK_HEADER.size + length
            if skip or tag == _TAG_HEAD:
                continue
            if tag == _TAG_END:
                trailer = json.loads(payload.decode())
                expected = {
                    t: trailer.get(name, 0)
                    for t, name in (
                        (_TAG_SEGS, "segments"),
                        (_TAG_OCED, "order_call_edges"),
                        (_TAG_DATA, "data_edges"),
                    )
                    if wanted is None or t in wanted
                }
                read = {t: counts[t] for t in expected}
                if expected != read:
                    raise ValueError(
                        "corrupt event file: trailer row counts "
                        f"{expected} != read {read} ({where})"
                    )
                sealed = True
                continue
            dtype = _DTYPES.get(tag)
            if dtype is None:
                raise ValueError(
                    f"unknown event-chunk tag {tag!r} ({where})"
                )
            rows = np.frombuffer(payload, dtype=dtype)
            counts[tag] += len(rows)
            yield tag.decode().rstrip("."), rows
        if not sealed:
            raise ValueError(
                "truncated event file: missing trailer (writer not "
                f"closed?) after chunk {index} at byte {offset}"
            )
    finally:
        if owns:
            fh.close()


def load_event_arrays_bin(
    source: Union[str, Path, BinaryIO],
) -> EventArrays:
    """Load a v2 file into :class:`EventArrays` (no per-row objects)."""
    tables = {"segs": [], "oced": [], "data": []}
    for table, rows in iter_event_chunks(source):
        tables[table].append(rows)

    def cat(name: str, dtype) -> np.ndarray:
        blocks = tables[name]
        if not blocks:
            return np.empty(0, dtype=dtype)
        return blocks[0] if len(blocks) == 1 else np.concatenate(blocks)

    arrays = EventArrays(
        segs=cat("segs", SEG_DTYPE),
        ordercall=cat("oced", OC_EDGE_DTYPE),
        data=cat("data", DATA_EDGE_DTYPE),
    )
    arrays.validate()
    return arrays


def load_events_bin(source: Union[str, Path, BinaryIO]) -> EventLog:
    """Load a v2 file into the compatibility :class:`EventLog` form."""
    return load_event_arrays_bin(source).to_eventlog()
